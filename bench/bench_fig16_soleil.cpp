// Figure 16: Soleil-X multi-physics throughput on Sierra-style nodes (paper
// §5.2).  All three physics modules (fluid, particles, radiation) run
// coupled; the radiation wavefront partition count is decided at run time,
// which rules out static control replication entirely — only a DCR series
// exists, as in the paper.
//
// Expected shape: throughput grows with GPU count at high (80-95%) weak
// scaling efficiency, with a visible dip once the communication pattern
// stops fitting in a node neighborhood (32 nodes in the paper).
#include "apps/soleil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;
constexpr std::size_t kGpusPerNode = 4;  // Sierra
constexpr std::size_t kSteps = 8;
constexpr std::int64_t kCellsPerGpu = 15000;

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 16", "Soleil-X weak scaling (10^6 cells/s)",
                "throughput grows with GPUs at 80-95% efficiency; no SCR series exists "
                "(dynamic partition count)");
  bench::Table table("gpus");
  table.add_series("dcr_throughput");
  table.add_series("efficiency");
  double base_per_gpu = 0.0;
  for (std::size_t gpus : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t nodes = gpus / kGpusPerNode;
    apps::SoleilConfig cfg{.cells_per_piece = kCellsPerGpu,
                           .particles_per_piece = kCellsPerGpu / 10,
                           .pieces = gpus,
                           .steps = kSteps};
    core::FunctionRegistry functions;
    const auto fns = apps::register_soleil_functions(functions, 1.0);
    sim::Machine machine(bench::cluster(nodes, kGpusPerNode));
    core::DcrConfig dcfg;
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute(apps::make_soleil_app(cfg, fns));
    DCR_CHECK(stats.completed && !stats.determinism_violation);
    const double cells = static_cast<double>(kCellsPerGpu) * static_cast<double>(gpus) *
                         static_cast<double>(kSteps);
    const double throughput = bench::per_second(cells, stats.makespan) / 1e6;
    const double per_gpu = throughput / static_cast<double>(gpus);
    if (base_per_gpu == 0.0) base_per_gpu = per_gpu;
    table.add_row(static_cast<double>(gpus), {throughput, per_gpu / base_per_gpu});
  }
  table.print();
  return 0;
}
