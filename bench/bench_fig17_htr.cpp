// Figure 17: weak scaling parallel efficiency of the HTR solver (paper
// §5.2), on (a) a CPU machine (Quartz: 36 cores/node) and (b) a GPU machine
// (Lassen: 4 GPUs/node).  HTR's data-dependent sub-cycling defeats SCR's
// conservative static analysis, so only the DCR series exists.
//
// Expected shape: parallel efficiency stays in the 0.85-1.0 band out to
// thousands of cores / hundreds of GPUs.
#include "apps/htr.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

double efficiency_at(std::size_t nodes, std::size_t procs_per_node,
                     std::int64_t cells_per_piece, double ns_per_cell, double* base) {
  const std::size_t pieces = nodes * procs_per_node;
  apps::HtrConfig cfg{.cells_per_piece = cells_per_piece, .pieces = pieces, .steps = 6,
                      .subcycle_every = 3};
  core::FunctionRegistry functions;
  const auto fns = apps::register_htr_functions(functions, ns_per_cell);
  sim::Machine machine(bench::cluster(nodes, procs_per_node));
  core::DcrConfig dcfg;
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats = rt.execute(apps::make_htr_app(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  const double cells = static_cast<double>(cells_per_piece) * static_cast<double>(pieces) *
                       static_cast<double>(cfg.steps);
  const double per_piece = bench::per_second(cells, stats.makespan) / static_cast<double>(pieces);
  if (*base == 0.0) *base = per_piece;
  return per_piece / *base;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 17a", "HTR weak scaling parallel efficiency (CPU, 36 cores/node)",
                "efficiency stays ~0.85-1.0 out to 9216 cores");
  {
    bench::Table table("cores");
    table.add_series("efficiency");
    double base = 0.0;
    for (std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      // CPU pieces are smaller and slower per cell than GPU pieces.
      table.add_row(static_cast<double>(nodes * 36),
                    {efficiency_at(nodes, 36, 4000, 20.0, &base)});
    }
    table.print();
  }

  bench::header("Figure 17b", "HTR weak scaling parallel efficiency (GPU, 4 GPUs/node)",
                "efficiency stays ~0.9-1.0 out to 512 GPUs");
  {
    bench::Table table("gpus");
    table.add_series("efficiency");
    double base = 0.0;
    for (std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      table.add_row(static_cast<double>(nodes * 4),
                    {efficiency_at(nodes, 4, 100000, 2.0, &base)});
    }
    table.print();
  }
  return 0;
}
