// Figure 18: training the CANDLE pilot1/Uno MLP (768M parameters) on
// Summit-style nodes — TensorFlow (data parallel + Horovod) vs FlexFlow on
// Legion with DCR using the hybrid data+model-parallel strategy its search
// discovers (paper §5.3).
//
// Expected shape: TensorFlow's per-epoch time is dominated by the 3 GB
// gradient all-reduce and stops improving with more GPUs; FlexFlow's hybrid
// strategy cuts synchronized volume ~20x, keeps scaling, and ends ~15x
// faster at 768 GPUs (the paper reports 14.9x).
#include "apps/nn.hpp"
#include "baselines/tf.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

constexpr std::size_t kGpusPerNode = 6;
constexpr std::size_t kSamplesPerEpoch = 423952;  // Uno training set
constexpr std::size_t kGlobalBatch = 4096;        // fixed global batch
constexpr std::size_t kSimIters = 3;

double epoch_hours(SimTime per_iter) {
  const double iters = static_cast<double>(kSamplesPerEpoch) /
                       static_cast<double>(kGlobalBatch);
  return static_cast<double>(per_iter) * 1e-9 * iters / 3600.0;
}

SimTime flexflow_iter(std::size_t gpus) {
  const std::size_t nodes = (gpus + kGpusPerNode - 1) / kGpusPerNode;
  const std::size_t procs = std::min(gpus, kGpusPerNode);
  apps::TrainConfig cfg;
  cfg.gpus = gpus;
  cfg.iterations = kSimIters;
  cfg.strategy = apps::TrainConfig::Strategy::Hybrid;  // FlexFlow's search result
  cfg.compute_scale = 1.0 / static_cast<double>(gpus);  // fixed global batch
  cfg.net = bench::cluster(1).network;
  core::FunctionRegistry functions;
  const auto fns = apps::register_train_functions(functions);
  sim::Machine machine(bench::cluster(nodes, procs));
  core::DcrConfig dcfg;
  dcfg.shards_per_node = procs;
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats =
      rt.execute(apps::make_train_app(apps::NetworkSpec::candle_uno(), cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  return stats.makespan / kSimIters;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 18", "CANDLE Uno MLP per-epoch training time (hours)",
                "TF flattens (3 GB gradient all-reduce dominates); FlexFlow hybrid + DCR "
                "keeps scaling, ~15x faster at 768 GPUs");
  bench::Table table("gpus");
  table.add_series("tensorflow");
  table.add_series("ff_dcr_hybrid");
  const auto spec = apps::NetworkSpec::candle_uno();
  baselines::TfConfig tf;
  tf.net = bench::cluster(1).network;
  for (std::size_t gpus : {1u, 3u, 6u, 12u, 24u, 48u, 96u, 192u, 384u, 768u}) {
    const SimTime tf_iter = baselines::tf_training_time(
        spec, gpus, 1, tf, 1.0 / static_cast<double>(gpus));
    table.add_row(static_cast<double>(gpus),
                  {epoch_hours(tf_iter), epoch_hours(flexflow_iter(gpus))});
  }
  table.print();
  return 0;
}
