// Figure 20: Jacobi-preconditioned CG solver in Legate NumPy vs Dask (paper
// §5.4).  The CG loop's per-iteration scalar reductions (dot products) are
// what punish a centralized runtime: every dot round-trips through the
// controller, while under DCR it is an O(log N) all-reduce among shards.
// Expected shape: as Figure 19, with a smaller Legate/Dask gap (the paper
// reports 2.7x at 32 nodes) because CG is dot-latency-bound for both.
#include "apps/legate/solvers.hpp"
#include "baselines/central.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;
using apps::legate::CgConfig;

constexpr std::size_t kIters = 10;
constexpr std::uint64_t kUnknownsPerSocket = 10'000'000;

double legate_throughput(std::size_t sockets, double ns_per_elem) {
  CgConfig cfg{.unknowns_per_piece = kUnknownsPerSocket, .iterations = kIters};
  core::FunctionRegistry functions;
  const auto fns = apps::legate::register_legate_functions(functions, ns_per_elem);
  sim::Machine machine(bench::cluster(sockets));
  core::DcrConfig dcfg;
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats = rt.execute(apps::legate::make_preconditioned_cg(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  return bench::per_second(static_cast<double>(kIters), stats.makespan);
}

double dask_throughput(std::size_t sockets, double ns_per_elem) {
  CgConfig cfg{.unknowns_per_piece = kUnknownsPerSocket, .iterations = kIters,
               .pieces = sockets};
  core::FunctionRegistry functions;
  const auto fns = apps::legate::register_legate_functions(functions, ns_per_elem);
  sim::Machine machine(bench::cluster(sockets));
  baselines::CentralConfig ccfg;
  ccfg.analysis_cost_per_task = ms(1);
  ccfg.issue_cost = us(2);
  baselines::CentralRuntime rt(machine, functions, ccfg);
  return bench::per_second(
      static_cast<double>(kIters),
      rt.execute(apps::legate::make_preconditioned_cg(cfg, fns)).makespan);
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 20", "Legate preconditioned CG vs Dask (iterations/s)",
                "Dask decays past a few sockets; Legate ~3x Dask at 32 sockets; GPU above CPU");
  bench::Table table("sockets");
  table.add_series("legate_cpu");
  table.add_series("legate_gpu");
  table.add_series("dask_cpu");
  for (std::size_t sockets : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    table.add_row(static_cast<double>(sockets),
                  {legate_throughput(sockets, /*CPU*/ 1.0),
                   legate_throughput(sockets, /*GPU*/ 0.05),
                   dask_throughput(sockets, 1.0)});
  }
  table.print();
  return 0;
}
