// Real-threads backend strong scaling: the 64-shard stencil on
// exec::ThreadRuntime, sweeping the compute-slot cap 1..64 while every shard
// runs as a real OS thread.
//
// The work model is sleep-based (ThreadConfig::work_sleep): each point task
// holds a compute slot for its modeled duration with the host thread blocked,
// as when waiting on an offloaded accelerator kernel.  Blocked waits overlap
// regardless of host core count, so the ConcurrencyGate is the only thing
// limiting task concurrency and the sweep measures genuine wall-clock strong
// scaling even on a single-core container (a busy-spin model would need as
// many cores as slots).
//
// Acceptance gate (exit 1 on failure): wall-clock speedup going from 1 to 8
// compute slots must exceed 1.5x.  Results go to BENCH_exec.json — the
// wall-derived fields carry "wall" in their key so the baseline watchdog
// skips them, while the deterministic work counters (tasks, ops, fences,
// template windows) are compared across runs.
//
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline, as in bench_prof / bench_scope.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "exec/thread_runtime.hpp"
#include "scope/baseline.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kSteps = 3;
constexpr std::int64_t kCellsPerTile = 20'000;
constexpr double kNsPerCell = 10.0;  // ~200us modeled kernel per stencil task
constexpr int kReps = 5;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
};

RunResult run(std::uint32_t slots) {
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, kNsPerCell);
  exec::ThreadConfig cfg;
  cfg.num_shards = kShards;
  cfg.compute_slots = slots;
  cfg.work_scale = 1.0;   // wall nanoseconds = modeled nanoseconds
  cfg.work_sleep = true;  // offload model: blocked waits overlap on any host
  apps::StencilConfig scfg{.cells_per_tile = kCellsPerTile, .tiles = kShards,
                           .steps = kSteps};
  scfg.use_trace = true;  // steady-state template replay, the regime that matters
  exec::ThreadRuntime rt(functions, cfg);
  const auto main_fn = apps::make_stencil_app(scfg, fns);

  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  DCR_CHECK(r.stats.completed && !r.stats.determinism_violation);
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_exec.json");
  bench::header("Exec", "threads backend strong scaling (stencil, 64 shard threads)",
                "wall time falls as the compute-slot cap rises; speedup(1->8) > 1.5x");
  int rc = 0;

  const std::uint32_t kSlots[] = {1, 2, 4, 8, 16, 32, 64};
  // Interleave reps across slot counts so drift (thermal, scheduler) hits
  // every configuration equally.
  std::vector<std::vector<double>> wall(std::size(kSlots));
  RunResult last;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < std::size(kSlots); ++i) {
      last = run(kSlots[i]);
      wall[i].push_back(last.wall_ms);
    }
  }

  bench::Table table("slots");
  table.add_series("wall_ms");
  table.add_series("speedup");
  table.add_series("efficiency");
  const double base_ms = min_of(wall[0]);
  double speedup_8 = 0;
  for (std::size_t i = 0; i < std::size(kSlots); ++i) {
    const double ms = min_of(wall[i]);
    const double speedup = base_ms / ms;
    const double efficiency = speedup / static_cast<double>(kSlots[i]);
    if (kSlots[i] == 8) speedup_8 = speedup;
    table.add_row(static_cast<double>(kSlots[i]), {ms, speedup, efficiency});
    json.record("slots_" + std::to_string(kSlots[i]),
                {{"wall_ms", ms},
                 {"wall_speedup", speedup},
                 {"wall_efficiency", efficiency},
                 {"point_tasks", static_cast<double>(last.stats.point_tasks_launched)},
                 {"ops_issued", static_cast<double>(last.stats.ops_issued)},
                 {"fences_inserted", static_cast<double>(last.stats.fences_inserted)},
                 {"fences_elided", static_cast<double>(last.stats.fences_elided)},
                 {"traced_ops", static_cast<double>(last.stats.traced_ops)},
                 {"templates_captured",
                  static_cast<double>(last.stats.templates_captured)},
                 {"template_replays",
                  static_cast<double>(last.stats.template_replays)}});
  }
  table.print();

  std::printf("\n  speedup 1 -> 8 slots: %.2fx (gate: > 1.5x)\n", speedup_8);
  if (speedup_8 <= 1.5) {
    std::printf("  FAIL: threads backend does not scale\n");
    rc = 1;
  }
  json.close();
  std::printf("  wrote BENCH_exec.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d =
        scope::check_baseline_files(baseline_path, "BENCH_exec.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
