// Fault-tolerance overheads: what do drops and crashes cost?
//
// Two sweeps over shard counts {16, 64, 256} on the 1-D stencil:
//
//  A. Retry overhead vs drop rate — the reliable transport turns iid message
//     drops into retransmissions; the interesting number is how much virtual
//     time the retry/backoff machinery adds relative to the fault-free run
//     (which, with the fault layer disabled, is bit-identical to the seed
//     runtime).
//
//  B. Recovery latency after a whole-shard crash mid-run — time from the
//     injected crash to the lease monitor's declaration (detection), to the
//     replacement shard catching up past the committed frontier (recovery),
//     plus the end-to-end makespan penalty.
//
// Results are printed as tables and written to BENCH_faults.json.
//
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline, as in bench_prof/bench_scope (wall-clock keys are
// excluded; virtual-time results are deterministic and compare exactly).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "scope/baseline.hpp"
#include "sim/fault.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

constexpr std::size_t kShardCounts[] = {16, 64, 256};
constexpr double kDropRates[] = {0.0, 0.001, 0.005, 0.01, 0.02};

apps::StencilConfig stencil_for(std::size_t shards) {
  return {.cells_per_tile = 500, .tiles = shards, .steps = 8};
}

struct RunResult {
  core::DcrStats stats;
  sim::FaultStats faults;
};

RunResult run(std::size_t shards, sim::FaultConfig fcfg, bool with_plan) {
  sim::Machine machine(bench::cluster(shards));
  sim::FaultPlan plan(fcfg);
  if (with_plan) machine.install_faults(plan);
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig dcfg;
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  RunResult r;
  r.stats = rt.execute(apps::make_stencil_app(stencil_for(shards), fns));
  r.faults = plan.stats();
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

void sweep_drop_rate(JsonDump& json) {
  bench::header("Faults A", "retry overhead vs message drop rate (stencil)",
                "overhead grows with drop rate; zero drops == zero overhead");
  for (std::size_t shards : kShardCounts) {
    bench::Table table("drop_%");
    table.add_series("makespan_us");
    table.add_series("overhead_%");
    table.add_series("retransmits");
    table.add_series("dropped");
    double baseline = 0.0;
    for (double rate : kDropRates) {
      sim::FaultConfig fcfg;
      fcfg.seed = 0xd20b + shards;
      fcfg.drop_rate = rate;
      const RunResult r = run(shards, fcfg, /*with_plan=*/rate > 0.0);
      if (!r.stats.completed) {
        std::printf("  !! %zu shards, drop %.3f: did not complete (%s)\n", shards,
                    rate, r.stats.abort_message.c_str());
        continue;
      }
      const double makespan_us = static_cast<double>(r.stats.makespan) / 1e3;
      if (rate == 0.0) baseline = makespan_us;
      const double overhead =
          baseline > 0.0 ? (makespan_us / baseline - 1.0) * 100.0 : 0.0;
      table.add_row(rate * 100.0,
                    {makespan_us, overhead,
                     static_cast<double>(r.stats.retransmits),
                     static_cast<double>(r.stats.messages_dropped)});
      // Sweep names must be unique: the baseline watchdog matches records
      // by name, so the grid parameters go into the name itself.
      json.record("drop_rate_s" + std::to_string(shards) + "_r" +
                      std::to_string(static_cast<int>(rate * 1000)),
                  {{"shards", static_cast<double>(shards)},
                   {"drop_rate", rate},
                   {"makespan_us", makespan_us},
                   {"overhead_pct", overhead},
                   {"retransmits", static_cast<double>(r.stats.retransmits)},
                   {"messages_dropped", static_cast<double>(r.stats.messages_dropped)}});
    }
    std::printf("-- %zu shards\n", shards);
    table.print();
  }
}

void sweep_recovery(JsonDump& json) {
  bench::header("Faults B", "recovery latency after one shard crash (stencil)",
                "detection bounded by lease timeout + probe budget; replay cost grows "
                "with committed prefix");
  bench::Table table("shards");
  table.add_series("detect_us");
  table.add_series("recover_us");
  table.add_series("replayed_ops");
  table.add_series("penalty_%");
  for (std::size_t shards : kShardCounts) {
    const RunResult clean = run(shards, {}, /*with_plan=*/false);
    sim::FaultConfig fcfg;
    fcfg.seed = 0xc2a5 + shards;
    fcfg.crashes.push_back({NodeId(1), clean.stats.makespan / 2});
    const RunResult r = run(shards, fcfg, /*with_plan=*/true);
    if (!r.stats.completed || r.stats.failures.size() != 1) {
      std::printf("  !! %zu shards: crash run failed (%s)\n", shards,
                  r.stats.abort_message.c_str());
      continue;
    }
    const core::FailureReport& rep = r.stats.failures[0];
    const double detect_us =
        static_cast<double>(rep.detected_at - rep.crashed_at) / 1e3;
    const double recover_us =
        static_cast<double>(rep.recovered_at - rep.detected_at) / 1e3;
    const double penalty =
        (static_cast<double>(r.stats.makespan) / static_cast<double>(clean.stats.makespan) -
         1.0) *
        100.0;
    table.add_row(static_cast<double>(shards),
                  {detect_us, recover_us, static_cast<double>(rep.committed_ops),
                   penalty});
    json.record("recovery_s" + std::to_string(shards),
                {{"shards", static_cast<double>(shards)},
                 {"detect_us", detect_us},
                 {"recover_us", recover_us},
                 {"replayed_ops", static_cast<double>(rep.committed_ops)},
                 {"replayed_calls", static_cast<double>(rep.committed_api_calls)},
                 {"makespan_penalty_pct", penalty},
                 {"clean_makespan_us", static_cast<double>(clean.stats.makespan) / 1e3},
                 {"faulty_makespan_us", static_cast<double>(r.stats.makespan) / 1e3}});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  g_flags = bench::parse_flags(static_cast<int>(rest.size()), rest.data());
  JsonDump json("BENCH_faults.json");
  sweep_drop_rate(json);
  sweep_recovery(json);
  json.close();
  std::printf("\nwrote BENCH_faults.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_faults.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    return d.ok() ? 0 : 1;
  }
  return 0;
}
