// SDC-resilient selective replication: overhead, detection, and equivalence.
//
// Three sweeps on the 64-shard traced stencil with a per-step control-feeding
// residual reduction (the SDC-critical chain dcr/replicate protects):
//
//  A. Replication overhead with zero faults — only the residual tasks are
//     control-tainted, so duplicating them must cost <= 10% makespan (virtual
//     time, deterministic) relative to replication-off.  Wall times are
//     recorded for context but never gated (and excluded from the baseline
//     diff, like every wall/overhead key).
//
//  B. Detection and healing under seeded injection — across seeds and rates,
//     every injected corruption lands on a replicated execution whose ballot
//     is out-voted by the quorum: detected == injected (>= 99% required by
//     acceptance; with no message loss the ledger makes it exact), zero
//     determinism-violation aborts.
//
//  C. Task-graph equivalence — a replication-on run (even one that detected
//     and healed corruption) must realize exactly the task graph of a
//     replication-off run: spy::graph_equivalent over the recorded traces.
//
// Results go to BENCH_sdc.json; exit 1 on any violation.
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline, as in bench_prof/bench_scope.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "scope/baseline.hpp"
#include "sim/fault.hpp"
#include "spy/verify.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kSteps = 10;
constexpr int kReps = 5;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
  spy::Trace trace;  // populated when record_trace is on
};

RunResult run(bool replicate, double sdc_rate, std::uint64_t seed,
              bool record_trace = false) {
  sim::Machine machine(bench::cluster(kShards));
  sim::FaultConfig fcfg;
  fcfg.seed = seed;
  fcfg.sdc.rate = sdc_rate;
  sim::FaultPlan plan(fcfg);
  if (sdc_rate > 0.0) machine.install_faults(plan);
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  cfg.sdc_replication = replicate;
  cfg.record_trace = record_trace;
  core::DcrRuntime rt(machine, functions, cfg);
  const auto main_fn = apps::make_stencil_app({.cells_per_tile = 500,
                                               .tiles = kShards,
                                               .steps = kSteps,
                                               .use_trace = true,
                                               .residual_every = 1},
                                              fns);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (record_trace && rt.trace() != nullptr) r.trace = *rt.trace();
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

int sweep_overhead(JsonDump& json) {
  bench::header("SDC A", "replication overhead, zero faults (stencil, 64 shards)",
                "only the control-tainted residual chain is duplicated: "
                "makespan overhead <= 10%");
  int rc = 0;
  std::vector<double> wall_off, wall_on;
  SimTime makespan_off = 0, makespan_on = 0;
  core::DcrStats last_on;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult off = run(/*replicate=*/false, 0.0, 0);
    const RunResult on = run(/*replicate=*/true, 0.0, 0);
    DCR_CHECK(off.stats.completed && on.stats.completed);
    wall_off.push_back(off.wall_ms);
    wall_on.push_back(on.wall_ms);
    makespan_off = off.stats.makespan;
    makespan_on = on.stats.makespan;
    last_on = on.stats;
  }
  const double overhead_pct =
      (static_cast<double>(makespan_on) / static_cast<double>(makespan_off) - 1.0) *
      100.0;

  bench::Table table("reps");
  table.add_series("off_us");
  table.add_series("on_us");
  table.add_series("overhead_%");
  table.add_series("tickets");
  table.add_series("replicas");
  table.add_row(static_cast<double>(kReps),
                {static_cast<double>(makespan_off) / 1e3,
                 static_cast<double>(makespan_on) / 1e3, overhead_pct,
                 static_cast<double>(last_on.sdc_tickets),
                 static_cast<double>(last_on.sdc_replicas_issued)});
  table.print();
  if (overhead_pct > 10.0) {
    std::printf("  !! replication overhead %.2f%% exceeds the 10%% budget\n",
                overhead_pct);
    rc = 1;
  }
  if (last_on.sdc_corruptions_injected != 0 || last_on.sdc_corruptions_detected != 0) {
    std::printf("  !! fault-free run reports corruption activity\n");
    rc = 1;
  }
  json.record("sdc_overhead",
              {{"shards", static_cast<double>(kShards)},
               {"makespan_off_us", static_cast<double>(makespan_off) / 1e3},
               {"makespan_on_us", static_cast<double>(makespan_on) / 1e3},
               {"overhead_pct", overhead_pct},
               {"tainted_ops", static_cast<double>(last_on.sdc_tainted_ops)},
               {"tickets", static_cast<double>(last_on.sdc_tickets)},
               {"replicas_issued", static_cast<double>(last_on.sdc_replicas_issued)},
               {"wall_off_ms_min", min_of(wall_off)},
               {"wall_on_ms_min", min_of(wall_on)}});
  return rc;
}

int sweep_detection(JsonDump& json) {
  bench::header("SDC B", "detection + healing under seeded injection",
                ">= 99% of injected corruptions detected and healed; no "
                "determinism-violation aborts");
  int rc = 0;
  bench::Table table("rate_%");
  table.add_series("injected");
  table.add_series("detected");
  table.add_series("healed_quorums");
  table.add_series("rounds");
  table.add_series("detect_%");
  std::uint64_t injected_total = 0, detected_total = 0;
  for (const double rate : {0.01, 0.02, 0.05}) {
    std::uint64_t injected = 0, detected = 0, healed = 0, rounds = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const RunResult r = run(/*replicate=*/true, rate, 0x5dc0 + seed);
      if (!r.stats.completed) {
        std::printf("  !! rate %.2f seed %llu: did not complete (%s)\n", rate,
                    static_cast<unsigned long long>(seed),
                    r.stats.abort_message.c_str());
        rc = 1;
        continue;
      }
      if (r.stats.determinism_violation) {
        std::printf("  !! rate %.2f seed %llu: determinism violation\n", rate,
                    static_cast<unsigned long long>(seed));
        rc = 1;
      }
      injected += r.stats.sdc_corruptions_injected;
      detected += r.stats.sdc_corruptions_detected;
      healed += r.stats.sdc_corruptions_healed;
      rounds += r.stats.sdc_quorum_rounds;
    }
    const double pct =
        injected > 0 ? 100.0 * static_cast<double>(detected) / static_cast<double>(injected)
                     : 100.0;
    table.add_row(rate * 100.0,
                  {static_cast<double>(injected), static_cast<double>(detected),
                   static_cast<double>(healed), static_cast<double>(rounds), pct});
    // Unique per rate: the baseline watchdog matches records by sweep name.
    json.record("sdc_detection_r" + std::to_string(static_cast<int>(rate * 100)),
                {{"rate", rate},
                 {"injected", static_cast<double>(injected)},
                 {"detected", static_cast<double>(detected)},
                 {"healed_quorums", static_cast<double>(healed)},
                 {"rounds", static_cast<double>(rounds)},
                 {"detect_pct", pct}});
    injected_total += injected;
    detected_total += detected;
  }
  table.print();
  if (injected_total == 0 ||
      static_cast<double>(detected_total) <
          0.99 * static_cast<double>(injected_total)) {
    std::printf("  !! detection below the 99%% acceptance bar (%llu / %llu)\n",
                static_cast<unsigned long long>(detected_total),
                static_cast<unsigned long long>(injected_total));
    rc = 1;
  }
  return rc;
}

int sweep_equivalence(JsonDump& json) {
  bench::header("SDC C", "task-graph equivalence (spy audit)",
                "replication on — even while healing corruption — realizes "
                "exactly the replication-off task graph");
  int rc = 0;
  const RunResult off = run(/*replicate=*/false, 0.0, 0, /*record_trace=*/true);
  const RunResult on_clean = run(/*replicate=*/true, 0.0, 0, /*record_trace=*/true);
  const RunResult on_faulty =
      run(/*replicate=*/true, 0.05, 0x5dc0, /*record_trace=*/true);
  DCR_CHECK(off.stats.completed && on_clean.stats.completed &&
            on_faulty.stats.completed);
  std::string why;
  const bool eq_clean = spy::graph_equivalent(off.trace, on_clean.trace, &why);
  if (!eq_clean) std::printf("  !! clean equivalence: %s\n", why.c_str());
  const bool eq_faulty = spy::graph_equivalent(off.trace, on_faulty.trace, &why);
  if (!eq_faulty) std::printf("  !! faulty equivalence: %s\n", why.c_str());
  std::printf("  off vs on(clean):  %s (%zu tasks, %zu edges)\n",
              eq_clean ? "equivalent" : "DIFFER", off.trace.tasks.size(),
              off.trace.edges.size());
  std::printf("  off vs on(healed): %s (%llu corruptions healed in the on-run)\n",
              eq_faulty ? "equivalent" : "DIFFER",
              static_cast<unsigned long long>(
                  on_faulty.stats.sdc_corruptions_healed));
  if (!eq_clean || !eq_faulty) rc = 1;
  json.record("sdc_equivalence",
              {{"tasks", static_cast<double>(off.trace.tasks.size())},
               {"edges", static_cast<double>(off.trace.edges.size())},
               {"equivalent_clean", eq_clean ? 1.0 : 0.0},
               {"equivalent_healed", eq_faulty ? 1.0 : 0.0},
               {"healed_in_on_run",
                static_cast<double>(on_faulty.stats.sdc_corruptions_healed)}});
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_sdc.json");
  int rc = 0;
  rc |= sweep_overhead(json);
  rc |= sweep_detection(json);
  rc |= sweep_equivalence(json);
  json.close();
  std::printf("\nwrote BENCH_sdc.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_sdc.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
