// Ablations of the design choices DESIGN.md calls out (paper §4.1):
//
//  A. Fence elision — "in the common case of data parallel operations, we
//     can prove that all dependences are shard-local and therefore the
//     cross-shard fences can be elided, which avoids unnecessary
//     synchronization."  We re-run the stencil with every coarse dependence
//     promoted to a fence and measure the slowdown and fence-count blowup.
//
//  B. Sharding-function choice (Figures 10/11) — "A good sharding function
//     assigns tasks near where they will execute, while a poor choice may
//     require significant movement of meta-data."  Blocked vs cyclic
//     sharding on the circuit app: cyclic destroys locality, so halo bytes
//     and makespan rise.
//
//  C. Group launches (paper §2) — "consecutive independent tasks ... can be
//     aggregated into group tasks that can be launched and analyzed more
//     efficiently as a single operation."  One index launch per step vs one
//     single-task launch per tile: coarse-stage cost goes from O(1) to O(N)
//     per step and fences multiply.
#include <cstdio>

#include "apps/circuit.hpp"
#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

// -------------------------------------------------------- A: fence elision

void ablation_fence_elision() {
  bench::header("Ablation A", "fence elision on/off (1-D stencil, 16 nodes)",
                "without elision every coarse dependence becomes an O(log N) collective");
  for (bool disable : {false, true}) {
    sim::Machine machine(bench::cluster(16));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    core::DcrConfig cfg;
    cfg.disable_fence_elision = disable;
    bench::apply_flags(g_flags, cfg);
    core::DcrRuntime rt(machine, functions, cfg);
    const auto stats = rt.execute(apps::make_stencil_app(
        {.cells_per_tile = 2000, .tiles = 16, .steps = 30}, fns));
    std::printf("  elision %-3s: makespan %10.3f us, fences %4llu, elided %4llu\n",
                disable ? "off" : "on", static_cast<double>(stats.makespan) / 1e3,
                static_cast<unsigned long long>(stats.fences_inserted),
                static_cast<unsigned long long>(stats.fences_elided));
  }
}

// ---------------------------------------------------- B: sharding function

void ablation_sharding() {
  bench::header("Ablation B", "blocked vs cyclic sharding (circuit, 16 nodes)",
                "cyclic sharding scatters neighbouring pieces across nodes: more bytes moved");
  for (ShardingId sharding :
       {core::ShardingRegistry::blocked(), core::ShardingRegistry::cyclic()}) {
    sim::Machine machine(bench::cluster(16));
    core::FunctionRegistry functions;
    const auto fns = apps::register_circuit_functions(functions, 2.0);
    core::DcrConfig dcfg;
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    // 4x overdecomposition: with one piece per shard the two shardings
    // coincide; with four, blocked keeps neighbours on one node while cyclic
    // scatters them.
    apps::CircuitConfig cfg{.nodes_per_piece = 5000, .wires_per_piece = 20000,
                            .pieces = 64, .steps = 10};
    cfg.sharding = sharding;
    const auto stats = rt.execute(apps::make_circuit_app(cfg, fns));
    std::printf("  %-8s: makespan %10.3f us, halo bytes %8.1f KB, messages %llu\n",
                sharding == core::ShardingRegistry::blocked() ? "blocked" : "cyclic",
                static_cast<double>(stats.makespan) / 1e3,
                static_cast<double>(stats.bytes_moved) / 1024.0,
                static_cast<unsigned long long>(stats.messages));
  }
}

// ------------------------------------------------------- C: group launches

void ablation_group_launches() {
  bench::header("Ablation C", "group launch vs per-tile single launches (16 nodes)",
                "single launches make the coarse stage O(N) per step and fence per task");
  const std::size_t tiles = 16, steps = 20;
  // Group-launch version: the normal stencil app.
  {
    sim::Machine machine(bench::cluster(16));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    core::DcrConfig dcfg;
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute(apps::make_stencil_app(
        {.cells_per_tile = 2000, .tiles = tiles, .steps = steps}, fns));
    std::printf("  group launches : makespan %10.3f us, ops %4llu, analysis busy %8.3f us\n",
                static_cast<double>(stats.makespan) / 1e3,
                static_cast<unsigned long long>(stats.ops_issued),
                static_cast<double>(stats.analysis_busy) / 1e3);
  }
  // Ungrouped version: one single-task launch per tile per phase.
  {
    sim::Machine machine(bench::cluster(16));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    core::DcrConfig dcfg;
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute([&](core::Context& ctx) {
      using namespace rt;
      FieldSpaceId fs = ctx.create_field_space();
      const FieldId state = ctx.allocate_field(fs, 8, "state");
      const RegionTreeId tree =
          ctx.create_region(Rect::r1(0, 2000 * static_cast<std::int64_t>(tiles) - 1), fs);
      const PartitionId owned = ctx.partition_equal(ctx.root(tree), tiles);
      ctx.fill(ctx.root(tree), {state});
      for (std::size_t t = 0; t < steps; ++t) {
        for (std::size_t i = 0; i < tiles; ++i) {
          core::TaskLaunch launch;
          launch.fn = fns.add_one;
          launch.requirements.push_back(rt::Requirement{
              ctx.forest().subregion(owned, i), {state}, Privilege::ReadWrite, 0});
          ctx.launch(launch);
        }
      }
      ctx.execution_fence();
    });
    std::printf("  single launches: makespan %10.3f us, ops %4llu, analysis busy %8.3f us\n",
                static_cast<double>(stats.makespan) / 1e3,
                static_cast<unsigned long long>(stats.ops_issued),
                static_cast<double>(stats.analysis_busy) / 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  ablation_fence_elision();
  ablation_sharding();
  ablation_group_launches();
  return 0;
}
