// Figure 19: logistic regression in Legate NumPy vs Dask (paper §5.4).
//
// The identical ndarray program runs on DCR (Legate, CPU and GPU cost
// models) and on the centralized executor with Dask-like per-task overheads.
// Expected shape: Dask leads or ties at 1 socket, then falls behind and
// decays as the centralized scheduler saturates; Legate scales, GPU above
// CPU; paper reports Legate CPU 11.4x faster than Dask at 32 nodes.
#include "apps/legate/solvers.hpp"
#include "baselines/central.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;
using apps::legate::LogisticRegressionConfig;

constexpr std::size_t kIters = 10;
constexpr std::uint64_t kSamplesPerSocket = 500'000;
constexpr std::uint64_t kFeatures = 32;

double legate_throughput(std::size_t sockets, double ns_per_elem) {
  LogisticRegressionConfig cfg{.samples_per_piece = kSamplesPerSocket,
                               .features = kFeatures, .iterations = kIters};
  core::FunctionRegistry functions;
  const auto fns = apps::legate::register_legate_functions(functions, ns_per_elem);
  sim::Machine machine(bench::cluster(sockets));
  core::DcrConfig dcfg;
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats = rt.execute(apps::legate::make_logistic_regression(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  return bench::per_second(static_cast<double>(kIters), stats.makespan);
}

double dask_throughput(std::size_t sockets, double ns_per_elem) {
  LogisticRegressionConfig cfg{.samples_per_piece = kSamplesPerSocket,
                               .features = kFeatures, .iterations = kIters,
                               .pieces = sockets};  // Dask users pick the chunking
  core::FunctionRegistry functions;
  const auto fns = apps::legate::register_legate_functions(functions, ns_per_elem);
  sim::Machine machine(bench::cluster(sockets));
  baselines::CentralConfig ccfg;
  ccfg.analysis_cost_per_task = ms(1);  // Dask scheduler: ~1 ms per task
  ccfg.issue_cost = us(2);
  baselines::CentralRuntime rt(machine, functions, ccfg);
  return bench::per_second(static_cast<double>(kIters),
                           rt.execute(apps::legate::make_logistic_regression(cfg, fns))
                               .makespan);
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 19", "Legate logistic regression vs Dask (iterations/s)",
                "Dask decays past a few sockets; Legate-CPU ~10x Dask at 32; GPU above CPU");
  bench::Table table("sockets");
  table.add_series("legate_cpu");
  table.add_series("legate_gpu");
  table.add_series("dask_cpu");
  for (std::size_t sockets : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    table.add_row(static_cast<double>(sockets),
                  {legate_throughput(sockets, /*CPU*/ 1.0),
                   legate_throughput(sockets, /*GPU*/ 0.05),
                   dask_throughput(sockets, 1.0)});
  }
  table.print();
  return 0;
}
