// Figure 14: weak scaling of Pennant vs. MPI (paper §5.1).
//
// Five series on DGX-1V-style nodes (8 GPUs each): MPI CPU-only, MPI+CUDA
// (host-staged halos), MPI+CUDA+GPUDirect, Legion without control
// replication, and Legion with DCR.  Expected shape: CPU-only far below;
// no-CR stops scaling quickly; DCR beats MPI+CUDA (one process per node +
// locality-aware sharding keeps halos on NVLink) and lands within ~15% of
// MPI+CUDA+GPUDirect; the two fastest dip at scale from the global dt
// collective that blocks downstream work.
#include "apps/pennant.hpp"
#include "baselines/central.hpp"
#include "baselines/mpi.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

constexpr std::size_t kGpusPerNode = 8;
constexpr std::size_t kCycles = 10;
constexpr std::int64_t kZonesPerGpu = 2'000'000;
constexpr double kNsPerZone = 10.0;

double dcr_throughput(std::size_t nodes, bool no_cr) {
  const std::size_t gpus = nodes * kGpusPerNode;
  // Legion Pennant overdecomposes (2 pieces per GPU) to give the mapper
  // latitude; the explicit MPI code runs exactly one rank per GPU.
  apps::PennantConfig cfg{.zones_per_piece = kZonesPerGpu / 2, .pieces = 2 * gpus,
                          .cycles = kCycles};
  core::FunctionRegistry functions;
  const auto fns = apps::register_pennant_functions(functions, kNsPerZone);
  sim::Machine machine(bench::cluster(nodes, kGpusPerNode));
  SimTime makespan;
  if (no_cr) {
    baselines::CentralConfig ccfg;
    // Unstructured multi-requirement launches sit at the expensive end of
    // Legion's dynamic analysis.
    ccfg.analysis_cost_per_task = us(100);
    baselines::CentralRuntime rt(machine, functions, ccfg);
    makespan = rt.execute(apps::make_pennant_app(cfg, fns)).makespan;
  } else {
    core::DcrConfig dcfg;  // one shard per node, as in the paper
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute(apps::make_pennant_app(cfg, fns));
    DCR_CHECK(stats.completed && !stats.determinism_violation);
    makespan = stats.makespan;
  }
  return bench::per_second(static_cast<double>(kCycles), makespan);
}

double mpi_throughput(std::size_t nodes, const baselines::MpiPennantConfig& variant) {
  const std::size_t ranks = nodes * kGpusPerNode;
  sim::Machine machine(bench::cluster(nodes, kGpusPerNode));
  baselines::MpiPennantConfig cfg = variant;
  cfg.zones_per_rank = kZonesPerGpu;
  cfg.cycles = kCycles;
  cfg.compute_ns_per_zone = 3.6 * kNsPerZone;  // identical kernels to the Legion phases
  cfg.halo_bytes = 256 * 1024;
  return baselines::run_mpi_pennant(machine, ranks, cfg).throughput_iters_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 14", "Pennant weak scaling vs MPI (iterations/s, 8 GPUs/node)",
                "CPU-only lowest; no-CR stops scaling; DCR > MPI+CUDA, within ~15% of "
                "MPI+CUDA+GPUDirect; leaders dip at scale from the blocking dt collective");
  bench::Table table("nodes");
  table.add_series("mpi_cpu");
  table.add_series("mpi_cuda");
  table.add_series("mpi_gpudirect");
  table.add_series("legion_no_cr");
  table.add_series("legion_dcr");
  for (std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    table.add_row(static_cast<double>(nodes),
                  {mpi_throughput(nodes, baselines::mpi_pennant_cpu()),
                   mpi_throughput(nodes, baselines::mpi_pennant_cuda()),
                   mpi_throughput(nodes, baselines::mpi_pennant_gpudirect()),
                   dcr_throughput(nodes, /*no_cr=*/true),
                   dcr_throughput(nodes, /*no_cr=*/false)});
  }
  table.print();
  return 0;
}
