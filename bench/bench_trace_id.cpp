// Automatic trace identification: replay savings without hand windowing.
//
// The stencil's phase-changing mode alternates two loop-body shapes every
// `phase_every` steps, so one hand-placed window per phase (StencilConfig::
// use_trace) is the best a programmer can do.  The auto detector sees the
// same launch stream with no annotations; after a couple of phase cycles it
// locks onto the full A+B cycle as one maximal repeat and replays it end to
// end, phase transitions included.
//
// As in bench_template, capture/validation iterations pay full price, so the
// steady-state per-iteration analysis time is isolated by differencing runs
// at N and 2N timesteps:
//
//   per_iter = (analysis_busy(2N) - analysis_busy(N)) / N
//
// with N a whole number of phase cycles so both runs see the same phase mix.
// Reported at {16, 64} shards in three modes: untraced, hand-windowed, and
// auto-detected.  Acceptance bar: the auto speedup reaches >= 80% of the
// hand-windowed speedup at 64 shards.  Results go to BENCH_traceid.json;
// --check-baseline FILE diffs a fresh run against the committed baseline.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "scope/baseline.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShardCounts[] = {16, 64};
constexpr std::size_t kPhaseEvery = 8;  // steps per phase; a cycle is 2x this
// Six full phase cycles: the detector needs ~4.5 cycles to detect, capture,
// and validate the cycle-level repeat, so steps N..2N are pure replay.
constexpr std::size_t kBaseSteps = 12 * kPhaseEvery;

enum class Mode { kOff, kHand, kAuto };

core::DcrStats run(std::size_t shards, std::size_t steps, Mode mode) {
  sim::Machine machine(bench::cluster(shards));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  if (mode == Mode::kAuto) {
    cfg.auto_trace.enabled = true;
    cfg.auto_trace.min_period = 2;
    cfg.auto_trace.probe = 6;
    cfg.auto_trace.promote_periods = 1;
  }
  core::DcrRuntime rt(machine, functions, cfg);
  apps::StencilConfig scfg{.cells_per_tile = 500, .tiles = shards, .steps = steps};
  scfg.phase_every = kPhaseEvery;
  scfg.use_trace = (mode == Mode::kHand);
  return rt.execute(apps::make_stencil_app(scfg, fns));
}

// Steady-state analysis time per timestep, in simulated microseconds.  The
// 2N-run stats are also returned so the caller can report replay counters.
double per_iter_us(std::size_t shards, Mode mode, bool* ok, core::DcrStats* big) {
  const core::DcrStats a = run(shards, kBaseSteps, mode);
  const core::DcrStats b = run(shards, 2 * kBaseSteps, mode);
  *ok = a.completed && b.completed;
  if (big != nullptr) *big = b;
  const double delta = static_cast<double>(b.analysis_busy) -
                       static_cast<double>(a.analysis_busy);
  return delta / static_cast<double>(kBaseSteps) / 1000.0;  // ns -> us
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_traceid.json");
  bench::header("TraceId",
                "auto-detected vs hand-windowed replay (phase-changing stencil)",
                "the detector promotes the repeating phase cycle without "
                "annotations; expect >= 80% of the hand-windowed speedup at "
                "64 shards");
  bench::Table table("shards");
  table.add_series("off_us/iter");
  table.add_series("hand_us/iter");
  table.add_series("auto_us/iter");
  table.add_series("hand_speedup");
  table.add_series("auto_speedup");
  table.add_series("auto/hand");
  int rc = 0;
  for (std::size_t shards : kShardCounts) {
    bool ok_off = false, ok_hand = false, ok_auto = false;
    core::DcrStats auto_big;
    const double off = per_iter_us(shards, Mode::kOff, &ok_off, nullptr);
    const double hand = per_iter_us(shards, Mode::kHand, &ok_hand, nullptr);
    const double autod = per_iter_us(shards, Mode::kAuto, &ok_auto, &auto_big);
    if (!ok_off || !ok_hand || !ok_auto) {
      std::printf("  !! %zu shards: run did not complete\n", shards);
      rc = 1;
      continue;
    }
    const double hand_speedup = hand > 0.0 ? off / hand : 0.0;
    const double auto_speedup = autod > 0.0 ? off / autod : 0.0;
    const double ratio = hand_speedup > 0.0 ? auto_speedup / hand_speedup : 0.0;
    table.add_row(static_cast<double>(shards),
                  {off, hand, autod, hand_speedup, auto_speedup, ratio});
    // Unique sweep name per shard count: the baseline watchdog matches
    // records by name, so duplicates would diff against the wrong row.
    json.record("traceid_analysis_" + std::to_string(shards),
                {{"shards", static_cast<double>(shards)},
                 {"off_analysis_us_per_iter", off},
                 {"hand_analysis_us_per_iter", hand},
                 {"auto_analysis_us_per_iter", autod},
                 {"hand_speedup", hand_speedup},
                 {"auto_speedup", auto_speedup},
                 {"auto_vs_hand", ratio},
                 {"auto_promotions", static_cast<double>(auto_big.auto_trace_promotions)},
                 {"auto_demotions", static_cast<double>(auto_big.auto_trace_demotions)},
                 {"auto_windows", static_cast<double>(auto_big.auto_trace_windows)},
                 {"auto_replays", static_cast<double>(auto_big.template_replays)},
                 {"auto_traced_ops", static_cast<double>(auto_big.traced_ops)}});
    if (auto_big.auto_trace_promotions == 0) {
      std::printf("  !! %zu shards: the detector promoted nothing\n", shards);
      rc = 1;
    }
    if (shards == 64 && ratio < 0.8) {
      std::printf("  !! 64 shards: auto speedup %.2fx is %.0f%% of the "
                  "hand-windowed %.2fx (bar: 80%%)\n",
                  auto_speedup, ratio * 100.0, hand_speedup);
      rc = 1;
    }
  }
  table.print();
  json.close();
  std::printf("\nwrote BENCH_traceid.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_traceid.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
