// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary regenerates one figure of the paper's evaluation (§5): it
// sweeps the same x-axis (nodes/GPUs), runs each system configuration on the
// simulated machine, and prints the series as an aligned table.  Absolute
// numbers live in virtual time and are not expected to match the authors'
// testbeds; EXPERIMENTS.md records the shape comparison.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dcr/runtime.hpp"
#include "sim/machine.hpp"

namespace dcr::bench {

// CLI flags shared by every figure bench.  --profile records dcr-prof spans
// in the DCR runs; --scope additionally turns on dcr-scope causal tracing
// (which needs the prof ledger, so it implies --profile).  Both are
// host-side only: neither perturbs virtual time, so flagged runs report the
// same makespans as bare ones.  --backend=sim|threads selects the execution
// backend for the DCR series where the bench supports it: `sim` (default)
// runs the discrete-event simulator in virtual time; `threads` runs each
// shard as a real OS thread (exec::ThreadRuntime) and reports wall-clock
// nanoseconds instead of modeled time.
struct Flags {
  bool profile = false;
  bool scope = false;
  std::string backend = "sim";
};

inline Flags parse_flags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      f.profile = true;
    } else if (std::strcmp(argv[i], "--scope") == 0) {
      f.scope = true;
      f.profile = true;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      f.backend = argv[i] + 10;
      if (f.backend != "sim" && f.backend != "threads") {
        std::fprintf(stderr, "%s: unknown backend '%s' (supported: sim threads)\n",
                     argv[0], f.backend.c_str());
        f.backend = "sim";
      }
    } else {
      std::fprintf(stderr,
                   "%s: unknown flag %s (supported: --profile --scope"
                   " --backend=sim|threads)\n",
                   argv[0], argv[i]);
    }
  }
  return f;
}

inline void apply_flags(const Flags& f, core::DcrConfig& cfg) {
  cfg.profile = cfg.profile || f.profile;
  cfg.scope = cfg.scope || f.scope;
}

// The cluster model used by all figures: 1 us wire latency, 10 GB/s NIC
// bandwidth (Infiniband EDR-class), 50 ns intra-node hops.
inline sim::MachineConfig cluster(std::size_t nodes, std::size_t procs_per_node = 1) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = procs_per_node,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

class Table {
 public:
  explicit Table(std::string x_label) { columns_.push_back(std::move(x_label)); }

  void add_series(std::string name) { columns_.push_back(std::move(name)); }

  void add_row(double x, const std::vector<double>& values) {
    rows_.push_back({x, values});
  }

  void print(const char* value_format = "%14.4g") const {
    std::printf("%-12s", columns_[0].c_str());
    for (std::size_t c = 1; c < columns_.size(); ++c) {
      std::printf("%14s", columns_[c].c_str());
    }
    std::printf("\n");
    for (const auto& [x, values] : rows_) {
      std::printf("%-12.0f", x);
      for (double v : values) std::printf(value_format, v);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

inline void header(const char* figure, const char* title, const char* expectation) {
  std::printf("\n=== %s: %s ===\n", figure, title);
  std::printf("--- expected shape: %s\n", expectation);
}

// iterations (or other work units) per second of virtual time.
inline double per_second(double units, SimTime makespan) {
  return units / (static_cast<double>(makespan) * 1e-9);
}

}  // namespace dcr::bench
