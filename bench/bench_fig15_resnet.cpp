// Figure 15: ResNet-50 training, FlexFlow-on-Legion vs TensorFlow (paper
// §5.1).  Data parallelism, batch 64/GPU, Summit-style nodes (6 GPUs each).
//
// Expected shape: per-epoch time drops ~linearly with GPUs for TensorFlow
// and for FlexFlow with DCR (near-identical curves out to 768 GPUs);
// FlexFlow *without* control replication stops scaling around 48 GPUs as
// the centralized analysis of per-layer launches saturates.
#include "apps/nn.hpp"
#include "baselines/central.hpp"
#include "baselines/tf.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

constexpr std::size_t kGpusPerNode = 6;
constexpr std::size_t kImagenet = 1'281'167;  // images per epoch
constexpr std::size_t kBatchPerGpu = 64;
constexpr std::size_t kSimIters = 3;  // measured slice, extrapolated to an epoch

double epoch_minutes(SimTime per_iter, std::size_t gpus) {
  const double iters_per_epoch =
      static_cast<double>(kImagenet) / static_cast<double>(kBatchPerGpu * gpus);
  return static_cast<double>(per_iter) * 1e-9 * iters_per_epoch / 60.0;
}

SimTime flexflow_iter(std::size_t gpus, bool no_cr) {
  const std::size_t nodes = (gpus + kGpusPerNode - 1) / kGpusPerNode;
  const std::size_t procs = std::min(gpus, kGpusPerNode);
  apps::TrainConfig cfg;
  cfg.gpus = gpus;
  cfg.iterations = kSimIters;
  cfg.net = bench::cluster(1).network;
  core::FunctionRegistry functions;
  const auto fns = apps::register_train_functions(functions);
  const auto spec = apps::NetworkSpec::resnet50();
  sim::Machine machine(bench::cluster(nodes, procs));
  SimTime makespan;
  if (no_cr) {
    baselines::CentralConfig ccfg;
    ccfg.analysis_cost_per_task = us(60);
    baselines::CentralRuntime rt(machine, functions, ccfg);
    makespan = rt.execute(apps::make_train_app(spec, cfg, fns)).makespan;
  } else {
    core::DcrConfig dcfg;
    dcfg.shards_per_node = procs;  // one shard per GPU
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute(apps::make_train_app(spec, cfg, fns));
    DCR_CHECK(stats.completed && !stats.determinism_violation);
    makespan = stats.makespan;
  }
  return makespan / kSimIters;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 15", "ResNet-50 per-epoch training time (minutes)",
                "TF and FlexFlow+DCR nearly identical, scaling to 768 GPUs; "
                "FlexFlow without CR stops scaling around 48 GPUs");
  bench::Table table("gpus");
  table.add_series("tensorflow");
  table.add_series("ff_no_cr");
  table.add_series("ff_dcr");
  const auto spec = apps::NetworkSpec::resnet50();
  baselines::TfConfig tf;
  tf.net = bench::cluster(1).network;
  for (std::size_t gpus : {1u, 3u, 6u, 12u, 24u, 48u, 96u, 192u, 384u, 768u}) {
    const SimTime tf_iter = baselines::tf_training_time(spec, gpus, 1, tf);
    table.add_row(static_cast<double>(gpus),
                  {epoch_minutes(tf_iter, gpus),
                   epoch_minutes(flexflow_iter(gpus, /*no_cr=*/true), gpus),
                   epoch_minutes(flexflow_iter(gpus, /*no_cr=*/false), gpus)});
  }
  table.print();
  return 0;
}
