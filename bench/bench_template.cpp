// Dependence templates: steady-state control-plane savings.
//
// The interesting number is the *per-iteration* analysis time once a template
// is validated and replaying — the capture and validation iterations pay full
// price, so it is isolated by differencing two runs of the same program at
// N and 2N timesteps and dividing by the extra iterations:
//
//   per_iter = (analysis_busy(2N) - analysis_busy(N)) / N
//
// Reported at paper-scale shard counts {16, 64, 256} with templates on
// (StencilConfig::use_trace) and off.  Acceptance bar: >= 3x reduction at 64
// shards.  Results are printed as a table and written to BENCH_template.json.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShardCounts[] = {16, 64, 256};
constexpr std::size_t kBaseSteps = 8;  // both runs reach steady-state replay

core::DcrStats run(std::size_t shards, std::size_t steps, bool templates) {
  sim::Machine machine(bench::cluster(shards));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  core::DcrRuntime rt(machine, functions, cfg);
  apps::StencilConfig scfg{.cells_per_tile = 500, .tiles = shards, .steps = steps};
  scfg.use_trace = templates;
  return rt.execute(apps::make_stencil_app(scfg, fns));
}

// Steady-state analysis time per timestep, in simulated microseconds.
double per_iter_us(std::size_t shards, bool templates, bool* ok) {
  const core::DcrStats a = run(shards, kBaseSteps, templates);
  const core::DcrStats b = run(shards, 2 * kBaseSteps, templates);
  *ok = a.completed && b.completed;
  const double delta = static_cast<double>(b.analysis_busy) -
                       static_cast<double>(a.analysis_busy);
  return delta / static_cast<double>(kBaseSteps) / 1000.0;  // ns -> us
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

}  // namespace

int main() {
  JsonDump json("BENCH_template.json");
  bench::header("Template", "steady-state per-iteration analysis time (stencil)",
                "validated templates replay recorded decisions and skip "
                "re-analysis; expect >= 3x at 64 shards");
  bench::Table table("shards");
  table.add_series("off_us/iter");
  table.add_series("on_us/iter");
  table.add_series("speedup");
  int rc = 0;
  for (std::size_t shards : kShardCounts) {
    bool ok_off = false, ok_on = false;
    const double off = per_iter_us(shards, /*templates=*/false, &ok_off);
    const double on = per_iter_us(shards, /*templates=*/true, &ok_on);
    if (!ok_off || !ok_on) {
      std::printf("  !! %zu shards: run did not complete\n", shards);
      rc = 1;
      continue;
    }
    const double speedup = on > 0.0 ? off / on : 0.0;
    table.add_row(static_cast<double>(shards), {off, on, speedup});
    json.record("template_analysis",
                {{"shards", static_cast<double>(shards)},
                 {"off_analysis_us_per_iter", off},
                 {"on_analysis_us_per_iter", on},
                 {"speedup", speedup}});
    if (shards == 64 && speedup < 3.0) {
      std::printf("  !! 64 shards: speedup %.2fx below the 3x bar\n", speedup);
      rc = 1;
    }
  }
  table.print();
  std::printf("\nwrote BENCH_template.json\n");
  return rc;
}
