// Figure 13: scaling of the circuit simulation benchmark (paper §5.1).
//
//   (a) weak scaling — throughput per node (wires/s): "significantly better
//       with DCR than without"; DCR slightly under SCR to 256 nodes, and at
//       512 nodes DCR edges SCR out as it better analyzes the increasingly
//       complex communication of the small-diameter graph.
//   (b) strong scaling — total throughput (wires/s).
//
// The graph partition (ghost spans) is computed dynamically from the
// replicated RNG — the property that makes this app hard for static
// approaches.
#include <cstdio>
#include <fstream>

#include "apps/circuit.hpp"
#include "baselines/central.hpp"
#include "baselines/scr.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "scope/report.hpp"

namespace {

using namespace dcr;
using apps::CircuitConfig;

constexpr double kNsPerElem = 5.0;
constexpr std::size_t kSteps = 10;

// --profile: record dcr-prof spans in the DCR runs and dump the 64-node weak
// scaling run as Chrome trace JSON (fig13_circuit_64.prof.json, Perfetto).
// --scope: additionally trace causality and dump that run's fence blame
// report (fig13_circuit_64.blame.json).
bench::Flags g_flags;

SimTime run_dcr(std::size_t nodes, const CircuitConfig& cfg, bool scr) {
  sim::Machine machine(bench::cluster(nodes));
  core::FunctionRegistry functions;
  const auto fns = apps::register_circuit_functions(functions, kNsPerElem);
  core::DcrConfig dcfg = scr ? baselines::scr_config() : core::DcrConfig{};
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats = rt.execute(apps::make_circuit_app(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  if (g_flags.profile && !scr && nodes == 64) {
    std::ofstream out("fig13_circuit_64.prof.json");
    rt.profiler().write_chrome_trace(out);
    std::printf("  [prof] 64-node DCR run: %zu spans -> fig13_circuit_64.prof.json\n",
                rt.profiler().spans().size());
  }
  if (g_flags.scope && !scr && nodes == 64) {
    const scope::BlameReport blame = scope::build_blame(*rt.scope(), rt.profiler());
    std::ofstream out("fig13_circuit_64.blame.json");
    scope::write_blame_json(out, blame);
    std::printf("  [scope] 64-node DCR run: %zu fences, %s"
                " -> fig13_circuit_64.blame.json\n",
                blame.fences.size(),
                blame.reconciled() ? "ledgers reconcile" : "LEDGER MISMATCH");
  }
  return stats.makespan;
}

SimTime run_central(std::size_t nodes, const CircuitConfig& cfg) {
  sim::Machine machine(bench::cluster(nodes));
  core::FunctionRegistry functions;
  const auto fns = apps::register_circuit_functions(functions, kNsPerElem);
  baselines::CentralConfig ccfg;
  ccfg.analysis_cost_per_task = us(20);
  baselines::CentralRuntime rt(machine, functions, ccfg);
  return rt.execute(apps::make_circuit_app(cfg, fns)).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  const std::size_t kScales[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

  bench::header("Figure 13a", "circuit weak scaling (throughput per node, wires/s)",
                "No-CR decays; DCR ~flat, within a few % of SCR");
  {
    bench::Table table("nodes");
    table.add_series("no_cr");
    table.add_series("scr");
    table.add_series("dcr");
    for (std::size_t n : kScales) {
      CircuitConfig cfg{.nodes_per_piece = 20000, .wires_per_piece = 80000, .pieces = n,
                        .steps = kSteps};
      const double wires = static_cast<double>(cfg.wires_per_piece) *
                           static_cast<double>(n) * static_cast<double>(kSteps);
      table.add_row(static_cast<double>(n),
                    {bench::per_second(wires, run_central(n, cfg)) / static_cast<double>(n),
                     bench::per_second(wires, run_dcr(n, cfg, true)) / static_cast<double>(n),
                     bench::per_second(wires, run_dcr(n, cfg, false)) / static_cast<double>(n)});
    }
    table.print();
  }

  bench::header("Figure 13b", "circuit strong scaling (total throughput, wires/s)",
                "all rise then roll over; No-CR first");
  {
    bench::Table table("nodes");
    table.add_series("no_cr");
    table.add_series("scr");
    table.add_series("dcr");
    const std::int64_t total_wires = 1'000'000;
    for (std::size_t n : kScales) {
      CircuitConfig cfg{.nodes_per_piece = total_wires / 4 / static_cast<std::int64_t>(n),
                        .wires_per_piece = total_wires / static_cast<std::int64_t>(n),
                        .pieces = n, .steps = kSteps};
      const double wires = static_cast<double>(total_wires) * static_cast<double>(kSteps);
      table.add_row(static_cast<double>(n),
                    {bench::per_second(wires, run_central(n, cfg)),
                     bench::per_second(wires, run_dcr(n, cfg, true)),
                     bench::per_second(wires, run_dcr(n, cfg, false))});
    }
    table.print();
  }
  return 0;
}
