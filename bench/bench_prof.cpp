// dcr-prof overhead and fidelity: profiling must be effectively free.
//
// Counters are always on (relaxed atomic bumps on the host); the span
// timeline is gated by DcrConfig::profile.  Everything is host-side
// bookkeeping that charges no virtual time, so two invariants must hold:
//
//   1. makespan(profile on) == makespan(profile off)  — bit-identical, the
//      simulated execution cannot observe the profiler;
//   2. wall-clock overhead of profile-on < 5% on the 64-shard stencil
//      (min over interleaved reps, which cancels machine noise).
//
// Plus the acceptance cross-check: the profiler's online fence/elision
// ledger must reproduce the counts the spy trace records for the same run.
// Results go to BENCH_prof.json; exit 1 on any violation.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "spy/trace.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kSteps = 10;
constexpr int kReps = 7;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
  std::uint64_t fences_issued = 0;
  std::uint64_t fences_elided = 0;
  std::uint64_t decisions = 0;
  std::uint64_t spans = 0;
  std::uint64_t spy_issued = 0;
  std::uint64_t spy_elided = 0;
};

RunResult run(bool profile, bool record_trace) {
  sim::Machine machine(bench::cluster(kShards));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  cfg.profile = profile;
  cfg.record_trace = record_trace;
  core::DcrRuntime rt(machine, functions, cfg);
  apps::StencilConfig scfg{.cells_per_tile = 500, .tiles = kShards, .steps = kSteps};
  scfg.use_trace = true;  // steady-state replay, the regime that matters
  const auto main_fn = apps::make_stencil_app(scfg, fns);

  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const prof::Counters& g = rt.profiler().global();
  r.fences_issued = g.get(prof::GlobalCounter::FencesIssued);
  r.fences_elided = g.get(prof::GlobalCounter::FencesElided);
  r.decisions = g.get(prof::GlobalCounter::FenceDecisions);
  r.spans = rt.profiler().spans().size();
  if (const spy::Trace* trace = rt.trace()) {
    for (const auto& d : trace->coarse_deps) (d.elided ? r.spy_elided : r.spy_issued)++;
  }
  DCR_CHECK(r.stats.completed && !r.stats.determinism_violation);
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  JsonDump json("BENCH_prof.json");
  bench::header("Prof", "dcr-prof overhead (stencil, 64 shards, templates on)",
                "profile-on wall time within 5% of profile-off; identical makespan; "
                "fence ledger matches the spy trace");
  int rc = 0;

  // Interleave on/off reps so drift (thermal, scheduler) hits both equally.
  std::vector<double> wall_off, wall_on;
  SimTime makespan_off = 0, makespan_on = 0;
  std::uint64_t spans = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult off = run(/*profile=*/false, /*record_trace=*/false);
    const RunResult on = run(/*profile=*/true, /*record_trace=*/false);
    wall_off.push_back(off.wall_ms);
    wall_on.push_back(on.wall_ms);
    makespan_off = off.stats.makespan;
    makespan_on = on.stats.makespan;
    spans = on.spans;
    if (off.stats.makespan != on.stats.makespan) {
      std::printf("  !! rep %d: makespan differs with profiling on (%llu vs %llu ns)\n",
                  rep, static_cast<unsigned long long>(off.stats.makespan),
                  static_cast<unsigned long long>(on.stats.makespan));
      rc = 1;
    }
  }
  const double off_min = min_of(wall_off), on_min = min_of(wall_on);
  const double overhead_pct = (on_min - off_min) / off_min * 100.0;

  bench::Table table("reps");
  table.add_series("off_ms(min)");
  table.add_series("on_ms(min)");
  table.add_series("off_ms(med)");
  table.add_series("on_ms(med)");
  table.add_series("overhead_%");
  table.add_row(static_cast<double>(kReps),
                {off_min, on_min, median_of(wall_off), median_of(wall_on), overhead_pct});
  table.print();
  std::printf("  makespan %.3f ms (identical on/off: %s), %llu spans recorded\n",
              static_cast<double>(makespan_on) / 1e6,
              makespan_off == makespan_on ? "yes" : "NO",
              static_cast<unsigned long long>(spans));
  if (overhead_pct >= 5.0) {
    std::printf("  !! profiling overhead %.2f%% exceeds the 5%% budget\n", overhead_pct);
    rc = 1;
  }

  // Fidelity: online ledger vs the spy trace of the same (profiled) run.
  const RunResult checked = run(/*profile=*/true, /*record_trace=*/true);
  const bool ledger_ok = checked.fences_issued == checked.spy_issued &&
                         checked.fences_elided == checked.spy_elided &&
                         checked.decisions == checked.spy_issued + checked.spy_elided;
  std::printf("  fence ledger: prof issued=%llu elided=%llu | spy issued=%llu elided=%llu"
              " -> %s\n",
              static_cast<unsigned long long>(checked.fences_issued),
              static_cast<unsigned long long>(checked.fences_elided),
              static_cast<unsigned long long>(checked.spy_issued),
              static_cast<unsigned long long>(checked.spy_elided),
              ledger_ok ? "OK" : "MISMATCH");
  if (!ledger_ok) rc = 1;

  json.record("prof_overhead",
              {{"shards", static_cast<double>(kShards)},
               {"reps", static_cast<double>(kReps)},
               {"wall_off_ms_min", off_min},
               {"wall_on_ms_min", on_min},
               {"wall_off_ms_median", median_of(wall_off)},
               {"wall_on_ms_median", median_of(wall_on)},
               {"overhead_pct", overhead_pct},
               {"makespan_identical", makespan_off == makespan_on ? 1.0 : 0.0},
               {"spans", static_cast<double>(spans)}});
  json.record("prof_fidelity",
              {{"fences_issued", static_cast<double>(checked.fences_issued)},
               {"fences_elided", static_cast<double>(checked.fences_elided)},
               {"fence_decisions", static_cast<double>(checked.decisions)},
               {"spy_issued", static_cast<double>(checked.spy_issued)},
               {"spy_elided", static_cast<double>(checked.spy_elided)},
               {"ledger_ok", ledger_ok ? 1.0 : 0.0}});
  std::printf("\nwrote BENCH_prof.json\n");
  return rc;
}
