// dcr-scope overhead and blame fidelity: causal tracing must be cheap and
// must never perturb the simulated execution.
//
// Tracing (DcrConfig::scope) is host-side bookkeeping that charges no
// virtual time, so two invariants must hold on the 64-shard traced stencil:
//
//   1. makespan(scope on) == makespan(scope off) — bit-identical;
//   2. wall-clock overhead of scope-on < 5% (min over interleaved reps).
//
// Plus the acceptance checks: every complete fence in the blame ledger names
// a releasing shard and span, and the per-shard wait sums reconcile exactly
// with dcr-prof's always-on FenceWaitNs counters (issued + elided ==
// decisions).  Results go to BENCH_scope.json; exit 1 on any violation.
//
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline, as in bench_prof.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "scope/baseline.hpp"
#include "scope/report.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kSteps = 10;
constexpr int kReps = 7;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
  std::size_t fences = 0;
  std::size_t complete = 0;
  std::size_t attributed = 0;
  std::size_t spans = 0;
  bool reconciled = false;
};

RunResult run(bool scope) {
  sim::Machine machine(bench::cluster(kShards));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  cfg.scope = scope;
  core::DcrRuntime rt(machine, functions, cfg);
  apps::StencilConfig scfg{.cells_per_tile = 500, .tiles = kShards, .steps = kSteps};
  scfg.use_trace = true;  // steady-state template replay, the regime that matters
  const auto main_fn = apps::make_stencil_app(scfg, fns);

  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  DCR_CHECK(r.stats.completed && !r.stats.determinism_violation);
  if (scope) {
    // Counters are always on, so the blame report reconciles against them
    // even without DcrConfig::profile.
    const scope::BlameReport blame = scope::build_blame(*rt.scope(), rt.profiler());
    r.fences = blame.fences.size();
    r.complete = blame.complete_fences;
    r.attributed = blame.attributed;
    r.spans = rt.scope()->spans().size();
    r.reconciled = blame.reconciled();
  }
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_scope.json");
  bench::header("Scope", "dcr-scope overhead (stencil, 64 shards, templates on)",
                "scope-on wall time within 5% of scope-off; identical makespan; "
                "every fence attributed; waits reconcile with dcr-prof");
  int rc = 0;

  // Interleave on/off reps so drift (thermal, scheduler) hits both equally.
  std::vector<double> wall_off, wall_on;
  SimTime makespan_off = 0, makespan_on = 0;
  RunResult last_on;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult off = run(/*scope=*/false);
    const RunResult on = run(/*scope=*/true);
    wall_off.push_back(off.wall_ms);
    wall_on.push_back(on.wall_ms);
    makespan_off = off.stats.makespan;
    makespan_on = on.stats.makespan;
    last_on = on;
    if (off.stats.makespan != on.stats.makespan) {
      std::printf("  !! rep %d: makespan differs with tracing on (%llu vs %llu ns)\n",
                  rep, static_cast<unsigned long long>(off.stats.makespan),
                  static_cast<unsigned long long>(on.stats.makespan));
      rc = 1;
    }
  }
  const double off_min = min_of(wall_off), on_min = min_of(wall_on);
  const double overhead_pct = (on_min - off_min) / off_min * 100.0;

  bench::Table table("reps");
  table.add_series("off_ms(min)");
  table.add_series("on_ms(min)");
  table.add_series("off_ms(med)");
  table.add_series("on_ms(med)");
  table.add_series("overhead_%");
  table.add_row(static_cast<double>(kReps),
                {off_min, on_min, median_of(wall_off), median_of(wall_on), overhead_pct});
  table.print();
  std::printf("  makespan %.3f ms (identical on/off: %s)\n",
              static_cast<double>(makespan_on) / 1e6,
              makespan_off == makespan_on ? "yes" : "NO");
  if (overhead_pct >= 5.0) {
    std::printf("  !! tracing overhead %.2f%% exceeds the 5%% budget\n", overhead_pct);
    rc = 1;
  }

  std::printf("  blame: %zu fences (%zu complete, %zu attributed), %zu spans, "
              "ledgers %s\n",
              last_on.fences, last_on.complete, last_on.attributed, last_on.spans,
              last_on.reconciled ? "reconcile" : "DO NOT RECONCILE");
  if (!last_on.reconciled || last_on.attributed != last_on.complete) rc = 1;

  json.record("scope_overhead",
              {{"shards", static_cast<double>(kShards)},
               {"reps", static_cast<double>(kReps)},
               {"wall_off_ms_min", off_min},
               {"wall_on_ms_min", on_min},
               {"wall_off_ms_median", median_of(wall_off)},
               {"wall_on_ms_median", median_of(wall_on)},
               {"overhead_pct", overhead_pct},
               {"makespan_identical", makespan_off == makespan_on ? 1.0 : 0.0}});
  json.record("scope_fidelity",
              {{"fences", static_cast<double>(last_on.fences)},
               {"complete_fences", static_cast<double>(last_on.complete)},
               {"attributed_fences", static_cast<double>(last_on.attributed)},
               {"spans", static_cast<double>(last_on.spans)},
               {"reconciled", last_on.reconciled ? 1.0 : 0.0}});
  json.close();
  std::printf("\nwrote BENCH_scope.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_scope.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
