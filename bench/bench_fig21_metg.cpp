// Figure 21: overhead of the control-determinism checks, measured as
// METG(50%) on the Task Bench stencil with four independent copies (paper
// §5.5), in four configurations: {tracing on/off} x {checks on/off}.
//
// Expected shape: METG grows with node count for every configuration
// (longer-running tasks are needed to hide longer communication latencies);
// tracing lowers METG by an order of magnitude; enabling the determinism
// checks has negligible impact in both cases.
#include "apps/taskbench.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"

namespace {

using namespace dcr;

// --profile records dcr-prof spans in the DCR runs; --scope additionally
// turns on causal tracing.  Host-side only: makespans are unchanged.
bench::Flags g_flags;

SimTime metg(std::size_t nodes, bool trace, bool safe) {
  apps::TaskBenchConfig cfg;
  cfg.width = nodes;
  cfg.steps = 16;
  cfg.copies = 4;
  cfg.use_trace = trace;
  return apps::find_metg(cfg, nodes, [&](const apps::TaskBenchConfig& c) {
    core::FunctionRegistry functions;
    const FunctionId fn = apps::register_taskbench_function(functions);
    sim::Machine machine(bench::cluster(nodes));
    core::DcrConfig dcfg;
    dcfg.determinism_checks = safe;
    bench::apply_flags(g_flags, dcfg);
    core::DcrRuntime rt(machine, functions, dcfg);
    const auto stats = rt.execute(apps::make_taskbench_app(c, fn));
    DCR_CHECK(stats.completed);
    return stats.makespan;
  });
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  bench::header("Figure 21", "METG(50%) of Task Bench stencil x4 (microseconds; lower is better)",
                "METG rises with node count; tracing lowers it substantially; "
                "determinism checks (Safe) add negligible overhead in both configs");
  bench::Table table("nodes");
  table.add_series("notrace_nosafe");
  table.add_series("notrace_safe");
  table.add_series("trace_nosafe");
  table.add_series("trace_safe");
  for (std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    table.add_row(static_cast<double>(nodes),
                  {static_cast<double>(metg(nodes, false, false)) / 1000.0,
                   static_cast<double>(metg(nodes, false, true)) / 1000.0,
                   static_cast<double>(metg(nodes, true, false)) / 1000.0,
                   static_cast<double>(metg(nodes, true, true)) / 1000.0});
  }
  table.print();
  return 0;
}
