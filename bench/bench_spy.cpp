// dcr-spy observability cost: what does full trace recording add?
//
// Trace recording (DcrConfig::record_trace) is host-side only — it charges no
// virtual time — so the interesting number is the *wall-clock* slowdown of
// the simulation itself at paper-scale shard counts {16, 64, 256}, plus the
// trace's size (events, serialized bytes) and the offline verifier's own
// runtime over the recorded trace.
//
// Results are printed as tables and written to BENCH_spy.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "spy/verify.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShardCounts[] = {16, 64, 256};
constexpr int kReps = 3;  // best-of to damp scheduler noise

apps::StencilConfig stencil_for(std::size_t shards) {
  return {.cells_per_tile = 500, .tiles = shards, .steps = 8};
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0.0;
  std::size_t trace_events = 0;
  std::size_t trace_bytes = 0;
  double verify_ms = 0.0;
  std::size_t findings = 0;
};

RunResult run(std::size_t shards, bool record) {
  RunResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Machine machine(bench::cluster(shards));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    core::DcrConfig cfg;
    cfg.record_trace = record;
    core::DcrRuntime rt(machine, functions, cfg);
    const double t0 = now_ms();
    core::DcrStats stats = rt.execute(apps::make_stencil_app(stencil_for(shards), fns));
    const double wall = now_ms() - t0;
    if (rep == 0 || wall < best.wall_ms) {
      best.stats = stats;
      best.wall_ms = wall;
      if (record) {
        best.trace_events = rt.trace()->num_events();
        const std::string jsonl = rt.trace()->to_jsonl();
        best.trace_bytes = jsonl.size();
        const double v0 = now_ms();
        const spy::VerifyReport report = spy::verify(*rt.trace());
        best.verify_ms = now_ms() - v0;
        best.findings = report.findings.size();
      }
    }
  }
  return best;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

}  // namespace

int main() {
  JsonDump json("BENCH_spy.json");
  bench::header("Spy", "trace-recording overhead vs shard count (stencil)",
                "recording costs tens of % host time, flat in shard count; "
                "verify cost is offline");
  bench::Table table("shards");
  table.add_series("base_ms");
  table.add_series("traced_ms");
  table.add_series("overhead_%");
  table.add_series("events");
  table.add_series("kB");
  table.add_series("verify_ms");
  for (std::size_t shards : kShardCounts) {
    const RunResult base = run(shards, /*record=*/false);
    const RunResult traced = run(shards, /*record=*/true);
    if (!base.stats.completed || !traced.stats.completed) {
      std::printf("  !! %zu shards: run did not complete\n", shards);
      continue;
    }
    if (traced.findings != 0) {
      std::printf("  !! %zu shards: verifier reported %zu findings\n", shards,
                  traced.findings);
    }
    const double overhead =
        base.wall_ms > 0.0 ? (traced.wall_ms / base.wall_ms - 1.0) * 100.0 : 0.0;
    const double kb = static_cast<double>(traced.trace_bytes) / 1024.0;
    table.add_row(static_cast<double>(shards),
                  {base.wall_ms, traced.wall_ms, overhead,
                   static_cast<double>(traced.trace_events), kb, traced.verify_ms});
    json.record("trace_overhead",
                {{"shards", static_cast<double>(shards)},
                 {"base_wall_ms", base.wall_ms},
                 {"traced_wall_ms", traced.wall_ms},
                 {"overhead_pct", overhead},
                 {"trace_events", static_cast<double>(traced.trace_events)},
                 {"trace_bytes", static_cast<double>(traced.trace_bytes)},
                 {"verify_ms", traced.verify_ms},
                 {"verify_findings", static_cast<double>(traced.findings)}});
  }
  table.print();
  std::printf("\nwrote BENCH_spy.json\n");
  return 0;
}
