// Static interference analysis: fine-stage savings and decision identity.
//
// Three sweeps on the 64-shard stencil (256 tiles, so every shard owns a fat
// slice of each launch):
//
//  A. Fine-analysis cost, untraced — with statics on, every proven launch
//     charges O(1) fine analysis instead of walking its owned points.
//     Acceptance gate: FineAnalysisNs(off) >= 2x FineAnalysisNs(on), with
//     identical makespan semantics (same fence counts, same task counts, and
//     a makespan no worse than the off-run).
//
//  B. Task-graph equivalence — statics never changes a dependence decision:
//     spy::graph_equivalent between the on- and off-runs, plus a paranoid run
//     with the enumerated oracle armed (DCR_CHECK cross-checks every verdict)
//     that must complete cleanly.
//
//  C. Template interplay, traced — dependence templates already collapse the
//     steady-state cost; statics must still pay off on the untraced fraction
//     (capture/validate iterations) without double-discounting replays.
//
// Results go to BENCH_statics.json; exit 1 on any violation.
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline, as in bench_prof/bench_scope/bench_sdc.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "prof/profiler.hpp"
#include "scope/baseline.hpp"
#include "spy/verify.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kTiles = 4 * kShards;
constexpr std::size_t kSteps = 10;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
  spy::Trace trace;  // populated when record_trace is on
  std::uint64_t fine_ns = 0;
  std::uint64_t fine_points = 0;
  std::uint64_t skip_ops = 0;
  std::uint64_t skip_points = 0;
  std::uint64_t saved_ns = 0;
};

RunResult run(bool statics_on, bool use_trace, bool check = false,
              bool record_trace = false) {
  sim::Machine machine(bench::cluster(kShards));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrConfig cfg;
  cfg.static_analysis = statics_on;
  cfg.statics_check = check;
  cfg.record_trace = record_trace;
  core::DcrRuntime rt(machine, functions, cfg);
  const auto main_fn = apps::make_stencil_app(
      {.cells_per_tile = 64, .tiles = kTiles, .steps = kSteps, .use_trace = use_trace},
      fns);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (record_trace && rt.trace() != nullptr) r.trace = *rt.trace();
  const prof::Profiler& prof = rt.profiler();
  r.fine_ns = prof.total(prof::Counter::FineAnalysisNs);
  r.fine_points = prof.total(prof::Counter::FinePoints);
  r.skip_ops = prof.total(prof::Counter::StaticSkipOps);
  r.skip_points = prof.total(prof::Counter::StaticSkipPoints);
  r.saved_ns = prof.total(prof::Counter::StaticSkipSavedNs);
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

int sweep_fine_cost(JsonDump& json) {
  bench::header("STATICS A", "fine-analysis cost, untraced (stencil, 64 shards)",
                "proven launches charge O(1) fine analysis: "
                "FineAnalysisNs must drop >= 2x with identical decisions");
  int rc = 0;
  const RunResult off = run(/*statics_on=*/false, /*use_trace=*/false);
  const RunResult on = run(/*statics_on=*/true, /*use_trace=*/false);
  DCR_CHECK(off.stats.completed && on.stats.completed);
  const double ratio =
      on.fine_ns > 0 ? static_cast<double>(off.fine_ns) / static_cast<double>(on.fine_ns)
                     : 0.0;

  bench::Table table("config");
  table.add_series("fine_ms");
  table.add_series("makespan_us");
  table.add_series("skip_ops");
  table.add_series("skip_points");
  table.add_row(0, {static_cast<double>(off.fine_ns) / 1e6,
                    static_cast<double>(off.stats.makespan) / 1e3, 0.0, 0.0});
  table.add_row(1, {static_cast<double>(on.fine_ns) / 1e6,
                    static_cast<double>(on.stats.makespan) / 1e3,
                    static_cast<double>(on.skip_ops),
                    static_cast<double>(on.skip_points)});
  table.print();
  std::printf("  fine-analysis reduction: %.2fx (saved %.2f ms virtual)\n", ratio,
              static_cast<double>(on.saved_ns) / 1e6);

  if (ratio < 2.0) {
    std::printf("  !! fine-analysis reduction %.2fx below the 2x acceptance bar\n",
                ratio);
    rc = 1;
  }
  if (on.stats.fences_inserted != off.stats.fences_inserted ||
      on.stats.fences_elided != off.stats.fences_elided ||
      on.stats.point_tasks_launched != off.stats.point_tasks_launched) {
    std::printf("  !! statics changed a decision (fences %llu/%llu vs %llu/%llu)\n",
                static_cast<unsigned long long>(on.stats.fences_inserted),
                static_cast<unsigned long long>(on.stats.fences_elided),
                static_cast<unsigned long long>(off.stats.fences_inserted),
                static_cast<unsigned long long>(off.stats.fences_elided));
    rc = 1;
  }
  if (on.stats.makespan > off.stats.makespan) {
    std::printf("  !! statics-on makespan regressed\n");
    rc = 1;
  }
  json.record("statics_fine_cost",
              {{"shards", static_cast<double>(kShards)},
               {"tiles", static_cast<double>(kTiles)},
               {"fine_ns_off", static_cast<double>(off.fine_ns)},
               {"fine_ns_on", static_cast<double>(on.fine_ns)},
               {"reduction_x", ratio},
               {"skip_ops", static_cast<double>(on.skip_ops)},
               {"skip_points", static_cast<double>(on.skip_points)},
               {"resolved_ops", static_cast<double>(on.stats.statics_resolved_ops)},
               {"unresolved_ops", static_cast<double>(on.stats.statics_unresolved_ops)},
               {"cache_hits", static_cast<double>(on.stats.statics_cache_hits)},
               {"makespan_off_us", static_cast<double>(off.stats.makespan) / 1e3},
               {"makespan_on_us", static_cast<double>(on.stats.makespan) / 1e3},
               {"wall_off_ms", off.wall_ms},
               {"wall_on_ms", on.wall_ms}});
  return rc;
}

int sweep_equivalence(JsonDump& json) {
  bench::header("STATICS B", "task-graph equivalence (spy audit + oracle)",
                "statics on realizes exactly the statics-off task graph; the "
                "paranoid enumerated oracle accepts every verdict");
  int rc = 0;
  const RunResult off =
      run(/*statics_on=*/false, /*use_trace=*/false, false, /*record_trace=*/true);
  const RunResult on =
      run(/*statics_on=*/true, /*use_trace=*/false, false, /*record_trace=*/true);
  // The paranoid run DCR_CHECK-aborts on any unsound verdict.
  const RunResult paranoid = run(/*statics_on=*/true, /*use_trace=*/false,
                                 /*check=*/true);
  DCR_CHECK(off.stats.completed && on.stats.completed && paranoid.stats.completed);
  std::string why;
  const bool eq = spy::graph_equivalent(off.trace, on.trace, &why);
  if (!eq) std::printf("  !! equivalence: %s\n", why.c_str());
  std::printf("  off vs on: %s (%zu tasks, %zu edges); oracle-checked run: %s\n",
              eq ? "equivalent" : "DIFFER", off.trace.tasks.size(),
              off.trace.edges.size(),
              paranoid.stats.completed ? "clean" : "FAILED");
  if (!eq) rc = 1;
  json.record("statics_equivalence",
              {{"tasks", static_cast<double>(off.trace.tasks.size())},
               {"edges", static_cast<double>(off.trace.edges.size())},
               {"equivalent", eq ? 1.0 : 0.0},
               {"oracle_clean", paranoid.stats.completed ? 1.0 : 0.0},
               {"oracle_skip_ops", static_cast<double>(paranoid.skip_ops)}});
  return rc;
}

int sweep_traced(JsonDump& json) {
  bench::header("STATICS C", "template interplay, traced",
                "replays keep their own reduced costs (no double discount); "
                "statics still pays off on capture/validate iterations");
  int rc = 0;
  const RunResult off = run(/*statics_on=*/false, /*use_trace=*/true);
  const RunResult on = run(/*statics_on=*/true, /*use_trace=*/true);
  DCR_CHECK(off.stats.completed && on.stats.completed);
  const double ratio =
      on.fine_ns > 0 ? static_cast<double>(off.fine_ns) / static_cast<double>(on.fine_ns)
                     : 0.0;
  std::printf("  traced fine ns: off %.2f ms, on %.2f ms (%.2fx); replays %llu\n",
              static_cast<double>(off.fine_ns) / 1e6,
              static_cast<double>(on.fine_ns) / 1e6, ratio,
              static_cast<unsigned long long>(on.stats.template_replays));
  if (on.stats.template_replays == 0 || on.skip_ops == 0) {
    std::printf("  !! expected both template replays and static skips\n");
    rc = 1;
  }
  if (ratio < 1.0) {
    std::printf("  !! statics made the traced run's analysis more expensive\n");
    rc = 1;
  }
  if (on.stats.point_tasks_launched != off.stats.point_tasks_launched) {
    std::printf("  !! statics changed the traced run's task count\n");
    rc = 1;
  }
  json.record("statics_traced",
              {{"fine_ns_off", static_cast<double>(off.fine_ns)},
               {"fine_ns_on", static_cast<double>(on.fine_ns)},
               {"reduction_x", ratio},
               {"replays", static_cast<double>(on.stats.template_replays)},
               {"skip_ops", static_cast<double>(on.skip_ops)}});
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_statics.json");
  int rc = 0;
  rc |= sweep_fine_cost(json);
  rc |= sweep_equivalence(json);
  rc |= sweep_traced(json);
  json.close();
  std::printf("\nwrote BENCH_statics.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_statics.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
