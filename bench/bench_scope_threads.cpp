// dcr-scope overhead on the real-threads backend: thread-safe causal tracing
// must be cheap and must never change what executes.
//
// On the simulator the gate is bit-identical makespans; on OS threads the
// makespan is wall-clock and inherently noisy, so the structural gate moves
// to the task graph: the 64-shard traced stencil with tracing on must realize
// a spy-equivalent task graph to the same run with tracing off, and the
// wall-clock overhead of scope-on must stay under 5% (min over interleaved
// reps, which suppresses scheduler noise; the sleep-based offload work model
// from bench_exec keeps the denominator real task time rather than host
// scheduler churn on oversubscribed containers).  Plus the acceptance
// checks: every complete fence in the blame ledger names a releasing shard
// and span, and the per-shard wait sums reconcile *exactly* with dcr-prof's
// FenceWaitNs counters — the same Clock::now() reads feed both ledgers.
// Results go to BENCH_scope_threads.json; exit 1 on any violation.
//
// --check-baseline FILE [--threshold PCT]: regression watchdog against the
// committed baseline (wall-clock fields are machine-dependent and excluded
// from the diff unless --include-wall), as in bench_scope.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "bench/bench_common.hpp"
#include "exec/thread_runtime.hpp"
#include "scope/baseline.hpp"
#include "scope/report.hpp"
#include "spy/verify.hpp"

namespace {

using namespace dcr;

constexpr std::size_t kShards = 64;
constexpr std::size_t kSteps = 10;
constexpr int kReps = 5;

struct RunResult {
  core::DcrStats stats;
  double wall_ms = 0;
  spy::Trace trace;
  std::size_t fences = 0;
  std::size_t complete = 0;
  std::size_t attributed = 0;
  std::size_t spans = 0;
  bool reconciled = false;
};

RunResult run(bool scope, bool record_trace) {
  core::FunctionRegistry functions;
  // 200µs/cell × 64 cells ≈ 12.8ms per point task: the offloaded-kernel
  // sleeps dominate the wall clock, so the overhead ratio measures scope
  // against real task time instead of against control-plane churn alone.
  const auto fns = apps::register_stencil_functions(functions, 200000.0);
  exec::ThreadConfig cfg;
  cfg.num_shards = kShards;
  cfg.work_scale = 1.0;   // wall nanoseconds = modeled nanoseconds
  cfg.work_sleep = true;  // offload model: blocked waits overlap on any host
  cfg.profile = true;
  cfg.scope = scope;
  cfg.record_trace = record_trace;
  exec::ThreadRuntime rt(functions, cfg);
  apps::StencilConfig scfg{.cells_per_tile = 64, .tiles = kShards, .steps = kSteps};
  scfg.use_trace = true;  // steady-state template replay, the regime that matters

  const auto main_fn = apps::make_stencil_app(scfg, fns);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = rt.execute(main_fn);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  DCR_CHECK(r.stats.completed && !r.stats.determinism_violation);
  if (record_trace) r.trace = *rt.trace();
  if (scope) {
    const scope::BlameReport blame = scope::build_blame(*rt.scope(), rt.profiler());
    r.fences = blame.fences.size();
    r.complete = blame.complete_fences;
    r.attributed = blame.attributed;
    r.spans = rt.scope()->spans().size();
    r.reconciled = blame.reconciled();
  }
  return r;
}

// Minimal JSON array-of-objects writer; every record is flat numerics.
class JsonDump {
 public:
  explicit JsonDump(const char* path) : f_(std::fopen(path, "w")) {
    if (f_) std::fprintf(f_, "[\n");
  }
  ~JsonDump() { close(); }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }
  void record(const std::string& sweep,
              const std::vector<std::pair<std::string, double>>& fields) {
    if (!f_) return;
    std::fprintf(f_, "%s  {\"sweep\": \"%s\"", first_ ? "" : ",\n", sweep.c_str());
    for (const auto& [k, v] : fields) {
      std::fprintf(f_, ", \"%s\": %.6g", k.c_str(), v);
    }
    std::fprintf(f_, "}");
    first_ = false;
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    }
  }
  JsonDump json("BENCH_scope_threads.json");
  bench::header("ScopeThreads",
                "dcr-scope overhead on real threads (stencil, 64 shards)",
                "scope-on wall time within 5% of scope-off; spy-identical task "
                "graphs; every fence attributed; waits reconcile with dcr-prof");
  int rc = 0;

  // Structural gate first: with tracing on and off, the realized task graphs
  // are spy-equivalent (the wall-clock analog of "identical makespans").
  {
    const RunResult off = run(/*scope=*/false, /*record_trace=*/true);
    const RunResult on = run(/*scope=*/true, /*record_trace=*/true);
    std::string why;
    const bool same = spy::graph_equivalent(off.trace, on.trace, &why);
    std::printf("  task graphs scope-on vs scope-off: %s\n",
                same ? "spy-equivalent" : why.c_str());
    if (!same) rc = 1;
    json.record("scope_threads_graph",
                {{"shards", static_cast<double>(kShards)},
                 {"graphs_identical", same ? 1.0 : 0.0}});
  }

  // Timed reps without trace recording (it would dominate the wall time).
  // Interleave on/off so drift (thermal, scheduler) hits both equally.
  std::vector<double> wall_off, wall_on;
  RunResult last_on;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult off = run(/*scope=*/false, /*record_trace=*/false);
    const RunResult on = run(/*scope=*/true, /*record_trace=*/false);
    wall_off.push_back(off.wall_ms);
    wall_on.push_back(on.wall_ms);
    last_on = on;
  }
  const double off_min = min_of(wall_off), on_min = min_of(wall_on);
  const double overhead_pct = (on_min - off_min) / off_min * 100.0;

  bench::Table table("reps");
  table.add_series("off_ms(min)");
  table.add_series("on_ms(min)");
  table.add_series("off_ms(med)");
  table.add_series("on_ms(med)");
  table.add_series("overhead_%");
  table.add_row(static_cast<double>(kReps),
                {off_min, on_min, median_of(wall_off), median_of(wall_on), overhead_pct});
  table.print();
  if (overhead_pct >= 5.0) {
    std::printf("  !! tracing overhead %.2f%% exceeds the 5%% budget\n", overhead_pct);
    rc = 1;
  }

  std::printf("  blame: %zu fences (%zu complete, %zu attributed), %zu spans, "
              "wall-clock ledgers %s\n",
              last_on.fences, last_on.complete, last_on.attributed, last_on.spans,
              last_on.reconciled ? "reconcile" : "DO NOT RECONCILE");
  if (!last_on.reconciled || last_on.attributed != last_on.complete) rc = 1;

  json.record("scope_threads_overhead",
              {{"shards", static_cast<double>(kShards)},
               {"reps", static_cast<double>(kReps)},
               {"wall_off_ms_min", off_min},
               {"wall_on_ms_min", on_min},
               {"wall_off_ms_median", median_of(wall_off)},
               {"wall_on_ms_median", median_of(wall_on)},
               {"overhead_pct", overhead_pct}});
  json.record("scope_threads_fidelity",
              {{"fences", static_cast<double>(last_on.fences)},
               {"complete_fences", static_cast<double>(last_on.complete)},
               {"attributed_fences", static_cast<double>(last_on.attributed)},
               {"spans", static_cast<double>(last_on.spans)},
               {"reconciled", last_on.reconciled ? 1.0 : 0.0}});
  json.close();
  std::printf("\nwrote BENCH_scope_threads.json\n");

  if (!baseline_path.empty()) {
    const scope::BaselineDiff d = scope::check_baseline_files(
        baseline_path, "BENCH_scope_threads.json", threshold_pct);
    scope::render_baseline_diff(std::cout, d, threshold_pct);
    if (!d.ok()) rc = 1;
  }
  return rc;
}
