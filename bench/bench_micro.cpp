// Micro-benchmarks (google-benchmark) for the hot paths of the dependence
// analysis: the pairwise oracle, region-tree structural queries, the
// 128-bit call hashing of the determinism checker, the Philox RNG, the
// interval index, and raw DEPrep transition throughput.
#include <benchmark/benchmark.h>

#include "analysis/random_program.hpp"
#include "analysis/semantics.hpp"
#include "common/hash128.hpp"
#include "common/philox.hpp"
#include "runtime/interval_index.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"

namespace dcr {
namespace {

struct ForestFixture {
  rt::RegionForest forest;
  FieldSpaceId fs;
  FieldId f;
  RegionTreeId tree;
  PartitionId owned, ghost;

  explicit ForestFixture(std::size_t tiles = 64) {
    fs = forest.create_field_space();
    f = forest.allocate_field(fs, 8, "f");
    tree = forest.create_tree(rt::Rect::r1(0, static_cast<std::int64_t>(tiles) * 1000 - 1), fs);
    owned = forest.partition_equal(forest.root(tree), tiles);
    ghost = forest.partition_with_halo(forest.root(tree), tiles, 1);
  }
};

void BM_OraclePairwiseConflict(benchmark::State& state) {
  ForestFixture fx;
  const rt::Requirement a{fx.forest.subregion(fx.owned, 3), {fx.f},
                          rt::Privilege::ReadWrite, 0};
  const rt::Requirement b{fx.forest.subregion(fx.ghost, 4), {fx.f},
                          rt::Privilege::ReadOnly, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::requirements_conflict(fx.forest, a, b));
  }
}
BENCHMARK(BM_OraclePairwiseConflict);

void BM_StructurallyDisjoint(benchmark::State& state) {
  ForestFixture fx;
  const IndexSpaceId a = fx.forest.subregion(fx.owned, 3);
  const IndexSpaceId b = fx.forest.subregion(fx.owned, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.structurally_disjoint(a, b));
  }
}
BENCHMARK(BM_StructurallyDisjoint);

void BM_LowestCommonRegion(benchmark::State& state) {
  ForestFixture fx;
  const IndexSpaceId a = fx.forest.subregion(fx.owned, 3);
  const IndexSpaceId b = fx.forest.subregion(fx.ghost, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.lowest_common_region(a, b));
  }
}
BENCHMARK(BM_LowestCommonRegion);

void BM_ApiCallHash(benchmark::State& state) {
  // The per-call work of the control-determinism checker (paper §3).
  std::uint64_t arg = 0;
  for (auto _ : state) {
    Hasher128 h;
    h.string("index_launch").value(arg++).value(std::uint32_t{7}).value(std::uint8_t{2});
    benchmark::DoNotOptimize(h.finish());
  }
}
BENCHMARK(BM_ApiCallHash);

void BM_PhiloxBlock(benchmark::State& state) {
  Philox4x32::Counter ctr{1, 2, 3, 4};
  const Philox4x32::Key key{5, 6};
  for (auto _ : state) {
    ctr[0]++;
    benchmark::DoNotOptimize(Philox4x32::block(ctr, key));
  }
}
BENCHMARK(BM_PhiloxBlock);

void BM_IntervalIndexQuery(benchmark::State& state) {
  rt::IntervalIndex<int> index;
  const std::int64_t n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    index.insert(rt::Rect::r1(i * 100, i * 100 + 99), static_cast<int>(i));
  }
  std::int64_t q = 0;
  for (auto _ : state) {
    int hits = 0;
    index.for_each_overlapping(rt::Rect::r1(q % (n * 100), q % (n * 100) + 150),
                               [&](const auto&) { ++hits; });
    benchmark::DoNotOptimize(hits);
    q += 137;
  }
}
BENCHMARK(BM_IntervalIndexQuery)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DepRepAnalysis(benchmark::State& state) {
  // Raw DEPrep transition throughput over a random program (Section 2
  // semantics), the formal core of the paper.
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  an::RandomProgramConfig cfg;
  cfg.num_groups = 24;
  Philox4x32 gen(7, 1);
  an::RandomProgram rp = an::generate_random_program(cfg, gen);
  const an::AProgram sharded = an::apply_cyclic_sharding(rp.program, shards);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Philox4x32 rng(seed++);
    benchmark::DoNotOptimize(an::analyze_replicated(sharded, shards, rp.oracle, rng));
  }
}
BENCHMARK(BM_DepRepAnalysis)->Arg(1)->Arg(4)->Arg(16);

void BM_SequentialAnalysis(benchmark::State& state) {
  an::RandomProgramConfig cfg;
  cfg.num_groups = 24;
  Philox4x32 gen(7, 1);
  an::RandomProgram rp = an::generate_random_program(cfg, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::analyze_sequential(rp.program, rp.oracle));
  }
}
BENCHMARK(BM_SequentialAnalysis);

}  // namespace
}  // namespace dcr

BENCHMARK_MAIN();
