// Figure 12: scaling of the 2-D stencil benchmark (paper §5.1).
//
//   (a) weak scaling — throughput per node, cells/s: No-CR collapses once
//       the centralized analysis cost eclipses per-node task time; SCR and
//       DCR stay flat, DCR within a few percent of SCR.
//   (b) strong scaling — total throughput: all systems rise, then roll over
//       as per-task granularity shrinks below runtime overhead; No-CR first,
//       DCR next (~64 nodes in the paper), SCR last (~128).
#include <cstdio>
#include <fstream>

#include "apps/stencil.hpp"
#include "baselines/central.hpp"
#include "baselines/scr.hpp"
#include "bench/bench_common.hpp"
#include "dcr/runtime.hpp"
#include "exec/thread_runtime.hpp"
#include "scope/report.hpp"

namespace {

using namespace dcr;
using apps::StencilConfig;

constexpr double kNsPerCell = 10.0;  // GPU kernel cost per cell
constexpr std::size_t kSteps = 10;

// --profile: record dcr-prof spans in the DCR runs and dump the 64-node weak
// scaling run as Chrome trace JSON (fig12_stencil_64.prof.json, Perfetto).
// --scope: additionally trace causality and dump that run's fence blame
// report (fig12_stencil_64.blame.json).
// --backend=threads: run the DCR series on exec::ThreadRuntime (one OS
// thread per shard, wall-clock makespans); the No-CR and SCR baselines are
// simulator cost models and always run on the simulator.
bench::Flags g_flags;

SimTime run_dcr_threads(std::size_t nodes, const StencilConfig& cfg) {
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, kNsPerCell);
  exec::ThreadConfig tcfg;
  tcfg.num_shards = nodes;
  tcfg.profile = g_flags.profile;
  exec::ThreadRuntime rt(functions, tcfg);
  const auto stats = rt.execute(apps::make_stencil_app(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  return stats.makespan;  // wall-clock ns, not modeled time
}

SimTime run_dcr(std::size_t nodes, const StencilConfig& cfg, bool scr) {
  if (!scr && g_flags.backend == "threads") return run_dcr_threads(nodes, cfg);
  sim::Machine machine(bench::cluster(nodes));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, kNsPerCell);
  core::DcrConfig dcfg = scr ? baselines::scr_config() : core::DcrConfig{};
  bench::apply_flags(g_flags, dcfg);
  core::DcrRuntime rt(machine, functions, dcfg);
  const auto stats = rt.execute(apps::make_stencil_app(cfg, fns));
  DCR_CHECK(stats.completed && !stats.determinism_violation);
  if (g_flags.profile && !scr && nodes == 64) {
    std::ofstream out("fig12_stencil_64.prof.json");
    rt.profiler().write_chrome_trace(out);
    std::printf("  [prof] 64-node DCR run: %zu spans -> fig12_stencil_64.prof.json\n",
                rt.profiler().spans().size());
  }
  if (g_flags.scope && !scr && nodes == 64) {
    const scope::BlameReport blame = scope::build_blame(*rt.scope(), rt.profiler());
    std::ofstream out("fig12_stencil_64.blame.json");
    scope::write_blame_json(out, blame);
    std::printf("  [scope] 64-node DCR run: %zu fences, %s"
                " -> fig12_stencil_64.blame.json\n",
                blame.fences.size(),
                blame.reconciled() ? "ledgers reconcile" : "LEDGER MISMATCH");
  }
  return stats.makespan;
}

SimTime run_central(std::size_t nodes, const StencilConfig& cfg) {
  sim::Machine machine(bench::cluster(nodes));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, kNsPerCell);
  baselines::CentralConfig ccfg;
  ccfg.analysis_cost_per_task = us(20);  // centralized per-task analysis + dispatch
  baselines::CentralRuntime rt(machine, functions, ccfg);
  return rt.execute(apps::make_stencil_app(cfg, fns)).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  g_flags = bench::parse_flags(argc, argv);
  std::vector<std::size_t> kScales = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  if (g_flags.backend == "threads") {
    // Each shard is a real OS thread here; stop the sweep at 64 so a laptop
    // run stays bounded (and 512 threads tells you nothing a 64 doesn't).
    kScales.resize(7);
    std::printf("backend=threads: DCR series on exec::ThreadRuntime, "
                "wall-clock makespans, scales capped at 64\n");
  }

  bench::header("Figure 12a", "2-D stencil weak scaling (throughput per node, cells/s)",
                "No-CR decays with node count; SCR and DCR flat, DCR within ~2x of SCR");
  {
    bench::Table table("nodes");
    table.add_series("no_cr");
    table.add_series("scr");
    table.add_series("dcr");
    for (std::size_t n : kScales) {
      // One 316x316 (~100k cell) tile per node, near-square node grid.
      const auto [tx, ty] = apps::square_factors(n);
      StencilConfig cfg{.cells_per_tile = 316, .tiles = tx, .steps = kSteps, .dims = 2,
                        .width = 316, .tiles_y = ty};
      const double cells = 316.0 * 316.0 * static_cast<double>(n) *
                           static_cast<double>(kSteps);
      table.add_row(static_cast<double>(n),
                    {bench::per_second(cells, run_central(n, cfg)) / static_cast<double>(n),
                     bench::per_second(cells, run_dcr(n, cfg, true)) / static_cast<double>(n),
                     bench::per_second(cells, run_dcr(n, cfg, false)) / static_cast<double>(n)});
    }
    table.print();
  }

  bench::header("Figure 12b", "2-D stencil strong scaling (total throughput, cells/s)",
                "all rise then roll over: No-CR first, then DCR (~64), SCR last (~128)");
  {
    bench::Table table("nodes");
    table.add_series("no_cr");
    table.add_series("scr");
    table.add_series("dcr");
    // Fixed 500x500 global grid divided over a near-square node grid.
    const std::int64_t total_cells = 250'000;
    for (std::size_t n : kScales) {
      const auto [tx, ty] = apps::square_factors(n);
      StencilConfig cfg{.cells_per_tile = 500 / static_cast<std::int64_t>(tx),
                        .tiles = tx, .steps = kSteps, .dims = 2,
                        .width = 500 / static_cast<std::int64_t>(ty), .tiles_y = ty};
      const double cells = static_cast<double>(total_cells) * static_cast<double>(kSteps);
      table.add_row(static_cast<double>(n),
                    {bench::per_second(cells, run_central(n, cfg)),
                     bench::per_second(cells, run_dcr(n, cfg, true)),
                     bench::per_second(cells, run_dcr(n, cfg, false))});
    }
    table.print();
  }
  return 0;
}
