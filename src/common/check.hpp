// Internal assertion macros.
//
// DCR_CHECK is always on (release builds included): this is a runtime whose
// invariants guard a distributed dependence analysis — a silent violation
// would corrupt task graphs, which is strictly worse than an abort.
// DCR_DCHECK compiles out in NDEBUG builds for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dcr::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const std::string& msg) {
  std::fprintf(stderr, "DCR_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream-collector so call sites can write DCR_CHECK(x) << "context " << v;
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { check_failed(file_, line_, expr_, os_.str()); }
  template <typename T>
  CheckStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

struct CheckVoidify {
  // Lowest precedence that still binds tighter than ?: — lets the macro
  // discard the stream expression on the success path.
  void operator&(const CheckStream&) {}
};

}  // namespace dcr::detail

#define DCR_CHECK(cond)                    \
  (cond) ? (void)0                         \
         : ::dcr::detail::CheckVoidify{} & \
               ::dcr::detail::CheckStream(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define DCR_DCHECK(cond) DCR_CHECK(true)
#else
#define DCR_DCHECK(cond) DCR_CHECK(cond)
#endif
