// Philox-4x32-10 counter-based pseudo-random number generator.
//
// Paper §3 (Figure 4 discussion): "To ensure shards produce the same random
// number sequences, we provide a pseudo-random number generator backed by a
// parallel counter-based generator [40]" — [40] is Salmon et al., "Parallel
// Random Numbers: As Easy As 1, 2, 3" (SC'11), whose flagship generator is
// Philox.  A counter-based generator is a pure function of (key, counter), so
// every shard seeded identically produces the identical sequence regardless
// of how the underlying allocator / scheduler behaves — exactly the property
// control replication needs.
//
// This is a faithful from-scratch implementation of Philox-4x32 with 10
// rounds, validated against the reference test vectors in tests/.
#pragma once

#include <array>
#include <cstdint>

namespace dcr {

class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr int kRounds = 10;

  // One block: pure function of counter+key, 128 bits of output.
  static Counter block(Counter ctr, Key key) {
    for (int r = 0; r < kRounds; ++r) {
      ctr = round(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

  explicit Philox4x32(std::uint64_t seed = 0, std::uint64_t stream = 0) {
    key_ = {static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)};
    ctr_ = {0, 0, static_cast<std::uint32_t>(stream),
            static_cast<std::uint32_t>(stream >> 32)};
  }

  std::uint32_t next_u32() {
    if (have_ == 0) refill();
    return out_[--have_];
  }

  std::uint64_t next_u64() {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, n) without modulo bias (Lemire-style rejection).
  std::uint64_t next_below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  // Random-access form: the i-th 128-bit block of this generator's stream.
  Counter block_at(std::uint64_t index) const {
    Counter c = ctr_;
    c[0] = static_cast<std::uint32_t>(index);
    c[1] = static_cast<std::uint32_t>(index >> 32);
    return block(c, key_);
  }

 private:
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3)-1
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;

  static Counter round(const Counter& c, const Key& k) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c[2];
    return Counter{
        static_cast<std::uint32_t>(p1 >> 32) ^ c[1] ^ k[0],
        static_cast<std::uint32_t>(p1),
        static_cast<std::uint32_t>(p0 >> 32) ^ c[3] ^ k[1],
        static_cast<std::uint32_t>(p0),
    };
  }

  void refill() {
    out_ = block(ctr_, key_);
    have_ = 4;
    // 128-bit counter increment over words [0..1]; words [2..3] are stream id.
    if (++ctr_[0] == 0) ++ctr_[1];
  }

  Key key_{};
  Counter ctr_{};
  Counter out_{};
  int have_ = 0;
};

}  // namespace dcr
