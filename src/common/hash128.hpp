// 128-bit incremental hash used by the control-determinism checker (paper §3:
// "we compute a 128-bit hash that captures the API call and all its actual
// arguments").
//
// The construction is two independent 64-bit FNV-1a-style lanes with distinct
// offset bases and a strong 128->128 finalizer (two rounds of the
// splitmix64/murmur avalanche applied cross-lane).  It is not cryptographic;
// the paper only needs collision probabilities low enough that divergent call
// streams are detected with overwhelming probability, which 128 bits of
// well-mixed state provides.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace dcr {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend constexpr bool operator==(const Hash128&, const Hash128&) = default;
};

class Hasher128 {
 public:
  Hasher128() = default;

  Hasher128& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * kPrimeA;
      b_ = (b_ ^ p[i]) * kPrimeB;
      b_ = rotl(b_, 29);
    }
    return *this;
  }

  // Any trivially copyable value is hashed by object representation.  Padding
  // bytes would make this non-deterministic, so we require types without
  // padding in practice (ints, enums, ids); structs should be hashed
  // field-by-field.
  template <typename T>
    requires std::is_trivially_copyable_v<T> && (!std::is_pointer_v<T>)
  Hasher128& value(const T& v) {
    return bytes(&v, sizeof(v));
  }

  Hasher128& string(std::string_view s) {
    value(s.size());
    return bytes(s.data(), s.size());
  }

  Hash128 finish() const {
    std::uint64_t x = a_, y = b_;
    // Cross-lane avalanche so every input bit affects both output words.
    x += 0x9e3779b97f4a7c15ull + y;
    x = mix(x);
    y += 0xbf58476d1ce4e5b9ull + x;
    y = mix(y);
    x ^= y >> 32;
    return Hash128{mix(x), mix(y ^ rotl(x, 17))};
  }

 private:
  static constexpr std::uint64_t kPrimeA = 0x100000001b3ull;      // FNV prime
  static constexpr std::uint64_t kPrimeB = 0x9ddfea08eb382d69ull; // murmur-ish

  static constexpr std::uint64_t rotl(std::uint64_t v, int s) {
    return (v << s) | (v >> (64 - s));
  }
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t a_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::uint64_t b_ = 0x6c62272e07bb0142ull;  // FNV-128 high word basis
};

}  // namespace dcr
