// Clock: the time source behind prof/scope span timestamps.
//
// The simulator backend stamps spans with virtual nanoseconds (sim::SimClock
// reads the event calendar); the real-threads backend stamps them with wall
// nanoseconds (exec::WallClock reads std::chrono::steady_clock).  Everything
// downstream — prof::Scope, the Chrome trace exporter, the scope blame
// ledgers — consumes SimTime without knowing which kind it holds, so the two
// backends share the instrumentation layers unchanged.
#pragma once

#include "common/types.hpp"

namespace dcr {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds: virtual ticks on the simulator, wall time on the
  // threads backend.
  virtual SimTime now() const = 0;
};

}  // namespace dcr
