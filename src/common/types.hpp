// Fundamental identifier and time types shared by every subsystem.
//
// All ids are strong typedefs so that, e.g., a ShardId cannot be passed where
// a NodeId is expected.  Ids are value types: trivially copyable, hashable,
// and totally ordered so they can key std::map / std::unordered_map.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace dcr {

// Virtual time in nanoseconds.  The simulation clock never wraps in practice
// (2^64 ns ~ 584 years of virtual time).
using SimTime = std::uint64_t;

inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

// Convenience literals for building cost models.
constexpr SimTime ns(std::uint64_t v) { return v; }
constexpr SimTime us(std::uint64_t v) { return v * 1000ull; }
constexpr SimTime ms(std::uint64_t v) { return v * 1000000ull; }
constexpr SimTime sec(std::uint64_t v) { return v * 1000000000ull; }

namespace detail {

// CRTP strong-id base: a wrapped integer with explicit construction.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  Rep value = invalid_value();

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  static constexpr Rep invalid_value() { return std::numeric_limits<Rep>::max(); }
  static constexpr StrongId invalid() { return StrongId(); }
  constexpr bool valid() const { return value != invalid_value(); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

struct NodeTag {};
struct ProcTag {};
struct ShardTag {};
struct TaskTag {};
struct OpTag {};
struct RegionTreeTag {};
struct IndexSpaceTag {};
struct FieldSpaceTag {};
struct FieldTag {};
struct PartitionTag {};
struct FunctionTag {};
struct ShardingTag {};
struct ProjectionTag {};
struct TraceTag {};
struct CollectiveTag {};

using NodeId = detail::StrongId<NodeTag>;
using ProcId = detail::StrongId<ProcTag>;           // globally unique processor id
using ShardId = detail::StrongId<ShardTag>;
using OpId = detail::StrongId<OpTag, std::uint64_t>;  // program-order op index
using TaskId = detail::StrongId<TaskTag, std::uint64_t>;
using RegionTreeId = detail::StrongId<RegionTreeTag>;
using IndexSpaceId = detail::StrongId<IndexSpaceTag>;
using FieldSpaceId = detail::StrongId<FieldSpaceTag>;
using FieldId = detail::StrongId<FieldTag>;
using PartitionId = detail::StrongId<PartitionTag>;
using FunctionId = detail::StrongId<FunctionTag>;     // task function id
using ShardingId = detail::StrongId<ShardingTag>;     // sharding function id
using ProjectionId = detail::StrongId<ProjectionTag>; // projection function id
using TraceId = detail::StrongId<TraceTag>;
using CollectiveId = detail::StrongId<CollectiveTag, std::uint64_t>;

}  // namespace dcr

// Hash support for all strong ids.
namespace std {
template <typename Tag, typename Rep>
struct hash<dcr::detail::StrongId<Tag, Rep>> {
  size_t operator()(dcr::detail::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
