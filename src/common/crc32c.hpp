// CRC32C (Castagnoli) checksums for result-digest comparison.
//
// The SDC replication layer (dcr/replicate.hpp) compares task results across
// duplicate executions by digest rather than by value so the comparison cost
// is independent of the future payload size — the paper-adjacent fault model
// ("Protecting Futures against Silent Data Corruption", PAPERS.md) ships a
// fixed-width digest between shards, not the value itself.  Castagnoli's
// polynomial is the conventional choice for data-integrity checks (iSCSI,
// ext4, RDMA) because of its superior burst-error detection over CRC32.
//
// Software table-driven implementation (one 256-entry table, byte at a time):
// the container toolchain cannot assume SSE4.2, and the digests here cover a
// handful of bytes per task result, so throughput is irrelevant — determinism
// and zero dependencies are what matter.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>

namespace dcr {

namespace detail {

// Reflected Castagnoli polynomial.
inline constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t crc = n;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[n] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

// CRC32C over a byte buffer; `seed` chains incremental updates
// (crc32c(b, n2, crc32c(a, n1)) == crc32c(a+b concatenated)).
inline std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

// Digest of one serialized future value.  bit_cast (not ==) so that the
// comparison distinguishes -0.0 from 0.0 and compares NaNs by payload: the
// digest must detect any corrupted bit pattern, not numeric inequality.
inline std::uint32_t crc32c_double(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  unsigned char buf[sizeof(bits)];
  std::memcpy(buf, &bits, sizeof(bits));
  return crc32c(buf, sizeof(buf));
}

}  // namespace dcr
