// dcr-spy trace model: the offline record of everything the runtime's
// dependence analysis *actually did* for one execution.
//
// In the spirit of Legion Spy, the runtime (with DcrConfig::record_trace)
// logs, per shard, every hashed API call with its named arguments, and,
// globally, every operation, coarse dependence + fence-elision decision,
// mapped point task with its concrete region accesses, and realized
// dependence edge.  The trace is self-contained: the verifier
// (spy/verify.hpp) re-derives the paper's §2 reference graph from the
// recorded accesses alone, with no live runtime or region forest required,
// so traces can be serialized to JSONL, shipped, and checked offline with
// the tools/dcr-spy CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"

namespace dcr::spy {

inline constexpr std::uint64_t kNoCall = ~0ull;

// One named argument of a hashed API call, rendered to text.  The linter
// diffs these across shards to explain *which* argument diverged rather
// than just reporting a hash mismatch.
struct CallArg {
  std::string key;
  std::string value;

  friend bool operator==(const CallArg&, const CallArg&) = default;
};

// One hashed API call from one shard's control stream (paper §3 call
// identity: the same construction the determinism checker all-reduces).
struct CallRecord {
  std::uint64_t index = 0;  // call index within the shard's stream
  std::string name;
  Hash128 hash;
  std::vector<CallArg> args;
};

// One concrete region access of a realized task: the unit the race
// detector's happens-before check operates on.
struct AccessRecord {
  RegionTreeId tree;
  rt::Rect rect;
  std::vector<FieldId> fields;
  rt::Privilege privilege = rt::Privilege::ReadOnly;
  rt::ReductionOpId redop = rt::kNoRedop;
};

// One realized task (point task of an index launch, single task, fill, or
// attach/detach piece) with the shard that analyzed and launched it.
struct TaskRecord {
  TaskId id;
  OpId op;
  std::uint64_t point_index = 0;
  ShardId shard;
  std::vector<AccessRecord> accesses;
};

// One coarse-stage dependence found between two operations on one
// (tree, field), and what the runtime did about it: `elided == true` means
// the symbolic same-(sharding, domain, partition, projection) proof fired
// and no cross-shard fence was inserted.  The verifier checks every elided
// record by exhibiting a shard-local witness for each point-level
// dependence it covers.
struct CoarseDepRecord {
  OpId prev;
  OpId next;
  RegionTreeId tree;
  FieldId field;
  bool elided = false;
};

// One operation of the (replicated, hence shared) analysis stream.
struct OpRecord {
  OpId id;
  std::string kind;                   // fill / task / index_launch / ...
  std::uint64_t call_index = kNoCall; // issuing API call (kNoCall: deferred)
  std::vector<OpId> fence_sources;    // cross-shard fences this op waits on
};

// One realized dependence edge of the runtime's merged task graph.
struct EdgeRecord {
  TaskId from;
  TaskId to;
};

struct Trace {
  std::size_t num_shards = 0;
  std::vector<std::vector<CallRecord>> calls;  // indexed by shard
  std::vector<OpRecord> ops;                   // in program (OpId) order
  std::vector<CoarseDepRecord> coarse_deps;
  std::vector<TaskRecord> tasks;
  std::vector<EdgeRecord> edges;

  const OpRecord* op(OpId id) const {
    for (const OpRecord& rec : ops) {
      if (rec.id == id) return &rec;
    }
    return nullptr;
  }

  std::size_t num_events() const {
    std::size_t n = ops.size() + coarse_deps.size() + tasks.size() + edges.size();
    for (const auto& stream : calls) n += stream.size();
    return n;
  }

  // JSONL serialization: one self-describing JSON object per line.
  void write_jsonl(std::ostream& os) const;
  std::string to_jsonl() const;

  // Parses a trace produced by write_jsonl.  Returns false and sets *error
  // (if non-null) on malformed input.
  static bool read_jsonl(std::istream& is, Trace* out, std::string* error = nullptr);
};

}  // namespace dcr::spy
