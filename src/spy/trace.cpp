#include "spy/trace.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

namespace dcr::spy {

// ------------------------------------------------------------------ writing
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_rect(std::ostream& os, const rt::Rect& r) {
  os << "\"dim\":" << r.dim << ",\"lo\":[" << r.lo[0] << ',' << r.lo[1] << ',' << r.lo[2]
     << "],\"hi\":[" << r.hi[0] << ',' << r.hi[1] << ',' << r.hi[2] << ']';
}

template <typename Id>
void write_id_array(std::ostream& os, const std::vector<Id>& ids) {
  os << '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) os << ',';
    os << ids[i].value;
  }
  os << ']';
}

}  // namespace

void Trace::write_jsonl(std::ostream& os) const {
  os << "{\"type\":\"meta\",\"num_shards\":" << num_shards << "}\n";
  for (std::size_t s = 0; s < calls.size(); ++s) {
    for (const CallRecord& c : calls[s]) {
      os << "{\"type\":\"call\",\"shard\":" << s << ",\"index\":" << c.index
         << ",\"name\":";
      write_escaped(os, c.name);
      char hash[40];
      std::snprintf(hash, sizeof(hash), "%016llx%016llx",
                    static_cast<unsigned long long>(c.hash.hi),
                    static_cast<unsigned long long>(c.hash.lo));
      os << ",\"hash\":\"" << hash << "\",\"args\":[";
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i) os << ',';
        os << '[';
        write_escaped(os, c.args[i].key);
        os << ',';
        write_escaped(os, c.args[i].value);
        os << ']';
      }
      os << "]}\n";
    }
  }
  for (const OpRecord& op : ops) {
    os << "{\"type\":\"op\",\"id\":" << op.id.value << ",\"kind\":";
    write_escaped(os, op.kind);
    os << ",\"call\":" << static_cast<long long>(op.call_index) << ",\"fences\":";
    write_id_array(os, op.fence_sources);
    os << "}\n";
  }
  for (const CoarseDepRecord& d : coarse_deps) {
    os << "{\"type\":\"dep\",\"prev\":" << d.prev.value << ",\"next\":" << d.next.value
       << ",\"tree\":" << d.tree.value << ",\"field\":" << d.field.value
       << ",\"elided\":" << (d.elided ? "true" : "false") << "}\n";
  }
  for (const TaskRecord& t : tasks) {
    os << "{\"type\":\"task\",\"id\":" << t.id.value << ",\"op\":" << t.op.value
       << ",\"point\":" << t.point_index << ",\"shard\":" << t.shard.value << ",\"acc\":[";
    for (std::size_t i = 0; i < t.accesses.size(); ++i) {
      const AccessRecord& a = t.accesses[i];
      if (i) os << ',';
      os << "{\"tree\":" << a.tree.value << ',';
      write_rect(os, a.rect);
      os << ",\"fields\":";
      write_id_array(os, a.fields);
      os << ",\"priv\":" << static_cast<int>(a.privilege) << ",\"redop\":" << a.redop
         << '}';
    }
    os << "]}\n";
  }
  for (const EdgeRecord& e : edges) {
    os << "{\"type\":\"edge\",\"from\":" << e.from.value << ",\"to\":" << e.to.value
       << "}\n";
  }
}

std::string Trace::to_jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

// ------------------------------------------------------------------ parsing
//
// Minimal recursive-descent JSON parser covering exactly the subset the
// writer emits (flat objects, arrays, strings, integers, booleans).  Kept
// local so the spy library stays dependency-free.
namespace {

struct Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

struct Json {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  std::int64_t num = 0;
  std::string str;
  std::shared_ptr<JsonArray> arr;
  std::shared_ptr<JsonObject> obj;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    return std::nullopt;
  }

  std::optional<Json> boolean() {
    Json v;
    v.kind = Json::Kind::Bool;
    if (literal("true")) {
      v.b = true;
      return v;
    }
    if (literal("false")) return v;
    return std::nullopt;
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    Json v;
    v.kind = Json::Kind::Num;
    v.num = std::stoll(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::optional<Json> string() {
    if (!eat('"')) return std::nullopt;
    Json v;
    v.kind = Json::Kind::Str;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            c = static_cast<char>(
                std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      v.str.push_back(c);
    }
    if (!eat('"')) return std::nullopt;
    return v;
  }

  std::optional<Json> array() {
    if (!eat('[')) return std::nullopt;
    Json v;
    v.kind = Json::Kind::Arr;
    v.arr = std::make_shared<JsonArray>();
    if (eat(']')) return v;
    do {
      auto item = value();
      if (!item) return std::nullopt;
      v.arr->push_back(std::move(*item));
    } while (eat(','));
    if (!eat(']')) return std::nullopt;
    return v;
  }

  std::optional<Json> object() {
    if (!eat('{')) return std::nullopt;
    Json v;
    v.kind = Json::Kind::Obj;
    v.obj = std::make_shared<JsonObject>();
    if (eat('}')) return v;
    do {
      auto key = string();
      if (!key || !eat(':')) return std::nullopt;
      auto val = value();
      if (!val) return std::nullopt;
      (*v.obj)[key->str] = std::move(*val);
    } while (eat(','));
    if (!eat('}')) return std::nullopt;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Typed field accessors; every getter fails soft so the caller can emit one
// uniform "malformed line" error.
std::optional<std::int64_t> get_num(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || it->second.kind != Json::Kind::Num) return std::nullopt;
  return it->second.num;
}
std::optional<std::string> get_str(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || it->second.kind != Json::Kind::Str) return std::nullopt;
  return it->second.str;
}
std::optional<bool> get_bool(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || it->second.kind != Json::Kind::Bool) return std::nullopt;
  return it->second.b;
}
const JsonArray* get_arr(const JsonObject& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || it->second.kind != Json::Kind::Arr) return nullptr;
  return it->second.arr.get();
}

std::optional<Hash128> parse_hash(const std::string& s) {
  if (s.size() != 32) return std::nullopt;
  Hash128 h;
  h.hi = std::stoull(s.substr(0, 16), nullptr, 16);
  h.lo = std::stoull(s.substr(16, 16), nullptr, 16);
  return h;
}

template <typename Id>
bool parse_id_array(const JsonArray& arr, std::vector<Id>* out) {
  for (const Json& v : arr) {
    if (v.kind != Json::Kind::Num) return false;
    out->push_back(Id(static_cast<typename Id::rep_type>(v.num)));
  }
  return true;
}

bool parse_rect(const JsonObject& o, rt::Rect* out) {
  const auto dim = get_num(o, "dim");
  const JsonArray* lo = get_arr(o, "lo");
  const JsonArray* hi = get_arr(o, "hi");
  if (!dim || !lo || !hi || lo->size() != 3 || hi->size() != 3) return false;
  out->dim = static_cast<int>(*dim);
  for (std::size_t d = 0; d < 3; ++d) {
    if ((*lo)[d].kind != Json::Kind::Num || (*hi)[d].kind != Json::Kind::Num) return false;
    out->lo[d] = (*lo)[d].num;
    out->hi[d] = (*hi)[d].num;
  }
  return true;
}

}  // namespace

bool Trace::read_jsonl(std::istream& is, Trace* out, std::string* error) {
  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error) *error = "trace line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  *out = Trace{};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = Parser(line).parse();
    if (!parsed || parsed->kind != Json::Kind::Obj) return fail(line_no, "not a JSON object");
    const JsonObject& o = *parsed->obj;
    const auto type = get_str(o, "type");
    if (!type) return fail(line_no, "missing \"type\"");

    if (*type == "meta") {
      const auto shards = get_num(o, "num_shards");
      if (!shards || *shards < 0) return fail(line_no, "bad meta record");
      out->num_shards = static_cast<std::size_t>(*shards);
      out->calls.resize(out->num_shards);
    } else if (*type == "call") {
      const auto shard = get_num(o, "shard");
      const auto index = get_num(o, "index");
      const auto name = get_str(o, "name");
      const auto hash_str = get_str(o, "hash");
      const JsonArray* args = get_arr(o, "args");
      if (!shard || !index || !name || !hash_str || !args ||
          static_cast<std::size_t>(*shard) >= out->calls.size()) {
        return fail(line_no, "bad call record");
      }
      const auto hash = parse_hash(*hash_str);
      if (!hash) return fail(line_no, "bad call hash");
      CallRecord rec;
      rec.index = static_cast<std::uint64_t>(*index);
      rec.name = *name;
      rec.hash = *hash;
      for (const Json& a : *args) {
        if (a.kind != Json::Kind::Arr || a.arr->size() != 2 ||
            (*a.arr)[0].kind != Json::Kind::Str || (*a.arr)[1].kind != Json::Kind::Str) {
          return fail(line_no, "bad call argument");
        }
        rec.args.push_back({(*a.arr)[0].str, (*a.arr)[1].str});
      }
      out->calls[static_cast<std::size_t>(*shard)].push_back(std::move(rec));
    } else if (*type == "op") {
      const auto id = get_num(o, "id");
      const auto kind = get_str(o, "kind");
      const auto call = get_num(o, "call");
      const JsonArray* fences = get_arr(o, "fences");
      if (!id || !kind || !call || !fences) return fail(line_no, "bad op record");
      OpRecord rec;
      rec.id = OpId(static_cast<std::uint64_t>(*id));
      rec.kind = *kind;
      rec.call_index = static_cast<std::uint64_t>(*call);
      if (!parse_id_array(*fences, &rec.fence_sources)) {
        return fail(line_no, "bad fence list");
      }
      out->ops.push_back(std::move(rec));
    } else if (*type == "dep") {
      const auto prev = get_num(o, "prev");
      const auto next = get_num(o, "next");
      const auto tree = get_num(o, "tree");
      const auto field = get_num(o, "field");
      const auto elided = get_bool(o, "elided");
      if (!prev || !next || !tree || !field || !elided) {
        return fail(line_no, "bad dep record");
      }
      out->coarse_deps.push_back(
          {OpId(static_cast<std::uint64_t>(*prev)), OpId(static_cast<std::uint64_t>(*next)),
           RegionTreeId(static_cast<std::uint32_t>(*tree)),
           FieldId(static_cast<std::uint32_t>(*field)), *elided});
    } else if (*type == "task") {
      const auto id = get_num(o, "id");
      const auto op = get_num(o, "op");
      const auto point = get_num(o, "point");
      const auto shard = get_num(o, "shard");
      const JsonArray* acc = get_arr(o, "acc");
      if (!id || !op || !point || !shard || !acc) return fail(line_no, "bad task record");
      TaskRecord rec;
      rec.id = TaskId(static_cast<std::uint64_t>(*id));
      rec.op = OpId(static_cast<std::uint64_t>(*op));
      rec.point_index = static_cast<std::uint64_t>(*point);
      rec.shard = ShardId(static_cast<std::uint32_t>(*shard));
      for (const Json& a : *acc) {
        if (a.kind != Json::Kind::Obj) return fail(line_no, "bad access record");
        const JsonObject& ao = *a.obj;
        const auto tree = get_num(ao, "tree");
        const auto priv = get_num(ao, "priv");
        const auto redop = get_num(ao, "redop");
        const JsonArray* fields = get_arr(ao, "fields");
        AccessRecord ar;
        if (!tree || !priv || !redop || !fields || !parse_rect(ao, &ar.rect) ||
            !parse_id_array(*fields, &ar.fields)) {
          return fail(line_no, "bad access record");
        }
        ar.tree = RegionTreeId(static_cast<std::uint32_t>(*tree));
        ar.privilege = static_cast<rt::Privilege>(*priv);
        ar.redop = static_cast<rt::ReductionOpId>(*redop);
        rec.accesses.push_back(std::move(ar));
      }
      out->tasks.push_back(std::move(rec));
    } else if (*type == "edge") {
      const auto from = get_num(o, "from");
      const auto to = get_num(o, "to");
      if (!from || !to) return fail(line_no, "bad edge record");
      out->edges.push_back({TaskId(static_cast<std::uint64_t>(*from)),
                            TaskId(static_cast<std::uint64_t>(*to))});
    } else {
      return fail(line_no, "unknown record type \"" + *type + "\"");
    }
  }
  if (out->calls.size() != out->num_shards) {
    return fail(line_no, "missing meta record");
  }
  return true;
}

}  // namespace dcr::spy
