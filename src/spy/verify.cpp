#include "spy/verify.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/semantics.hpp"
#include "runtime/task_graph.hpp"

namespace dcr::spy {

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::MalformedTrace: return "malformed-trace";
    case FindingKind::IntraGroupConflict: return "intra-group-conflict";
    case FindingKind::MissingDependence: return "missing-dependence";
    case FindingKind::SpuriousDependence: return "spurious-dependence";
    case FindingKind::RegionRace: return "region-race";
    case FindingKind::UnsoundElision: return "unsound-elision";
    case FindingKind::ControlDivergence: return "control-divergence";
  }
  return "?";
}

namespace {

bool fields_intersect(const std::vector<FieldId>& a, const std::vector<FieldId>& b) {
  for (FieldId fa : a) {
    if (std::find(b.begin(), b.end(), fa) != b.end()) return true;
  }
  return false;
}

bool has_field(const std::vector<FieldId>& fields, FieldId f) {
  return std::find(fields.begin(), fields.end(), f) != fields.end();
}

// The recorded-access dependence oracle: the offline analogue of the paper's
// §4.1 three-step check (shared index points -> common field -> conflicting
// privileges), evaluated on concrete per-point accesses so no region forest
// is needed.  `field`, when valid, restricts the check to one field (used by
// the per-(tree, field) elision audit).
bool accesses_conflict(const AccessRecord& a, const AccessRecord& b,
                       FieldId field = FieldId::invalid()) {
  if (a.tree != b.tree) return false;
  if (field.valid()) {
    if (!has_field(a.fields, field) || !has_field(b.fields, field)) return false;
  } else if (!fields_intersect(a.fields, b.fields)) {
    return false;
  }
  if (!rt::privileges_conflict(a.privilege, a.redop, b.privilege, b.redop)) return false;
  return rt::overlaps(a.rect, b.rect);
}

bool tasks_conflict(const TaskRecord& a, const TaskRecord& b,
                    FieldId field = FieldId::invalid()) {
  for (const AccessRecord& ra : a.accesses) {
    for (const AccessRecord& rb : b.accesses) {
      if (accesses_conflict(ra, rb, field)) return true;
    }
  }
  return false;
}

std::string rect_str(const rt::Rect& r) {
  std::ostringstream os;
  os << '[';
  for (int d = 0; d < r.dim; ++d) {
    if (d) os << ',';
    os << r.lo[static_cast<std::size_t>(d)] << ".." << r.hi[static_cast<std::size_t>(d)];
  }
  os << ']';
  return os.str();
}

std::string access_str(const AccessRecord& a) {
  std::ostringstream os;
  os << rt::to_string(a.privilege);
  if (a.privilege == rt::Privilege::Reduce) os << '(' << a.redop << ')';
  os << " tree " << a.tree.value << ' ' << rect_str(a.rect) << " fields {";
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (i) os << ',';
    os << a.fields[i].value;
  }
  os << '}';
  return os.str();
}

class Verifier {
 public:
  Verifier(const Trace& trace, const VerifyOptions& options)
      : trace_(trace), options_(options) {}

  VerifyReport run() {
    if (!index_trace()) return std::move(report_);
    if (options_.check_graph || options_.check_races) build_graphs();
    if (options_.check_graph) check_graph();
    if (options_.check_races) check_races();
    if (options_.check_elision) check_elisions();
    if (options_.check_control) check_control();
    return std::move(report_);
  }

 private:
  // Description of one task for findings: its op, issuing API call, point.
  std::string describe(const TaskRecord& t) const {
    std::ostringstream os;
    os << "task " << t.id.value << " (op " << t.op.value;
    if (const OpRecord* op = op_of(t.op)) {
      os << ' ' << op->kind;
      if (op->call_index != kNoCall) os << " @call " << op->call_index;
    }
    os << ", point " << t.point_index << ", shard " << t.shard.value << ')';
    return os.str();
  }

  const OpRecord* op_of(OpId id) const {
    auto it = op_index_.find(id);
    return it == op_index_.end() ? nullptr : it->second;
  }

  void add(FindingKind kind, std::size_t* count, const std::string& message) {
    if ((*count)++ < options_.max_findings) report_.findings.push_back({kind, message});
  }

  bool index_trace() {
    for (const OpRecord& op : trace_.ops) op_index_[op.id] = &op;
    for (const TaskRecord& t : trace_.tasks) {
      if (!task_index_.emplace(t.id, &t).second) {
        report_.findings.push_back(
            {FindingKind::MalformedTrace,
             "task " + std::to_string(t.id.value) + " recorded twice"});
        return false;
      }
      tasks_by_op_[t.op].push_back(&t);
    }
    report_.stats.tasks = trace_.tasks.size();
    report_.stats.recorded_edges = trace_.edges.size();
    return true;
  }

  // Replays the trace through the §2 machinery: one ATaskGroup per op, the
  // oracle given by the recorded accesses, DEPseq via analyze_sequential.
  void build_graphs() {
    an::AProgram program;
    for (const auto& [op, tasks] : tasks_by_op_) {  // std::map: OpId order
      an::ATaskGroup group;
      for (const TaskRecord* t : tasks) group.push_back({t->id, t->shard});
      program.push_back(std::move(group));
    }
    const an::Oracle oracle = [this](TaskId t1, TaskId t2) {
      return tasks_conflict(*task_index_.at(t1), *task_index_.at(t2));
    };
    reference_ = an::analyze_sequential(program, oracle).transitive_closure();
    report_.stats.oracle_deps = reference_.num_edges();

    rt::TaskGraph realized;
    for (const TaskRecord& t : trace_.tasks) realized.add_task(t.id);
    std::size_t malformed = 0;
    for (const EdgeRecord& e : trace_.edges) {
      if (!realized.has_task(e.from) || !realized.has_task(e.to)) {
        add(FindingKind::MalformedTrace, &malformed,
            "edge " + std::to_string(e.from.value) + " -> " + std::to_string(e.to.value) +
                " references an unrecorded task");
        continue;
      }
      if (!realized.has_edge(e.from, e.to)) realized.add_edge(e.from, e.to);
    }
    if (!realized.is_acyclic()) {
      report_.findings.push_back(
          {FindingKind::MalformedTrace, "recorded task graph has a cycle"});
      realized_valid_ = false;
      return;
    }
    realized_ = realized.transitive_closure();
  }

  // Theorem 1 against the production pipeline: the merged runtime graph and
  // DEPseq must describe the same partial order (closures compared, so the
  // runtime is free to emit any transitive reduction of it).
  void check_graph() {
    if (!realized_valid_) return;
    std::size_t missing = 0;
    std::size_t spurious = 0;
    for (TaskId t : reference_.tasks()) {
      for (TaskId s : reference_.successors(t)) {
        if (!realized_.has_edge(t, s)) {
          add(FindingKind::MissingDependence, &missing,
              "DEPseq orders " + describe(*task_index_.at(t)) + " before " +
                  describe(*task_index_.at(s)) + " but the runtime graph does not");
        }
      }
    }
    for (TaskId t : realized_.tasks()) {
      for (TaskId s : realized_.successors(t)) {
        if (!reference_.has_edge(t, s)) {
          add(FindingKind::SpuriousDependence, &spurious,
              "runtime graph orders " + describe(*task_index_.at(t)) + " before " +
                  describe(*task_index_.at(s)) + " with no DEPseq dependence");
        }
      }
    }
  }

  // Happens-before audit over per-point region accesses.  Pairs inside one
  // op are required to be independent (paper §2's task-group well-formedness)
  // and are reported separately, since no interleaving can be blamed.
  void check_races() {
    if (!realized_valid_) return;
    std::size_t races = 0;
    std::size_t intra = 0;
    std::vector<const TaskRecord*> order;
    for (const auto& [op, tasks] : tasks_by_op_) {
      order.insert(order.end(), tasks.begin(), tasks.end());
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        const TaskRecord& a = *order[i];
        const TaskRecord& b = *order[j];
        if (!tasks_conflict(a, b)) continue;
        report_.stats.pairs_checked++;
        if (a.op == b.op) {
          add(FindingKind::IntraGroupConflict, &intra,
              describe(a) + " and " + describe(b) +
                  " of the same launch conflict: " + conflict_detail(a, b));
          continue;
        }
        if (!realized_.has_edge(a.id, b.id) && !realized_.has_edge(b.id, a.id)) {
          add(FindingKind::RegionRace, &races,
              "unordered conflicting accesses: " + describe(a) + " vs " + describe(b) +
                  "; " + conflict_detail(a, b) + "; repro: " + repro(a, b));
        }
      }
    }
  }

  std::string conflict_detail(const TaskRecord& a, const TaskRecord& b) const {
    for (const AccessRecord& ra : a.accesses) {
      for (const AccessRecord& rb : b.accesses) {
        if (accesses_conflict(ra, rb)) {
          return access_str(ra) + " vs " + access_str(rb);
        }
      }
    }
    return "(no conflicting access pair?)";
  }

  // Minimal repro: the two issuing API calls plus the interleaving needed.
  std::string repro(const TaskRecord& a, const TaskRecord& b) const {
    const OpRecord* oa = op_of(a.op);
    const OpRecord* ob = op_of(b.op);
    std::ostringstream os;
    os << "issue ";
    if (oa && oa->call_index != kNoCall) {
      os << oa->kind << " (API call " << oa->call_index << ")";
    } else {
      os << "op " << a.op.value;
    }
    os << " then ";
    if (ob && ob->call_index != kNoCall) {
      os << ob->kind << " (API call " << ob->call_index << ")";
    } else {
      os << "op " << b.op.value;
    }
    os << "; points " << a.point_index << " (shard " << a.shard.value << ") and "
       << b.point_index << " (shard " << b.shard.value << ") may run in either order";
    return os.str();
  }

  // Every elided coarse dependence must be shard-local at point granularity:
  // for each conflicting point pair on the elided (tree, field), both tasks
  // must have been analyzed by the same shard (the witness).  One cross-shard
  // pair means the elision dropped a fence that was actually needed.
  void check_elisions() {
    std::size_t unsound = 0;
    std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint32_t, std::uint32_t>> seen;
    for (const CoarseDepRecord& dep : trace_.coarse_deps) {
      if (!dep.elided) continue;
      if (!seen.insert({dep.prev.value, dep.next.value, dep.tree.value, dep.field.value})
               .second) {
        continue;
      }
      report_.stats.elisions_checked++;
      auto prev_it = tasks_by_op_.find(dep.prev);
      auto next_it = tasks_by_op_.find(dep.next);
      if (prev_it == tasks_by_op_.end() || next_it == tasks_by_op_.end()) continue;
      for (const TaskRecord* a : prev_it->second) {
        for (const TaskRecord* b : next_it->second) {
          if (!tasks_conflict(*a, *b, dep.field)) continue;
          if (a->shard == b->shard) {
            report_.stats.elision_witnesses++;
          } else {
            add(FindingKind::UnsoundElision, &unsound,
                "coarse dependence op " + std::to_string(dep.prev.value) + " -> op " +
                    std::to_string(dep.next.value) + " on (tree " +
                    std::to_string(dep.tree.value) + ", field " +
                    std::to_string(dep.field.value) + ") was elided, but " + describe(*a) +
                    " conflicts with " + describe(*b) +
                    " across shards — the fence was required");
          }
        }
      }
    }
  }

  void check_control() {
    const LintResult lint = lint_control_determinism(trace_);
    for (const auto& stream : trace_.calls) {
      report_.stats.calls_checked = std::max(report_.stats.calls_checked, stream.size());
    }
    if (lint.divergent) {
      report_.findings.push_back({FindingKind::ControlDivergence, lint.message});
    }
  }

  const Trace& trace_;
  VerifyOptions options_;
  VerifyReport report_;

  std::map<OpId, const OpRecord*> op_index_;
  std::map<TaskId, const TaskRecord*> task_index_;
  std::map<OpId, std::vector<const TaskRecord*>> tasks_by_op_;
  rt::TaskGraph reference_;  // DEPseq, transitively closed
  rt::TaskGraph realized_;   // runtime's merged graph, transitively closed
  bool realized_valid_ = true;
};

}  // namespace

VerifyReport verify(const Trace& trace, const VerifyOptions& options) {
  return Verifier(trace, options).run();
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "FAIL") << ": " << stats.tasks << " tasks, "
     << stats.recorded_edges << " recorded edges, " << stats.oracle_deps
     << " DEPseq dependences, " << stats.pairs_checked << " conflicting pairs checked, "
     << stats.elisions_checked << " elisions audited (" << stats.elision_witnesses
     << " shard-local witnesses), " << stats.calls_checked << " API calls diffed";
  if (!ok()) {
    std::map<std::string, std::size_t> by_kind;
    for (const Finding& f : findings) by_kind[to_string(f.kind)]++;
    os << "; findings:";
    for (const auto& [kind, n] : by_kind) os << ' ' << kind << "=" << n;
  }
  return os.str();
}

// --------------------------------------------------------------- the linter

namespace {

std::string shard_set_str(const std::vector<std::size_t>& shards) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i) os << ',';
    os << shards[i];
  }
  os << '}';
  return os.str();
}

// Argument-level diff of the same call index across two divergent shards.
std::string explain_args(const CallRecord& a, std::size_t shard_a, const CallRecord& b,
                         std::size_t shard_b) {
  std::ostringstream os;
  if (a.name != b.name) {
    os << "shard " << shard_a << " called " << a.name << "() but shard " << shard_b
       << " called " << b.name << "()";
    return os.str();
  }
  const std::size_t n = std::min(a.args.size(), b.args.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.args[i].key != b.args[i].key || a.args[i].value != b.args[i].value) {
      os << "argument '" << a.args[i].key << "' = " << a.args[i].value << " on shard "
         << shard_a << " but '" << b.args[i].key << "' = " << b.args[i].value
         << " on shard " << shard_b;
      return os.str();
    }
  }
  if (a.args.size() != b.args.size()) {
    os << "shard " << shard_a << " passed " << a.args.size() << " arguments but shard "
       << shard_b << " passed " << b.args.size();
    return os.str();
  }
  os << "hashes differ but recorded arguments agree (hash collision or unrecorded state)";
  return os.str();
}

}  // namespace

LintResult lint_control_determinism(const Trace& trace) {
  LintResult result;
  if (trace.calls.size() < 2) return result;
  std::size_t max_len = 0;
  for (const auto& stream : trace.calls) max_len = std::max(max_len, stream.size());

  for (std::size_t idx = 0; idx < max_len; ++idx) {
    // Group shards by the hash they recorded for this call index; a missing
    // record (shorter stream) forms its own group.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t s = 0; s < trace.calls.size(); ++s) {
      if (idx >= trace.calls[s].size()) {
        groups["<no call>"].push_back(s);
        continue;
      }
      const CallRecord& c = trace.calls[s][idx];
      std::ostringstream key;
      key << c.hash.hi << ':' << c.hash.lo;
      groups[key.str()].push_back(s);
    }
    if (groups.size() <= 1) continue;

    result.divergent = true;
    result.call_index = idx;
    std::ostringstream os;
    os << "control determinism violation at API call " << idx << ": ";
    // Representatives of the two largest groups carry the explanation.
    std::vector<const std::vector<std::size_t>*> parts;
    for (const auto& [key, shards] : groups) parts.push_back(&shards);
    std::sort(parts.begin(), parts.end(),
              [](const auto* a, const auto* b) { return a->size() > b->size(); });
    const std::size_t sa = (*parts[0])[0];
    const std::size_t sb = (*parts[1])[0];
    const bool a_has = idx < trace.calls[sa].size();
    const bool b_has = idx < trace.calls[sb].size();
    if (!a_has || !b_has) {
      const std::size_t done = a_has ? sb : sa;
      const std::size_t alive = a_has ? sa : sb;
      os << "shard " << done << " made only " << trace.calls[done].size()
         << " API calls while shard " << alive << " issued "
         << trace.calls[alive][idx].name << "()";
    } else {
      const CallRecord& ca = trace.calls[sa][idx];
      const CallRecord& cb = trace.calls[sb][idx];
      os << ca.name << "(): shards " << shard_set_str(*parts[0]) << " disagree with "
         << shard_set_str(*parts[1]) << ": " << explain_args(ca, sa, cb, sb);
    }
    result.message = os.str();
    return result;
  }
  return result;
}

namespace {

// Canonical one-line forms of each record kind: two traces are
// graph-equivalent iff the sorted canonical forms match section by section.
std::string canon_op(const OpRecord& op) {
  std::ostringstream os;
  os << op.id.value << ":" << op.kind << ":fences[";
  std::vector<std::uint64_t> src;
  for (const OpId s : op.fence_sources) src.push_back(s.value);
  std::sort(src.begin(), src.end());
  for (const std::uint64_t s : src) os << s << ",";
  os << "]";
  return os.str();
}

std::string canon_task(const TaskRecord& t) {
  std::ostringstream os;
  os << t.id.value << ":op" << t.op.value << ":p" << t.point_index << ":s"
     << t.shard.value << ":[";
  std::vector<std::string> acc;
  for (const AccessRecord& a : t.accesses) {
    std::ostringstream ao;
    ao << a.tree.value << "/" << static_cast<int>(a.privilege) << "/" << a.redop << "/";
    for (int d = 0; d < a.rect.dim; ++d) {
      ao << a.rect.lo[static_cast<std::size_t>(d)] << ".."
         << a.rect.hi[static_cast<std::size_t>(d)] << ";";
    }
    std::vector<std::uint32_t> fields;
    for (const FieldId f : a.fields) fields.push_back(f.value);
    std::sort(fields.begin(), fields.end());
    for (const std::uint32_t f : fields) ao << "f" << f;
    acc.push_back(ao.str());
  }
  std::sort(acc.begin(), acc.end());
  for (const std::string& a : acc) os << a << "|";
  os << "]";
  return os.str();
}

std::string canon_dep(const CoarseDepRecord& d) {
  std::ostringstream os;
  os << d.prev.value << "->" << d.next.value << ":t" << d.tree.value << ":f"
     << d.field.value << (d.elided ? ":elided" : ":fenced");
  return os.str();
}

std::string canon_edge(const EdgeRecord& e) {
  return std::to_string(e.from.value) + "->" + std::to_string(e.to.value);
}

template <typename Rec, typename Fn>
bool section_equal(const std::vector<Rec>& a, const std::vector<Rec>& b, Fn canon,
                   const char* what, std::string* why) {
  std::vector<std::string> ca, cb;
  ca.reserve(a.size());
  cb.reserve(b.size());
  for (const Rec& r : a) ca.push_back(canon(r));
  for (const Rec& r : b) cb.push_back(canon(r));
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  if (ca == cb) return true;
  if (why != nullptr) {
    std::ostringstream os;
    os << what << " differ: " << ca.size() << " vs " << cb.size() << " records";
    for (std::size_t i = 0; i < ca.size() && i < cb.size(); ++i) {
      if (ca[i] != cb[i]) {
        os << "; first divergence \"" << ca[i] << "\" vs \"" << cb[i] << "\"";
        break;
      }
    }
    *why = os.str();
  }
  return false;
}

}  // namespace

bool graph_equivalent(const Trace& a, const Trace& b, std::string* why) {
  if (a.num_shards != b.num_shards) {
    if (why != nullptr) {
      *why = "shard counts differ: " + std::to_string(a.num_shards) + " vs " +
             std::to_string(b.num_shards);
    }
    return false;
  }
  return section_equal(a.ops, b.ops, canon_op, "op streams", why) &&
         section_equal(a.tasks, b.tasks, canon_task, "realized tasks", why) &&
         section_equal(a.coarse_deps, b.coarse_deps, canon_dep, "coarse deps", why) &&
         section_equal(a.edges, b.edges, canon_edge, "dependence edges", why);
}

}  // namespace dcr::spy
