// dcr-spy offline verification (the correctness-tooling counterpart of the
// fault-injection layer): given a recorded execution trace, independently
// re-check the paper's central guarantees.
//
//  * Graph verifier — re-derives the §2 sequential reference graph DEPseq by
//    replaying the trace's realized tasks through analysis/semantics.hpp
//    with a dependence oracle built from the recorded concrete region
//    accesses, then checks the runtime's merged cross-shard task graph is
//    equivalent up to transitive reduction (Theorem 1, checked against the
//    *production* pipeline rather than the abstract model).
//  * Elision audit — every coarse dependence the runtime elided (no
//    cross-shard fence) must be provably shard-local: the checker exhibits a
//    witness for each covered point-level dependence by showing both
//    endpoint tasks were analyzed by the same shard.
//  * Region race detector — a happens-before check over per-point region
//    accesses: any conflicting access pair left unordered by the recorded
//    graph is flagged with a minimal repro (the two issuing API calls, the
//    clashing rects/fields/privileges, and the shards involved).
//  * Control-determinism linter — a cross-shard diff of the recorded call
//    streams that localizes the first divergent API call with an
//    argument-level explanation (which argument differed, which shards
//    disagree), replacing the hash-only abort message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spy/trace.hpp"

namespace dcr::spy {

enum class FindingKind {
  MalformedTrace,      // internally inconsistent trace (dangling edge, ...)
  IntraGroupConflict,  // two points of one op conflict: invalid §2 program
  MissingDependence,   // DEPseq orders a pair the runtime graph does not
  SpuriousDependence,  // runtime graph orders a pair DEPseq does not
  RegionRace,          // conflicting accesses unordered by the runtime graph
  UnsoundElision,      // elided fence with a cross-shard point dependence
  ControlDivergence,   // shards' API call streams disagree
};

const char* to_string(FindingKind kind);

struct Finding {
  FindingKind kind;
  std::string message;
};

struct VerifyOptions {
  bool check_graph = true;
  bool check_races = true;
  bool check_elision = true;
  bool check_control = true;
  std::size_t max_findings = 16;  // per check; keeps pathological reports short
};

struct VerifyStats {
  std::size_t tasks = 0;
  std::size_t recorded_edges = 0;
  std::size_t oracle_deps = 0;        // dependences DEPseq derives
  std::size_t pairs_checked = 0;      // conflicting pairs race-checked
  std::size_t elisions_checked = 0;   // distinct elided coarse deps audited
  std::size_t elision_witnesses = 0;  // point-level shard-local witnesses
  std::size_t calls_checked = 0;      // call indices diffed across shards
};

struct VerifyReport {
  std::vector<Finding> findings;
  VerifyStats stats;

  bool ok() const { return findings.empty(); }
  bool has(FindingKind kind) const {
    for (const Finding& f : findings) {
      if (f.kind == kind) return true;
    }
    return false;
  }
  std::string summary() const;
};

// Runs every enabled check over the trace.  An empty findings list is the
// machine-checkable statement "this execution realized exactly the DEPseq
// task graph, every elided fence was sound, no region race, and the control
// streams were replicated verbatim".
VerifyReport verify(const Trace& trace, const VerifyOptions& options = {});

// The linter alone (also folded into verify() as ControlDivergence
// findings).  Localizes the first divergent API call across shards.
struct LintResult {
  bool divergent = false;
  std::uint64_t call_index = 0;
  std::string message;
};

LintResult lint_control_determinism(const Trace& trace);

// Structural equivalence of two traces' realized task graphs: same operation
// stream (id, kind, fence sources), same realized tasks (op, point, shard,
// concrete accesses), same coarse dependences and elision decisions, and the
// same merged dependence edges.  Timing and call hashes are ignored.  This is
// the SDC replication audit: a replication-on run must be graph-equivalent to
// a replication-off run — replicas are shadow executions with no task-graph
// footprint — even when injected corruptions were detected and healed.
// Returns false and describes the first difference in `*why` (if non-null).
bool graph_equivalent(const Trace& a, const Trace& b, std::string* why = nullptr);

}  // namespace dcr::spy
