// Circuit simulation benchmark (paper §5.1, Figure 13).
//
// "a circuit simulation that iteratively updates currents on wires and
// voltages on nodes in a graph of circuit components.  The partitioning of
// the graph is done dynamically, so the communication pattern must also be
// established at runtime."
//
// Model: a graph of circuit nodes distributed in pieces; wires connect nodes
// mostly within a piece, but a fraction are cross-piece and reach up to
// `neighbor_span` pieces away.  Per iteration (the classic Legion circuit
// phases):
//   calc_new_currents  : RW wires.current, RO nodes.voltage over ghost nodes
//   distribute_charge  : RED(sum) nodes.charge over ghost nodes
//   update_voltages    : RW nodes.voltage over owned nodes
//
// The dynamic partition (ghost span derived from a seeded random graph) is
// computed at run time, which is exactly what defeats static control
// replication for this app.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/philox.hpp"
#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct CircuitConfig {
  std::int64_t nodes_per_piece = 1000;
  std::int64_t wires_per_piece = 4000;
  std::size_t pieces = 4;
  std::size_t steps = 10;
  double cross_piece_fraction = 0.1;  // wires leaving their piece
  std::uint64_t seed = 42;            // graph randomness (replicated)
  ShardingId sharding = core::ShardingRegistry::blocked();
  bool use_trace = false;
};

struct CircuitFunctions {
  FunctionId calc_new_currents;
  FunctionId distribute_charge;
  FunctionId update_voltages;
};

inline CircuitFunctions register_circuit_functions(core::FunctionRegistry& reg,
                                                   double ns_per_elem) {
  CircuitFunctions fns;
  fns.calc_new_currents = reg.register_simple("calc_new_currents", us(3), ns_per_elem);
  fns.distribute_charge = reg.register_simple("distribute_charge", us(3), ns_per_elem);
  fns.update_voltages = reg.register_simple("update_voltages", us(3), ns_per_elem);
  return fns;
}

inline core::ApplicationMain make_circuit_app(const CircuitConfig& cfg,
                                              const CircuitFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    using namespace rt;
    const auto pieces = static_cast<std::int64_t>(cfg.pieces);
    const std::int64_t nnodes = cfg.nodes_per_piece * pieces;
    const std::int64_t nwires = cfg.wires_per_piece * pieces;

    FieldSpaceId nfs = ctx.create_field_space();
    const FieldId voltage = ctx.allocate_field(nfs, 8, "voltage");
    const FieldId charge = ctx.allocate_field(nfs, 8, "charge");
    FieldSpaceId wfs = ctx.create_field_space();
    const FieldId current = ctx.allocate_field(wfs, 8, "current");

    const RegionTreeId node_tree = ctx.create_region(Rect::r1(0, nnodes - 1), nfs);
    const RegionTreeId wire_tree = ctx.create_region(Rect::r1(0, nwires - 1), wfs);
    const IndexSpaceId all_nodes = ctx.root(node_tree);
    const IndexSpaceId all_wires = ctx.root(wire_tree);

    // Dynamic partitioning: the ghost span of each piece depends on the
    // random wiring, discovered at run time.  Every shard draws the same
    // spans from the replicated counter-based RNG (paper §3).
    const PartitionId owned_nodes = ctx.partition_equal(all_nodes, cfg.pieces);
    const PartitionId owned_wires = ctx.partition_equal(all_wires, cfg.pieces);

    std::vector<Rect> ghost_rects;
    for (std::int64_t p = 0; p < pieces; ++p) {
      // Span grows with the fraction of cross-piece wires; randomized per
      // piece to make the communication pattern irregular.
      const std::int64_t base_span = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(cfg.cross_piece_fraction *
                                       static_cast<double>(cfg.nodes_per_piece)));
      const std::int64_t jitter =
          static_cast<std::int64_t>(ctx.rng().next_below(static_cast<std::uint64_t>(base_span) + 1));
      const std::int64_t span = base_span + jitter;
      ghost_rects.push_back(Rect::r1(std::max<std::int64_t>(0, p * cfg.nodes_per_piece - span),
                                     std::min<std::int64_t>(nnodes - 1,
                                                            (p + 1) * cfg.nodes_per_piece - 1 + span)));
    }
    const PartitionId ghost_nodes = ctx.create_partition(all_nodes, ghost_rects, false);

    ctx.fill(all_nodes, {voltage, charge});
    ctx.fill(all_wires, {current});

    const Rect domain = Rect::r1(0, pieces - 1);
    const TraceId trace(2);
    for (std::size_t t = 0; t < cfg.steps; ++t) {
      if (cfg.use_trace) ctx.begin_trace(trace);

      core::IndexLaunch cnc;
      cnc.fn = fns.calc_new_currents;
      cnc.domain = domain;
      cnc.sharding = cfg.sharding;
      cnc.requirements.push_back(
          GroupRequirement::on_partition(owned_wires, {current}, Privilege::ReadWrite));
      cnc.requirements.push_back(
          GroupRequirement::on_partition(ghost_nodes, {voltage}, Privilege::ReadOnly));
      ctx.index_launch(cnc);

      core::IndexLaunch dsc;
      dsc.fn = fns.distribute_charge;
      dsc.domain = domain;
      dsc.sharding = cfg.sharding;
      dsc.requirements.push_back(
          GroupRequirement::on_partition(owned_wires, {current}, Privilege::ReadOnly));
      dsc.requirements.push_back(GroupRequirement::on_partition(
          ghost_nodes, {charge}, Privilege::Reduce, /*redop=*/1));
      ctx.index_launch(dsc);

      core::IndexLaunch upv;
      upv.fn = fns.update_voltages;
      upv.domain = domain;
      upv.sharding = cfg.sharding;
      upv.requirements.push_back(
          GroupRequirement::on_partition(owned_nodes, {voltage, charge}, Privilege::ReadWrite));
      ctx.index_launch(upv);

      if (cfg.use_trace) ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
