// The paper's running example: the implicitly parallel stencil code of
// Figure 7 (1-D) and the 2-D variant benchmarked in Figure 12.
//
// Structure per timestep (Figure 7 lines 39-49):
//   add_one(owned[i])            RW state   over the owned partition
//   mul_two(interior[i])         RW flux    over the interior partition
//   stencil(interior[i],ghost[i]) RW flux / RO state over interior + ghost
//
// The ghost partition aliases neighbouring owned blocks, so the add_one ->
// stencil dependence crosses partitions and needs a cross-shard fence, while
// mul_two -> stencil stays on the same (interior) partition and is elided —
// exactly the Figure 10 analysis.
#pragma once

#include <cstdint>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct StencilConfig {
  std::int64_t cells_per_tile = 1000;  // per tile along the partitioned axis
  std::size_t tiles = 4;               // tiles along axis 0 (= launch width)
  std::size_t steps = 10;              // timesteps
  int dims = 1;                        // 1 or 2
  std::int64_t width = 64;             // extent of axis 1 per tile row (2-D)
  std::size_t tiles_y = 1;             // >1: true 2-D grid tiling (Figure 12)
  ShardingId sharding = core::ShardingRegistry::blocked();
  bool use_trace = false;              // wrap the time loop in a trace
  // >0: every k-th step the control program reduces a per-tile residual and
  // branches on it (a convergence guard) — the canonical control-feeding
  // future chain the SDC replication layer (dcr/replicate) protects.  The
  // residual launch sits outside the trace window so traced replay is
  // unaffected.
  std::size_t residual_every = 0;
  // >0: alternate between two loop-body shapes every `phase_every` steps —
  // the odd phases run an extra smoothing launch, so the task stream's period
  // changes (3 launches/step vs 4).  This is the phase-changing workload the
  // automatic trace identifier (dcr/trace_id.hpp) is measured on.  Hand
  // windowing (use_trace) keys each phase with its own TraceId plus a
  // distinct id for each phase-entry step (whose cross-phase boundary deps
  // sit at different relative offsets), the best an author can do without
  // merging loops.
  std::size_t phase_every = 0;
};

// Near-square 2-D factorization of n (for n-node grid tilings).
inline std::pair<std::size_t, std::size_t> square_factors(std::size_t n) {
  std::size_t a = 1;
  for (std::size_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) a = d;
  }
  return {n / a, a};
}

struct StencilFunctions {
  FunctionId add_one;
  FunctionId mul_two;
  FunctionId stencil;
  FunctionId residual;  // per-tile residual norm (future value)
};

// Register the task functions with a cost of `ns_per_cell` per cell of the
// tasks' region arguments.  `residual` carries a deterministic value model: a
// strictly positive per-tile norm that decays with the timestep, so the
// control program's convergence guard (`residual < 0`) never fires unless
// something corrupted the value's sign — which a mantissa-preserving SDC
// model never does.
inline StencilFunctions register_stencil_functions(core::FunctionRegistry& reg,
                                                   double ns_per_cell) {
  StencilFunctions fns;
  fns.add_one = reg.register_simple("add_one", us(2), ns_per_cell);
  fns.mul_two = reg.register_simple("mul_two", us(2), ns_per_cell);
  fns.stencil = reg.register_simple("stencil", us(2), ns_per_cell);
  fns.residual = reg.register_simple(
      "residual", us(2), ns_per_cell * 0.25,
      [](const core::PointTaskInfo& info) {
        const double step = static_cast<double>(info.args.empty() ? 0 : info.args[0]);
        const double tile = static_cast<double>(info.point[0] + 1);
        return (1.0 + 0.125 * tile) / (1.0 + step);
      });
  return fns;
}

inline core::ApplicationMain make_stencil_app(const StencilConfig& cfg,
                                              const StencilFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    using namespace rt;
    const bool grid2d = cfg.dims == 2 && cfg.tiles_y > 1;
    const std::int64_t ncells = cfg.cells_per_tile * static_cast<std::int64_t>(cfg.tiles);
    const std::int64_t nrows =
        grid2d ? cfg.width * static_cast<std::int64_t>(cfg.tiles_y) : cfg.width;
    const Rect grid =
        cfg.dims == 1 ? Rect::r1(0, ncells - 1) : Rect::r2(0, ncells - 1, 0, nrows - 1);

    FieldSpaceId fs = ctx.create_field_space();
    const FieldId state = ctx.allocate_field(fs, 8, "state");
    const FieldId flux = ctx.allocate_field(fs, 8, "flux");
    const RegionTreeId tree = ctx.create_region(grid, fs);
    const IndexSpaceId cells = ctx.root(tree);

    PartitionId owned, interior, ghost;
    const std::size_t total_tiles = cfg.tiles * (grid2d ? cfg.tiles_y : 1);
    if (grid2d) {
      owned = ctx.partition_grid(cells, cfg.tiles, cfg.tiles_y);
      // interior: owned shrunk by one at the global domain boundary.
      std::vector<Rect> interior_rects;
      for (std::size_t c = 0; c < total_tiles; ++c) {
        Rect r = ctx.forest().bounds(ctx.forest().subregion(owned, c));
        for (int d = 0; d < 2; ++d) {
          const auto di = static_cast<std::size_t>(d);
          if (r.lo[di] == grid.lo[di]) r.lo[di] += 1;
          if (r.hi[di] == grid.hi[di]) r.hi[di] -= 1;
        }
        interior_rects.push_back(r);
      }
      interior = ctx.create_partition(cells, interior_rects, true);
      ghost = ctx.partition_grid(cells, cfg.tiles, cfg.tiles_y, /*halo=*/1);
    } else {
      owned = ctx.partition_equal(cells, cfg.tiles, /*axis=*/0);
      std::vector<Rect> interior_rects;
      for (std::size_t c = 0; c < cfg.tiles; ++c) {
        Rect r = ctx.forest().bounds(ctx.forest().subregion(owned, c));
        if (c == 0) r.lo[0] += 1;
        if (c == cfg.tiles - 1) r.hi[0] -= 1;
        interior_rects.push_back(r);
      }
      interior = ctx.create_partition(cells, interior_rects, true);
      ghost = ctx.partition_with_halo(cells, cfg.tiles, /*halo=*/1, 0);
    }

    ctx.fill(cells, {state, flux});

    const Rect launch_domain =
        grid2d ? Rect::r2(0, static_cast<std::int64_t>(cfg.tiles) - 1, 0,
                          static_cast<std::int64_t>(cfg.tiles_y) - 1)
               : Rect::r1(0, static_cast<std::int64_t>(cfg.tiles) - 1);
    for (std::size_t t = 0; t < cfg.steps; ++t) {
      const bool smooth_phase =
          cfg.phase_every > 0 && (t / cfg.phase_every) % 2 == 1;
      // The first step of a returning phase depends on the *other* phase's
      // last launch, so its relative dep offsets differ from a mid-phase
      // step; it needs its own template or replay would serve stale edges.
      const bool phase_entry =
          cfg.phase_every > 0 && t > 0 && t % cfg.phase_every == 0;
      const TraceId trace(smooth_phase ? (phase_entry ? 4 : 2)
                                       : (phase_entry ? 3 : 1));
      if (cfg.use_trace) ctx.begin_trace(trace);

      core::IndexLaunch add;
      add.fn = fns.add_one;
      add.domain = launch_domain;
      add.sharding = cfg.sharding;
      add.requirements.push_back(
          GroupRequirement::on_partition(owned, {state}, Privilege::ReadWrite));
      ctx.index_launch(add);

      core::IndexLaunch mul;
      mul.fn = fns.mul_two;
      mul.domain = launch_domain;
      mul.sharding = cfg.sharding;
      mul.requirements.push_back(
          GroupRequirement::on_partition(interior, {flux}, Privilege::ReadWrite));
      ctx.index_launch(mul);

      core::IndexLaunch st;
      st.fn = fns.stencil;
      st.domain = launch_domain;
      st.sharding = cfg.sharding;
      st.requirements.push_back(
          GroupRequirement::on_partition(interior, {flux}, Privilege::ReadWrite));
      st.requirements.push_back(
          GroupRequirement::on_partition(ghost, {state}, Privilege::ReadOnly));
      ctx.index_launch(st);

      if (smooth_phase) {
        // Extra smoothing pass: folds the flux back into the state over the
        // owned partition, making the odd phases' period 4 launches.
        core::IndexLaunch sm;
        sm.fn = fns.add_one;
        sm.domain = launch_domain;
        sm.sharding = cfg.sharding;
        sm.requirements.push_back(
            GroupRequirement::on_partition(owned, {state, flux}, Privilege::ReadWrite));
        ctx.index_launch(sm);
      }

      if (cfg.use_trace) ctx.end_trace(trace);

      if (cfg.residual_every > 0 && (t + 1) % cfg.residual_every == 0) {
        core::IndexLaunch res;
        res.fn = fns.residual;
        res.domain = launch_domain;
        res.sharding = cfg.sharding;
        res.args = {static_cast<std::int64_t>(t)};
        res.wants_futures = true;
        res.requirements.push_back(
            GroupRequirement::on_partition(owned, {state}, Privilege::ReadOnly));
        core::FutureMap fm = ctx.index_launch(res);
        const double r =
            ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Sum));
        // Convergence guard: the residual model is strictly positive, so this
        // branch is never taken — but the value *feeds control*, which is
        // what marks the residual chain SDC-critical.
        if (r < 0.0) break;
      }
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
