// HTR solver proxy (paper §5.2, Figure 17): hypersonic aerothermodynamics
// with "complex control flow for which SCR's analysis is too conservative".
//
// The data-dependent behaviour we reproduce: each timestep evaluates a CFL
// stability condition (a future-valued reduction); when it trips, the step
// re-runs with sub-cycling — a branch on a runtime value that static
// analysis cannot resolve, but which control replication handles because
// every shard observes the same future value.
#pragma once

#include <cstdint>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct HtrConfig {
  std::int64_t cells_per_piece = 65536;
  std::size_t pieces = 4;
  std::size_t steps = 8;
  std::size_t subcycle_every = 3;  // CFL trips every k-th step (synthetic)
  ShardingId sharding = core::ShardingRegistry::blocked();
};

struct HtrFunctions {
  FunctionId flux;       // halo stencil, high-order -> wide halo
  FunctionId chemistry;  // local, expensive
  FunctionId cfl;        // per-piece CFL candidate (future)
};

inline HtrFunctions register_htr_functions(core::FunctionRegistry& reg, double ns_per_cell) {
  HtrFunctions fns;
  fns.flux = reg.register_simple("htr.flux", us(5), ns_per_cell);
  fns.chemistry = reg.register_simple("htr.chemistry", us(5), 2 * ns_per_cell);
  fns.cfl = reg.register_simple(
      "htr.cfl", us(5), 0.05 * ns_per_cell, [](const core::PointTaskInfo& info) {
        // CFL number > 1 means the step must sub-cycle.  Synthetic model:
        // trips when args[0] (step % subcycle_every) == 0.
        return info.args.at(0) == 0 ? 1.5 : 0.7;
      });
  return fns;
}

inline core::ApplicationMain make_htr_app(const HtrConfig& cfg, const HtrFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    using namespace rt;
    const auto pieces = static_cast<std::int64_t>(cfg.pieces);
    const std::int64_t ncells = cfg.cells_per_piece * pieces;

    FieldSpaceId fs = ctx.create_field_space();
    const FieldId cons = ctx.allocate_field(fs, 8, "conserved");
    const FieldId prim = ctx.allocate_field(fs, 8, "primitive");
    const RegionTreeId tree = ctx.create_region(Rect::r1(0, ncells - 1), fs);
    const IndexSpaceId cells = ctx.root(tree);

    const PartitionId owned = ctx.partition_equal(cells, cfg.pieces);
    const PartitionId wide_halo = ctx.partition_with_halo(cells, cfg.pieces, 3);

    ctx.fill(cells, {cons, prim});

    const Rect domain = Rect::r1(0, pieces - 1);
    auto do_substep = [&]() {
      core::IndexLaunch flux;
      flux.fn = fns.flux;
      flux.domain = domain;
      flux.sharding = cfg.sharding;
      flux.requirements.push_back(
          GroupRequirement::on_partition(owned, {cons}, Privilege::ReadWrite));
      flux.requirements.push_back(
          GroupRequirement::on_partition(wide_halo, {prim}, Privilege::ReadOnly));
      ctx.index_launch(flux);

      core::IndexLaunch chem;
      chem.fn = fns.chemistry;
      chem.domain = domain;
      chem.sharding = cfg.sharding;
      chem.requirements.push_back(
          GroupRequirement::on_partition(owned, {prim, cons}, Privilege::ReadWrite));
      ctx.index_launch(chem);
    };

    for (std::size_t t = 0; t < cfg.steps; ++t) {
      do_substep();

      // CFL check: a future-valued reduction every step.
      core::IndexLaunch cfl;
      cfl.fn = fns.cfl;
      cfl.domain = domain;
      cfl.sharding = cfg.sharding;
      cfl.args = {static_cast<std::int64_t>(t % cfg.subcycle_every)};
      cfl.wants_futures = true;
      cfl.requirements.push_back(
          GroupRequirement::on_partition(owned, {prim}, Privilege::ReadOnly));
      const core::FutureMap fm = ctx.index_launch(cfl);
      const double cfl_max = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Max));

      // Data-dependent control flow: sub-cycle when the CFL condition trips.
      if (cfl_max > 1.0) {
        do_substep();
        do_substep();
      }
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
