// Pennant proxy (paper §5.1, Figure 14): Lagrangian staggered-grid
// hydrodynamics on an unstructured mesh.
//
// The mesh is modeled as zones (cells) and points (vertices); points on
// piece boundaries are shared between pieces (halo partition).  Each cycle
// runs the characteristic Pennant phases and ends with the global dt
// reduction the paper calls out: "The drop in parallel efficiency for the
// two fastest implementations is due to a global collective for computing
// the next iteration's time step; this collective blocks all downstream work
// and incurs additional latency with increased processor counts."  We
// reproduce that with a future-map Min reduction whose value the control
// program consumes before launching the next cycle.
#pragma once

#include <cstdint>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct PennantConfig {
  std::int64_t zones_per_piece = 10000;
  std::size_t pieces = 4;
  std::size_t cycles = 10;
  // false: 4-phase proxy (forces/apply/advance/dt).  true: the full Pennant
  // cycle — geometry, state, pgas+tts+qcs forces, corner-force reduction,
  // acceleration, advection, work/energy, dt — ~12 launches per cycle with
  // the mini-app's relative costs.
  bool full_physics = false;
  // Bytes per boundary point: halo exchanges move point_field_bytes per
  // shared point per cycle (the unstructured mesh packs many physical
  // quantities per boundary point).
  std::size_t point_field_bytes = 128 * 1024;
  ShardingId sharding = core::ShardingRegistry::blocked();
  bool use_trace = false;
  bool blocking_dt = true;  // consume the dt future each cycle (the paper's collective)
};

struct PennantFunctions {
  FunctionId calc_forces;      // gather from points, RW zones
  FunctionId apply_forces;     // RED to shared points
  FunctionId adv_positions;    // RW owned points
  FunctionId calc_dt;          // per-piece dt candidate (future)
  // Full-physics phases (see make_pennant_app with full_physics = true).
  FunctionId calc_ctrs;        // zone/edge centers from point positions
  FunctionId calc_vols;        // zone volumes
  FunctionId calc_rho;         // densities
  FunctionId calc_state_half;  // EOS at half step
  FunctionId qcs_force;        // artificial viscosity (needs neighbor zones)
  FunctionId sum_crnr_force;   // corner-force reduction to shared points
  FunctionId calc_accel;       // point accelerations
  FunctionId calc_work;        // work + energy update
};

inline PennantFunctions register_pennant_functions(core::FunctionRegistry& reg,
                                                   double ns_per_zone) {
  PennantFunctions fns;
  fns.calc_forces = reg.register_simple("calc_forces", us(4), ns_per_zone);
  fns.apply_forces = reg.register_simple("apply_forces", us(4), ns_per_zone * 0.5);
  fns.adv_positions = reg.register_simple("adv_positions", us(4), ns_per_zone * 0.5);
  fns.calc_dt = reg.register_simple(
      "calc_dt", us(4), ns_per_zone * 0.1,
      [](const core::PointTaskInfo& info) {
        // Deterministic per-piece dt candidate; min over pieces drives the
        // next cycle.  Derived from the cycle index passed in args.
        return 1e-3 / (1.0 + 0.01 * static_cast<double>(info.args.at(0)));
      });
  // Relative costs follow the mini-app's phase weights (geometry and QCS
  // dominate; scalar updates are cheap).
  fns.calc_ctrs = reg.register_simple("calc_ctrs", us(4), ns_per_zone * 0.3);
  fns.calc_vols = reg.register_simple("calc_vols", us(4), ns_per_zone * 0.3);
  fns.calc_rho = reg.register_simple("calc_rho", us(4), ns_per_zone * 0.1);
  fns.calc_state_half = reg.register_simple("calc_state_half", us(4), ns_per_zone * 0.2);
  fns.qcs_force = reg.register_simple("qcs_force", us(4), ns_per_zone * 0.6);
  fns.sum_crnr_force = reg.register_simple("sum_crnr_force", us(4), ns_per_zone * 0.2);
  fns.calc_accel = reg.register_simple("calc_accel", us(4), ns_per_zone * 0.1);
  fns.calc_work = reg.register_simple("calc_work", us(4), ns_per_zone * 0.2);
  return fns;
}

inline core::ApplicationMain make_pennant_app(const PennantConfig& cfg,
                                              const PennantFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    using namespace rt;
    const auto pieces = static_cast<std::int64_t>(cfg.pieces);
    const std::int64_t nzones = cfg.zones_per_piece * pieces;
    const std::int64_t npoints = nzones + pieces;  // roughly one extra point layer per piece

    FieldSpaceId zfs = ctx.create_field_space();
    const FieldId zvol = ctx.allocate_field(zfs, 8, "zone_vol");
    const FieldId zforce = ctx.allocate_field(zfs, 8, "zone_force");
    FieldSpaceId pfs = ctx.create_field_space();
    const FieldId pforce = ctx.allocate_field(pfs, cfg.point_field_bytes, "pt_force");
    const FieldId ppos = ctx.allocate_field(pfs, cfg.point_field_bytes, "pt_pos");

    const RegionTreeId zone_tree = ctx.create_region(Rect::r1(0, nzones - 1), zfs);
    const RegionTreeId point_tree = ctx.create_region(Rect::r1(0, npoints - 1), pfs);
    const IndexSpaceId zones = ctx.root(zone_tree);
    const IndexSpaceId points = ctx.root(point_tree);

    const PartitionId owned_zones = ctx.partition_equal(zones, cfg.pieces);
    const PartitionId owned_points = ctx.partition_equal(points, cfg.pieces);
    // Shared points on piece boundaries: a one-element halo.
    const PartitionId shared_points = ctx.partition_with_halo(points, cfg.pieces, 1);

    ctx.fill(zones, {zvol, zforce});
    ctx.fill(points, {pforce, ppos});

    const Rect domain = Rect::r1(0, pieces - 1);
    const TraceId trace(3);
    double dt = 1e-3;

    // Helper for one group launch over the pieces.
    auto il = [&](FunctionId fn, std::int64_t arg,
                  std::vector<GroupRequirement> reqs) {
      core::IndexLaunch l;
      l.fn = fn;
      l.domain = domain;
      l.sharding = cfg.sharding;
      l.args = {arg};
      l.requirements = std::move(reqs);
      ctx.index_launch(l);
    };

    for (std::size_t c = 0; c < cfg.cycles; ++c) {
      if (cfg.use_trace) ctx.begin_trace(trace);
      const auto cycle_arg = static_cast<std::int64_t>(c);

      if (cfg.full_physics) {
        // --- geometry from current point positions (reads shared halo) ---
        il(fns.calc_ctrs, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zvol}, Privilege::ReadWrite),
            GroupRequirement::on_partition(shared_points, {ppos}, Privilege::ReadOnly)});
        il(fns.calc_vols, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zvol}, Privilege::ReadWrite)});
        // --- state: density and EOS at the half step ---
        il(fns.calc_rho, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zvol}, Privilege::ReadOnly),
            GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadWrite)});
        il(fns.calc_state_half, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadWrite)});
        // --- forces: pgas/tts on zones, then QCS needing neighbor data ---
        il(fns.calc_forces, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zvol, zforce}, Privilege::ReadWrite),
            GroupRequirement::on_partition(shared_points, {ppos}, Privilege::ReadOnly)});
        il(fns.qcs_force, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadWrite),
            GroupRequirement::on_partition(shared_points, {ppos}, Privilege::ReadOnly)});
        // --- corner-force reduction into the shared points ---
        il(fns.sum_crnr_force, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadOnly),
            GroupRequirement::on_partition(shared_points, {pforce}, Privilege::Reduce, 1)});
        // --- point acceleration + advection (owned points only) ---
        il(fns.calc_accel, cycle_arg,
           {GroupRequirement::on_partition(owned_points, {pforce}, Privilege::ReadWrite)});
        il(fns.adv_positions, cycle_arg,
           {GroupRequirement::on_partition(owned_points, {ppos, pforce},
                                           Privilege::ReadWrite)});
        // --- work/energy bookkeeping ---
        il(fns.calc_work, cycle_arg,
           {GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadWrite)});
        // --- dt reduction gates the next cycle ---
        core::IndexLaunch dtl;
        dtl.fn = fns.calc_dt;
        dtl.domain = domain;
        dtl.sharding = cfg.sharding;
        dtl.args = {cycle_arg};
        dtl.wants_futures = true;
        dtl.requirements.push_back(
            GroupRequirement::on_partition(owned_zones, {zvol}, Privilege::ReadOnly));
        core::FutureMap fm = ctx.index_launch(dtl);
        if (cfg.use_trace) ctx.end_trace(trace);
        if (cfg.blocking_dt) {
          dt = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Min));
          DCR_CHECK(dt > 0.0);
        }
        continue;
      }

      core::IndexLaunch forces;
      forces.fn = fns.calc_forces;
      forces.domain = domain;
      forces.sharding = cfg.sharding;
      forces.args = {cycle_arg};
      forces.requirements.push_back(
          GroupRequirement::on_partition(owned_zones, {zvol, zforce}, Privilege::ReadWrite));
      forces.requirements.push_back(
          GroupRequirement::on_partition(shared_points, {ppos}, Privilege::ReadOnly));
      ctx.index_launch(forces);

      core::IndexLaunch apply;
      apply.fn = fns.apply_forces;
      apply.domain = domain;
      apply.sharding = cfg.sharding;
      apply.args = {cycle_arg};
      apply.requirements.push_back(
          GroupRequirement::on_partition(owned_zones, {zforce}, Privilege::ReadOnly));
      apply.requirements.push_back(GroupRequirement::on_partition(
          shared_points, {pforce}, Privilege::Reduce, /*redop=*/1));
      ctx.index_launch(apply);

      core::IndexLaunch adv;
      adv.fn = fns.adv_positions;
      adv.domain = domain;
      adv.sharding = cfg.sharding;
      adv.args = {cycle_arg};
      adv.requirements.push_back(
          GroupRequirement::on_partition(owned_points, {ppos, pforce}, Privilege::ReadWrite));
      ctx.index_launch(adv);

      core::IndexLaunch dtl;
      dtl.fn = fns.calc_dt;
      dtl.domain = domain;
      dtl.sharding = cfg.sharding;
      dtl.args = {cycle_arg};
      dtl.wants_futures = true;
      dtl.requirements.push_back(
          GroupRequirement::on_partition(owned_zones, {zvol}, Privilege::ReadOnly));
      core::FutureMap fm = ctx.index_launch(dtl);
      if (cfg.use_trace) ctx.end_trace(trace);

      if (cfg.blocking_dt) {
        // The global dt collective the paper blames for the efficiency drop:
        // the control program consumes the min before the next cycle.
        dt = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Min));
        DCR_CHECK(dt > 0.0);
      }
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
