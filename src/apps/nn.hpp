// Deep-network training on the task runtime (paper §5.1 Figure 15 and §5.3
// Figure 18) — the FlexFlow-on-Legion configuration.
//
// Each layer owns a region with weight/gradient/activation fields,
// partitioned per GPU (data parallelism keeps a weight replica per GPU, so
// every launch uses the same per-GPU partition and all step-to-step
// dependences are provably shard-local — the fence-elision fast path).
// Per iteration and layer: forward, backward, grad-sync, update.  Gradient
// synchronization cost uses the standard analytic ring all-reduce model,
// identical for FlexFlow and the TensorFlow comparator so the comparison
// isolates the *runtime* behaviour, as in the paper.
//
// FlexFlow's search (paper §5.3) discovers a hybrid data+model-parallel
// strategy for CANDLE "with a more sophisticated dependence pattern that
// reduces communication costs by 20X"; we reproduce its effect with
// Strategy::Hybrid, which divides the synchronized gradient volume by
// `hybrid_comm_reduction` while adding the extra per-layer exchange
// operations such a strategy implies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"
#include "sim/network.hpp"

namespace dcr::apps {

// Time for a ring all-reduce of `bytes` over `n` participants.
inline SimTime ring_allreduce_time(std::uint64_t bytes, std::size_t n,
                                   const sim::NetworkParams& net) {
  if (n <= 1) return 0;
  const double volume = 2.0 * static_cast<double>(bytes) * static_cast<double>(n - 1) /
                        static_cast<double>(n);
  return static_cast<SimTime>(volume * net.ns_per_byte) +
         2 * static_cast<SimTime>(n - 1) * net.alpha;
}

struct LayerSpec {
  std::string name;
  std::uint64_t param_bytes;
  SimTime fwd_time;  // per GPU per iteration
  SimTime bwd_time;
};

struct NetworkSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  std::uint64_t total_param_bytes() const {
    std::uint64_t total = 0;
    for (const auto& l : layers) total += l.param_bytes;
    return total;
  }
  SimTime compute_time() const {
    SimTime total = 0;
    for (const auto& l : layers) total += l.fwd_time + l.bwd_time;
    return total;
  }

  // ResNet-50 (He et al.): ~25.6M parameters (~102 MB fp32), modeled as 16
  // residual blocks plus stem and classifier.  Per-iteration compute is
  // calibrated to a V100 with batch 64 (~200 ms fwd+bwd).
  static NetworkSpec resnet50() {
    NetworkSpec spec;
    spec.name = "resnet50";
    spec.layers.push_back({"stem", 9408 * 4, ms(4), ms(8)});
    const std::uint64_t block_params[4] = {220000, 1150000, 6800000, 15000000};
    const int blocks_per_stage[4] = {3, 4, 6, 3};
    for (int stage = 0; stage < 4; ++stage) {
      for (int b = 0; b < blocks_per_stage[stage]; ++b) {
        spec.layers.push_back({"conv" + std::to_string(stage) + "_" + std::to_string(b),
                               block_params[stage] / static_cast<std::uint64_t>(
                                                         blocks_per_stage[stage]) * 4,
                               ms(4), ms(8)});
      }
    }
    spec.layers.push_back({"fc", 2048 * 1000 * 4, ms(2), ms(4)});
    return spec;
  }

  // CANDLE pilot1 Uno MLP (paper §5.3): 768M parameters (~3 GB fp32) across
  // a handful of very wide fully-connected layers.
  static NetworkSpec candle_uno() {
    NetworkSpec spec;
    spec.name = "candle_uno";
    const std::uint64_t total_params = 768'000'000;
    const int nlayers = 8;
    for (int l = 0; l < nlayers; ++l) {
      spec.layers.push_back({"dense" + std::to_string(l),
                             total_params / nlayers * 4, ms(14), ms(28)});
    }
    return spec;
  }
};

struct TrainConfig {
  std::size_t gpus = 8;
  std::size_t iterations = 8;  // per measured epoch slice
  // 1.0 = fixed per-GPU batch (weak scaling, Figure 15).  For a fixed
  // *global* batch (Figure 18), set to 1/gpus: per-GPU compute shrinks while
  // the synchronized gradient volume stays constant.
  double compute_scale = 1.0;
  enum class Strategy { DataParallel, Hybrid } strategy = Strategy::DataParallel;
  double hybrid_comm_reduction = 20.0;  // paper §5.3
  ShardingId sharding = core::ShardingRegistry::blocked();
  sim::NetworkParams net;  // for the analytic all-reduce model
  bool use_trace = true;
};

struct TrainFunctions {
  FunctionId forward;
  FunctionId backward;
  FunctionId grad_sync;
  FunctionId update;
  FunctionId exchange;  // hybrid-parallel activation/weight exchange
};

// Task durations come from the launch args: [time_ns] — the layer cost model
// is evaluated in the control program, which is what FlexFlow's per-layer
// strategies do.
inline TrainFunctions register_train_functions(core::FunctionRegistry& reg) {
  auto timed = [&reg](std::string name) {
    return reg.register_function(core::TaskFunction{
        std::move(name),
        [](const core::PointTaskInfo& info) {
          return static_cast<SimTime>(info.args.at(0));
        },
        nullptr});
  };
  TrainFunctions fns;
  fns.forward = timed("forward");
  fns.backward = timed("backward");
  fns.grad_sync = timed("grad_sync");
  fns.update = timed("update");
  fns.exchange = timed("exchange");
  return fns;
}

inline core::ApplicationMain make_train_app(const NetworkSpec& spec, const TrainConfig& cfg,
                                            const TrainFunctions& fns) {
  return [spec, cfg, fns](core::Context& ctx) {
    using namespace rt;
    const auto gpus = static_cast<std::int64_t>(cfg.gpus);

    // One region per layer: a row per GPU replica, fields w/g/act.
    struct LayerState {
      PartitionId shard;
      FieldId w, g, act;
      IndexSpaceId region;
    };
    std::vector<LayerState> layers;
    for (const LayerSpec& l : spec.layers) {
      FieldSpaceId fs = ctx.create_field_space();
      LayerState st;
      st.w = ctx.allocate_field(fs, 8, l.name + ".w");
      st.g = ctx.allocate_field(fs, 8, l.name + ".g");
      st.act = ctx.allocate_field(fs, 8, l.name + ".act");
      const RegionTreeId tree = ctx.create_region(Rect::r1(0, gpus - 1), fs);
      st.region = ctx.root(tree);
      st.shard = ctx.partition_equal(st.region, cfg.gpus);
      layers.push_back(st);
      ctx.fill(st.region, {st.w, st.g, st.act});
    }

    const Rect domain = Rect::r1(0, gpus - 1);
    const bool hybrid = cfg.strategy == TrainConfig::Strategy::Hybrid;
    const TraceId trace(4);

    auto launch_layer = [&](FunctionId fn, const LayerState& st, SimTime duration,
                            std::vector<FieldId> rw_fields,
                            std::vector<FieldId> ro_fields) {
      core::IndexLaunch l;
      l.fn = fn;
      l.domain = domain;
      l.sharding = cfg.sharding;
      l.args = {static_cast<std::int64_t>(duration)};
      l.requirements.push_back(
          GroupRequirement::on_partition(st.shard, std::move(rw_fields), Privilege::ReadWrite));
      if (!ro_fields.empty()) {
        l.requirements.push_back(
            GroupRequirement::on_partition(st.shard, std::move(ro_fields), Privilege::ReadOnly));
      }
      ctx.index_launch(l);
    };

    for (std::size_t it = 0; it < cfg.iterations; ++it) {
      if (cfg.use_trace) ctx.begin_trace(trace);
      // Forward pass, layer by layer.
      for (std::size_t l = 0; l < layers.size(); ++l) {
        launch_layer(fns.forward, layers[l],
                     static_cast<SimTime>(static_cast<double>(spec.layers[l].fwd_time) *
                                          cfg.compute_scale),
                     {layers[l].act}, {layers[l].w});
        if (hybrid) {
          // Model-parallel layers exchange activation halves between GPUs.
          launch_layer(fns.exchange, layers[l],
                       ring_allreduce_time(spec.layers[l].param_bytes / 64, cfg.gpus, cfg.net),
                       {layers[l].act}, {});
        }
      }
      // Backward pass with overlapped gradient sync + update.
      for (std::size_t l = layers.size(); l-- > 0;) {
        launch_layer(fns.backward, layers[l],
                     static_cast<SimTime>(static_cast<double>(spec.layers[l].bwd_time) *
                                          cfg.compute_scale),
                     {layers[l].g}, {layers[l].act, layers[l].w});
        const std::uint64_t sync_bytes =
            hybrid ? static_cast<std::uint64_t>(
                         static_cast<double>(spec.layers[l].param_bytes) /
                         cfg.hybrid_comm_reduction)
                   : spec.layers[l].param_bytes;
        launch_layer(fns.grad_sync, layers[l],
                     ring_allreduce_time(sync_bytes, cfg.gpus, cfg.net), {layers[l].g}, {});
        launch_layer(fns.update, layers[l],
                     static_cast<SimTime>(static_cast<double>(spec.layers[l].fwd_time) *
                                          cfg.compute_scale / 10.0),
                     {layers[l].w}, {layers[l].g});
      }
      if (cfg.use_trace) ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
