// Legate-NumPy-style ndarray library (paper §5.4, Bauer & Garland SC'19).
//
// "Legate NumPy performs a dynamic translation of NumPy programs to the
// Legion programming model: NumPy ndarray types are backed by individual
// fields in Legion regions, and NumPy API calls are performed by launching
// one or more tasks ... Legate NumPy also decides on-the-fly how to
// partition arrays and when to convert NumPy API calls into group task
// launches."
//
// This header implements that translation against the executor-agnostic
// Context API: every ndarray is a field of a region tree, chunked
// automatically over the machine (no user tuning, unlike Dask); every array
// operation becomes a group task launch over the chunk partition; scalar
// results (dot products, norms) become future-map reductions.  The same
// ndarray program therefore runs on DCR *and* on the centralized (Dask-like)
// executor, which is how the Figure 19/20 comparison is made.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps::legate {

struct LegateFunctions {
  FunctionId elementwise;  // unary/binary map over chunks
  FunctionId matvec;       // row-chunked X @ w
  FunctionId matmul;       // row-chunked C = A @ B (B broadcast)
  FunctionId stencil_spmv; // implicit tridiagonal/Laplacian SpMV (halo read)
  FunctionId dot_partial;  // per-chunk partial dot product
  FunctionId norm_partial; // per-chunk partial 2-norm
  FunctionId reduce_cols;  // X^T @ v partial reduction into the output
};

// ns_per_element scales every compute kernel.
inline LegateFunctions register_legate_functions(core::FunctionRegistry& reg,
                                                 double ns_per_element,
                                                 SimTime task_overhead = us(2)) {
  LegateFunctions fns;
  fns.elementwise = reg.register_simple("legate.map", task_overhead, ns_per_element);
  fns.matvec = reg.register_simple("legate.matvec", task_overhead, ns_per_element);
  fns.stencil_spmv = reg.register_simple("legate.spmv", task_overhead, 3 * ns_per_element);
  fns.dot_partial = reg.register_simple(
      "legate.dot", task_overhead, ns_per_element, [](const core::PointTaskInfo& info) {
        // Synthetic scalar model: the value is driven by the caller-supplied
        // args (e.g. iteration number) so convergence loops are deterministic
        // and identical across shards; see DESIGN.md on synthetic numerics.
        const double k = info.args.empty() ? 0.0 : static_cast<double>(info.args[0]);
        return 1.0 / (1.0 + k) / static_cast<double>(info.domain.volume());
      });
  fns.matmul = reg.register_simple("legate.matmul", task_overhead, 4 * ns_per_element);
  fns.norm_partial = reg.register_simple(
      "legate.norm", task_overhead, ns_per_element, [](const core::PointTaskInfo& info) {
        // Synthetic norm: geometric decay in the caller-supplied iteration
        // argument, split evenly over the launch domain so the reduced sum
        // is independent of the chunking.
        const double k = info.args.empty() ? 0.0 : static_cast<double>(info.args[0]);
        return std::pow(0.5, k) / static_cast<double>(info.domain.volume());
      });
  fns.reduce_cols = reg.register_simple("legate.reduce_cols", task_overhead, ns_per_element);
  return fns;
}

// A distributed ndarray: one field of a region tree + its chunk partition.
struct NDArray {
  RegionTreeId tree;
  IndexSpaceId region;
  FieldId field;
  PartitionId chunks;        // disjoint row chunks
  PartitionId halo_chunks;   // aliased +-1 halo (created on demand)
  std::uint64_t rows = 0;    // logical length (1-D) or row count (2-D)
  std::uint64_t cols = 1;    // 1 for vectors
};

class LegateRuntime {
 public:
  LegateRuntime(core::Context& ctx, const LegateFunctions& fns,
                std::size_t pieces = 0)
      : ctx_(ctx),
        fns_(fns),
        // Automatic chunk selection (the paper's "Legate needs no such
        // tuning"): one chunk per shard by default.
        pieces_(pieces ? pieces : ctx.num_shards()) {}

  std::size_t pieces() const { return pieces_; }

  // ---- array creation ----
  NDArray zeros(std::uint64_t n) { return make_array(n, 1, "v"); }
  NDArray zeros2d(std::uint64_t rows, std::uint64_t cols) {
    return make_array(rows, cols, "m");
  }

  // ---- elementwise: out = op(a[, b]) over aligned chunks ----
  void map(const NDArray& out, const NDArray& a) { map_impl(out, &a, nullptr); }
  void map(const NDArray& out, const NDArray& a, const NDArray& b) {
    map_impl(out, &a, &b);
  }
  // In-place update: out = op(out, a)   (e.g. axpy)
  void update(const NDArray& out, const NDArray& a) { map_impl(out, &a, nullptr); }

  // ---- matvec: out[rows] = X[rows x cols] @ w[cols] ----
  // Each row-chunk task reads its block of X and the *whole* w (broadcast
  // read), writing its chunk of out.
  void matvec(const NDArray& out, const NDArray& X, const NDArray& w) {
    core::IndexLaunch l = base_launch(fns_.matvec);
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        out.chunks, {out.field}, rt::Privilege::WriteDiscard));
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(X.chunks, {X.field}, rt::Privilege::ReadOnly));
    l.requirements.push_back(
        rt::GroupRequirement::on_region(w.region, {w.field}, rt::Privilege::ReadOnly));
    ctx_.index_launch(l);
  }

  // ---- X^T @ v: column reduction.  Every chunk task reduces its partial
  // contribution into the whole output (commutative sum reduction). ----
  void matvec_transpose(const NDArray& out, const NDArray& X, const NDArray& v) {
    core::IndexLaunch l = base_launch(fns_.reduce_cols);
    l.requirements.push_back(rt::GroupRequirement::on_region(
        out.region, {out.field}, rt::Privilege::Reduce, /*redop=*/1));
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(X.chunks, {X.field}, rt::Privilege::ReadOnly));
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(v.chunks, {v.field}, rt::Privilege::ReadOnly));
    ctx_.index_launch(l);
  }

  // ---- implicit Laplacian SpMV: out = A p, read with +-1 halo ----
  void stencil_spmv(const NDArray& out, NDArray& p) {
    ensure_halo(p);
    core::IndexLaunch l = base_launch(fns_.stencil_spmv);
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        out.chunks, {out.field}, rt::Privilege::WriteDiscard));
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        p.halo_chunks, {p.field}, rt::Privilege::ReadOnly));
    ctx_.index_launch(l);
  }

  // ---- matmul: C[rows x k] = A[rows x m] @ B[m x k], row-chunked with B
  // broadcast to every chunk task ----
  void matmul(const NDArray& C, const NDArray& A, const NDArray& B) {
    core::IndexLaunch l = base_launch(fns_.matmul);
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        C.chunks, {C.field}, rt::Privilege::WriteDiscard));
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(A.chunks, {A.field}, rt::Privilege::ReadOnly));
    l.requirements.push_back(
        rt::GroupRequirement::on_region(B.region, {B.field}, rt::Privilege::ReadOnly));
    ctx_.index_launch(l);
  }

  // Copy: dst = src (aligned chunks).
  void copy(const NDArray& dst, const NDArray& src) { map(dst, src); }

  // ---- scalar reductions (block on the future like np.dot would) ----
  core::Future dot_async(const NDArray& a, const NDArray& b, std::int64_t scalar_arg = 0) {
    core::IndexLaunch l = base_launch(fns_.dot_partial);
    l.args = {scalar_arg};
    l.wants_futures = true;
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(a.chunks, {a.field}, rt::Privilege::ReadOnly));
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(b.chunks, {b.field}, rt::Privilege::ReadOnly));
    const core::FutureMap fm = ctx_.index_launch(l);
    return ctx_.reduce_future_map(fm, core::ReduceOp::Sum);
  }
  double dot(const NDArray& a, const NDArray& b, std::int64_t scalar_arg = 0) {
    return ctx_.get_future(dot_async(a, b, scalar_arg));
  }

  // ||a||^2 via per-chunk partials; the synthetic value model decays
  // geometrically in `scalar_arg` so convergence loops terminate.
  core::Future norm_async(const NDArray& a, std::int64_t scalar_arg = 0) {
    core::IndexLaunch l = base_launch(fns_.norm_partial);
    l.args = {scalar_arg};
    l.wants_futures = true;
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(a.chunks, {a.field}, rt::Privilege::ReadOnly));
    return ctx_.reduce_future_map(ctx_.index_launch(l), core::ReduceOp::Sum);
  }
  double norm(const NDArray& a, std::int64_t scalar_arg = 0) {
    return ctx_.get_future(norm_async(a, scalar_arg));
  }

  void fill(const NDArray& a) { ctx_.fill(a.region, {a.field}); }

 private:
  NDArray make_array(std::uint64_t rows, std::uint64_t cols, const char* name) {
    NDArray arr;
    arr.rows = rows;
    arr.cols = cols;
    FieldSpaceId fs = ctx_.create_field_space();
    arr.field = ctx_.allocate_field(fs, 8, name);
    const rt::Rect bounds =
        cols == 1 ? rt::Rect::r1(0, static_cast<std::int64_t>(rows) - 1)
                  : rt::Rect::r2(0, static_cast<std::int64_t>(rows) - 1, 0,
                                 static_cast<std::int64_t>(cols) - 1);
    arr.tree = ctx_.create_region(bounds, fs);
    arr.region = ctx_.root(arr.tree);
    arr.chunks = ctx_.partition_equal(arr.region, pieces_, /*axis=*/0);
    ctx_.fill(arr.region, {arr.field});
    return arr;
  }

  void ensure_halo(NDArray& a) {
    if (!a.halo_chunks.valid()) {
      a.halo_chunks = ctx_.partition_with_halo(a.region, pieces_, /*halo=*/1, /*axis=*/0);
    }
  }

  core::IndexLaunch base_launch(FunctionId fn) const {
    core::IndexLaunch l;
    l.fn = fn;
    l.domain = rt::Rect::r1(0, static_cast<std::int64_t>(pieces_) - 1);
    l.sharding = core::ShardingRegistry::blocked();
    return l;
  }

  void map_impl(const NDArray& out, const NDArray* a, const NDArray* b) {
    core::IndexLaunch l = base_launch(fns_.elementwise);
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        out.chunks, {out.field}, rt::Privilege::ReadWrite));
    if (a && !(a->tree == out.tree && a->field == out.field)) {
      l.requirements.push_back(
          rt::GroupRequirement::on_partition(a->chunks, {a->field}, rt::Privilege::ReadOnly));
    }
    if (b && !(b->tree == out.tree && b->field == out.field)) {
      l.requirements.push_back(
          rt::GroupRequirement::on_partition(b->chunks, {b->field}, rt::Privilege::ReadOnly));
    }
    ctx_.index_launch(l);
  }

  core::Context& ctx_;
  LegateFunctions fns_;
  std::size_t pieces_;
};

}  // namespace dcr::apps::legate
