// The two ndarray workloads of paper §5.4: logistic regression (Figure 19)
// and a Jacobi-preconditioned conjugate-gradient solver (Figure 20), written
// as Legate-NumPy programs.  They run unchanged on any executor — DCR for
// the Legate series, the centralized executor for the Dask series.
#pragma once

#include "apps/legate/legate.hpp"

namespace dcr::apps::legate {

struct LogisticRegressionConfig {
  std::uint64_t samples_per_piece = 100000;
  std::uint64_t features = 32;
  std::size_t iterations = 20;
  std::size_t pieces = 0;  // 0 = auto (one per shard)
};

// w <- w - lr * X^T (sigmoid(X w) - y), the standard batch-GD loop.
inline core::ApplicationMain make_logistic_regression(const LogisticRegressionConfig& cfg,
                                                      const LegateFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    LegateRuntime np(ctx, fns, cfg.pieces);
    const std::uint64_t n = cfg.samples_per_piece * np.pieces();
    NDArray X = np.zeros2d(n, cfg.features);
    NDArray y = np.zeros(n);
    NDArray w = np.zeros(cfg.features);
    NDArray pred = np.zeros(n);
    NDArray grad = np.zeros(cfg.features);

    const TraceId trace(10);
    for (std::size_t it = 0; it < cfg.iterations; ++it) {
      ctx.begin_trace(trace);
      np.matvec(pred, X, w);            // pred = X @ w
      np.map(pred, pred);               // pred = sigmoid(pred)
      np.update(pred, y);               // pred = pred - y
      np.matvec_transpose(grad, X, pred);  // grad = X^T @ pred
      np.update(w, grad);               // w -= lr * grad
      ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

struct CgConfig {
  std::uint64_t unknowns_per_piece = 250000;
  std::size_t iterations = 10;   // fixed-iteration mode (throughput metric)
  bool until_convergence = false;  // or loop on the (synthetic) residual
  double tolerance = 1e-2;
  std::size_t pieces = 0;
};

// Jacobi-preconditioned CG on an implicit 1-D Laplacian.  Exercises exactly
// what the paper's §5.4 workload stresses: per-iteration scalar reductions
// (dots) that a centralized executor must round-trip through the controller,
// plus halo SpMVs.
inline core::ApplicationMain make_preconditioned_cg(const CgConfig& cfg,
                                                    const LegateFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    LegateRuntime np(ctx, fns, cfg.pieces);
    const std::uint64_t n = cfg.unknowns_per_piece * np.pieces();
    NDArray x = np.zeros(n);
    NDArray r = np.zeros(n);
    NDArray z = np.zeros(n);
    NDArray p = np.zeros(n);
    NDArray q = np.zeros(n);

    np.map(z, r);  // z = M^-1 r  (Jacobi: elementwise)
    np.map(p, z);
    double rz = np.dot(r, z, 0);

    const TraceId trace(11);
    std::size_t it = 0;
    for (;;) {
      ctx.begin_trace(trace);
      np.stencil_spmv(q, p);  // q = A p (halo read)
      const double pq = np.dot(p, q, static_cast<std::int64_t>(it));
      const double alpha = rz / (pq + 1e-30);
      (void)alpha;            // synthetic numerics: alpha only shapes control flow
      np.update(x, p);        // x += alpha p
      np.update(r, q);        // r -= alpha q
      np.map(z, r);           // z = M^-1 r
      ctx.end_trace(trace);
      const double rz_new = np.dot(r, z, static_cast<std::int64_t>(it) + 1);
      np.map(p, z);           // p = z + beta p (folded into one map)
      rz = rz_new;
      ++it;
      if (cfg.until_convergence) {
        if (rz < cfg.tolerance || it >= 1000) break;
      } else if (it >= cfg.iterations) {
        break;
      }
    }
    ctx.execution_fence();
  };
}

struct JacobiConfig {
  std::uint64_t unknowns_per_piece = 100000;
  double tolerance = 1e-2;
  std::size_t max_iterations = 200;
  std::size_t pieces = 0;
};

// Weighted Jacobi on the implicit 1-D Laplacian: x' = x + w D^-1 (b - A x).
// Simpler than CG (no search directions) but the same runtime stress points:
// a halo SpMV and a residual-norm future per iteration.
inline core::ApplicationMain make_jacobi(const JacobiConfig& cfg,
                                         const LegateFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    LegateRuntime np(ctx, fns, cfg.pieces);
    const std::uint64_t n = cfg.unknowns_per_piece * np.pieces();
    NDArray x = np.zeros(n);
    NDArray b = np.zeros(n);
    NDArray r = np.zeros(n);

    std::size_t it = 0;
    const TraceId trace(12);
    double res = 1.0;
    while (res >= cfg.tolerance && it < cfg.max_iterations) {
      ctx.begin_trace(trace);
      np.stencil_spmv(r, x);   // r = A x (halo read)
      np.update(r, b);         // r = b - A x
      np.update(x, r);         // x += w D^-1 r
      ctx.end_trace(trace);
      res = np.norm(r, static_cast<std::int64_t>(it));
      ++it;
    }
    ctx.execution_fence();
  };
}

struct PowerIterationConfig {
  std::uint64_t dim_per_piece = 50000;
  std::size_t iterations = 10;
  std::size_t pieces = 0;
};

// Power iteration for the dominant eigenvector: v' = A v / ||A v||.  Uses
// the row-chunked matvec with the full-vector broadcast read — the pattern
// that makes every iteration a cross-partition dependence (fences) plus a
// norm reduction (collectives).
inline core::ApplicationMain make_power_iteration(const PowerIterationConfig& cfg,
                                                  const LegateFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    LegateRuntime np(ctx, fns, cfg.pieces);
    const std::uint64_t n = cfg.dim_per_piece * np.pieces();
    NDArray A = np.zeros2d(n, 64);  // tall-skinny stand-in for the operator
    NDArray v = np.zeros(n);
    NDArray w = np.zeros(n);

    const TraceId trace(13);
    for (std::size_t it = 0; it < cfg.iterations; ++it) {
      ctx.begin_trace(trace);
      np.matvec(w, A, v);  // w = A v (broadcast read of v)
      ctx.end_trace(trace);
      const double nrm = np.norm(w, static_cast<std::int64_t>(it));
      DCR_CHECK(nrm > 0.0);
      np.map(v, w);        // v = w / ||w||
    }
    ctx.execution_fence();
  };
}

struct KMeansConfig {
  std::uint64_t points_per_piece = 100000;
  std::uint64_t clusters = 16;
  std::uint64_t features = 8;
  std::size_t iterations = 8;
  std::size_t pieces = 0;
};

// Lloyd's k-means as an ndarray program: per iteration, every chunk assigns
// its points to the nearest centroid (broadcast read of the centroid table)
// and reduces partial centroid sums into the shared table (commutative sum
// reduction) — the assign/reduce/update pattern data-analytics runtimes live
// on.
// k-means reads the whole centroid table from every chunk task; the table
// is small, so the broadcast view is simply the array itself.
inline const NDArray& centroids_row(LegateRuntime&, const NDArray& centroids) {
  return centroids;
}

inline core::ApplicationMain make_kmeans(const KMeansConfig& cfg,
                                         const LegateFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    LegateRuntime np(ctx, fns, cfg.pieces);
    const std::uint64_t n = cfg.points_per_piece * np.pieces();
    NDArray points = np.zeros2d(n, cfg.features);
    NDArray labels = np.zeros(n);
    NDArray centroids = np.zeros2d(cfg.clusters, cfg.features);
    NDArray sums = np.zeros2d(cfg.clusters, cfg.features);

    const TraceId trace(14);
    for (std::size_t it = 0; it < cfg.iterations; ++it) {
      ctx.begin_trace(trace);
      // Assign: labels = argmin_c ||points - centroids[c]|| (centroids
      // broadcast to every chunk).
      np.matvec(labels, points, /*broadcast*/ centroids_row(np, centroids));
      // Partial sums reduced into the shared centroid-sum table.
      np.matvec_transpose(sums, points, labels);
      // Update: centroids = sums / counts (tiny, chunked over clusters).
      np.map(centroids, sums);
      ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps::legate
