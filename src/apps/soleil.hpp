// Soleil-X proxy (paper §5.2, Figure 16): a coupled multi-physics solver
// with three modules — fluid flow, Lagrangian particles, and thermal
// radiation (DOM) — each with its own partitions, exchanging data every
// timestep.
//
// Why it needs DCR rather than SCR (paper): the radiation sweep uses a
// number of wavefront partitions "that cannot be fixed statically", chosen
// here at run time from the (replicated) RNG, and the cross-module coupling
// creates dependence patterns across different partitions of shared regions.
#pragma once

#include <cstdint>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct SoleilConfig {
  std::int64_t cells_per_piece = 32768;
  std::int64_t particles_per_piece = 10000;
  std::size_t pieces = 4;
  std::size_t steps = 8;
  ShardingId sharding = core::ShardingRegistry::blocked();
};

struct SoleilFunctions {
  FunctionId fluid_step;       // halo stencil on fluid cells
  FunctionId particle_advect;  // particles read fluid, RW particles
  FunctionId particle_feedback;  // RED momentum back to fluid
  FunctionId radiation_sweep;  // wavefront over dynamic partitions
  FunctionId couple_radiation; // radiation -> fluid energy
};

inline SoleilFunctions register_soleil_functions(core::FunctionRegistry& reg,
                                                 double ns_per_cell) {
  SoleilFunctions fns;
  fns.fluid_step = reg.register_simple("fluid_step", us(5), ns_per_cell);
  fns.particle_advect = reg.register_simple("particle_advect", us(5), ns_per_cell * 0.5);
  fns.particle_feedback = reg.register_simple("particle_feedback", us(5), ns_per_cell * 0.2);
  fns.radiation_sweep = reg.register_simple("radiation_sweep", us(5), ns_per_cell * 0.4);
  fns.couple_radiation = reg.register_simple("couple_radiation", us(5), ns_per_cell * 0.2);
  return fns;
}

inline core::ApplicationMain make_soleil_app(const SoleilConfig& cfg,
                                             const SoleilFunctions& fns) {
  return [cfg, fns](core::Context& ctx) {
    using namespace rt;
    const auto pieces = static_cast<std::int64_t>(cfg.pieces);
    const std::int64_t ncells = cfg.cells_per_piece * pieces;
    const std::int64_t nparts = cfg.particles_per_piece * pieces;

    FieldSpaceId cfs = ctx.create_field_space();
    const FieldId rho = ctx.allocate_field(cfs, 8, "rho");
    const FieldId momentum = ctx.allocate_field(cfs, 8, "momentum");
    const FieldId energy = ctx.allocate_field(cfs, 8, "energy");
    const FieldId radiation = ctx.allocate_field(cfs, 8, "radiation");
    FieldSpaceId pfs = ctx.create_field_space();
    const FieldId ppos = ctx.allocate_field(pfs, 8, "ppos");

    const RegionTreeId cell_tree = ctx.create_region(Rect::r1(0, ncells - 1), cfs);
    const RegionTreeId part_tree = ctx.create_region(Rect::r1(0, nparts - 1), pfs);
    const IndexSpaceId cells = ctx.root(cell_tree);
    const IndexSpaceId particles = ctx.root(part_tree);

    const PartitionId owned_cells = ctx.partition_equal(cells, cfg.pieces);
    const PartitionId ghost_cells = ctx.partition_with_halo(cells, cfg.pieces, 2);
    const PartitionId owned_parts = ctx.partition_equal(particles, cfg.pieces);

    // Radiation wavefronts: the partition *count* is data-dependent (here:
    // drawn from the replicated RNG) — this is what rules out SCR.
    const std::size_t wavefronts = 2 + ctx.rng().next_below(3);  // 2..4
    std::vector<PartitionId> sweep_parts;
    for (std::size_t w = 0; w < wavefronts; ++w) {
      sweep_parts.push_back(ctx.partition_with_halo(cells, cfg.pieces,
                                                    static_cast<std::int64_t>(w + 1)));
    }

    ctx.fill(cells, {rho, momentum, energy, radiation});
    ctx.fill(particles, {ppos});

    const Rect domain = Rect::r1(0, pieces - 1);
    for (std::size_t t = 0; t < cfg.steps; ++t) {
      // Fluid step: halo stencil — writes momentum/energy, reads the halo of
      // rho (distinct fields, so point tasks are pairwise independent, as
      // required of a task group).
      core::IndexLaunch fluid;
      fluid.fn = fns.fluid_step;
      fluid.domain = domain;
      fluid.sharding = cfg.sharding;
      fluid.requirements.push_back(GroupRequirement::on_partition(
          owned_cells, {momentum, energy}, Privilege::ReadWrite));
      fluid.requirements.push_back(
          GroupRequirement::on_partition(ghost_cells, {rho}, Privilege::ReadOnly));
      ctx.index_launch(fluid);

      // Density update from the new momentum (owned-only, disjoint).
      core::IndexLaunch dens;
      dens.fn = fns.fluid_step;
      dens.domain = domain;
      dens.sharding = cfg.sharding;
      dens.requirements.push_back(
          GroupRequirement::on_partition(owned_cells, {rho}, Privilege::ReadWrite));
      dens.requirements.push_back(
          GroupRequirement::on_partition(owned_cells, {momentum}, Privilege::ReadOnly));
      ctx.index_launch(dens);

      // Particles advect through the fluid.
      core::IndexLaunch advect;
      advect.fn = fns.particle_advect;
      advect.domain = domain;
      advect.sharding = cfg.sharding;
      advect.requirements.push_back(
          GroupRequirement::on_partition(owned_parts, {ppos}, Privilege::ReadWrite));
      advect.requirements.push_back(
          GroupRequirement::on_partition(ghost_cells, {momentum}, Privilege::ReadOnly));
      ctx.index_launch(advect);

      // Particle feedback: reduction onto fluid momentum.
      core::IndexLaunch feedback;
      feedback.fn = fns.particle_feedback;
      feedback.domain = domain;
      feedback.sharding = cfg.sharding;
      feedback.requirements.push_back(
          GroupRequirement::on_partition(owned_parts, {ppos}, Privilege::ReadOnly));
      feedback.requirements.push_back(GroupRequirement::on_partition(
          ghost_cells, {momentum}, Privilege::Reduce, /*redop=*/1));
      ctx.index_launch(feedback);

      // Radiation: a sweep per wavefront partition (dynamic count).  Each
      // sweep writes owned radiation reading an increasingly wide halo of
      // energy; the widening upper bounds defeat SCR's static analysis.
      for (std::size_t w = 0; w < wavefronts; ++w) {
        core::IndexLaunch sweep;
        sweep.fn = fns.radiation_sweep;
        sweep.domain = domain;
        sweep.sharding = cfg.sharding;
        sweep.requirements.push_back(GroupRequirement::on_partition(
            owned_cells, {radiation}, Privilege::ReadWrite));
        sweep.requirements.push_back(GroupRequirement::on_partition(
            sweep_parts[w], {energy}, Privilege::ReadOnly));
        ctx.index_launch(sweep);
      }

      // Couple radiation back into the fluid energy.
      core::IndexLaunch couple;
      couple.fn = fns.couple_radiation;
      couple.domain = domain;
      couple.sharding = cfg.sharding;
      couple.requirements.push_back(
          GroupRequirement::on_partition(owned_cells, {energy}, Privilege::ReadWrite));
      couple.requirements.push_back(
          GroupRequirement::on_partition(owned_cells, {radiation}, Privilege::ReadOnly));
      ctx.index_launch(couple);
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::apps
