// Task Bench (paper §5.5, Slaughter et al. ICS'20) and the METG(50%)
// methodology used for Figure 21.
//
// The benchmark is a parameterized task graph: a stencil dependence pattern
// of `width` tasks per timestep for `steps` timesteps, with uniform task
// granularity.  "By itself, the stencil benchmark has no task parallelism to
// hide overhead, but by running four independent copies simultaneously, we
// can simulate an application with a modicum of task parallelism."
//
// METG(50%): the minimum effective task granularity at which the system
// achieves >= 50% efficiency versus perfect scaling (total useful task time
// / (processors * elapsed)).  Lower is better; it isolates runtime overhead
// from application characteristics.
#pragma once

#include <cstdint>
#include <functional>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::apps {

struct TaskBenchConfig {
  std::size_t width = 4;        // tasks per timestep (usually = processors)
  std::size_t steps = 16;
  std::size_t copies = 4;       // independent graph copies (task parallelism)
  SimTime task_granularity = us(100);
  bool use_trace = false;
  ShardingId sharding = core::ShardingRegistry::blocked();
};

inline FunctionId register_taskbench_function(core::FunctionRegistry& reg) {
  return reg.register_function(core::TaskFunction{
      "taskbench.stencil",
      [](const core::PointTaskInfo& info) {
        return static_cast<SimTime>(info.args.at(0));
      },
      nullptr});
}

inline core::ApplicationMain make_taskbench_app(const TaskBenchConfig& cfg, FunctionId fn) {
  return [cfg, fn](core::Context& ctx) {
    using namespace rt;
    const auto width = static_cast<std::int64_t>(cfg.width);

    // Double-buffered stencil (as in Task Bench proper): step t writes
    // buffer[t%2] reading the halo of buffer[(t+1)%2], so point tasks within
    // one timestep are pairwise independent.
    struct Copy {
      PartitionId owned;
      PartitionId halo;
      FieldId data[2];
      IndexSpaceId region;
    };
    std::vector<Copy> copies;
    for (std::size_t c = 0; c < cfg.copies; ++c) {
      FieldSpaceId fs = ctx.create_field_space();
      Copy cp;
      cp.data[0] = ctx.allocate_field(fs, 8, "data0");
      cp.data[1] = ctx.allocate_field(fs, 8, "data1");
      const RegionTreeId tree = ctx.create_region(Rect::r1(0, width * 16 - 1), fs);
      cp.region = ctx.root(tree);
      cp.owned = ctx.partition_equal(cp.region, cfg.width);
      cp.halo = ctx.partition_with_halo(cp.region, cfg.width, 1);
      copies.push_back(cp);
      ctx.fill(cp.region, {cp.data[0], cp.data[1]});
    }

    const Rect domain = Rect::r1(0, width - 1);
    const TraceId trace(5);
    for (std::size_t t = 0; t < cfg.steps; ++t) {
      // Each trace spans two steps so the double-buffer parity lines up on
      // replay.
      if (cfg.use_trace && t % 2 == 0) ctx.begin_trace(trace);
      for (const Copy& cp : copies) {
        core::IndexLaunch l;
        l.fn = fn;
        l.domain = domain;
        l.sharding = cfg.sharding;
        l.args = {static_cast<std::int64_t>(cfg.task_granularity)};
        l.requirements.push_back(GroupRequirement::on_partition(
            cp.owned, {cp.data[t % 2]}, Privilege::ReadWrite));
        l.requirements.push_back(GroupRequirement::on_partition(
            cp.halo, {cp.data[(t + 1) % 2]}, Privilege::ReadOnly));
        ctx.index_launch(l);
      }
      if (cfg.use_trace && (t % 2 == 1 || t + 1 == cfg.steps)) ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

// Efficiency of a run: useful task time / (compute processors * makespan).
inline double taskbench_efficiency(const TaskBenchConfig& cfg, std::size_t processors,
                                   SimTime makespan) {
  const double useful = static_cast<double>(cfg.width * cfg.steps * cfg.copies) *
                        static_cast<double>(cfg.task_granularity);
  return useful / (static_cast<double>(processors) * static_cast<double>(makespan));
}

// METG(50%): binary-search the smallest task granularity with >= 50%
// efficiency.  `run` executes the benchmark and returns the makespan.
inline SimTime find_metg(
    TaskBenchConfig cfg, std::size_t processors,
    const std::function<SimTime(const TaskBenchConfig&)>& run,
    double target_efficiency = 0.5) {
  SimTime lo = us(1), hi = us(1);
  // Grow until efficient.
  for (int i = 0; i < 24; ++i) {
    cfg.task_granularity = hi;
    if (taskbench_efficiency(cfg, processors, run(cfg)) >= target_efficiency) break;
    hi *= 2;
  }
  if (hi == us(1)) return hi;  // efficient even at the smallest granularity
  lo = hi / 2;
  for (int i = 0; i < 8; ++i) {
    const SimTime mid = (lo + hi) / 2;
    cfg.task_granularity = mid;
    if (taskbench_efficiency(cfg, processors, run(cfg)) >= target_efficiency) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace dcr::apps
