// Tree-based collectives over the point-to-point network.
//
// Paper §4.2: "Our DCR implementation uses a set of collective primitives for
// performing cooperative work between shards: broadcast ... reduce ...
// all-gather ... and all-reduce ... implemented using standard tree or
// butterfly communication networks with O(log N) latency."
//
// We implement all four on a binomial tree rooted at rank 0: values reduce up
// the tree as participants arrive, then the combined result broadcasts back
// down.  Each participant gets a completion event that fires when the result
// reaches its node.  Payload sizes are modeled per phase:
//   Reduce/AllReduce : every hop carries `payload_bytes` (element-wise merge)
//   Gather/AllGather : an up-hop carries payload_bytes * subtree_size
// A zero-payload AllReduce is exactly the paper's cross-shard fence
// ("an all-gather collective with no data payload", §4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "scope/context.hpp"
#include "sim/network.hpp"

namespace dcr::sim {

enum class CollectiveKind { Reduce, Broadcast, AllReduce, AllGather };

// One collective operation among a fixed set of participants (one per rank;
// rank r lives on placement[r]).  T is the value type; `combine` must be
// associative.  For AllGather use T = std::vector<U> with concatenation.
template <typename T>
class Collective {
 public:
  using CombineFn = std::function<T(T, T)>;

  Collective(Simulator& sim, Network& net, std::vector<NodeId> placement,
             CollectiveKind kind, std::uint64_t payload_bytes, CombineFn combine)
      : sim_(sim),
        net_(net),
        placement_(std::move(placement)),
        kind_(kind),
        payload_bytes_(payload_bytes),
        combine_(std::move(combine)),
        ranks_(placement_.size()) {
    DCR_CHECK(!placement_.empty());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      ranks_[r].subtree_size = 1;
    }
    // Binomial-tree shape: parent(r) = r with its lowest set bit cleared.
    for (std::size_t r = ranks_.size(); r-- > 1;) {
      const std::size_t parent = r & (r - 1);
      ranks_[parent].num_children++;
      ranks_[parent].subtree_size += ranks_[r].subtree_size;
    }
  }

  std::size_t num_ranks() const { return ranks_.size(); }

  // Whether rank `r` has already contributed (recovery uses this to rejoin a
  // replacement shard into pending collectives without double-arriving).
  bool has_arrived(std::size_t rank) const {
    DCR_CHECK(rank < ranks_.size());
    return ranks_[rank].arrived;
  }

  // Rank `r` contributes its value; the returned event triggers when the
  // combined result is available at rank r's node.  Each rank must arrive
  // exactly once.  (Broadcast: only rank 0's value matters; other ranks
  // still arrive to model their participation.)
  //
  // `ctx` is the causal context of this contribution (dcr-scope).  Contexts
  // merge by scope::latest at every hop, so `result_ctx()` names the
  // globally last contributor once the round completes — the shard (and
  // span) everyone else was waiting on.
  Event arrive(std::size_t rank, T value, const scope::TraceCtx& ctx = {}) {
    DCR_CHECK(rank < ranks_.size());
    RankState& rs = ranks_[rank];
    DCR_CHECK(!rs.arrived) << "collective rank " << rank << " arrived twice";
    rs.arrived = true;
    if (kind_ == CollectiveKind::Broadcast) {
      // A broadcast does not wait for non-root participants: the root's value
      // flows down the tree as soon as the root arrives.
      if (rank == 0) {
        result_ = std::move(value);
        result_ctx_ = ctx;
        broadcast_down(0);
      }
      return rs.done;
    }
    accumulate(rank, std::move(value), ctx);
    return rs.done;
  }

  // The combined value; valid once this rank's completion event triggered.
  const T& result() const {
    DCR_CHECK(result_.has_value());
    return *result_;
  }

  // The latest-merged causal context of all contributions so far; once the
  // round completes this is the last contributor (invalid if tracing is off).
  const scope::TraceCtx& result_ctx() const { return result_ctx_; }

  // Total bytes this collective put on the network (for stats / ablations).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct RankState {
    bool arrived = false;
    int num_children = 0;
    int children_received = 0;
    std::size_t subtree_size = 0;
    std::optional<T> partial;
    scope::TraceCtx ctx;  // latest-merged context of contributions seen here
    UserEvent done;
  };

  std::uint64_t up_bytes(std::size_t rank) const {
    switch (kind_) {
      case CollectiveKind::AllGather:
        return payload_bytes_ * ranks_[rank].subtree_size;
      case CollectiveKind::Broadcast:
        return 0;  // no data flows up for a broadcast
      default:
        return payload_bytes_;
    }
  }

  std::uint64_t down_bytes() const {
    switch (kind_) {
      case CollectiveKind::Reduce:
        return 0;  // result stays at the root
      case CollectiveKind::AllGather:
        return payload_bytes_ * ranks_.size();
      default:
        return payload_bytes_;
    }
  }

  void accumulate(std::size_t rank, T value, const scope::TraceCtx& ctx) {
    RankState& rs = ranks_[rank];
    rs.partial = rs.partial ? combine_(std::move(*rs.partial), std::move(value))
                            : std::move(value);
    rs.ctx = scope::latest(rs.ctx, ctx);
    maybe_send_up(rank);
  }

  void maybe_send_up(std::size_t rank) {
    RankState& rs = ranks_[rank];
    if (!rs.arrived || rs.children_received != rs.num_children) return;
    if (rank == 0) {
      result_ = std::move(rs.partial);
      result_ctx_ = rs.ctx;
      broadcast_down(0);
      return;
    }
    const std::size_t parent = rank & (rank - 1);
    const std::uint64_t nbytes = up_bytes(rank);
    bytes_sent_ += nbytes;
    // The up-hop message carries this subtree's merged context, both on the
    // wire (for the network tap) and into the parent's merge.
    net_.send(placement_[rank], placement_[parent], nbytes, rs.ctx,
              [this, parent, v = std::move(*rs.partial), c = rs.ctx]() mutable {
                ranks_[parent].children_received++;
                accumulate_from_child(parent, std::move(v), c);
              });
    rs.partial.reset();
  }

  void accumulate_from_child(std::size_t rank, T value, const scope::TraceCtx& ctx) {
    RankState& rs = ranks_[rank];
    rs.partial = rs.partial ? combine_(std::move(*rs.partial), std::move(value))
                            : std::move(value);
    rs.ctx = scope::latest(rs.ctx, ctx);
    maybe_send_up(rank);
  }

  void broadcast_down(std::size_t rank) {
    ranks_[rank].done.trigger(sim_.now());
    // Children of r in a binomial tree: r | (1<<k) for k above r's low bit.
    for (std::size_t bit = 1; rank + bit < ranks_.size(); bit <<= 1) {
      if (rank & bit) break;  // bits at/below r's lowest set bit are not children
      const std::size_t child = rank | bit;
      const std::uint64_t nbytes = down_bytes();
      bytes_sent_ += nbytes;
      net_.send(placement_[rank], placement_[child], nbytes, result_ctx_,
                [this, child] { broadcast_down(child); });
    }
  }

  Simulator& sim_;
  Network& net_;
  std::vector<NodeId> placement_;
  CollectiveKind kind_;
  std::uint64_t payload_bytes_;
  CombineFn combine_;
  std::vector<RankState> ranks_;
  std::optional<T> result_;
  scope::TraceCtx result_ctx_;
  std::uint64_t bytes_sent_ = 0;
};

// A data-less barrier among the given node placement: the paper's cross-shard
// fence primitive.
class FenceCollective {
 public:
  FenceCollective(Simulator& sim, Network& net, std::vector<NodeId> placement)
      : sim_(sim),
        impl_(sim, net, std::move(placement), CollectiveKind::AllReduce,
              /*payload_bytes=*/0,
              [](Unit, Unit) { return Unit{}; }),
        arrived_at_(impl_.num_ranks(), kTimeNever),
        completed_at_rank_(impl_.num_ranks(), kTimeNever) {}

  Event arrive(std::size_t rank, const scope::TraceCtx& ctx = {}) {
    if (first_arrival_ == kTimeNever) first_arrival_ = sim_.now();
    const SimTime now = sim_.now();
    arrived_at_[rank] = now;
    // Track the last arriver with the same (time, rank) tie-break as
    // scope::latest, so the raw timestamps agree with the merged releaser
    // context even when tracing is off.
    if (last_arrival_rank_ == scope::kNoShard || now > last_arrival_ ||
        (now == last_arrival_ && rank > last_arrival_rank_)) {
      last_arrival_ = now;
      last_arrival_rank_ = static_cast<std::uint32_t>(rank);
    }
    Event done = impl_.arrive(rank, Unit{}, ctx);
    // Completion timestamp for latency accounting (dcr-prof): the last rank
    // to see the combined result defines when the fence round finished.
    done.on_trigger([this, rank] {
      completed_at_rank_[rank] = sim_.now();
      completed_at_ = std::max(completed_at_, sim_.now());
    });
    return done;
  }
  std::size_t num_ranks() const { return impl_.num_ranks(); }
  bool has_arrived(std::size_t rank) const { return impl_.has_arrived(rank); }
  // How many ranks have contributed so far.  Dependence-template tests use
  // this to assert replayed windows drive the same fence traffic as fresh
  // analysis: every fence a replay re-creates must still be fully arrived at
  // by every shard before the run can quiesce.
  std::size_t arrivals() const {
    std::size_t n = 0;
    for (std::size_t r = 0; r < impl_.num_ranks(); ++r) {
      n += impl_.has_arrived(r) ? 1 : 0;
    }
    return n;
  }
  bool complete() const { return arrivals() == num_ranks(); }

  // Simulated round latency, first arrival -> last completion (dcr-prof's
  // collective_latency_ns).  Zero until the round completes.
  SimTime first_arrival() const { return first_arrival_; }
  SimTime completed_at() const { return completed_at_; }
  SimTime latency() const {
    return completed_at_ >= first_arrival_ ? completed_at_ - first_arrival_ : 0;
  }

  // ---- per-rank blame data (dcr-scope) -----------------------------------
  // kTimeNever until the rank arrives / its completion event fires.
  SimTime arrival_time(std::size_t rank) const { return arrived_at_[rank]; }
  SimTime completion_time(std::size_t rank) const { return completed_at_rank_[rank]; }
  // The last rank to contribute (kNoShard until any rank arrives), and the
  // latest-merged causal context of all contributions — once complete, the
  // span/shard that released the fence.
  std::uint32_t last_arrival_rank() const { return last_arrival_rank_; }
  SimTime last_arrival() const { return last_arrival_; }
  const scope::TraceCtx& releaser() const { return impl_.result_ctx(); }

 private:
  struct Unit {};
  Simulator& sim_;
  Collective<Unit> impl_;
  SimTime first_arrival_ = kTimeNever;
  SimTime completed_at_ = 0;
  std::vector<SimTime> arrived_at_;
  std::vector<SimTime> completed_at_rank_;
  SimTime last_arrival_ = 0;
  std::uint32_t last_arrival_rank_ = scope::kNoShard;
};

}  // namespace dcr::sim
