// Execution timeline recording and rendering, in the spirit of Legion Prof:
// opt-in per-machine interval capture of what ran where and when, plus a
// monospace Gantt renderer for quick visual inspection of pipelining,
// fence stalls, and load imbalance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dcr::sim {

class Timeline {
 public:
  struct Interval {
    ProcId proc;
    SimTime start;
    SimTime end;
    std::string label;
  };

  void record(ProcId proc, SimTime start, SimTime end, std::string label) {
    intervals_.push_back(Interval{proc, start, end, std::move(label)});
  }

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  SimTime span_end() const {
    SimTime end = 0;
    for (const Interval& iv : intervals_) end = std::max(end, iv.end);
    return end;
  }

  // Fraction of [0, span_end] each processor spent busy.
  std::map<ProcId, double> utilization() const {
    std::map<ProcId, double> out;
    const double span = static_cast<double>(span_end());
    if (span == 0) return out;
    for (const Interval& iv : intervals_) {
      out[iv.proc] += static_cast<double>(iv.end - iv.start) / span;
    }
    return out;
  }

  // Monospace Gantt chart: one row per processor, `width` columns covering
  // [0, span_end].  Cells show the first letter of the occupying interval's
  // label ('#' when several intervals share a cell).
  std::string render(std::size_t width = 80) const {
    const SimTime end = span_end();
    if (end == 0 || width == 0) return "";
    std::map<ProcId, std::string> rows;
    std::map<ProcId, std::vector<int>> counts;
    for (const Interval& iv : intervals_) {
      auto& row = rows[iv.proc];
      auto& cnt = counts[iv.proc];
      if (row.empty()) {
        row.assign(width, '.');
        cnt.assign(width, 0);
      }
      const auto c0 = static_cast<std::size_t>(iv.start * (width - 1) / end);
      const auto c1 = static_cast<std::size_t>(iv.end * (width - 1) / end);
      for (std::size_t c = c0; c <= c1 && c < width; ++c) {
        row[c] = ++cnt[c] > 1 ? '#' : (iv.label.empty() ? '*' : iv.label[0]);
      }
    }
    std::ostringstream os;
    os << "timeline 0.." << end << " ns (" << intervals_.size() << " intervals)\n";
    for (const auto& [proc, row] : rows) {
      os << "p" << proc.value << " |" << row << "|\n";
    }
    return os.str();
  }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace dcr::sim
