// Quiescence tracking: a counter of outstanding completion events plus a
// shared "idle" event, so an execution fence costs O(1) per waiter instead
// of every waiter merging the full completion list.
#pragma once

#include <cstdint>

#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

class QuiescenceTracker {
 public:
  explicit QuiescenceTracker(Simulator& sim) : sim_(sim) {}

  // Track `e`; the tracker is idle when every tracked event has triggered.
  void add(const Event& e) {
    ++total_tracked_;
    if (e.has_triggered()) return;
    ++outstanding_;
    e.on_trigger([this] {
      if (--outstanding_ == 0 && idle_valid_) {
        const UserEvent idle = idle_;
        idle_valid_ = false;
        idle.trigger(sim_.now());
      }
    });
  }

  bool idle() const { return outstanding_ == 0; }
  std::uint64_t outstanding() const { return outstanding_; }
  std::uint64_t total_tracked() const { return total_tracked_; }

  // Event that triggers the next time the tracker becomes idle.  Callers
  // must re-check idle() afterwards (more work may have been added).
  Event idle_event() {
    if (!idle_valid_) {
      idle_ = UserEvent();
      idle_valid_ = true;
    }
    return idle_;
  }

 private:
  Simulator& sim_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t total_tracked_ = 0;
  UserEvent idle_;
  bool idle_valid_ = false;
};

}  // namespace dcr::sim
