#include "sim/fault.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace dcr::sim {

namespace {

// Map a 32-bit Philox word to a uniform double in [0, 1).
double to_unit(std::uint32_t w) {
  return static_cast<double>(w) * 0x1.0p-32;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config)
    : config_(std::move(config)),
      rng_(config_.seed, /*stream=*/0xFA17u),
      sdc_rng_(config_.seed, /*stream=*/0x5DC0u) {
  DCR_CHECK(config_.drop_rate >= 0.0 && config_.drop_rate < 1.0)
      << "drop_rate must be in [0, 1)";
  DCR_CHECK(config_.jitter_rate >= 0.0 && config_.jitter_rate <= 1.0);
  DCR_CHECK(config_.sdc.rate >= 0.0 && config_.sdc.rate < 1.0)
      << "sdc.rate must be in [0, 1)";
  DCR_CHECK(config_.sdc.bitflip_weight >= 0.0 && config_.sdc.bitflip_weight <= 1.0);
  for (const NodeSlowdown& s : config_.slowdowns) {
    DCR_CHECK(s.factor >= 1.0) << "slowdown factor must be >= 1";
  }
}

void FaultPlan::on_crash(std::function<void(NodeId, SimTime)> fn) {
  crash_listeners_.push_back(std::move(fn));
}

void FaultPlan::arm(Simulator& sim) {
  DCR_CHECK(!armed_) << "fault plan armed twice";
  armed_ = true;
  for (const NodeCrash& c : config_.crashes) {
    sim.schedule_at(c.at, [this, c, &sim] {
      if (c.node.value >= crashed_.size()) crashed_.resize(c.node.value + 1, false);
      if (crashed_[c.node.value]) return;  // already down (duplicate schedule)
      crashed_[c.node.value] = true;
      ++stats_.crashes_injected;
      for (const auto& fn : crash_listeners_) fn(c.node, sim.now());
    });
  }
}

FaultPlan::MessageFate FaultPlan::classify(std::uint64_t seq, NodeId src, NodeId dst,
                                           SimTime t) {
  MessageFate fate;
  if (node_dark(src, t) || node_dark(dst, t)) {
    ++stats_.blackouts;
    fate.drop = true;
    return fate;
  }
  if (config_.drop_rate == 0.0 && config_.jitter_rate == 0.0) return fate;
  // One Philox block per message: word 0 decides drop, word 1 decides jitter,
  // words 2..3 size the jitter.  Random access by sequence number keeps the
  // fate independent of the order in which faults are queried.
  const Philox4x32::Counter block = rng_.block_at(seq);
  if (to_unit(block[0]) < config_.drop_rate) {
    ++stats_.drops;
    fate.drop = true;
    return fate;
  }
  if (config_.jitter_rate > 0.0 && to_unit(block[1]) < config_.jitter_rate &&
      config_.max_jitter > 0) {
    const std::uint64_t wide =
        (static_cast<std::uint64_t>(block[2]) << 32) | block[3];
    fate.extra_delay = wide % (config_.max_jitter + 1);
    ++stats_.jittered;
    stats_.jitter_added += fate.extra_delay;
  }
  return fate;
}

bool FaultPlan::node_dark(NodeId n, SimTime t) const {
  if (n.value < crashed_.size() && crashed_[n.value]) return true;
  for (const NodeOutage& o : config_.outages) {
    if (o.node == n && t >= o.start && t < o.end) return true;
  }
  return false;
}

bool FaultPlan::node_crashed(NodeId n) const {
  return n.value < crashed_.size() && crashed_[n.value];
}

double FaultPlan::slowdown(NodeId n, SimTime t) const {
  double factor = 1.0;
  for (const NodeSlowdown& s : config_.slowdowns) {
    if (s.node == n && t >= s.start && t < s.end) factor = std::max(factor, s.factor);
  }
  return factor;
}

SimTime FaultPlan::scaled_duration(NodeId n, SimTime t, SimTime duration) const {
  const double factor = slowdown(n, t);
  if (factor == 1.0) return duration;
  return static_cast<SimTime>(static_cast<double>(duration) * factor);
}

FaultPlan::SdcFate FaultPlan::corrupt_value(std::uint64_t instance, double value,
                                            double class_weight) {
  SdcFate fate{.corrupted = false, .value = value};
  if (config_.sdc.rate <= 0.0 || class_weight <= 0.0) return fate;
  // One block per execution instance: word 0 decides corruption, word 1
  // selects the model, words 2..3 parameterize it.  Random access keeps the
  // fate a pure function of the instance id — a replica and its primary draw
  // independently, and an unreplicated run corrupts identically to the
  // primary (execution index 0) of a replicated one.
  const Philox4x32::Counter block = sdc_rng_.block_at(instance);
  if (to_unit(block[0]) >= config_.sdc.rate * class_weight) return fate;
  fate.corrupted = true;
  ++stats_.sdc_injected;
  if (to_unit(block[1]) < config_.sdc.bitflip_weight) {
    // Mantissa bit-flip: never touches sign or exponent, so a finite value
    // stays finite (and keeps its sign) but its digest always changes.
    ++stats_.sdc_bitflips;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    fate.value = std::bit_cast<double>(bits ^ (1ull << (block[2] % 52)));
  } else {
    // Relative perturbation; the absolute fallback keeps 0.0 corruptible.
    ++stats_.sdc_perturbations;
    const double unit =
        to_unit(block[2]) * 2.0 - 1.0 + (block[3] % 2 == 0 ? 0x1.0p-32 : -0x1.0p-32);
    const double delta = config_.sdc.perturb_scale * (value != 0.0 ? value * unit : unit);
    fate.value = value + delta;
    if (std::bit_cast<std::uint64_t>(fate.value) == std::bit_cast<std::uint64_t>(value)) {
      // Perturbation rounded away (value too large for the scale): degrade to
      // a low-mantissa flip so every injected corruption is digest-visible.
      fate.value = std::bit_cast<double>(std::bit_cast<std::uint64_t>(value) ^ 1ull);
    }
  }
  return fate;
}

void FaultPlan::restart_node(NodeId n, SimTime) {
  if (n.value < crashed_.size() && crashed_[n.value]) {
    crashed_[n.value] = false;
    ++stats_.restarts;
  }
}

}  // namespace dcr::sim
