// Realm-style lightweight events for the discrete-event simulator.
//
// An Event is a copyable handle to a one-shot trigger.  Waiters registered
// before the trigger run when it fires; waiters registered after run
// immediately.  Events are the universal synchronization primitive of the
// substrate: task completion, message delivery, collective completion, and
// cross-shard fences are all Events (mirroring Legion's use of Realm events,
// paper §4.1 "gathers event preconditions").
//
// Thread-safety: none needed — the simulator executes exactly one activity
// at a time (see simulator.hpp), so all event operations happen on the
// simulation thread or on the single currently-running process thread.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dcr::sim {

namespace detail {
struct EventState {
  bool triggered = false;
  SimTime trigger_time = kTimeNever;
  std::vector<std::function<void()>> waiters;
};
}  // namespace detail

class Event {
 public:
  // Default-constructed events are "no event": already triggered at time 0.
  // This matches Realm's NO_EVENT and keeps precondition plumbing simple.
  Event() = default;

  static Event no_event() { return Event(); }

  bool exists() const { return static_cast<bool>(state_); }

  bool has_triggered() const { return !state_ || state_->triggered; }

  // Time at which the event fired; only meaningful once triggered.
  SimTime trigger_time() const {
    if (!state_) return 0;
    DCR_CHECK(state_->triggered);
    return state_->trigger_time;
  }

  // Invoke `fn` when the event triggers (immediately if it already has).
  void on_trigger(std::function<void()> fn) const {
    if (has_triggered()) {
      fn();
    } else {
      state_->waiters.push_back(std::move(fn));
    }
  }

  friend bool operator==(const Event& a, const Event& b) {
    return a.state_ == b.state_;
  }

 protected:
  friend class UserEvent;
  friend Event merge_events(std::span<const Event> events);

  std::shared_ptr<detail::EventState> state_;
};

// An event that client code triggers explicitly.
class UserEvent : public Event {
 public:
  UserEvent() { state_ = std::make_shared<detail::EventState>(); }

  void trigger(SimTime now) const {
    DCR_CHECK(!state_->triggered) << "event double-trigger";
    state_->triggered = true;
    state_->trigger_time = now;
    // Waiters may register further waiters while we iterate; index loop keeps
    // that safe (push_back may reallocate, so no iterators).
    for (std::size_t i = 0; i < state_->waiters.size(); ++i) {
      auto fn = std::move(state_->waiters[i]);
      fn();
    }
    state_->waiters.clear();
    state_->waiters.shrink_to_fit();
  }
};

// Event that triggers once all inputs have triggered (Realm merge_events).
// Trigger time is the max of the input trigger times.
inline Event merge_events(std::span<const Event> events) {
  std::vector<Event> pending;
  SimTime latest = 0;
  for (const Event& e : events) {
    if (!e.has_triggered()) {
      pending.push_back(e);
    } else if (e.exists()) {
      latest = std::max(latest, e.trigger_time());
    }
  }
  if (pending.empty()) {
    if (latest == 0) return Event::no_event();
    UserEvent done;
    done.trigger(latest);
    return done;
  }
  if (pending.size() == 1 && latest == 0) return pending.front();

  UserEvent merged;
  auto remaining = std::make_shared<std::size_t>(pending.size());
  for (const Event& e : pending) {
    e.on_trigger([merged, remaining, e]() {
      if (--*remaining == 0) merged.trigger(e.trigger_time());
    });
  }
  return merged;
}

inline Event merge_events(std::initializer_list<Event> events) {
  return merge_events(std::span<const Event>(events.begin(), events.size()));
}

}  // namespace dcr::sim
