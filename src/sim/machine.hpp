// The simulated machine: N nodes, each with one analysis processor and a set
// of compute processors, joined by a Network.  This is the stand-in for the
// clusters the paper evaluates on (Piz-Daint, Summit, Sierra, DGX-1V pods);
// see DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/processor.hpp"
#include "sim/reliable.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

struct MachineConfig {
  std::size_t num_nodes = 1;
  std::size_t compute_procs_per_node = 1;  // "GPUs" (or cores) per node
  NetworkParams network;
};

struct MachineNode {
  NodeId id;
  std::unique_ptr<Processor> analysis;
  std::vector<std::unique_ptr<Processor>> compute;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config)
      : config_(config), network_(sim_, config.num_nodes, config.network) {
    DCR_CHECK(config.num_nodes >= 1);
    std::uint32_t next_proc = 0;
    nodes_.reserve(config.num_nodes);
    for (std::size_t n = 0; n < config.num_nodes; ++n) {
      MachineNode node;
      node.id = NodeId(static_cast<std::uint32_t>(n));
      node.analysis = std::make_unique<Processor>(sim_, ProcId(next_proc++), node.id,
                                                  ProcKind::Analysis);
      for (std::size_t p = 0; p < config.compute_procs_per_node; ++p) {
        node.compute.push_back(std::make_unique<Processor>(
            sim_, ProcId(next_proc++), node.id, ProcKind::Compute));
      }
      nodes_.push_back(std::move(node));
    }
  }

  const MachineConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }
  Network& network() { return network_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t total_compute_procs() const {
    return nodes_.size() * config_.compute_procs_per_node;
  }

  MachineNode& node(NodeId id) {
    DCR_CHECK(id.value < nodes_.size());
    return nodes_[id.value];
  }
  Processor& analysis_proc(NodeId id) { return *node(id).analysis; }
  Processor& compute_proc(NodeId id, std::size_t idx) {
    auto& n = node(id);
    DCR_CHECK(idx < n.compute.size());
    return *n.compute[idx];
  }

  // Global compute-processor indexing, round-robin across nodes then slots.
  Processor& global_compute_proc(std::size_t global_idx) {
    const std::size_t per = config_.compute_procs_per_node;
    return compute_proc(NodeId(static_cast<std::uint32_t>(global_idx / per)),
                        global_idx % per);
  }

  // Record every processor's execution intervals into `timeline` (profiling;
  // not owned; nullptr detaches).
  void attach_timeline(Timeline* timeline) {
    for (auto& n : nodes_) {
      n.analysis->attach_timeline(timeline);
      for (auto& p : n.compute) p->attach_timeline(timeline);
    }
  }

  // Enable fault injection for this machine: attach `plan` to the network and
  // every processor, arm its crash calendar, and install a reliable transport
  // so remote traffic survives drops.  `plan` must outlive the machine.
  void install_faults(FaultPlan& plan, ReliableParams reliable_params = {}) {
    DCR_CHECK(faults_ == nullptr) << "faults installed twice";
    faults_ = &plan;
    network_.attach_faults(&plan);
    for (auto& n : nodes_) {
      n.analysis->attach_faults(&plan);
      for (auto& p : n.compute) p->attach_faults(&plan);
    }
    reliable_ = std::make_unique<ReliableDelivery>(sim_, network_, reliable_params);
    reliable_->install();
    plan.arm(sim_);
  }

  FaultPlan* faults() { return faults_; }
  ReliableDelivery* reliable() { return reliable_.get(); }

  // Aggregate compute busy-time across the machine (for efficiency metrics).
  SimTime total_compute_busy() const {
    SimTime total = 0;
    for (const auto& n : nodes_) {
      for (const auto& p : n.compute) total += p->busy_time();
    }
    return total;
  }

 private:
  MachineConfig config_;
  Simulator sim_;
  Network network_;
  std::vector<MachineNode> nodes_;
  FaultPlan* faults_ = nullptr;            // not owned
  std::unique_ptr<ReliableDelivery> reliable_;
};

}  // namespace dcr::sim
