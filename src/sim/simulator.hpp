// Deterministic discrete-event simulator with process-oriented extensions.
//
// The simulator owns a virtual clock and an event calendar ordered by
// (time, insertion sequence).  Determinism: ties in time break by insertion
// order, no wall-clock anywhere, and at most one activity (the simulator loop
// or exactly one SimProcess) executes at any instant.
//
// SimProcess gives straight-line C++ code the ability to *block* in virtual
// time (delay, wait on an Event).  This is what lets application control
// programs — the replicated shard mains of DCR — be written as ordinary
// sequential C++ with arbitrary control flow, exactly the programming model
// the paper targets.  Each process is backed by an OS thread, but threads
// run strictly one-at-a-time via a handoff protocol, so the simulation stays
// deterministic and race-free without any atomics in user code.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/event.hpp"

namespace dcr::sim {

class Simulator;

// Thrown inside a process thread when the simulator is torn down while the
// process is still blocked; unwinds the user stack so destructors run.
struct ProcessKilled {};

// Handle passed to process bodies for interacting with virtual time.
class ProcessContext {
 public:
  ProcessContext(Simulator& sim, class SimProcess& proc) : sim_(sim), proc_(proc) {}

  Simulator& simulator() { return sim_; }
  SimTime now() const;

  // Advance this process's virtual time by `d`.
  void delay(SimTime d);

  // Block until `e` triggers (returns immediately if it already has).
  void wait(const Event& e);

  // Block until `e` triggers, but charge at least `min_delay` of virtual
  // time (models a blocking call with fixed overhead).
  void wait_at_least(const Event& e, SimTime min_delay) {
    const SimTime start = now();
    wait(e);
    if (now() < start + min_delay) delay(start + min_delay - now());
  }

 private:
  Simulator& sim_;
  SimProcess& proc_;
};

class SimProcess {
 public:
  SimProcess(Simulator& sim, std::string name, std::function<void(ProcessContext&)> body);
  ~SimProcess();

  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  const std::string& name() const { return name_; }
  bool finished() const { return state_ == State::Finished; }

  // Event that triggers when the process body returns.
  Event completion() const { return done_; }

  // Kill this process from the simulator thread (fault injection).  Legal
  // only while the process is not actively running — i.e. it is blocked in
  // virtual time or has not started yet, which is always the case when a
  // calendar callback (such as a scheduled crash) executes.  The body unwinds
  // via ProcessKilled so destructors run; returns once the thread is done.
  // The completion event never triggers for a killed process.
  void kill() {
    std::unique_lock lock(mutex_);
    if (state_ == State::Finished) return;
    DCR_CHECK(state_ != State::Running) << "cannot kill running process " << name_;
    kill_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return state_ == State::Finished; });
  }

 private:
  friend class Simulator;
  friend class ProcessContext;

  enum class State { NotStarted, Running, Blocked, Finished };

  // Called on the simulator thread: run the process until it blocks again.
  void resume();
  // Called on the process thread: hand control back to the simulator.
  void yield_to_sim();

  Simulator& sim_;
  std::string name_;
  std::function<void(ProcessContext&)> body_;
  UserEvent done_;

  std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = State::NotStarted;
  bool kill_ = false;
  std::thread thread_;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at now()+delay (ties run in scheduling order).
  void schedule(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  void schedule_at(SimTime t, std::function<void()> fn) {
    DCR_CHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
    calendar_.push(Item{t, next_seq_++, std::move(fn)});
  }

  // Create an event that triggers at now()+delay.
  Event timer(SimTime delay) {
    UserEvent e;
    schedule(delay, [this, e] { e.trigger(now_); });
    return e;
  }

  // Spawn a process; it starts executing at now()+start_delay.
  SimProcess& spawn(std::string name, std::function<void(ProcessContext&)> body,
                    SimTime start_delay = 0);

  // Run until the calendar is empty.  Returns the final virtual time.
  SimTime run();

  // Number of processes spawned that have not yet finished.
  std::size_t live_processes() const;

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  friend class SimProcess;
  friend class ProcessContext;

  struct Item {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct ItemOrder {
    bool operator()(const Item& a, const Item& b) const {
      // priority_queue is a max-heap; invert for earliest-first.
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Item, std::vector<Item>, ItemOrder> calendar_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
};

// ---- inline implementations ------------------------------------------------

inline SimTime ProcessContext::now() const { return sim_.now(); }

inline void ProcessContext::delay(SimTime d) {
  if (d == 0) return;
  sim_.schedule(d, [p = &proc_] { p->resume(); });
  proc_.yield_to_sim();
}

inline void ProcessContext::wait(const Event& e) {
  if (e.has_triggered()) return;
  e.on_trigger([p = &proc_, &sim = sim_] {
    // Defer the resume to a fresh calendar item so the triggering activity
    // finishes first; keeps trigger cascades deterministic.
    sim.schedule(0, [p] { p->resume(); });
  });
  proc_.yield_to_sim();
}

inline SimProcess::SimProcess(Simulator& sim, std::string name,
                              std::function<void(ProcessContext&)> body)
    : sim_(sim), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] {
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return state_ == State::Running || kill_; });
      if (kill_) {
        state_ = State::Finished;
        cv_.notify_all();
        return;
      }
    }
    try {
      ProcessContext ctx(sim_, *this);
      body_(ctx);
      done_.trigger(sim_.now());
    } catch (const ProcessKilled&) {
      // Torn down mid-flight; just unwind.
    }
    std::unique_lock lock(mutex_);
    state_ = State::Finished;
    cv_.notify_all();
  });
}

inline SimProcess::~SimProcess() {
  {
    std::unique_lock lock(mutex_);
    if (state_ != State::Finished) {
      kill_ = true;
      cv_.notify_all();
    }
  }
  if (thread_.joinable()) thread_.join();
}

inline void SimProcess::resume() {
  std::unique_lock lock(mutex_);
  if (state_ == State::Finished) return;
  DCR_CHECK(state_ != State::Running) << "process " << name_ << " resumed while running";
  state_ = State::Running;
  cv_.notify_all();
  cv_.wait(lock, [this] { return state_ != State::Running; });
}

inline void SimProcess::yield_to_sim() {
  std::unique_lock lock(mutex_);
  state_ = State::Blocked;
  cv_.notify_all();
  cv_.wait(lock, [this] { return state_ == State::Running || kill_; });
  if (kill_) throw ProcessKilled{};
}

inline SimProcess& Simulator::spawn(std::string name,
                                    std::function<void(ProcessContext&)> body,
                                    SimTime start_delay) {
  processes_.push_back(std::make_unique<SimProcess>(*this, std::move(name), std::move(body)));
  SimProcess* p = processes_.back().get();
  schedule(start_delay, [p] { p->resume(); });
  return *p;
}

inline SimTime Simulator::run() {
  while (!calendar_.empty()) {
    // priority_queue::top is const; move out via const_cast-free copy of fn.
    Item item = std::move(const_cast<Item&>(calendar_.top()));
    calendar_.pop();
    DCR_CHECK(item.time >= now_);
    now_ = item.time;
    ++events_processed_;
    item.fn();
  }
  return now_;
}

inline std::size_t Simulator::live_processes() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

inline Simulator::~Simulator() {
  // Kill blocked processes before members are destroyed.
  processes_.clear();
}

}  // namespace dcr::sim
