// Simulated processors.
//
// A Processor executes work items serially in FIFO-by-ready-time order, the
// way a Realm processor drains its task queue.  Every simulated node carries
// one *analysis* processor (the runtime thread executing dependence analysis
// and, under DCR, the replicated control program) and a configurable number
// of *compute* processors (stand-ins for the CPUs/GPUs that run leaf tasks).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"

namespace dcr::sim {

enum class ProcKind : std::uint8_t { Analysis, Compute };

class Processor {
 public:
  Processor(Simulator& sim, ProcId id, NodeId node, ProcKind kind)
      : sim_(sim), id_(id), node_(node), kind_(kind) {}

  ProcId id() const { return id_; }
  NodeId node() const { return node_; }
  ProcKind kind() const { return kind_; }

  // Enqueue a work item that becomes eligible when `precondition` triggers,
  // occupies the processor for `duration`, then triggers the returned event.
  // `body` (optional) runs at completion on the simulation thread; `label`
  // names the interval in an attached timeline.
  Event enqueue(SimTime duration, const Event& precondition = Event::no_event(),
                std::function<void()> body = nullptr, std::string label = {}) {
    UserEvent done;
    auto start_fn = [this, duration, done, body = std::move(body),
                     label = std::move(label)]() mutable {
      const SimTime start = std::max(sim_.now(), busy_until_);
      // Straggler injection: work starting inside a slowdown window stretches.
      if (faults_) duration = faults_->scaled_duration(node_, start, duration);
      const SimTime end = start + duration;
      busy_until_ = end;
      busy_time_ += duration;
      ++tasks_run_;
      if (timeline_ && duration > 0) timeline_->record(id_, start, end, std::move(label));
      sim_.schedule_at(end, [this, done, body = std::move(body)] {
        if (body) body();
        done.trigger(sim_.now());
      });
    };
    if (precondition.has_triggered()) {
      start_fn();
    } else {
      precondition.on_trigger(std::move(start_fn));
    }
    return done;
  }

  // Record this processor's intervals into `timeline` (not owned; nullptr
  // detaches).
  void attach_timeline(Timeline* timeline) { timeline_ = timeline; }

  // Consult `plan` for straggler windows when starting work (not owned;
  // nullptr detaches).
  void attach_faults(const FaultPlan* plan) { faults_ = plan; }

  // Earliest time a new item enqueued now would start.
  SimTime busy_until() const { return busy_until_; }

  SimTime busy_time() const { return busy_time_; }
  std::uint64_t tasks_run() const { return tasks_run_; }
  void reset_stats() { busy_time_ = 0; tasks_run_ = 0; }

 private:
  Simulator& sim_;
  ProcId id_;
  NodeId node_;
  ProcKind kind_;
  Timeline* timeline_ = nullptr;
  const FaultPlan* faults_ = nullptr;
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  std::uint64_t tasks_run_ = 0;
};

}  // namespace dcr::sim
