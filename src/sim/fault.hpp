// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is the adversarial half of the simulation: it decides, as a
// pure function of a seed and a per-message sequence number, which
// point-to-point messages are dropped or delayed, which nodes run slow
// (stragglers), which NICs go dark for a window (transient outages), and
// which nodes crash outright at scheduled virtual times.  Decisions are
// driven by the same Philox counter-based RNG the replicated control
// programs use (common/philox.hpp), so an entire faulty execution —
// including every retry, lease expiry, and recovery — replays bit-identically
// from (plan seed, schedule).
//
// The plan is passive until attached: `Network::send` consults it per message
// (network.hpp), `Processor::enqueue` consults it per work item
// (processor.hpp), and `arm()` schedules the crash/outage calendar events.
// With no plan attached every hook is a null-pointer branch: the happy path
// stays bit-identical to a fault-free build (zero messages, zero virtual
// time, zero RNG draws).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/philox.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

// A transient NIC outage: node `node` neither sends nor receives during
// [start, end).  Reliable transports ride it out with retries.
struct NodeOutage {
  NodeId node;
  SimTime start = 0;
  SimTime end = 0;
};

// A straggler window: work enqueued on `node`'s processors during
// [start, end) takes `factor`x as long (factor >= 1).
struct NodeSlowdown {
  NodeId node;
  SimTime start = 0;
  SimTime end = 0;
  double factor = 1.0;
};

// A fail-stop crash: at time `at` the node's NIC goes dark permanently (until
// a recovery layer calls restart_node) and crash listeners fire so the
// runtime can kill the control processes hosted there.
struct NodeCrash {
  NodeId node;
  SimTime at = 0;
};

// Silent data corruption on task results (the hazard of ISSUE 6 / the
// "Protecting Futures against SDC" fault model): with probability
// `rate * class_weight` a task execution's future value is corrupted in
// flight between the functional unit and the result buffer — either a
// single mantissa bit-flip (a particle strike) or a relative value
// perturbation (a mis-rounded accumulate).  The corruption is *silent*:
// nothing in the network or scheduler observes it; only digest comparison
// across duplicate executions (dcr/replicate.hpp) can.
struct SdcConfig {
  double rate = 0.0;            // per-execution base corruption probability
  double bitflip_weight = 0.5;  // P(bit-flip | corrupted); else perturbation
  double perturb_scale = 1e-3;  // relative magnitude of value perturbations
};

struct FaultConfig {
  std::uint64_t seed = 0;
  double drop_rate = 0.0;       // iid per-message drop probability
  double jitter_rate = 0.0;     // iid probability of extra delivery delay
  SimTime max_jitter = us(20);  // extra delay drawn uniform from [0, max_jitter]
  std::vector<NodeOutage> outages;
  std::vector<NodeSlowdown> slowdowns;
  std::vector<NodeCrash> crashes;
  SdcConfig sdc;
};

struct FaultStats {
  std::uint64_t drops = 0;            // messages lost to the drop probability
  std::uint64_t blackouts = 0;        // messages lost to dark NICs
  std::uint64_t jittered = 0;         // messages delivered late
  SimTime jitter_added = 0;           // total extra delay injected
  std::uint64_t crashes_injected = 0; // scheduled crashes that fired
  std::uint64_t restarts = 0;         // nodes brought back by recovery
  std::uint64_t sdc_injected = 0;     // task results silently corrupted
  std::uint64_t sdc_bitflips = 0;     //   ... of which mantissa bit-flips
  std::uint64_t sdc_perturbations = 0;//   ... of which value perturbations
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config = {});

  const FaultConfig& config() const { return config_; }

  // Listener invoked (on the simulation thread) when a scheduled crash fires.
  void on_crash(std::function<void(NodeId, SimTime)> fn);

  // Schedule the crash calendar into `sim`.  Called once, by whoever attaches
  // the plan to a machine (Machine::install_faults).
  void arm(Simulator& sim);
  bool armed() const { return armed_; }

  // ---- per-message fate (pure function of seq + config + liveness) ----
  struct MessageFate {
    bool drop = false;
    SimTime extra_delay = 0;
  };
  // `seq` is the network's monotone message sequence number; distinct
  // messages get independent Philox blocks, so fates are deterministic and
  // independent of calendar interleaving.
  MessageFate classify(std::uint64_t seq, NodeId src, NodeId dst, SimTime t);

  // A node is dark when crashed (and not restarted) or inside an outage
  // window: its NIC neither sends nor receives.
  bool node_dark(NodeId n, SimTime t) const;
  bool node_crashed(NodeId n) const;

  // Straggler factor (>= 1) for work starting on node n at time t.
  double slowdown(NodeId n, SimTime t) const;
  SimTime scaled_duration(NodeId n, SimTime t, SimTime duration) const;

  // ---- per-execution silent data corruption (pure function of instance) ----
  // `instance` must uniquely name one execution of one task (the runtime uses
  // task_id * 64 + execution_index so the primary and every replica draw
  // independent fates); `class_weight` scales the base rate per task class
  // (0 disables injection for that class).  Pure modulo stats: the same
  // instance always returns the same fate, so a replayed execution after
  // recovery re-corrupts — or stays clean — exactly as the original did.
  struct SdcFate {
    bool corrupted = false;
    double value = 0.0;  // the (possibly corrupted) result to use
  };
  SdcFate corrupt_value(std::uint64_t instance, double value, double class_weight = 1.0);

  // Recovery support: bring a crashed node's NIC back up (idempotent).
  void restart_node(NodeId n, SimTime t);

  const FaultStats& stats() const { return stats_; }
  // Called by the network when a dark-NIC message is swallowed.
  void count_blackout() { ++stats_.blackouts; }

 private:
  FaultConfig config_;
  Philox4x32 rng_;      // counter-based: classify() uses random access, no state
  Philox4x32 sdc_rng_;  // distinct stream: SDC fates never collide with message fates
  std::vector<bool> crashed_;  // indexed by node id, grown on demand
  std::vector<std::function<void(NodeId, SimTime)>> crash_listeners_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace dcr::sim
