// Point-to-point network model.
//
// Messages between simulated nodes follow a postal (alpha-beta) model with
// per-node NIC occupancy:
//
//   tx_start  = max(send_time, egress_free[src])
//   tx_end    = tx_start + bytes * ns_per_byte          (serialization)
//   arrival   = tx_end + alpha                          (wire latency)
//   delivery  = max(arrival, ingress_free[dst] + bytes * ns_per_byte)
//
// Occupying both endpoints' NICs is what makes bandwidth-bound patterns (the
// 768M-parameter gradient all-reduce of Figure 18, halo exchanges of the
// stencil codes) contend realistically, while small control messages (fences,
// determinism-check hashes) are latency-bound.  Intra-node messages bypass
// the NIC and cost a fixed local latency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

struct NetworkParams {
  SimTime alpha = us(1);          // per-message wire latency
  double ns_per_byte = 0.1;       // 1/bandwidth: 0.1 ns/B = 10 GB/s
  SimTime local_latency = ns(50); // same-node delivery
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t local_messages = 0;
};

class Network {
 public:
  Network(Simulator& sim, std::size_t num_nodes, NetworkParams params = {})
      : sim_(sim),
        params_(params),
        egress_free_(num_nodes, 0),
        ingress_free_(num_nodes, 0) {}

  const NetworkParams& params() const { return params_; }
  std::size_t num_nodes() const { return egress_free_.size(); }

  // Send `bytes` from src to dst; the returned event triggers at delivery.
  Event send(NodeId src, NodeId dst, std::uint64_t bytes) {
    DCR_CHECK(src.value < egress_free_.size() && dst.value < ingress_free_.size());
    const SimTime now = sim_.now();
    if (src == dst) {
      ++stats_.local_messages;
      return sim_.timer(params_.local_latency);
    }
    const auto ser = static_cast<SimTime>(static_cast<double>(bytes) * params_.ns_per_byte);
    const SimTime tx_start = std::max(now, egress_free_[src.value]);
    const SimTime tx_end = tx_start + ser;
    egress_free_[src.value] = tx_end;
    const SimTime arrival = tx_end + params_.alpha;
    const SimTime delivery = std::max(arrival, ingress_free_[dst.value] + ser);
    ingress_free_[dst.value] = delivery;

    ++stats_.messages;
    stats_.bytes += bytes;

    UserEvent delivered;
    sim_.schedule_at(delivery, [this, delivered] { delivered.trigger(sim_.now()); });
    return delivered;
  }

  // Convenience: run `fn` at the destination when the message arrives.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, std::function<void()> fn) {
    send(src, dst, bytes).on_trigger(std::move(fn));
  }

  // A pure data transfer of `bytes` from src to dst gated on `pre`; used to
  // model region-instance copies issued by the fine analysis stage.
  Event copy(NodeId src, NodeId dst, std::uint64_t bytes, const Event& pre) {
    if (pre.has_triggered()) return send(src, dst, bytes);
    UserEvent done;
    pre.on_trigger([this, src, dst, bytes, done] {
      send(src, dst, bytes).on_trigger([this, done] { done.trigger(sim_.now()); });
    });
    return done;
  }

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

 private:
  Simulator& sim_;
  NetworkParams params_;
  std::vector<SimTime> egress_free_;
  std::vector<SimTime> ingress_free_;
  NetworkStats stats_;
};

}  // namespace dcr::sim
