// Point-to-point network model.
//
// Messages between simulated nodes follow a postal (alpha-beta) model with
// per-node NIC occupancy:
//
//   tx_start  = max(send_time, egress_free[src])
//   tx_end    = tx_start + bytes * ns_per_byte          (serialization)
//   arrival   = tx_end + alpha                          (wire latency)
//   delivery  = max(arrival, ingress_free[dst] + bytes * ns_per_byte)
//
// Occupying both endpoints' NICs is what makes bandwidth-bound patterns (the
// 768M-parameter gradient all-reduce of Figure 18, halo exchanges of the
// stencil codes) contend realistically, while small control messages (fences,
// determinism-check hashes) are latency-bound.  Intra-node messages bypass
// the NIC and cost a fixed local latency.
//
// Fault injection: when a FaultPlan is attached (fault.hpp), `raw_send`
// consults it per message — drops, delay jitter, and dark-NIC windows — and a
// lost message's delivery event simply never triggers, exactly what a sender
// observes on a real lossy fabric.  A reliable transport (reliable.hpp) can
// install itself as the send override so that all remote traffic — including
// collectives and fences — gets ack/timeout/retransmit semantics on top of
// the faulty raw channel.  With no plan and no override both hooks are a
// single null check: the fault-free path is bit-identical to the seed model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "scope/context.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

struct NetworkParams {
  SimTime alpha = us(1);          // per-message wire latency
  double ns_per_byte = 0.1;       // 1/bandwidth: 0.1 ns/B = 10 GB/s
  SimTime local_latency = ns(50); // same-node delivery
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t lost_messages = 0;    // swallowed by fault injection
  std::uint64_t traced_messages = 0;  // logical sends carrying a valid TraceCtx
};

class Network {
 public:
  Network(Simulator& sim, std::size_t num_nodes, NetworkParams params = {})
      : sim_(sim),
        params_(params),
        egress_free_(num_nodes, 0),
        ingress_free_(num_nodes, 0) {}

  const NetworkParams& params() const { return params_; }
  std::size_t num_nodes() const { return egress_free_.size(); }

  // ---- fault hooks -------------------------------------------------------
  // Attach a fault plan: raw sends consult it per message.  nullptr detaches.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* faults() { return faults_; }

  // Route remote `send` calls through a reliable transport (reliable.hpp).
  // The override receives (src, dst, bytes, ctx) and returns the delivery
  // event; it must carry `ctx` on every (re)transmission so causal tracing
  // survives retransmits.
  using SendOverride =
      std::function<Event(NodeId, NodeId, std::uint64_t, const scope::TraceCtx&)>;
  void set_send_override(SendOverride fn) { override_ = std::move(fn); }

  // Observe every *logical* send (once per message, not per retransmission)
  // together with its causal context.  dcr-scope installs this to count
  // causal traffic per origin shard; it is host-side only and charges no
  // virtual time.  nullptr detaches.
  using SendTap =
      std::function<void(NodeId, NodeId, std::uint64_t, const scope::TraceCtx&)>;
  void set_send_tap(SendTap fn) { tap_ = std::move(fn); }

  // Send `bytes` from src to dst; the returned event triggers at delivery.
  // With a reliable override installed, remote messages are retransmitted
  // until acknowledged; otherwise delivery is best-effort under faults.
  // `ctx` is the causal context of the message (invalid when tracing is off).
  Event send(NodeId src, NodeId dst, std::uint64_t bytes,
             const scope::TraceCtx& ctx = {}) {
    if (ctx.valid()) ++stats_.traced_messages;
    if (tap_) tap_(src, dst, bytes, ctx);
    if (override_ && src != dst) return override_(src, dst, bytes, ctx);
    return raw_send(src, dst, bytes);
  }

  // The physical channel: one transmission attempt, subject to fault
  // injection, no retransmission.  A dropped message's event never triggers.
  Event raw_send(NodeId src, NodeId dst, std::uint64_t bytes) {
    DCR_CHECK(src.value < egress_free_.size() && dst.value < ingress_free_.size());
    const SimTime now = sim_.now();
    if (src == dst) {
      ++stats_.local_messages;
      return sim_.timer(params_.local_latency);
    }
    SimTime jitter = 0;
    if (faults_) {
      const FaultPlan::MessageFate fate = faults_->classify(msg_seq_++, src, dst, now);
      if (fate.drop) {
        ++stats_.lost_messages;
        return UserEvent();  // never triggers: the sender observes nothing
      }
      jitter = fate.extra_delay;
    }
    const auto ser = static_cast<SimTime>(static_cast<double>(bytes) * params_.ns_per_byte);
    const SimTime tx_start = std::max(now, egress_free_[src.value]);
    const SimTime tx_end = tx_start + ser;
    egress_free_[src.value] = tx_end;
    const SimTime arrival = tx_end + params_.alpha + jitter;
    const SimTime delivery = std::max(arrival, ingress_free_[dst.value] + ser);
    ingress_free_[dst.value] = delivery;

    ++stats_.messages;
    stats_.bytes += bytes;

    UserEvent delivered;
    sim_.schedule_at(delivery, [this, dst, delivered] {
      // A message in flight when the destination goes dark is lost.
      if (faults_ && faults_->node_dark(dst, sim_.now())) {
        ++stats_.lost_messages;
        faults_->count_blackout();
        return;
      }
      delivered.trigger(sim_.now());
    });
    return delivered;
  }

  // Convenience: run `fn` at the destination when the message arrives.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, std::function<void()> fn) {
    send(src, dst, bytes).on_trigger(std::move(fn));
  }
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            const scope::TraceCtx& ctx, std::function<void()> fn) {
    send(src, dst, bytes, ctx).on_trigger(std::move(fn));
  }

  // A pure data transfer of `bytes` from src to dst gated on `pre`; used to
  // model region-instance copies issued by the fine analysis stage.
  Event copy(NodeId src, NodeId dst, std::uint64_t bytes, const Event& pre,
             const scope::TraceCtx& ctx = {}) {
    if (pre.has_triggered()) return send(src, dst, bytes, ctx);
    UserEvent done;
    pre.on_trigger([this, src, dst, bytes, ctx, done] {
      send(src, dst, bytes, ctx).on_trigger([this, done] {
        done.trigger(sim_.now());
      });
    });
    return done;
  }

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

 private:
  Simulator& sim_;
  NetworkParams params_;
  std::vector<SimTime> egress_free_;
  std::vector<SimTime> ingress_free_;
  NetworkStats stats_;
  FaultPlan* faults_ = nullptr;
  SendOverride override_;
  SendTap tap_;
  std::uint64_t msg_seq_ = 0;
};

}  // namespace dcr::sim
