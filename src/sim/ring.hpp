// Message-level ring all-reduce.
//
// The binomial-tree collectives (collective.hpp) are the latency-optimized
// primitives DCR uses for fences and futures; gradient synchronization in
// the training workloads instead uses the bandwidth-optimal ring algorithm
// (reduce-scatter + all-gather: 2(n-1) steps moving bytes/n each).  This is
// the real message-level implementation; apps/nn.hpp's analytic
// ring_allreduce_time() is its closed form, and the tests check they agree.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "sim/network.hpp"

namespace dcr::sim {

template <typename T>
class RingAllReduce {
 public:
  using CombineFn = std::function<T(T, T)>;

  RingAllReduce(Simulator& sim, Network& net, std::vector<NodeId> placement,
                std::uint64_t payload_bytes, CombineFn combine)
      : sim_(sim),
        net_(net),
        placement_(std::move(placement)),
        payload_bytes_(payload_bytes),
        combine_(std::move(combine)),
        ranks_(placement_.size()) {
    DCR_CHECK(!placement_.empty());
  }

  std::size_t num_ranks() const { return ranks_.size(); }

  // Rank r contributes its value; the returned event triggers once the
  // combined result is available at rank r (after 2(n-1) ring steps).
  Event arrive(std::size_t rank, T value) {
    DCR_CHECK(rank < ranks_.size());
    RankState& rs = ranks_[rank];
    DCR_CHECK(!rs.arrived) << "ring rank " << rank << " arrived twice";
    rs.arrived = true;
    rs.partial = std::move(value);
    advance(rank);
    return rs.done;
  }

  const T& result() const {
    DCR_CHECK(result_.has_value());
    return *result_;
  }

 private:
  struct RankState {
    bool arrived = false;
    std::size_t step = 0;        // completed ring steps
    std::size_t received = 0;    // messages received (gates each step)
    std::optional<T> partial;
    UserEvent done;
  };

  std::size_t total_steps() const { return 2 * (ranks_.size() - 1); }

  // A rank advances one step when it has arrived and has received the
  // message for every prior step.
  void advance(std::size_t rank) {
    RankState& rs = ranks_[rank];
    if (!rs.arrived) return;
    if (ranks_.size() == 1) {
      if (!rs.done.has_triggered()) {
        result_ = rs.partial;
        rs.done.trigger(sim_.now());
      }
      return;
    }
    while (rs.step < total_steps() && rs.received >= rs.step && rs.step == sent_[rank]) {
      // Send this step's chunk (bytes/n) to the ring successor.
      const std::size_t next = (rank + 1) % ranks_.size();
      const std::uint64_t chunk =
          std::max<std::uint64_t>(1, payload_bytes_ / ranks_.size());
      sent_[rank]++;
      net_.send(placement_[rank], placement_[next], chunk, [this, next] {
        RankState& ns = ranks_[next];
        ns.received++;
        // Combine during the reduce-scatter half.
        advance(next);
      });
      rs.step++;
    }
    // Complete once every chunk has been sent AND the final incoming chunk
    // (which carries the last piece of the result) has arrived.
    if (rs.step == total_steps() && rs.received >= total_steps() &&
        !rs.done.has_triggered()) {
      if (!result_) {
        // Deterministic result: combine all contributions once.
        T acc = *ranks_[0].partial;
        for (std::size_t r = 1; r < ranks_.size(); ++r) {
          acc = combine_(std::move(acc), *ranks_[r].partial);
        }
        result_ = std::move(acc);
      }
      rs.done.trigger(sim_.now());
    }
  }

  Simulator& sim_;
  Network& net_;
  std::vector<NodeId> placement_;
  std::uint64_t payload_bytes_;
  CombineFn combine_;
  std::vector<RankState> ranks_;
  std::map<std::size_t, std::size_t> sent_;  // steps whose send was issued
  std::optional<T> result_;
};

}  // namespace dcr::sim
