// Reliable delivery on top of the faulty raw channel.
//
// The fault plan (fault.hpp) makes `Network::raw_send` lossy; this layer puts
// ack/timeout/retransmit semantics back on top so that collectives, fences,
// and determinism-check traffic survive message drops and transient NIC
// outages.  Installed via `Network::set_send_override`, it transparently
// covers every remote message in the system without any call-site changes.
//
// Per transfer: the sender transmits the payload, arms a retransmission timer
// with exponential backoff plus deterministic (Philox) jitter, and the
// receiver acks each copy it sees — acking duplicates too, since the original
// ack may itself have been dropped.  The receiver delivers only the first
// copy.  After `max_attempts` unacknowledged transmissions the transfer gives
// up: its `failed` event triggers and give-up listeners fire, which is the
// signal the runtime's failure detector consumes — a peer that cannot be
// reached within a full retry budget is presumed dead, exactly the lease
// logic of dcr/runtime.cpp.
//
// Everything is deterministic: backoff jitter comes from a counter-based RNG
// indexed by (transfer id, attempt), so a faulty run replays bit-identically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/philox.hpp"
#include "common/types.hpp"
#include "scope/context.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

struct ReliableParams {
  SimTime rto_initial = us(30);   // first retransmission timeout
  double rto_backoff = 2.0;       // multiplier per failed attempt
  SimTime rto_max = ms(2);        // backoff ceiling
  double rto_jitter = 0.25;       // +/- uniform fraction added to each RTO
  std::uint32_t max_attempts = 10;// transmissions before giving up
  std::uint64_t ack_bytes = 16;   // size of an acknowledgement message
  std::uint64_t seed = 0x5e11ab1e;// jitter RNG seed
};

struct ReliableStats {
  std::uint64_t transfers = 0;
  std::uint64_t retransmits = 0;    // transmissions beyond the first
  std::uint64_t acks = 0;           // acks sent by receivers
  std::uint64_t duplicates = 0;     // redundant copies suppressed at receivers
  std::uint64_t give_ups = 0;       // transfers that exhausted the budget
};

class ReliableDelivery {
 public:
  // A transfer's observable outcomes.  `delivered` triggers when the first
  // copy reaches the receiver (this is what Network::send returns to
  // callers); `acked` when the sender learns of it; `failed` if the retry
  // budget is exhausted first.  Exactly one of acked/failed triggers.
  struct Transfer {
    Event delivered;
    Event acked;
    Event failed;
    scope::TraceCtx ctx;  // the causal context every copy of this payload carries
  };

  ReliableDelivery(Simulator& sim, Network& net, ReliableParams params = {})
      : sim_(sim), net_(net), params_(params),
        rng_(params_.seed, /*stream=*/0xAC4Du) {}

  // Route all remote Network::send traffic through this transport.
  void install() {
    net_.set_send_override([this](NodeId src, NodeId dst, std::uint64_t bytes,
                                  const scope::TraceCtx& ctx) {
      return transfer(src, dst, bytes, nullptr, ctx).delivered;
    });
  }

  // Listener invoked when a transfer exhausts its retry budget.
  void on_give_up(std::function<void(NodeId src, NodeId dst, SimTime)> fn) {
    give_up_listeners_.push_back(std::move(fn));
  }

  // Start a transfer.  `params` overrides the transport defaults for this
  // transfer only (the failure detector probes with a tighter retry budget
  // than bulk data, so detection outruns data-transfer give-up).  `ctx` is
  // the causal context of the payload; every retransmitted copy carries it.
  Transfer transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                    const ReliableParams* params = nullptr,
                    const scope::TraceCtx& ctx = {}) {
    ++stats_.transfers;
    auto st = std::make_shared<State>();
    st->id = next_id_++;
    st->src = src;
    st->dst = dst;
    st->bytes = bytes;
    st->params = params ? *params : params_;
    st->ctx = ctx;
    attempt(st, 0);
    return Transfer{st->delivered, st->acked, st->failed, st->ctx};
  }

  const ReliableStats& stats() const { return stats_; }
  const ReliableParams& params() const { return params_; }

 private:
  struct State {
    std::uint64_t id = 0;
    NodeId src;
    NodeId dst;
    std::uint64_t bytes = 0;
    ReliableParams params;
    scope::TraceCtx ctx;  // carried on every (re)transmission
    UserEvent delivered;
    UserEvent acked;
    UserEvent failed;
    bool done = false;  // acked or failed: stop the timer chain
  };

  void attempt(const std::shared_ptr<State>& st, std::uint32_t n) {
    if (st->done) return;
    if (n > 0) ++stats_.retransmits;
    // One transmission on the raw (lossy) channel.  If it lands, the receiver
    // delivers the first copy and acks every copy.
    net_.raw_send(st->src, st->dst, st->bytes).on_trigger([this, st] {
      if (!st->delivered.has_triggered()) {
        st->delivered.trigger(sim_.now());
      } else {
        ++stats_.duplicates;
      }
      ++stats_.acks;
      net_.raw_send(st->dst, st->src, st->params.ack_bytes).on_trigger([this, st] {
        if (st->done) return;
        st->done = true;
        st->acked.trigger(sim_.now());
      });
    });
    // Arm the retransmission timer for this attempt.
    const SimTime rto = rto_for(st->params, st->id, n);
    sim_.schedule_at(sim_.now() + rto, [this, st, n] {
      if (st->done) return;
      if (n + 1 >= st->params.max_attempts) {
        st->done = true;
        ++stats_.give_ups;
        st->failed.trigger(sim_.now());
        for (const auto& fn : give_up_listeners_) fn(st->src, st->dst, sim_.now());
        return;
      }
      attempt(st, n + 1);
    });
  }

  SimTime rto_for(const ReliableParams& p, std::uint64_t id, std::uint32_t n) {
    double rto = static_cast<double>(p.rto_initial);
    for (std::uint32_t i = 0; i < n; ++i) rto *= p.rto_backoff;
    rto = std::min(rto, static_cast<double>(p.rto_max));
    if (p.rto_jitter > 0.0) {
      // Counter-based jitter: indexed by (transfer, attempt), not draw order.
      const Philox4x32::Counter block = rng_.block_at(id * 64 + n);
      const double unit = static_cast<double>(block[0]) * 0x1.0p-32;  // [0,1)
      rto *= 1.0 + p.rto_jitter * (2.0 * unit - 1.0);
    }
    return std::max<SimTime>(1, static_cast<SimTime>(rto));
  }

  Simulator& sim_;
  Network& net_;
  ReliableParams params_;
  Philox4x32 rng_;
  ReliableStats stats_;
  std::vector<std::function<void(NodeId, NodeId, SimTime)>> give_up_listeners_;
  std::uint64_t next_id_ = 0;
};

}  // namespace dcr::sim
