// SimClock: the simulator backend's Clock — virtual nanoseconds from the
// discrete-event calendar (common/clock.hpp for the abstraction).
#pragma once

#include "common/clock.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {

class SimClock final : public Clock {
 public:
  explicit SimClock(const Simulator& sim) : sim_(sim) {}
  SimTime now() const override { return sim_.now(); }

 private:
  const Simulator& sim_;
};

}  // namespace dcr::sim
