// Dynamic control-determinism verification (paper §3).
//
// "For each runtime API call from a shard of a replicated task (and only for
// such calls), we compute a 128-bit hash that captures the API call and all
// its actual arguments.  An all-reduce collective checks that the hashes
// from all shards are identical ... performed asynchronously to hide its
// latency ... If a check fails, the runtime system aborts with an error
// listing the operation that failed to be control deterministic."
//
// We reproduce that design: one 16-byte-payload all-reduce per API call,
// combined with an equality flag; the first failed check records the call's
// description.  The checks never block the shard — completion callbacks set
// the violation flag, which the runtime surfaces after execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "sim/collective.hpp"

namespace dcr::core {

class DeterminismChecker {
 public:
  DeterminismChecker(sim::Simulator& sim, sim::Network& net, std::vector<NodeId> placement,
                     bool enabled)
      : sim_(sim), net_(net), placement_(std::move(placement)), enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  // Shard `shard` made API call number `call_index` with hash `h`.
  // `what` describes the call for the abort message.
  void record(ShardId shard, std::uint64_t call_index, const Hash128& h,
              const std::string& what) {
    if (!enabled_ || placement_.size() < 2) return;
    auto it = pending_.find(call_index);
    if (it == pending_.end()) {
      auto coll = std::make_shared<sim::Collective<CheckVal>>(
          sim_, net_, placement_, sim::CollectiveKind::AllReduce,
          /*payload_bytes=*/16,
          [](CheckVal a, CheckVal b) {
            a.ok = a.ok && b.ok && a.h == b.h;
            return a;
          });
      it = pending_.emplace(call_index, Pending{coll, what, 0, {}}).first;
    }
    Pending& p = it->second;
    p.rank_done.push_back(p.coll->arrive(shard.value, CheckVal{h, true}));
    ++checks_issued_;
    if (++p.arrivals == placement_.size()) {
      // All ranks arrived: once the result has reached *every* rank (i.e. no
      // tree message is still in flight), verify and retire the collective.
      auto coll = p.coll;
      const std::string what_copy = p.what;
      sim::merge_events(std::span<const sim::Event>(p.rank_done))
          .on_trigger([this, coll, what_copy, call_index] {
            ++checks_completed_;
            if (!coll->result().ok) {
              ++violations_;
              if (!violation_) {
                violation_ = "control determinism violation at API call " +
                             std::to_string(call_index) + ": " + what_copy;
                if (violation_handler_) violation_handler_(*violation_);
              }
            }
            // Defer the erase out of the trigger cascade.
            sim_.schedule(0, [this, coll, call_index] { pending_.erase(call_index); });
          });
    }
  }

  bool has_violation() const { return violation_.has_value(); }
  const std::string& violation_message() const {
    static const std::string kNone;
    return violation_ ? *violation_ : kNone;
  }

  std::uint64_t checks_issued() const { return checks_issued_; }
  std::uint64_t checks_completed() const { return checks_completed_; }
  std::uint64_t violations() const { return violations_; }
  // Calls whose collectives never completed (shards diverged in call counts).
  std::size_t checks_unresolved() const { return pending_.size(); }

  // Invoked once, when the *first* failed check resolves, with the violation
  // message.  The runtime uses this to upgrade the violation flag into a
  // graceful abort naming the first divergent API call (paper §3: "aborts
  // with an error listing the operation that failed").
  void set_violation_handler(std::function<void(const std::string&)> fn) {
    violation_handler_ = std::move(fn);
  }

 private:
  struct CheckVal {
    Hash128 h;
    bool ok = true;
  };
  struct Pending {
    std::shared_ptr<sim::Collective<CheckVal>> coll;
    std::string what;
    std::size_t arrivals;
    std::vector<sim::Event> rank_done;
  };

  sim::Simulator& sim_;
  sim::Network& net_;
  std::vector<NodeId> placement_;
  bool enabled_;
  std::map<std::uint64_t, Pending> pending_;
  std::optional<std::string> violation_;
  std::uint64_t checks_issued_ = 0;
  std::uint64_t checks_completed_ = 0;
  std::uint64_t violations_ = 0;
  std::function<void(const std::string&)> violation_handler_;
};

}  // namespace dcr::core
