// Application-facing API shared by every executor (DCR, central controller,
// static replication, ...).
//
// Applications are written once against `Context` — the implicitly parallel
// programming model of the paper: a sequential control program that creates
// regions/partitions and launches tasks or task groups; all parallelism and
// data movement are discovered by the executor's dependence analysis.  The
// same application callable runs unchanged on every executor, which is what
// makes the paper's productivity claim concrete and the benchmark comparison
// apples-to-apples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/philox.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"

namespace dcr::core {

// Opaque handles to asynchronous values produced by tasks.
struct Future {
  std::uint64_t id = ~0ull;
  bool valid() const { return id != ~0ull; }
};

struct FutureMap {
  std::uint64_t id = ~0ull;
  bool valid() const { return id != ~0ull; }
};

enum class ReduceOp : std::uint8_t { Sum, Min, Max };

inline double apply_reduce(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Min: return a < b ? a : b;
    case ReduceOp::Max: return a > b ? a : b;
  }
  return a;
}

// Everything a cost/value model may depend on for one point task.
struct PointTaskInfo {
  FunctionId fn;
  rt::Point point;          // point in the launch domain (0-D for single tasks)
  rt::Rect domain;          // launch domain
  std::vector<rt::Requirement> requirements;  // concretized
  std::uint64_t volume = 0;                   // total points across requirements
  std::vector<std::int64_t> args;             // application scalar arguments
};

// Task function registration: name + execution cost model + optional future
// value model.  The value model makes data-dependent control flow (futures
// driving loops) deterministic and reproducible without executing numerics.
struct TaskFunction {
  std::string name;
  std::function<SimTime(const PointTaskInfo&)> duration;
  std::function<double(const PointTaskInfo&)> future_value;  // may be null
};

class FunctionRegistry {
 public:
  FunctionId register_function(TaskFunction fn) {
    DCR_CHECK(fn.duration != nullptr) << "task function needs a duration model";
    fns_.push_back(std::move(fn));
    return FunctionId(static_cast<std::uint32_t>(fns_.size() - 1));
  }

  // Convenience: fixed cost + per-point cost over the requirement volume.
  FunctionId register_simple(std::string name, SimTime fixed, double ns_per_point,
                             std::function<double(const PointTaskInfo&)> value = nullptr) {
    return register_function(TaskFunction{
        std::move(name),
        [fixed, ns_per_point](const PointTaskInfo& info) {
          return fixed + static_cast<SimTime>(ns_per_point * static_cast<double>(info.volume));
        },
        std::move(value)});
  }

  const TaskFunction& at(FunctionId id) const {
    DCR_CHECK(id.value < fns_.size()) << "unregistered task function";
    return fns_[id.value];
  }
  std::size_t size() const { return fns_.size(); }

 private:
  std::vector<TaskFunction> fns_;
};

// A single task launch.
struct TaskLaunch {
  FunctionId fn;
  std::vector<rt::Requirement> requirements;
  std::vector<std::int64_t> args;
  bool wants_future = false;
};

// A group (index) task launch: one point task per point of `domain`.
struct IndexLaunch {
  FunctionId fn;
  rt::Rect domain;
  std::vector<rt::GroupRequirement> requirements;
  ShardingId sharding = ShardingId(0);  // cyclic by default
  std::vector<std::int64_t> args;
  bool wants_futures = false;
};

// The implicitly parallel programming interface.  All methods that affect
// analysis are *API calls* in the paper's §3 sense: under DCR each shard's
// call stream is hashed and cross-checked for control determinism.
class Context {
 public:
  virtual ~Context() = default;

  // ---- data model (replication-safe: the k-th creation call returns the
  //      same handle on every shard) ----
  virtual FieldSpaceId create_field_space() = 0;
  virtual FieldId allocate_field(FieldSpaceId fs, std::size_t bytes, std::string name) = 0;
  virtual RegionTreeId create_region(const rt::Rect& bounds, FieldSpaceId fs) = 0;
  virtual IndexSpaceId root(RegionTreeId tree) = 0;
  virtual PartitionId partition_equal(IndexSpaceId parent, std::size_t pieces,
                                      int axis = 0) = 0;
  virtual PartitionId partition_with_halo(IndexSpaceId parent, std::size_t pieces,
                                          std::int64_t halo, int axis = 0) = 0;
  virtual PartitionId create_partition(IndexSpaceId parent, std::vector<rt::Rect> pieces,
                                       bool disjoint) = 0;
  virtual PartitionId partition_grid(IndexSpaceId parent, std::size_t tiles_x,
                                     std::size_t tiles_y, std::int64_t halo = 0) = 0;
  virtual void destroy_region(RegionTreeId tree) = 0;
  // GC-finalizer path (paper §4.3): may be called at a different control
  // point on each shard; the runtime reaches consensus before inserting it.
  virtual void destroy_region_deferred(RegionTreeId tree) = 0;

  // ---- read-only forest access for convenience (not an API call) ----
  virtual const rt::RegionForest& forest() const = 0;

  // ---- operations ----
  virtual void fill(IndexSpaceId region, std::vector<FieldId> fields) = 0;
  virtual Future launch(const TaskLaunch& launch) = 0;
  virtual FutureMap index_launch(const IndexLaunch& launch) = 0;
  virtual Future reduce_future_map(const FutureMap& fm, ReduceOp op) = 0;
  // Blocks the control program (in virtual time) until the value is ready.
  virtual double get_future(const Future& f) = 0;
  // Returns true iff the future's value is already available (paper Figure 5
  // shows why branching on this violates control determinism — provided so
  // tests can reproduce that violation).
  virtual bool future_is_ready(const Future& f) = 0;
  // Blocks until every operation issued so far has completed execution.
  virtual void execution_fence() = 0;

  // ---- side effects (paper §4.3) ----
  // "Normal files are read and written by a single owner shard; group
  // variants of attach and detach provide support for parallel file I/O."
  virtual void attach_file(IndexSpaceId region, std::vector<FieldId> fields,
                           std::string file) = 0;
  virtual void detach_file(IndexSpaceId region, std::vector<FieldId> fields) = 0;
  // Group variants: one file shard per subregion of `partition`, read or
  // flushed in parallel across the shards that own each piece.
  virtual void attach_file_group(PartitionId partition, std::vector<FieldId> fields,
                                 std::string file_basename) = 0;
  virtual void detach_file_group(PartitionId partition, std::vector<FieldId> fields) = 0;

  // ---- tracing (paper §5.5) ----
  virtual void begin_trace(TraceId id) = 0;
  virtual void end_trace(TraceId id) = 0;

  // ---- environment ----
  virtual std::size_t num_shards() const = 0;
  virtual ShardId shard_id() const = 0;  // for tests; apps must not branch on it
  // Replicated counter-based RNG (paper §3): same sequence on every shard.
  virtual Philox4x32& rng() = 0;
  virtual SimTime now() const = 0;
};

using ApplicationMain = std::function<void(Context&)>;

}  // namespace dcr::core
