// The dynamic-control-replication executor (paper §4).
//
// DcrRuntime runs an application's control program replicated across N
// shards (one SimProcess per shard).  Each shard:
//
//  * re-executes the full control program (creations are replication-safe:
//    the k-th creation call returns the same handle on every shard),
//  * runs the two-stage dependence analysis of Figure 9 on its node's
//    analysis processor: a coarse stage at task-group granularity whose cost
//    is independent of machine size, and a fine stage that analyzes and
//    launches only the points its sharding function assigns to it,
//  * coordinates cross-shard dependences with fences implemented as
//    zero-payload all-gather collectives (§4.1/§4.2), eliding them when the
//    symbolic same-(sharding, domain, partition, projection) proof shows all
//    point-level dependences are shard-local,
//  * hashes every API call and cross-checks shards for control determinism
//    (§3), and handles deferred deletions from GC finalizers by consensus
//    polling with exponential back-off (§4.3).
//
// Analysis executes *for real* (actual region-tree queries, actual fence
// decisions, actual point enumeration); the simulator only accounts time and
// message traffic, per the substitution argument in DESIGN.md.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/philox.hpp"
#include "common/types.hpp"
#include "dcr/api.hpp"
#include "dcr/coarse.hpp"
#include "dcr/determinism.hpp"
#include "dcr/ops.hpp"
#include "dcr/mapper.hpp"
#include "dcr/recovery.hpp"
#include "dcr/replicate.hpp"
#include "dcr/sharding.hpp"
#include "dcr/template.hpp"
#include "dcr/trace_id.hpp"
#include "dcr/user_tracker.hpp"
#include "prof/profiler.hpp"
#include "runtime/physical.hpp"
#include "scope/recorder.hpp"
#include "statics/lint.hpp"
#include "statics/prover.hpp"
#include "runtime/region.hpp"
#include "runtime/task_graph.hpp"
#include "spy/trace.hpp"
#include "sim/clock.hpp"
#include "sim/collective.hpp"
#include "sim/machine.hpp"
#include "sim/quiescence.hpp"

namespace dcr::core {

struct DcrConfig {
  // Shards: one per node by default.  With shards_per_node > 1, shard s runs
  // on node s / shards_per_node (the paper's "one shard per GPU" setups).
  std::size_t shards_per_node = 1;

  // Control-program and analysis cost model (virtual time).
  SimTime issue_cost = ns(200);            // per API call in the control program
  SimTime coarse_cost_per_req = us(1);     // coarse stage, per requirement
  SimTime fine_cost_per_point = us(1);     // fine stage, per owned point
  SimTime fine_cost_per_op = ns(500);      // fine stage, fixed per op
  SimTime hash_cost = ns(100);             // determinism hash per API call

  // Dependence templates (dcr/template.hpp): ops replayed from a validated
  // template skip re-analysis and charge these reduced costs instead.
  SimTime traced_coarse_cost_per_req = ns(100);
  SimTime traced_fine_cost_per_point = ns(60);
  SimTime traced_fine_cost_per_op = ns(100);

  bool determinism_checks = true;
  bool tracing_enabled = true;
  // Require the capture -> validate -> replay lifecycle: a captured template
  // is shadow-compared against one full fresh analysis (and audited against
  // the DEPseq sequential semantics) before its first replay.  Disabling
  // replays templates on their first recurrence, unvalidated.
  bool template_validation = true;
  // Automatic repeated-trace identification (dcr/trace_id.hpp): detect
  // repeating task-launch windows online and open template windows for them
  // without explicit begin/end_trace calls.  Off by default; requires
  // tracing_enabled.
  TraceIdConfig auto_trace;
  // Ablation: insert a cross-shard fence for every coarse dependence instead
  // of eliding provably shard-local ones (paper §4.1, observation 2).
  bool disable_fence_elision = false;

  // Static interference analysis (src/statics): an index launch whose
  // requirements all carry affine symbolic projections, and whose coarse
  // dependences all classify above Unknown, charges O(1) fine-stage cost
  // instead of enumerating owned points — the dependence decisions themselves
  // are untouched, so runs are decision- and graph-identical on/off.
  bool static_analysis = true;
  // Debug oracle: cross-check every static verdict against the enumerated
  // per-point computation (DCR_CHECK aborts on disagreement).  Host-side
  // only; used by tests and the fuzz sweeps.
  bool statics_check = false;

  // Deferred-deletion consensus polling (paper §4.3).
  SimTime deferred_poll_initial = us(10);
  SimTime deferred_poll_max = ms(1);

  double file_ns_per_byte = 0.25;  // attach/detach I/O bandwidth (4 GB/s)

  // Record the realized point-task dependence graph (tests/validation only;
  // adds host-side cost, no virtual-time cost).
  bool record_task_graph = false;

  // Record a full dcr-spy execution trace (spy/trace.hpp): every hashed API
  // call with named arguments, every op, coarse dependence + elision
  // decision, realized task with its concrete region accesses, and realized
  // dependence edge.  Implies record_task_graph.  Host-side cost only; no
  // virtual-time cost.  Read back with DcrRuntime::trace() or serialize with
  // spy::Trace::write_jsonl for the tools/dcr-spy CLI.
  bool record_trace = false;

  // dcr-prof span timeline (prof/profiler.hpp).  The per-shard counter
  // registry is always on — every run can report fence/elision/template/
  // recovery metrics — but structured spans (analysis stages, replay, fence
  // and future waits, trace windows) are only recorded under this knob.
  // Host-side cost only; no virtual-time cost, so profiling never perturbs
  // the analysis or the realized task graph.
  bool profile = false;

  // dcr-scope causal tracing (scope/recorder.hpp): stamp a TraceCtx onto
  // every fence arrival, future contribution, and collective hop; record the
  // per-fence blame ledger (per-rank arrival/completion, last-releasing
  // shard + span) and the task-launch ledger.  Host-side cost only; no
  // virtual-time cost, so a scope-on run is makespan-identical to scope-off.
  bool scope = false;

  // Crash flight recorder (scope/flight.hpp): with scope on, keep a bounded
  // per-shard ring of recent scope events and dump it to flight_path as
  // Perfetto-loadable JSON (plus a blame summary) when the run aborts — a
  // determinism violation, an "SDC quorum unresolved" abort, or any other
  // abort_execution.  "" = ring stays in memory only (readable via
  // DcrRuntime::flight()).
  std::size_t flight_capacity = 256;
  std::string flight_path;

  // Mapping policy (paper §4): per-launch sharding selection and point-task
  // processor placement.  Must be deterministic; not owned.  nullptr = the
  // default policies.
  Mapper* mapper = nullptr;

  // ---- fault tolerance (active when Machine::install_faults was called) ----
  bool auto_recover = true;          // respawn dead shards vs graceful abort
  SimTime lease_interval = us(100);  // failure-monitor scan period
  SimTime lease_timeout = us(500);   // stale lease age that triggers a probe
  SimTime restart_delay = us(200);   // node reboot / failover latency
  SimTime replay_call_cost = ns(20); // fast-forward cost per replayed API call
  // Monitor probes use a tight retry budget so detection outruns the
  // (much larger) give-up budget of ordinary data transfers.
  std::uint32_t probe_attempts = 4;
  // Upgrade a failed determinism check from a flag to a graceful abort that
  // names the first divergent API call (paper §3 semantics).
  bool halt_on_violation = true;

  // ---- SDC-resilient selective replication (dcr/replicate.hpp) ----
  // Duplicate-execute only control-tainted tasks — those whose future values
  // flow (directly or via a reduced future map) into control decisions — and
  // gate their value contributions on a digest quorum.  Off: execution is
  // bit-identical to a build without the replication layer.
  bool sdc_replication = false;
  std::uint32_t sdc_replicas = 2;       // executions per tainted point, incl. primary
  std::uint32_t sdc_quorum = 2;         // matching digests that settle a disagreement
  std::uint32_t sdc_retry_budget = 4;   // extra re-executions before graceful abort
  std::uint64_t sdc_digest_bytes = 12;  // CRC32C ballot size on the wire
  // A healed corruption invalidates the template epoch: the corrupt value may
  // have been captured into analysis decisions, so cached windows re-record.
  bool sdc_invalidate_templates = true;
  // Corruption-aware failover: a shard whose ballots lose this many quorums
  // is declared dead and tail-re-replayed through the PR-1 lease/replay
  // machinery (requires an installed fault plan).  0 disables.
  std::uint32_t sdc_suspect_threshold = 0;
  // Per-function SDC injection weight (FunctionId value -> weight, default 1):
  // lets the injector target task classes (sim/fault.hpp SdcConfig.rate is
  // the base rate).
  std::map<std::uint32_t, double> sdc_class_weights;
};

struct DcrStats {
  SimTime makespan = 0;
  std::uint64_t ops_issued = 0;          // per shard (identical across shards)
  std::uint64_t point_tasks_launched = 0;
  std::uint64_t fences_inserted = 0;     // cross-shard fences
  std::uint64_t fences_elided = 0;       // coarse deps proven shard-local
  std::uint64_t coarse_deps = 0;
  std::uint64_t determinism_checks = 0;
  std::uint64_t traced_ops = 0;  // ops replayed from a dependence template

  // Dependence templates, summed over shards (each shard captures its own).
  std::uint64_t templates_captured = 0;
  std::uint64_t templates_validated = 0;
  std::uint64_t template_replays = 0;              // whole windows replayed
  std::uint64_t template_invalidations = 0;        // epoch/shape invalidations
  std::uint64_t template_validation_failures = 0;  // shadow-compare re-records

  // Automatic trace identification (dcr/trace_id.hpp), summed over shards.
  std::uint64_t auto_trace_detections = 0;  // verified repeats found
  std::uint64_t auto_trace_promotions = 0;  // candidates promoted to traces
  std::uint64_t auto_trace_demotions = 0;   // traces dropped by hysteresis
  std::uint64_t auto_trace_windows = 0;     // auto template windows opened
  std::uint64_t auto_trace_aborts = 0;      // auto windows aborted mid-period
  std::uint64_t auto_trace_collisions = 0;  // fingerprint hits failing verify
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
  SimTime analysis_busy = 0;
  SimTime compute_busy = 0;
  bool completed = false;                // every shard ran to completion
  bool determinism_violation = false;
  std::string violation_message;

  // Fault tolerance.
  std::uint64_t failures_detected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t messages_dropped = 0;  // fault-plan drops + blackouts
  std::uint64_t retransmits = 0;       // reliable-transport resends
  bool aborted = false;                // graceful abort (violation / detection)
  std::string abort_message;
  std::vector<FailureReport> failures;

  // SDC replication (dcr/replicate.hpp), populated when sdc_replication.
  std::uint64_t sdc_tainted_ops = 0;       // ops feeding control decisions
  std::uint64_t sdc_tainted_futures = 0;   // futures observed by control
  std::uint64_t sdc_tickets = 0;           // tainted points quorum-verified
  std::uint64_t sdc_replicas_issued = 0;
  std::uint64_t sdc_replicas_compared = 0;
  std::uint64_t sdc_replicas_lost = 0;
  std::uint64_t sdc_corruptions_injected = 0;  // fault-plan injections (all execs)
  std::uint64_t sdc_corruptions_detected = 0;  // ballots out-voted by a quorum
  std::uint64_t sdc_corruptions_healed = 0;    // quorums resolved despite a mismatch
  std::uint64_t sdc_quorum_rounds = 0;         // re-execution rounds
  std::uint64_t sdc_stale_votes = 0;           // ballots ignored after resolution
  std::uint64_t sdc_failovers = 0;     // suspect shards pushed through recovery
  std::uint64_t sdc_late_taints = 0;   // taint arrived after unreplicated launch

  // Static interference analysis (src/statics), populated when static_analysis.
  std::uint64_t statics_resolved_ops = 0;    // index launches fully proven
  std::uint64_t statics_unresolved_ops = 0;  // launches with >= 1 Unknown verdict
  std::uint64_t statics_skipped_points = 0;  // owned points never enumerated (all shards)
  std::uint64_t statics_cache_hits = 0;      // prover verdicts served from cache
};

class DcrRuntime {
 public:
  DcrRuntime(sim::Machine& machine, FunctionRegistry& functions, DcrConfig config = {});
  ~DcrRuntime();

  DcrRuntime(const DcrRuntime&) = delete;
  DcrRuntime& operator=(const DcrRuntime&) = delete;

  // Run `main` control-replicated; returns once the simulation quiesces.
  DcrStats execute(const ApplicationMain& main);

  std::size_t num_shards() const { return placement_.size(); }
  const rt::PhysicalState& physical_state() const { return physical_; }
  rt::RegionForest& forest() { return forest_; }
  ShardingRegistry& shardings() { return shardings_; }
  rt::ProjectionRegistry& projections() { return projections_; }
  // Static interference analysis observability (tests, dcr-spy statics).
  const statics::InterferenceProver& statics_prover() const { return statics_prover_; }
  const statics::LaunchLedger& statics_ledger() const { return statics_ledger_; }

  // Per-function execution profile: task count and total virtual busy time.
  struct FunctionProfile {
    std::uint64_t tasks = 0;
    SimTime total_time = 0;
  };
  const std::map<FunctionId, FunctionProfile>& profile() const { return profile_; }

  // Realized point-task graph (only populated with config.record_task_graph).
  const rt::TaskGraph& realized_graph() const { return realized_graph_; }
  // (op id, point index within op) for every realized task, program order.
  struct RealizedTask {
    TaskId id;
    OpId op;
    std::uint64_t point_index;
  };
  const std::vector<RealizedTask>& realized_tasks() const { return realized_tasks_; }

  // dcr-spy execution trace (only populated with config.record_trace).
  const spy::Trace* trace() const { return trace_.get(); }

  // dcr-prof metrics: always-on counters per shard + global; span timeline
  // populated when config.profile is set (prof/profiler.hpp).
  prof::Profiler& profiler() { return profiler_; }
  const prof::Profiler& profiler() const { return profiler_; }
  const Clock& clock() const { return clock_; }

  // dcr-scope causal ledger (only populated with config.scope).  NB: fully
  // qualified type — inside this class the name `scope` is this member
  // function, not the namespace.
  const dcr::scope::Recorder* scope() const { return scope_.get(); }
  // Crash flight recorder; non-null iff config.scope with flight_capacity > 0.
  const dcr::scope::FlightRecorder* flight() const { return flight_.get(); }

  // SDC replication observability (tests / tools): the control-taint set and
  // the quorum executor's ledger (null when sdc_replication is off).
  const TaintTracker& taint() const { return taint_; }
  const ReplicationExecutor* replicator() const { return replicator_.get(); }

  // Dependence-template observability (tests): per-shard template store and
  // the runtime-wide recovery epoch that invalidates templates on failover.
  TemplateManager& shard_templates(ShardId s) { return shard(s).templates; }
  // Per-shard automatic trace detector (tests: promotion logs and counters).
  const TraceIdentifier& shard_auto_tracer(ShardId s) { return shard(s).auto_tracer; }
  std::uint64_t recovery_epoch() const { return recovery_epoch_; }
  // Fence observability (template/fence interaction tests): how many fence
  // collectives exist and whether every shard arrived at each of them — a
  // replayed window must drive exactly the fence traffic fresh analysis does,
  // or the run could not have quiesced.
  std::size_t num_fences() const { return fences_.size(); }
  bool all_fences_complete() const;
  // Whether every shard's control program ran to completion (or the run
  // aborted).  Safe to poll mid-run — the `dcr-scope watch` exposer uses it
  // as its stop predicate so a periodic tick cannot keep the calendar alive
  // after the run quiesces.
  bool finished() const;

 private:
  friend class ShardContext;

  // The op model (OpRecord, payloads, CoarseDecision) lives in dcr/ops.hpp,
  // and the coarse dependence stage in dcr/coarse.hpp — both shared with the
  // real-threads backend (src/exec/).

  // ------------------------------------------------------------ shard state
  struct ShardState {
    ShardId id;
    NodeId node;
    std::uint64_t next_creation = 0;   // replicated-heap cursor
    std::uint64_t next_future = 0;     // future / future-map id cursors
    std::uint64_t next_future_map = 0;
    std::uint64_t next_op = 0;         // program-order op counter
    std::uint64_t api_calls = 0;       // determinism-check call index
    sim::Event fine_tail;              // previous fine analysis on this shard
    std::unique_ptr<Philox4x32> rng;
    // Per-shard dependence templates (dcr/template.hpp): capture, validate,
    // and replay of trace windows' analysis decisions.
    TemplateManager templates;
    Hash128 last_template_hash;  // template-identity hash of the latest call
    // Automatic trace identification (dcr/trace_id.hpp): the per-shard
    // repeated-trace detector, whether the currently open template window was
    // opened by it (vs an explicit begin_trace), and the end-of-program gate
    // that stops it from opening windows during finalization.
    TraceIdentifier auto_tracer;
    bool auto_open = false;
    bool auto_stop = false;
    // dcr-prof: trace windows opened by this shard (the span iteration tag)
    // and the virtual start time of the one currently open.
    std::uint64_t windows_opened = 0;
    SimTime window_started = 0;
    // Deferred deletions this shard has requested (in request order).
    std::vector<RegionTreeId> deferred_requests;
    std::uint64_t deletions_processed = 0;
    bool main_returned = false;
    bool done = false;
    // ---- fault tolerance (dcr/recovery.hpp) ----
    sim::SimProcess* process = nullptr;  // current incarnation's control process
    bool crashed = false;                // node died while hosting this shard
    bool dead = false;                   // declared dead by the lease monitor
    bool probe_inflight = false;         // monitor ping outstanding
    std::uint32_t incarnation = 0;       // bumped per replacement
    std::uint64_t replay_ops_end = 0;    // replay skips ops below this index
    std::uint64_t replay_calls_end = 0;  // replay skips API calls below this
    SimTime last_heard = 0;              // lease, refreshed on every API call
    SimTime crashed_at = 0;
    std::int64_t pending_report = -1;    // failures_ index awaiting recovery
    CommitLog commit;
  };

  // Futures: broadcast/all-reduce collectives of doubles among shards.  The
  // per-shard gate triggers once the combined value is available at that
  // shard's node.
  struct FutureRecord {
    std::shared_ptr<sim::Collective<double>> coll;
    std::vector<sim::UserEvent> per_shard_event;
  };
  struct FutureMapRecord {
    OpId op;
    rt::Rect domain;
    // Per-shard partial values become available when the shard's owned point
    // tasks complete (shard_values_ready[s]).
    std::vector<sim::Event> shard_values_ready;
    std::vector<double> shard_partial_sum;
    std::vector<double> shard_partial_min;
    std::vector<double> shard_partial_max;
  };

  // Cross-shard fences keyed by the *dependent* op: each shard arrives once
  // its fine pipeline reaches that op (fine stages are serialized per shard,
  // so arrival implies every earlier op's fine analysis completed locally).
  struct FenceRecord {
    std::unique_ptr<sim::FenceCollective> coll;
  };

  // ---------------------------------------------------------------- helpers
  ShardState& shard(ShardId s) { return *shards_[s.value]; }
  sim::Processor& analysis_proc(ShardId s) {
    return machine_.analysis_proc(placement_[s.value]);
  }
  ShardId single_op_owner(OpId op) const {
    return ShardId(static_cast<std::uint32_t>(op.value % placement_.size()));
  }

  // Coarse-stage front door: runs coarse_.decide() / coarse_.install_replayed()
  // and, when this call computed the decision, mirrors DcrStats and emits the
  // spy trace records (dependences then the op record) exactly once.
  const CoarseDecision& coarse_decision(const OpRecord& op);
  const CoarseDecision& install_replayed_decision(const OpRecord& op);
  void emit_coarse_decision(const OpRecord& op, const CoarseDecision& dec);

  // ---- dependence templates (dcr/template.hpp) ----
  // Capture: turn a computed decision (+ the op's fine-stage plan) into a
  // TemplateOp on this shard's recording.
  void capture_template_op(ShardState& st, const OpRecord& op, const CoarseDecision& dec);
  // Validate: shadow-compare a fresh decision/plan against the recording.
  void validate_template_op(ShardState& st, const OpRecord& op, const CoarseDecision& dec);
  // Fine-stage mapping for this shard's owned points of an index launch
  // (what a replay skips recomputing).
  std::shared_ptr<const PointPlanList> make_point_plan(ShardId s, const IndexPayload& index);
  FenceRecord& fence_for(OpId dependent);
  FutureRecord& ensure_future(std::uint64_t id, OpId producer, bool broadcast);
  FutureRecord& ensure_reduce_future(std::uint64_t id, ReduceOp rop);

  // Issue path: called from the shard's control process.
  void issue(class ShardContext& ctx, OpPayload payload);
  void process_op(ShardId s, const OpRecord& op);
  void execute_points(ShardId s, const OpRecord& op);
  sim::Event launch_point_task(ShardId s, const OpRecord& op, const rt::Point& point,
                               std::uint64_t point_index,
                               const std::vector<rt::Requirement>& reqs,
                               const std::vector<std::int64_t>& args, FunctionId fn,
                               std::uint64_t future_map_id,
                               std::uint64_t future_id = ~0ull);
  void finish_point_task(ShardId s, const PointTaskInfo& info, std::uint64_t future_map_id,
                         std::uint64_t future_id, double value);
  sim::Processor& compute_proc_for(ShardId s, std::uint64_t point_index);

  // ---- SDC replication (dcr/replicate.hpp) ----
  // One execution instance's result: the function's value model plus this
  // instance's silent-corruption fate (instance key = task id * 64 + exec, so
  // the primary of a replicated run corrupts identically to an unreplicated
  // run and every replica draws independently).
  double task_result(const PointTaskInfo& info, TaskId tid, std::uint32_t exec);
  // Control observed future `id` (get_future / future_is_ready): propagate
  // taint to the producing ops and account late-taint races.
  void note_control_future(std::uint64_t future_id);
  // A quorum out-voted >= 1 corrupted ballot for a task of `op`: invalidate
  // the template epoch (the corruption may predate cached decisions), re-issue
  // the replayed op's fence decisions into the prof ledger, and track suspect
  // shards toward corruption-triggered failover.
  void on_corruption_healed(OpId op, bool traced, const QuorumOutcome& out);

  // The causal context shard `s` stamps onto a collective contribution right
  // now; invalid (default) when config_.scope is off.
  dcr::scope::TraceCtx scope_ctx(ShardId s) const;
  void record_realized(TaskId tid, OpId op, std::uint64_t point_index,
                       const std::vector<TaskId>& preds);
  void spy_record_task(ShardId s, TaskId tid, OpId op, std::uint64_t point_index,
                       std::vector<spy::AccessRecord> accesses);
  void finalize_shard(class ShardContext& ctx);

  // Template window close + hit/miss accounting, shared by explicit end_trace
  // and auto-detected windows.  Reads the mode before end() clears it: a
  // window still in Replay at close was served by a validated template;
  // anything else (capture, validation, mid-window abort) ran fresh analysis.
  // hits + misses == windows_closed by construction.
  void close_template_window(ShardState& st, std::size_t shard_idx);
  // Abort AND retire an auto-detected window.  An explicit window's abort
  // deliberately leaves the active slot occupied for its matching end_trace;
  // an auto window has no end_trace, so the close accounting must run here or
  // the stale slot blocks every later begin (explicit or auto).
  void retire_auto_window(ShardState& st, std::size_t shard_idx, const char* reason);

  void start_deferred_poller();
  bool check_deferred_consensus();

  // ---- fault tolerance: detection and control-deterministic recovery ----
  void spawn_shard(ShardState& st);
  // Replay-aware process_op: skips ops the dead incarnation already committed
  // and appends fresh ops to the commit log.
  void commit_op(ShardId s, const OpRecord& op);
  void on_node_crash(NodeId node, SimTime t);
  void start_monitor();
  void probe_shard(ShardState& st);
  std::optional<NodeId> probe_source(NodeId target) const;
  void declare_dead(ShardState& st);
  void start_recovery(ShardState& st);
  void abort_execution(std::string reason);

  sim::Machine& machine_;
  FunctionRegistry& functions_;
  DcrConfig config_;
  std::vector<NodeId> placement_;  // shard -> node
  prof::Profiler profiler_;
  // Time source for prof/scope span timestamps (common/clock.hpp): virtual
  // nanoseconds here, wall nanoseconds on the threads backend.  Timestamp
  // reads go through this; functional reads (event triggers, fault leases,
  // lease expiry) stay on the simulator calendar directly.
  sim::SimClock clock_{machine_.sim()};

  rt::RegionForest forest_;
  rt::ProjectionRegistry projections_;
  ShardingRegistry shardings_;
  // Verdict cache keys on forest_.mutation_epoch(), so static proofs survive
  // template/recovery epoch bumps (they depend only on region geometry).
  statics::InterferenceProver statics_prover_{forest_, projections_,
                                              config_.statics_check};
  statics::LaunchLedger statics_ledger_;
  rt::PhysicalState physical_;
  UserTracker tracker_;
  DeterminismChecker checker_;

  // Replicated heap: creation results in call order, shared by shards.
  struct Creation {
    std::variant<FieldSpaceId, FieldId, RegionTreeId, PartitionId> handle;
  };
  std::vector<Creation> creations_;

  std::vector<std::unique_ptr<ShardState>> shards_;
  // Shared coarse dependence stage (dcr/coarse.hpp): decisions, epoch state,
  // program-order guard.  Also used verbatim by the threads backend.
  CoarseAnalyzer coarse_{
      CoarseAnalyzer::Options{config_.disable_fence_elision, config_.static_analysis,
                              config_.statics_check},
      profiler_};

  std::map<std::uint64_t, FutureRecord> futures_;
  std::map<std::uint64_t, FutureMapRecord> future_maps_;
  std::map<OpId, FenceRecord> fences_;

  sim::QuiescenceTracker quiescence_;  // every op/task completion
  // Deferred-deletion consensus: number of requests agreed + insertion index.
  std::uint64_t deferred_consensus_ = 0;
  std::map<std::uint64_t, DeletePayload> agreed_insertions_;  // op index -> op
  SimTime deferred_poll_interval_ = 0;
  bool poller_active_ = false;
  bool deferred_drained_ = false;

  ApplicationMain main_;  // kept for respawning replacement shards
  std::vector<FailureReport> failures_;
  // Bumped once per shard failover: live shards drop their templates at the
  // next window begin (the failover may have rewound shared analysis state).
  std::uint64_t recovery_epoch_ = 0;
  bool aborted_ = false;
  std::string abort_message_;

  DcrStats stats_;
  std::map<FunctionId, FunctionProfile> profile_;
  rt::TaskGraph realized_graph_;
  std::vector<RealizedTask> realized_tasks_;
  std::unique_ptr<spy::Trace> trace_;  // non-null iff config_.record_trace
  // dcr-scope causal ledger; non-null iff config_.scope (type qualified: the
  // member function scope() shadows the namespace inside this class).
  std::unique_ptr<dcr::scope::Recorder> scope_;
  std::unique_ptr<dcr::scope::FlightRecorder> flight_;
  bool flight_dumped_ = false;  // first abort wins; never dump twice
  std::uint64_t next_task_id_ = 0;

  // ---- SDC replication (dcr/replicate.hpp) ----
  TaintTracker taint_;
  std::unique_ptr<ReplicationExecutor> replicator_;  // non-null iff sdc_replication
  // Ops with value-producing points already launched unreplicated; a taint
  // arriving afterwards is too late for those points (counted, not fatal —
  // the launch decision is made per point at launch time).
  std::set<std::uint64_t> value_ops_launched_;
  std::vector<std::uint32_t> sdc_suspect_counts_;  // lost ballots per shard
};

}  // namespace dcr::core
