#include "dcr/trace_id.hpp"

#include <algorithm>

namespace dcr::core {

namespace {

// One raw CRC32C step (init 0, no pre/post inversion — the linear form, so
// window fingerprints compose under the shift/xor algebra below).
inline std::uint32_t crc_step(std::uint32_t s, std::uint8_t b) {
  return (s >> 8) ^ detail::kCrc32cTable[(s ^ b) & 0xFFu];
}

// Feed one zero byte: advances the CRC register without new input.
inline std::uint32_t crc_zero_step(std::uint32_t s) {
  return (s >> 8) ^ detail::kCrc32cTable[s & 0xFFu];
}

// Raw CRC of one token's 4 little-endian bytes, from state 0.
inline std::uint32_t crc_token(std::uint32_t tok) {
  std::uint32_t s = 0;
  for (int i = 0; i < 4; ++i) s = crc_step(s, static_cast<std::uint8_t>(tok >> (8 * i)));
  return s;
}

}  // namespace

void TraceIdentifier::configure(const TraceIdConfig& cfg) {
  cfg_ = cfg;
  cfg_.min_period = std::max<std::uint64_t>(1, cfg_.min_period);
  cfg_.max_period = std::max(cfg_.max_period, cfg_.min_period);
  cfg_.probe = std::max<std::uint64_t>(2, cfg_.probe);
  cfg_.promote_periods = std::max<std::uint64_t>(1, cfg_.promote_periods);
  cfg_.demote_strikes = std::max<std::uint64_t>(1, cfg_.demote_strikes);
  ring_.assign(cfg_.max_period + cfg_.probe, 0);
  // Z^{4(probe-1)}: CRC is GF(2)-linear, so shifting a state S past k zero
  // bytes decomposes by bytes of S: Z^k(S) = xor_j Tbl[j][byte_j(S)].  Each
  // table entry is computed once here by actually feeding the zero bytes.
  const std::uint64_t zeros = 4 * (cfg_.probe - 1);
  for (int j = 0; j < 4; ++j) {
    for (std::uint32_t v = 0; v < 256; ++v) {
      std::uint32_t s = v << (8 * j);
      for (std::uint64_t k = 0; k < zeros; ++k) s = crc_zero_step(s);
      shift_out_[static_cast<std::size_t>(j)][v] = s;
    }
  }
  reset();
}

void TraceIdentifier::reset() {
  state_ = State::Scanning;
  pos_ = 0;
  fp_ = 0;
  table_.clear();
  period_ = 0;
  match_run_ = 0;
  trace_ = TraceId::invalid();
  in_window_ = false;
  calls_in_window_ = 0;
  strikes_ = 0;
  resume_run_ = 0;
  mismatch_run_ = 0;
}

std::uint32_t TraceIdentifier::signature_token(const Hash128& sig) {
  unsigned char buf[16];
  std::memcpy(buf, &sig.lo, 8);
  std::memcpy(buf + 8, &sig.hi, 8);
  return crc32c(buf, sizeof(buf));
}

std::uint32_t TraceIdentifier::window_fingerprint(const std::uint32_t* tokens,
                                                  std::size_t n) {
  std::uint32_t s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int b = 0; b < 4; ++b) {
      s = crc_step(s, static_cast<std::uint8_t>(tokens[i] >> (8 * b)));
    }
  }
  return s;
}

std::uint32_t TraceIdentifier::table_key() const {
  if (cfg_.fp_mask_bits == 0 || cfg_.fp_mask_bits >= 32) return fp_;
  return fp_ & ((1u << cfg_.fp_mask_bits) - 1u);
}

// Ring + rolling fingerprint upkeep; runs identically in every state so the
// scanner has fresh history the moment a trace demotes.
void TraceIdentifier::advance(std::uint32_t tok) {
  const std::uint64_t window = std::min<std::uint64_t>(pos_, cfg_.probe);
  if (window == cfg_.probe) {
    // Slide: drop the front token f (at pos_ - probe), append tok.
    //   fp' = Z^4( fp ^ Z^{4(probe-1)}(F(f)) ) ^ F(tok)
    const std::uint32_t front = crc_token(ring_at(pos_ - cfg_.probe));
    std::uint32_t shifted = 0;
    for (int j = 0; j < 4; ++j) {
      shifted ^= shift_out_[static_cast<std::size_t>(j)][(front >> (8 * j)) & 0xFFu];
    }
    std::uint32_t s = fp_ ^ shifted;
    for (int k = 0; k < 4; ++k) s = crc_zero_step(s);
    fp_ = s ^ crc_token(tok);
  } else {
    // Still filling the first window: plain append.
    std::uint32_t s = fp_;
    for (int k = 0; k < 4; ++k) s = crc_zero_step(s);
    fp_ = s ^ crc_token(tok);
  }
  ring_[pos_ % ring_.size()] = tok;
  pos_++;
}

bool TraceIdentifier::verify_repeat(std::uint64_t d) const {
  // Token-exact comparison of the last probe tokens against the probe tokens
  // ending d earlier; both windows are within the ring by construction
  // (d <= max_period, ring holds max_period + probe).
  for (std::uint64_t i = 0; i < cfg_.probe; ++i) {
    if (ring_at(pos_ - 1 - i) != ring_at(pos_ - 1 - d - i)) return false;
  }
  return true;
}

void TraceIdentifier::arm(std::uint64_t d) {
  state_ = State::Armed;
  period_ = d;
  // The verified probe window gives `probe` consecutive distance-d matches.
  match_run_ = cfg_.probe;
}

TraceId TraceIdentifier::derive_trace_id() const {
  // CRC32C over the last full period of tokens, rotated to a canonical start?
  // No: all shards observe the same stream, so the promotion position — and
  // hence the window phase — is identical everywhere; hashing the last
  // `period_` tokens as-is is deterministic.  The high bit marks auto ids so
  // they cannot collide with small app-chosen TraceIds.
  std::uint32_t crc = 0;
  for (std::uint64_t i = period_; i > 0; --i) {
    const std::uint32_t tok = ring_at(pos_ - i);
    crc = crc32c(&tok, sizeof(tok), crc);
  }
  std::uint32_t v = 0x80000000u | (crc & 0x7FFFFFFFu);
  if (v == TraceId::invalid_value()) v = 0x80000000u;
  return TraceId(v);
}

TraceIdentifier::Result TraceIdentifier::promote() {
  trace_ = derive_trace_id();
  counters_.promotions++;
  promotion_log_.emplace_back(pos_ - 1, trace_.value);
  state_ = State::Tracing;
  in_window_ = true;
  calls_in_window_ = 1;  // the current call becomes the window's first op
  strikes_ = 0;
  resume_run_ = 0;
  mismatch_run_ = 0;
  counters_.windows++;
  return {Action::Open, trace_};
}

void TraceIdentifier::demote() {
  counters_.demotions++;
  state_ = State::Scanning;
  period_ = 0;
  match_run_ = 0;
  trace_ = TraceId::invalid();
  in_window_ = false;
  calls_in_window_ = 0;
  strikes_ = 0;
  resume_run_ = 0;
  mismatch_run_ = 0;
}

void TraceIdentifier::interrupt() {
  if (!in_window_) return;
  counters_.aborts++;
  in_window_ = false;
  calls_in_window_ = 0;
  resume_run_ = 0;
  mismatch_run_ = 0;
  // No strike: an explicit window or a flush is not evidence the repeat died.
}

TraceIdentifier::Result TraceIdentifier::observe(const Hash128& sig, bool suppress) {
  const std::uint32_t tok = signature_token(sig);
  advance(tok);

  // `match`: does this call continue the candidate period?  Meaningless in
  // Scanning (period_ == 0).
  const bool match = period_ != 0 && ring_at(pos_ - 1) == ring_at(pos_ - 1 - period_);

  switch (state_) {
    case State::Scanning: {
      if (pos_ < cfg_.probe) return {};
      const std::uint32_t key = table_key();
      const auto it = table_.find(key);
      if (it != table_.end()) {
        const std::uint64_t d = pos_ - 1 - it->second;
        if (d >= cfg_.min_period && d <= cfg_.max_period) {
          if (verify_repeat(d)) {
            counters_.detections++;
            arm(d);
          } else {
            counters_.collisions++;
          }
        }
      }
      table_[key] = pos_ - 1;
      // An armed candidate may already satisfy the promotion threshold (short
      // periods: the probe window spans promote_periods full periods).
      if (state_ == State::Armed &&
          match_run_ >= period_ * cfg_.promote_periods && !suppress) {
        return promote();
      }
      return {};
    }

    case State::Armed: {
      if (!match) {
        // Candidate broken before promotion: back to scanning, no demotion
        // counted (nothing was promoted).
        state_ = State::Scanning;
        period_ = 0;
        match_run_ = 0;
        return {};
      }
      match_run_++;
      if (match_run_ >= period_ * cfg_.promote_periods && !suppress) {
        return promote();
      }
      return {};
    }

    case State::Tracing: {
      if (in_window_) {
        if (calls_in_window_ == period_) {
          // Window boundary: the previous window holds exactly one period.
          if (match) {
            counters_.windows++;
            calls_in_window_ = 1;
            strikes_ = 0;
            return {Action::CloseOpen, trace_};
          }
          // Completed cleanly, but the stream moved on: close and pause.
          in_window_ = false;
          calls_in_window_ = 0;
          strikes_++;
          mismatch_run_ = 1;
          resume_run_ = 0;
          const TraceId t = trace_;
          if (strikes_ >= cfg_.demote_strikes) demote();
          return {Action::Close, t};
        }
        if (match) {
          calls_in_window_++;
          return {};
        }
        // Broke mid-period: the half-recorded window must be discarded.
        counters_.aborts++;
        in_window_ = false;
        calls_in_window_ = 0;
        strikes_++;
        mismatch_run_ = 1;
        resume_run_ = 0;
        const TraceId t = trace_;
        if (strikes_ >= cfg_.demote_strikes) demote();
        return {Action::AbortClose, t};
      }
      // Paused: trace promoted but no window open (strike, interrupt, or
      // suppression).  Matches accumulate toward reopening; sustained
      // mismatches accumulate strikes toward demotion.
      if (match) {
        resume_run_++;
        mismatch_run_ = 0;
        if (resume_run_ >= period_ && !suppress) {
          in_window_ = true;
          calls_in_window_ = 1;
          resume_run_ = 0;
          counters_.windows++;
          return {Action::Open, trace_};
        }
        return {};
      }
      resume_run_ = 0;
      mismatch_run_++;
      if (mismatch_run_ >= period_) {
        mismatch_run_ = 0;
        strikes_++;
        if (strikes_ >= cfg_.demote_strikes) demote();
      }
      return {};
    }
  }
  return {};
}

}  // namespace dcr::core
