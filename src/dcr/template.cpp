#include "dcr/template.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/semantics.hpp"
#include "common/check.hpp"
#include "runtime/task_graph.hpp"

namespace dcr::core {

bool summaries_shard_local(const rt::RegionForest& forest, const ReqSummary& prev,
                           const ReqSummary& next) {
  if (prev.is_index && next.is_index) {
    return prev.sharding == next.sharding && prev.domain == next.domain &&
           prev.partition.valid() && prev.partition == next.partition &&
           prev.projection == next.projection && forest.is_disjoint(prev.partition);
  }
  if (!prev.is_index && !next.is_index) {
    // Two single operations analyzed by the same owner shard.
    return prev.single_owner == next.single_owner;
  }
  return false;  // single <-> group: conservatively cross-shard (Figure 10 fill)
}

// ------------------------------------------------------------ state machine

TemplateManager::Mode TemplateManager::begin(TraceId id, std::uint64_t region_epoch,
                                             std::uint64_t recovery_epoch,
                                             std::uint64_t deletion_epoch,
                                             bool validation_enabled) {
  DCR_CHECK(!active_) << "template window already open";
  active_ = id;
  pos_ = 0;
  calls_ = 0;

  auto it = templates_.find(id);
  if (it != templates_.end() && (it->second.region_epoch != region_epoch ||
                                 it->second.recovery_epoch != recovery_epoch ||
                                 it->second.deletion_epoch != deletion_epoch)) {
    // Region-tree mutation, shard failover, or a consensus deletion shifted
    // the ground the recording stood on: drop it and re-capture.
    counters_.invalidated++;
    last_event_ = "template invalidated by epoch change";
    templates_.erase(it);
    it = templates_.end();
  }

  if (it == templates_.end()) {
    DependenceTemplate t;
    t.region_epoch = region_epoch;
    t.recovery_epoch = recovery_epoch;
    t.deletion_epoch = deletion_epoch;
    templates_.emplace(id, std::move(t));
    mode_ = Mode::Capture;
  } else if (it->second.state == DependenceTemplate::State::Rejected) {
    mode_ = Mode::Inactive;  // run fresh, no recording: the audit said no
  } else if (it->second.state == DependenceTemplate::State::Recorded) {
    mode_ = validation_enabled ? Mode::Validate : Mode::Replay;
  } else {
    mode_ = Mode::Replay;
  }
  if (mode_ == Mode::Validate) {
    // The shadow re-recording adopted if the compare mismatches.
    fresh_ = DependenceTemplate{};
    fresh_.region_epoch = region_epoch;
    fresh_.recovery_epoch = recovery_epoch;
    fresh_.deletion_epoch = deletion_epoch;
    mismatch_ = false;
  }
  return mode_;
}

bool TemplateManager::on_call(const Hash128& h) {
  if (!active_ || mode_ == Mode::Inactive) return true;
  DependenceTemplate& t = current();
  if (mode_ == Mode::Capture) {
    t.call_hashes.push_back(h);
    return true;
  }
  if (calls_ >= t.call_hashes.size() || !(t.call_hashes[calls_] == h)) {
    abort_window("API-call stream diverged from the recorded window");
    return false;
  }
  calls_++;
  if (mode_ == Mode::Validate) fresh_.call_hashes.push_back(h);
  return true;
}

TemplateOp* TemplateManager::next_op() {
  if (mode_ != Mode::Validate && mode_ != Mode::Replay) return nullptr;
  DependenceTemplate& t = current();
  if (pos_ >= t.ops.size()) {
    abort_window("window issued more ops than were recorded");
    return nullptr;
  }
  return &t.ops[pos_++];
}

void TemplateManager::record_op(TemplateOp op) {
  if (mode_ == Mode::Capture) {
    current().ops.push_back(std::move(op));
  } else if (mode_ == Mode::Validate) {
    fresh_.ops.push_back(std::move(op));
  }
}

void TemplateManager::abort_window(std::string reason) {
  if (!active_ || mode_ == Mode::Inactive) return;
  counters_.invalidated++;
  last_event_ = std::move(reason);
  templates_.erase(*active_);
  mode_ = Mode::Inactive;  // the rest of the window runs fresh analysis
}

void TemplateManager::validation_failed(std::string reason) {
  if (mode_ != Mode::Validate || mismatch_) return;  // keep the first reason
  mismatch_ = true;
  last_event_ = std::move(reason);
  // Stay in Validate: the rest of the window keeps comparing positionally and
  // keeps feeding the shadow re-recording that end() will adopt.
}

void TemplateManager::end(const rt::RegionForest& forest) {
  const Mode m = mode_;
  mode_ = Mode::Inactive;
  if (!active_) return;
  const TraceId id = *active_;
  active_.reset();
  if (m == Mode::Inactive) return;  // window aborted / rejected earlier

  DependenceTemplate& t = templates_.at(id);
  switch (m) {
    case Mode::Capture:
      t.state = DependenceTemplate::State::Recorded;
      counters_.captured++;
      break;
    case Mode::Validate: {
      if (mismatch_ || pos_ != t.ops.size() || calls_ != t.call_hashes.size()) {
        // The recording disagrees with a fresh analysis of this occurrence
        // (usually: the capture happened before steady state).  Adopt the
        // shadow re-recording and validate it against the next occurrence.
        counters_.validation_failures++;
        if (!mismatch_) last_event_ = "validation window ended short of the recording";
        fresh_.state = DependenceTemplate::State::Recorded;
        templates_[id] = std::move(fresh_);
        break;
      }
      std::string why;
      if (!audit_template(t, forest, &why)) {
        // The recording matched a fresh analysis yet contradicts the DEPseq
        // sequential semantics: replaying would be no safer than re-analyzing,
        // but nothing here would ever converge — sticky reject.
        counters_.validation_failures++;
        last_event_ = "validation audit failed: " + why;
        t.state = DependenceTemplate::State::Rejected;
      } else {
        t.state = DependenceTemplate::State::Validated;
        counters_.validated++;
      }
      break;
    }
    case Mode::Replay:
      if (pos_ != t.ops.size() || calls_ != t.call_hashes.size()) {
        counters_.invalidated++;
        last_event_ = "replay window ended short of the recording";
        templates_.erase(id);
      } else {
        t.replays++;
        counters_.window_replays++;
      }
      break;
    case Mode::Inactive:
      break;
  }
}

void TemplateManager::reset() {
  templates_.clear();
  mode_ = Mode::Inactive;
  active_.reset();
  pos_ = 0;
  calls_ = 0;
  fresh_ = DependenceTemplate{};
  mismatch_ = false;
}

// ------------------------------------------------------------------- audit

bool audit_template(const DependenceTemplate& t, const rt::RegionForest& forest,
                    std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  const std::size_t n = t.ops.size();

  // 1. Per-dependence checks: causality, fence coverage for cross-shard
  //    edges, and a re-proof of every in-window elision from the recorded
  //    summaries against the *current* forest.
  for (std::size_t pos = 0; pos < n; ++pos) {
    const TemplateOp& op = t.ops[pos];
    std::set<std::uint64_t> rel_fences;
    std::set<std::uint64_t> abs_fences;
    for (const TemplateFence& f : op.fences) {
      (f.absolute ? abs_fences : rel_fences).insert(f.absolute ? f.abs_source
                                                               : f.prev_offset);
    }
    for (const TemplateDep& d : op.deps) {
      if (!d.absolute && d.prev_offset == 0) {
        return fail("op " + std::to_string(pos) + " records a non-causal dependence");
      }
      const bool fenced = d.absolute ? abs_fences.count(d.abs_source) > 0
                                     : rel_fences.count(d.prev_offset) > 0;
      if (!d.elided && !fenced) {
        std::ostringstream os;
        os << "op " << pos << " records a cross-shard dependence at "
           << (d.absolute ? "absolute source " : "offset ")
           << (d.absolute ? d.abs_source : d.prev_offset) << " with no matching fence";
        return fail(os.str());
      }
      if (d.elided && !d.absolute && d.prev_offset <= pos) {
        const TemplateOp& prev = t.ops[pos - d.prev_offset];
        bool proven = false;
        for (const ReqSummary& ps : prev.summaries) {
          if (ps.tree != d.tree) continue;
          if (std::find(ps.fields.begin(), ps.fields.end(), d.field) == ps.fields.end()) {
            continue;
          }
          for (const ReqSummary& ns : op.summaries) {
            if (ns.tree != d.tree) continue;
            if (std::find(ns.fields.begin(), ns.fields.end(), d.field) == ns.fields.end()) {
              continue;
            }
            if (rt::privileges_conflict(ps.privilege, ps.redop, ns.privilege, ns.redop) &&
                summaries_shard_local(forest, ps, ns)) {
              proven = true;
              break;
            }
          }
          if (proven) break;
        }
        if (!proven) {
          std::ostringstream os;
          os << "op " << pos << " elides a dependence at offset " << d.prev_offset
             << " on (tree " << d.tree.value << ", field " << d.field.value
             << ") that is not provably shard-local";
          return fail(os.str());
        }
      }
    }
  }

  // 2. DEPseq audit over the recorded fine-stage plans: run the executable
  //    sequential semantics on this shard's recorded points with the concrete
  //    requirements_conflict oracle, and check every point-level dependence
  //    among in-window points is covered by a transitive recorded coarse
  //    dependence (direct edges or fence-ordered barriers).
  constexpr std::uint64_t kStride = 1ull << 20;
  an::AProgram prog;
  std::map<std::uint64_t, const PointPlan*> plans;
  for (std::size_t pos = 0; pos < n; ++pos) {
    an::ATaskGroup group;
    if (t.ops[pos].plan) {
      DCR_CHECK(t.ops[pos].plan->size() < kStride);
      for (std::size_t i = 0; i < t.ops[pos].plan->size(); ++i) {
        const TaskId tid(pos * kStride + i);
        group.push_back({tid, ShardId(0)});
        plans[tid.value] = &(*t.ops[pos].plan)[i];
      }
    }
    prog.push_back(std::move(group));
  }
  const an::Oracle oracle = [&](TaskId a, TaskId b) {
    const PointPlan* pa = plans.at(a.value);
    const PointPlan* pb = plans.at(b.value);
    for (const rt::Requirement& ra : pa->reqs) {
      for (const rt::Requirement& rb : pb->reqs) {
        if (rt::requirements_conflict(forest, ra, rb)) return true;
      }
    }
    return false;
  };
  const rt::TaskGraph g = an::analyze_sequential(prog, oracle);

  // Op-level ordering implied by the recording: every dep (elided or fenced)
  // and every fence source with an in-window target, transitively closed.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t pos = 0; pos < n; ++pos) {
    for (const TemplateDep& d : t.ops[pos].deps) {
      if (!d.absolute && d.prev_offset <= pos) reach[pos - d.prev_offset][pos] = true;
    }
    for (const TemplateFence& f : t.ops[pos].fences) {
      if (!f.absolute && f.prev_offset >= 1 && f.prev_offset <= pos) {
        reach[pos - f.prev_offset][pos] = true;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }

  for (TaskId u : g.tasks()) {
    for (TaskId v : g.successors(u)) {
      const std::size_t pu = static_cast<std::size_t>(u.value / kStride);
      const std::size_t pv = static_cast<std::size_t>(v.value / kStride);
      if (pu == pv) continue;  // intra-group: tasks of one launch
      if (!reach[pu][pv]) {
        std::ostringstream os;
        os << "DEPseq finds a point-level dependence from op " << pu << " (point "
           << (u.value % kStride) << ") to op " << pv << " (point " << (v.value % kStride)
           << ") not covered by any recorded coarse dependence";
        return fail(os.str());
      }
    }
  }
  return true;
}

}  // namespace dcr::core
