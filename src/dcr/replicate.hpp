// SDC-resilient selective task replication (ISSUE 6).
//
// The paper's control-determinism guarantee (§3) assumes the task results
// that feed control decisions are *correct*: a silent data corruption in a
// control-feeding future poisons every shard identically (the value flows
// through one collective), so the §3 hash check — which only compares the
// shards against each other — can never see it.  Following "Protecting
// Futures against Silent Data Corruption" (PAPERS.md), this layer converts
// those silent hazards into detected-and-healed events:
//
//  * TaintTracker — control-taint analysis.  issue() registers every future
//    and future map with its producing op; when the control program observes
//    a future (get_future / future_is_ready — the only ways a task result can
//    reach a fence predicate, launch count, or template-window hash), the
//    future is marked control-tainted and the taint propagates transitively
//    to the producing ops (a reduced future taints both the reduce op and the
//    index launch whose point values it folds).  Only tasks of tainted ops
//    are replicated — the SDC-critical subset, not the whole workload.
//
//  * ReplicationExecutor — N-modular duplicate execution with quorum
//    re-execution.  For each tainted point task the runtime opens a ticket:
//    the primary runs in place (same processor, same task graph) while
//    `replicas - 1` duplicates are scheduled on distinct shards through the
//    same sim scheduler, gated on the same preconditions.  Each execution
//    draws its own SDC fate (sim/fault.hpp) and casts a ballot — a CRC32C
//    digest of its serialized result (common/crc32c.hpp) shipped to the
//    primary over the reliable transport.  The ticket resolves the moment a
//    quorum of digests agrees (never before the primary's own ballot, whose
//    completion event resolution triggers); later ballots arrive as audited
//    stale votes, and a stale mismatch is still a detected corruption.
//    Disagreement or a lost ballot with no quorum: re-execute, one round at
//    a time on fresh shards, until some digest reaches the configured quorum
//    or the retry budget exhausts into a graceful abort.
//    Replicas are *shadow* executions — no tracker/physical/spy/scope
//    effects, no collective arrivals — so a replicated run realizes exactly
//    the task graph of an unreplicated one (the dcr-spy equivalence audit).
//
// The runtime (dcr/runtime.cpp) supplies placement and liveness through
// Hooks, gates each primary's completion on its ticket's verdict, and feeds
// the resolved value — never the primary's raw result — into the future
// collectives.  A healed ticket additionally invalidates the template epoch
// and can push a repeatedly out-voted shard through the PR-1 failover path
// (corruption-aware recovery); both live in the runtime, not here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "prof/profiler.hpp"
#include "sim/machine.hpp"

namespace dcr::core {

// Control-taint analysis over the future/op producer graph.  All bookkeeping
// is host-side shared state (like the coarse decision cache): any shard's
// control program observing a future taints the producing ops for every
// shard.  Registration is idempotent — each of the N replicated control
// programs issues the same ops and records the same producers.
class TaintTracker {
 public:
  // issue()-time registration: a single-task future, an index launch's future
  // map, and a reduce_future_map future (which folds `fm`'s point values).
  void note_future(std::uint64_t future_id, std::uint64_t producer_op);
  void note_future_map(std::uint64_t fm_id, std::uint64_t producer_op);
  void note_reduce(std::uint64_t future_id, std::uint64_t reduce_op, std::uint64_t fm_id);

  // The control program observed `future_id`: mark it control-tainted and
  // propagate to the producing ops.  Returns the ops *newly* tainted by this
  // observation (empty on re-observation), so the caller can account
  // late-taint races against already-launched tasks.
  std::vector<std::uint64_t> taint_future(std::uint64_t future_id);

  bool op_tainted(std::uint64_t op) const { return tainted_ops_.count(op) != 0; }
  std::size_t tainted_ops() const { return tainted_ops_.size(); }
  std::size_t tainted_futures() const { return tainted_futures_.size(); }

 private:
  struct FutureSource {
    std::uint64_t producer_op = ~0ull;
    std::uint64_t fm_id = ~0ull;  // set for reduce futures: transitive taint
  };
  std::unordered_map<std::uint64_t, FutureSource> future_src_;
  std::unordered_map<std::uint64_t, std::uint64_t> fm_src_;
  std::unordered_set<std::uint64_t> tainted_ops_;
  std::unordered_set<std::uint64_t> tainted_futures_;
};

struct ReplicationConfig {
  std::uint32_t replicas = 2;       // executions per tainted point, incl. primary
  std::uint32_t quorum = 2;         // matching digests that settle a disagreement
  std::uint32_t retry_budget = 4;   // extra re-executions before graceful abort
  std::uint64_t digest_bytes = 12;  // CRC32C digest + header per shipped ballot
};

// The verdict delivered to the runtime when a ticket resolves.  Not delivered
// on abort (the executor calls Hooks::abort instead and the primary's
// completion event stays untriggered, which is the existing graceful-abort
// drain semantics).
struct QuorumOutcome {
  double value = 0.0;          // the quorum-agreed result to contribute
  std::uint32_t ballots = 0;   // ballots tallied (primary + replicas)
  std::uint32_t mismatches = 0;  // ballots out-voted by the winning digest
  bool primary_corrupted = false;  // the primary's own ballot lost
  std::uint32_t rounds = 0;    // re-execution rounds it took
  SimTime opened = 0;
  SimTime resolved_at = 0;
  std::vector<std::uint32_t> corrupted_shards;  // shard of each losing ballot
};

class ReplicationExecutor {
 public:
  struct Hooks {
    // Compute processor a (replica) execution of `point_index` uses on `shard`.
    std::function<sim::Processor&(std::uint32_t shard, std::uint64_t point_index)> proc_for;
    std::function<NodeId(std::uint32_t shard)> node_of;
    // Live and reachable right now (not dead/crashed/dark) — replica placement
    // avoids such shards; a crash *after* placement surfaces as a lost ballot.
    std::function<bool(std::uint32_t shard)> shard_usable;
    std::function<void(std::string reason)> abort;
  };

  struct Stats {
    std::uint64_t tickets = 0;
    std::uint64_t resolved = 0;
    std::uint64_t healed = 0;   // resolved despite >= 1 mismatching ballot
    std::uint64_t aborted = 0;  // retry budget exhausted without a quorum
    std::uint64_t replicas_issued = 0;    // duplicate executions launched
    std::uint64_t replicas_compared = 0;  // replica ballots tallied at the primary
    std::uint64_t replicas_lost = 0;      // replica digests that never arrived
    std::uint64_t mismatched_ballots = 0;
    std::uint64_t rounds = 0;
    std::uint64_t stale_votes = 0;  // ballots arriving after their quorum resolved
    std::vector<std::uint64_t> blamed_by_shard;  // losing ballots per shard
  };

  ReplicationExecutor(sim::Machine& machine, prof::Profiler& profiler,
                      ReplicationConfig config, std::uint32_t num_shards, Hooks hooks);

  // Open a verification ticket for one tainted point task whose primary
  // execution the runtime has already enqueued on `primary_shard`.  Launches
  // the `replicas - 1` duplicates immediately (gated on `pre`, the primary's
  // merged precondition).  `value_of(exec)` computes the result of execution
  // instance `exec` (0 = primary; each instance draws its own SDC fate).
  // `on_resolved` fires exactly once, when a quorum settles — never on abort.
  std::uint64_t open(std::uint64_t op, std::uint32_t primary_shard,
                     std::uint64_t point_index, SimTime duration, sim::Event pre,
                     std::function<double(std::uint32_t exec)> value_of,
                     std::function<void(const QuorumOutcome&)> on_resolved,
                     std::string label);

  // The primary execution finished: cast its ballot (execution instance 0).
  void primary_complete(std::uint64_t ticket);

  const Stats& stats() const { return stats_; }
  // Ledger invariant (prof wiring): replicas issued == compared + lost +
  // in_flight, and in_flight drains to zero when the calendar does.
  std::uint64_t in_flight() const {
    return stats_.replicas_issued - stats_.replicas_compared - stats_.replicas_lost;
  }

 private:
  struct Ballot {
    std::uint32_t exec;
    std::uint32_t shard;
    std::uint32_t digest;
    double value;
  };
  struct Ticket {
    std::uint64_t id = 0;
    std::uint64_t op = 0;
    std::uint32_t primary = 0;
    std::uint64_t point_index = 0;
    SimTime duration = 0;
    sim::Event pre;
    SimTime opened = 0;
    std::function<double(std::uint32_t)> value_of;
    std::function<void(const QuorumOutcome&)> on_resolved;
    std::string label;
    std::uint32_t launched = 0;  // executions started, incl. the primary
    std::uint32_t lost = 0;      // replica ballots that will never arrive
    std::uint32_t rounds = 0;
    std::vector<Ballot> ballots;
    bool resolved = false;  // also set on abort: swallows stale ballots
    std::uint32_t winner_digest = 0;  // valid once resolved: audits stragglers
  };

  void launch_replica(Ticket& t);
  std::uint32_t pick_shard(const Ticket& t) const;
  void cast(std::uint64_t ticket, std::uint32_t exec, std::uint32_t shard, double value);
  void lose(std::uint64_t ticket);
  void evaluate(Ticket& t);
  void resolve(Ticket& t, std::uint32_t winner_digest);

  sim::Machine& machine_;
  prof::Profiler& profiler_;
  ReplicationConfig config_;
  std::uint32_t num_shards_;
  Hooks hooks_;
  std::map<std::uint64_t, Ticket> tickets_;  // resolved kept: stale-vote audit
  std::uint64_t next_ticket_ = 0;
  Stats stats_;
};

}  // namespace dcr::core
