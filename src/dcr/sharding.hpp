// Sharding functions (paper §4): pure, total functions mapping each point of
// a launch domain to the shard that owns its dependence analysis.
//
// "The only requirements of f are that it be a function (each subtask is
// assigned to one shard) and total (every subtask is assigned to some
// shard)."  Purity allows memoization: we cache the full point->shard map
// per (function, domain, num_shards) so repeated launches over the same
// domain pay a hash lookup, mirroring the implementation note in §4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"

namespace dcr::core {

class ShardingRegistry {
 public:
  using ShardingFn =
      std::function<ShardId(const rt::Point&, const rt::Rect& domain, std::size_t shards)>;

  ShardingRegistry() {
    // ID 0: cyclic — round-robins linearized points over shards (the paper's
    // example sharding function for Figure 10).
    register_sharding([](const rt::Point& p, const rt::Rect& domain, std::size_t shards) {
      return ShardId(static_cast<std::uint32_t>(rt::linearize(domain, p) % shards));
    });
    // ID 1: blocked/tiled — contiguous chunks of the domain per shard, the
    // locality-preserving choice used by the evaluation applications.
    register_sharding([](const rt::Point& p, const rt::Rect& domain, std::size_t shards) {
      const std::uint64_t idx = rt::linearize(domain, p);
      const std::uint64_t n = domain.volume();
      // ceil-divided blocks so every shard gets at most ceil(n/shards).
      const std::uint64_t block = (n + shards - 1) / shards;
      return ShardId(static_cast<std::uint32_t>(idx / block));
    });
  }

  static ShardingId cyclic() { return ShardingId(0); }
  static ShardingId blocked() { return ShardingId(1); }

  ShardingId register_sharding(ShardingFn fn) {
    fns_.push_back(std::move(fn));
    return ShardingId(static_cast<std::uint32_t>(fns_.size() - 1));
  }

  ShardId shard_of(ShardingId id, const rt::Point& p, const rt::Rect& domain,
                   std::size_t shards) const {
    DCR_CHECK(id.value < fns_.size()) << "unknown sharding function";
    const ShardId s = fns_[id.value](p, domain, shards);
    DCR_CHECK(s.value < shards) << "sharding function returned out-of-range shard";
    return s;
  }

  // Memoized owned-point list for one shard: the points of `domain` this
  // shard analyzes (fine stage, Figure 9 line 3).
  const std::vector<rt::Point>& owned_points(ShardingId id, const rt::Rect& domain,
                                             std::size_t shards, ShardId shard) {
    const Key key{id, domain, shards};
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      std::vector<std::vector<rt::Point>> per_shard(shards);
      rt::for_each_point(domain, [&](const rt::Point& p) {
        per_shard[shard_of(id, p, domain, shards).value].push_back(p);
      });
      it = cache_.emplace(key, std::move(per_shard)).first;
    }
    DCR_CHECK(shard.value < it->second.size());
    return it->second[shard.value];
  }

  std::size_t cache_entries() const { return cache_.size(); }

 private:
  struct Key {
    ShardingId id;
    rt::Rect domain;
    std::size_t shards;

    friend bool operator<(const Key& a, const Key& b) {
      auto tup = [](const Key& k) {
        return std::make_tuple(k.id, k.domain.dim, k.domain.lo, k.domain.hi, k.shards);
      };
      return tup(a) < tup(b);
    }
  };

  std::vector<ShardingFn> fns_;
  std::map<Key, std::vector<std::vector<rt::Point>>> cache_;
};

}  // namespace dcr::core
