#include "dcr/coarse.hpp"

#include <set>

#include "dcr/sharding.hpp"

namespace dcr::core {

std::vector<ReqSummary> summarize_op(const OpPayload& payload, const rt::RegionForest& forest,
                                     ShardId owner) {
  std::vector<ReqSummary> out;
  auto single = [&](IndexSpaceId region, const std::vector<FieldId>& fields,
                    rt::Privilege priv, rt::ReductionOpId redop) {
    ReqSummary r;
    r.tree = forest.tree_of(region);
    r.upper_bound = region;
    r.fields = fields;
    r.privilege = priv;
    r.redop = redop;
    r.is_index = false;
    r.single_owner = owner;
    out.push_back(std::move(r));
  };

  if (const auto* fill = std::get_if<FillPayload>(&payload)) {
    single(fill->region, fill->fields, rt::Privilege::WriteDiscard, rt::kNoRedop);
  } else if (const auto* task = std::get_if<TaskPayload>(&payload)) {
    for (const auto& req : task->launch.requirements) {
      single(req.region, req.fields, req.privilege, req.redop);
    }
  } else if (const auto* attach = std::get_if<AttachPayload>(&payload)) {
    if (attach->partition.valid()) {
      // Group variant: an index-launch-shaped upper-bound view so the fence
      // elision proof applies to back-to-back group I/O.
      ReqSummary r;
      r.upper_bound = forest.parent_region(attach->partition);
      r.tree = forest.tree_of(r.upper_bound);
      r.fields = attach->fields;
      r.privilege = attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard;
      r.redop = rt::kNoRedop;
      r.is_index = true;
      r.sharding = ShardingRegistry::blocked();
      r.domain = rt::Rect::r1(
          0, static_cast<std::int64_t>(forest.num_subregions(attach->partition)) - 1);
      r.partition = attach->partition;
      r.projection = rt::ProjectionRegistry::identity();
      out.push_back(std::move(r));
    } else {
      single(attach->region, attach->fields,
             attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard,
             rt::kNoRedop);
    }
  } else if (const auto* index = std::get_if<IndexPayload>(&payload)) {
    for (const auto& req : index->launch.requirements) {
      ReqSummary r;
      r.upper_bound = req.upper_bound(forest);
      r.tree = forest.tree_of(r.upper_bound);
      r.fields = req.fields;
      r.privilege = req.privilege;
      r.redop = req.redop;
      r.is_index = true;
      r.sharding = index->launch.sharding;
      r.domain = index->launch.domain;
      r.partition = req.partition;
      r.projection = req.projection;
      out.push_back(std::move(r));
    }
  }
  // ReducePayload and DeletePayload carry no region requirements here;
  // deletions are handled as pipeline barriers in decide().
  return out;
}

namespace {

// Adapter into the static prover's layer-neutral launch view.
statics::LaunchReq to_launch_req(const ReqSummary& r) {
  statics::LaunchReq q;
  q.is_index = r.is_index;
  q.partition = r.partition;
  q.projection = r.projection;
  q.domain = r.domain;
  q.sharding = r.sharding;
  q.privilege = r.privilege;
  q.redop = r.redop;
  return q;
}

}  // namespace

void CoarseAnalyzer::apply_epoch_update(OpId op, FieldId f, const ReqSummary& r) {
  CoarseFieldState& fs = state_[{r.tree, f}];
  switch (r.privilege) {
    case rt::Privilege::ReadWrite:
    case rt::Privilege::WriteDiscard:
      fs.last_writer = GroupUse{op, r};
      fs.readers_since.clear();
      fs.reducers_since.clear();
      break;
    case rt::Privilege::Reduce:
      fs.reducers_since.push_back(GroupUse{op, r});
      break;
    case rt::Privilege::ReadOnly:
      fs.readers_since.push_back(GroupUse{op, r});
      break;
    case rt::Privilege::None:
      break;
  }
}

const CoarseDecision& CoarseAnalyzer::decide(const OpRecord& op, const rt::RegionForest& forest,
                                             statics::InterferenceProver& prover,
                                             statics::LaunchLedger& ledger, ShardId owner,
                                             bool* fresh) {
  *fresh = false;
  auto it = decisions_.find(op.id);
  if (it != decisions_.end()) return it->second;
  // The first shard to reach this op computes the (shared, deterministic)
  // decision; shards process ops in program order, so the shared coarse
  // state has folded in exactly the ops before this one.
  DCR_CHECK(next_op_ == op.id.value)
      << "coarse analysis out of order: expected op " << next_op_ << " got " << op.id.value;
  next_op_++;

  CoarseDecision dec;
  if (std::holds_alternative<FillPayload>(op.payload)) dec.kind = "fill";
  else if (std::holds_alternative<TaskPayload>(op.payload)) dec.kind = "task";
  else if (std::holds_alternative<IndexPayload>(op.payload)) dec.kind = "index_launch";
  else if (std::holds_alternative<ReducePayload>(op.payload)) dec.kind = "reduce_future_map";
  else if (std::holds_alternative<AttachPayload>(op.payload)) {
    dec.kind = std::get<AttachPayload>(op.payload).detach ? "detach" : "attach";
  } else if (std::holds_alternative<DeletePayload>(op.payload)) dec.kind = "delete";
  else if (std::holds_alternative<FencePayload>(op.payload)) dec.kind = "fence";

  std::set<OpId> sources;

  if (std::holds_alternative<DeletePayload>(op.payload) ||
      std::holds_alternative<FencePayload>(op.payload)) {
    // Deletions and execution fences order against everything before them:
    // full pipeline barrier.
    if (op.id.value > 0) sources.insert(OpId(op.id.value - 1));
    dec.num_reqs = 1;
  } else {
    std::vector<ReqSummary> reqs = summarize_op(op.payload, forest, owner);
    dec.num_reqs = reqs.size();
    // Static interference analysis (src/statics): resolve every requirement
    // and classify every discovered dependence.  The verdicts never alter a
    // dependence/fence decision below — a fully proven launch only licenses
    // the fine stage to skip per-point enumeration, so runs are decision-
    // and graph-identical statics on/off.
    const bool statics_candidate =
        opts_.static_analysis && std::holds_alternative<IndexPayload>(op.payload);
    bool static_ok = statics_candidate;
    for (const ReqSummary& r : reqs) {
      if (!static_ok) break;
      if (prover.resolve(to_launch_req(r)) == statics::Verdict::Unknown) {
        static_ok = false;
      }
    }
    if (opts_.static_analysis) {
      // Launch-site ledger for the offline lint (`dcr-spy statics`).
      for (const ReqSummary& r : reqs) {
        if (!r.is_index || !r.partition.valid()) continue;
        ledger.note(r.partition, r.projection, r.domain, r.privilege, r.redop);
      }
    }
    for (const ReqSummary& r : reqs) {
      for (FieldId f : r.fields) {
        CoarseFieldState& fs = state_[{r.tree, f}];
        auto consider = [&](const GroupUse& prev) {
          if (!rt::privileges_conflict(prev.req.privilege, prev.req.redop, r.privilege,
                                       r.redop)) {
            return;
          }
          if (forest.structurally_disjoint(prev.req.upper_bound, r.upper_bound)) return;
          if (!forest.regions_overlap(prev.req.upper_bound, r.upper_bound)) return;
          dec.deps++;
          // Paper §4.1, observation 2 (Figures 10/11) — the same proof the
          // template validation audit re-derives for recorded elisions.
          const bool elide = !opts_.disable_fence_elision &&
                             summaries_shard_local(forest, prev.req, r);
          if (elide) {
            dec.elided++;
          } else {
            sources.insert(prev.op);
          }
          dec.dep_records.push_back({prev.op, op.id, r.tree, f, elide});
          if (static_ok &&
              prover.classify(to_launch_req(prev.req), to_launch_req(r)) ==
                  statics::Verdict::Unknown) {
            static_ok = false;
          }
        };
        if (fs.last_writer) consider(*fs.last_writer);
        for (const GroupUse& rd : fs.readers_since) consider(rd);
        for (const GroupUse& rx : fs.reducers_since) consider(rx);
        apply_epoch_update(op.id, f, r);
      }
    }
    dec.summaries = std::move(reqs);
    dec.static_skip = static_ok;
    if (statics_candidate) {
      profiler_.global().add(static_ok ? prof::GlobalCounter::StaticLaunchesResolved
                                       : prof::GlobalCounter::StaticLaunchesUnresolved);
    }
    if (dec.static_skip && opts_.statics_check) {
      // Debug oracle: re-derive every proof by concrete point enumeration.
      for (const ReqSummary& r : dec.summaries) {
        prover.oracle_check_launch(to_launch_req(r));
      }
    }
  }
  dec.fence_sources.assign(sources.begin(), sources.end());
  // dcr-prof fence accounting, at dependence granularity: every coarse
  // dependence is a fence-or-elide decision, and with elision enabled each
  // one ran the §4.1 shard-locality proof.  fences_issued + fences_elided ==
  // fence_decisions by construction (tests/test_prof.cpp pins this).
  {
    prof::Counters& g = profiler_.global();
    g.add(prof::GlobalCounter::FenceDecisions, dec.deps);
    g.add(prof::GlobalCounter::FencesElided, dec.elided);
    g.add(prof::GlobalCounter::FencesIssued, dec.deps - dec.elided);
    if (!opts_.disable_fence_elision) {
      g.add(prof::GlobalCounter::ElisionProofsAttempted, dec.deps);
      g.add(prof::GlobalCounter::ElisionProofsSucceeded, dec.elided);
    }
  }
  *fresh = true;
  return decisions_.emplace(op.id, std::move(dec)).first->second;
}

const CoarseDecision& CoarseAnalyzer::install_replayed(const OpRecord& op,
                                                       statics::LaunchLedger& ledger,
                                                       bool* fresh) {
  *fresh = false;
  auto it = decisions_.find(op.id);
  if (it != decisions_.end()) return it->second;  // another shard got here first
  const TemplateOp& rec = *op.trec;
  DCR_CHECK(next_op_ == op.id.value)
      << "template replay out of order: expected op " << next_op_ << " got " << op.id.value;
  next_op_++;

  CoarseDecision dec;
  dec.kind = rec.kind;
  dec.num_reqs = rec.num_reqs;
  dec.summaries = rec.summaries;
  std::set<OpId> sources;
  const auto source_of = [&op](std::uint64_t offset, std::uint64_t abs, bool absolute) {
    if (absolute) {
      DCR_CHECK(abs < op.id.value) << "corrupt template absolute source";
      return OpId(abs);
    }
    DCR_CHECK(offset >= 1 && offset <= op.id.value) << "corrupt template source offset";
    return OpId(op.id.value - offset);
  };
  for (const TemplateDep& d : rec.deps) {
    const OpId prev = source_of(d.prev_offset, d.abs_source, d.absolute);
    dec.deps++;
    if (d.elided) {
      dec.elided++;
    } else {
      sources.insert(prev);
    }
    dec.dep_records.push_back({prev, op.id, d.tree, d.field, d.elided});
  }
  for (const TemplateFence& f : rec.fences) {
    sources.insert(source_of(f.prev_offset, f.abs_source, f.absolute));
  }
  dec.fence_sources.assign(sources.begin(), sources.end());
  // Fold the recorded summaries into the shared epoch state exactly as a
  // fresh analysis would, so ops after the window (and un-templated ops
  // between windows) still see the correct last users.  The conflict scans
  // against those users are what the replay skips.
  for (const ReqSummary& r : dec.summaries) {
    for (FieldId f : r.fields) apply_epoch_update(op.id, f, r);
  }
  // Replayed ops already charge the reduced traced costs; a static skip on
  // top would double-discount, so replays never set it (dec.static_skip stays
  // false).  The lint ledger still sees the launch sites.
  if (opts_.static_analysis) {
    for (const ReqSummary& r : dec.summaries) {
      if (!r.is_index || !r.partition.valid()) continue;
      ledger.note(r.partition, r.projection, r.domain, r.privilege, r.redop);
    }
  }
  // Replayed decisions still count as fence-or-elide outcomes, but the
  // shard-locality proofs were skipped (that is the point of the template),
  // so the proof counters stay untouched.
  {
    prof::Counters& g = profiler_.global();
    g.add(prof::GlobalCounter::FenceDecisions, dec.deps);
    g.add(prof::GlobalCounter::FencesElided, dec.elided);
    g.add(prof::GlobalCounter::FencesIssued, dec.deps - dec.elided);
  }
  *fresh = true;
  return decisions_.emplace(op.id, std::move(dec)).first->second;
}

}  // namespace dcr::core
