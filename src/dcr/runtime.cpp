#include "dcr/runtime.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/hash128.hpp"
#include "dcr/sig.hpp"
#include "spy/verify.hpp"

namespace dcr::core {

// SigBuilder and the per-API sig_* encoders live in dcr/sig.hpp, and the op
// model (kPointsPerOp, payloads, CoarseDecision) in dcr/ops.hpp — shared with
// the real-threads backend so both produce identical §3 hash streams.

// ===========================================================================
// ShardContext: the per-shard implementation of the application API.
// ===========================================================================
class ShardContext final : public Context {
 public:
  ShardContext(DcrRuntime& rt, ShardId shard, sim::ProcessContext& pctx)
      : rt_(rt), shard_(shard), pctx_(pctx), st_(rt.shard(shard)) {}

  // Each API call charges control-program time, hashes its identity and
  // arguments, and feeds the determinism checker (paper §3).
  //
  // A replacement shard re-executes the control program from the top; calls
  // below replay_calls_end were already contributed by the dead incarnation
  // (they are in its commit log), so the replay charges only a fast-forward
  // cost and does NOT re-arrive at the determinism collectives.  The call
  // index sequence stays aligned with the live shards either way.
  void api_call(const char* name, SigBuilder& sig) {
    const Hash128 h = sig.finish();
    st_.last_template_hash = sig.tfinish();
    const bool replaying = st_.api_calls < st_.replay_calls_end;
    if (replaying) {
      // The dead incarnation already contributed this call (and its spy
      // trace record); a replay only fast-forwards.  The template manager
      // still sees the call so a replacement shard re-captures templates
      // while fast-forwarding through trace windows.
      pctx_.delay(rt_.config_.replay_call_cost);
      st_.api_calls++;
      auto_trace_observe();
      if (rt_.config_.tracing_enabled) st_.templates.on_call(st_.last_template_hash);
      return;
    }
    SimTime cost = rt_.config_.issue_cost;
    if (rt_.checker_.enabled()) cost += rt_.config_.hash_cost;
    pctx_.delay(cost);
    rt_.checker_.record(shard_, st_.api_calls, h, name);
    if (rt_.checker_.enabled()) stats().determinism_checks++;
    if (rt_.trace_) {
      rt_.trace_->calls[shard_.value].push_back(
          {st_.api_calls, name, h, sig.take_args()});
    }
    st_.commit.record_call(st_.api_calls);
    st_.api_calls++;
    auto_trace_observe();
    if (rt_.config_.tracing_enabled) st_.templates.on_call(st_.last_template_hash);
    st_.last_heard = pctx_.now();  // lease refresh, piggybacked on API traffic
    if (st_.pending_report >= 0) {
      // First live (non-replayed) call: the replacement has caught up to the
      // failure frontier.
      FailureReport& rep = rt_.failures_[static_cast<std::size_t>(st_.pending_report)];
      rep.recovered = true;
      rep.recovered_at = pctx_.now();
      // Recovery lane rather than Control: the fast-forward may straddle
      // trace-window boundaries, which would break Control-lane nesting.
      rt_.profiler_.emit({prof::SpanKind::RecoveryFastForward, prof::Lane::Recovery,
                          shard_.value, rep.replay_started, rt_.clock_.now()});
      st_.pending_report = -1;
    }
  }

  DcrStats& stats() { return rt_.stats_; }

  // Whether sig_* encoders should capture named arguments for the spy trace.
  bool cap() const { return rt_.trace_ != nullptr; }

  // dcr-prof accounting for a control-program block that started at
  // `started`: always-on wait counters + histogram, plus a Control-lane span
  // when the timeline is enabled.  Control spans nest by construction — the
  // control program is sequential, so a wait is either disjoint from or
  // strictly inside an enclosing window span.
  void prof_wait(prof::Counter waits, prof::Counter wait_ns, prof::Hist hist,
                 prof::SpanKind kind, SimTime started) {
    prof::Counters& pc = rt_.profiler_.shard(shard_.value);
    const SimTime waited = rt_.clock_.now() - started;
    pc.add(waits);
    pc.add(wait_ns, waited);
    pc.observe(hist, waited);
    rt_.profiler_.emit({kind, prof::Lane::Control, shard_.value, started, rt_.clock_.now()});
  }

  // ---- replication-safe creations ----
  template <typename T, typename MakeFn>
  T replicated_create(MakeFn&& make) {
    if (st_.next_creation == rt_.creations_.size()) {
      rt_.creations_.push_back({make()});
    }
    DCR_CHECK(st_.next_creation < rt_.creations_.size())
        << "shard " << shard_.value << " creation stream ran ahead";
    auto& entry = rt_.creations_[st_.next_creation++];
    DCR_CHECK(std::holds_alternative<T>(entry.handle))
        << "creation kind diverged across shards (control determinism violation)";
    return std::get<T>(entry.handle);
  }

  FieldSpaceId create_field_space() override {
    SigBuilder sb = sig_create_field_space(cap());
    api_call("create_field_space", sb);
    return replicated_create<FieldSpaceId>([&] { return rt_.forest_.create_field_space(); });
  }

  FieldId allocate_field(FieldSpaceId fs, std::size_t bytes, std::string name) override {
    SigBuilder sb = sig_allocate_field(cap(), fs, bytes, name);
    api_call("allocate_field", sb);
    return replicated_create<FieldId>(
        [&] { return rt_.forest_.allocate_field(fs, bytes, std::move(name)); });
  }

  RegionTreeId create_region(const rt::Rect& bounds, FieldSpaceId fs) override {
    SigBuilder sb = sig_create_region(cap(), bounds, fs);
    api_call("create_region", sb);
    return replicated_create<RegionTreeId>([&] { return rt_.forest_.create_tree(bounds, fs); });
  }

  IndexSpaceId root(RegionTreeId tree) override { return rt_.forest_.root(tree); }

  PartitionId partition_equal(IndexSpaceId parent, std::size_t pieces, int axis) override {
    SigBuilder sb = sig_partition_equal(cap(), parent, pieces, axis);
    api_call("partition_equal", sb);
    return replicated_create<PartitionId>(
        [&] { return rt_.forest_.partition_equal(parent, pieces, axis); });
  }

  PartitionId partition_with_halo(IndexSpaceId parent, std::size_t pieces,
                                  std::int64_t halo, int axis) override {
    SigBuilder sb = sig_partition_with_halo(cap(), parent, pieces, halo, axis);
    api_call("partition_with_halo", sb);
    return replicated_create<PartitionId>(
        [&] { return rt_.forest_.partition_with_halo(parent, pieces, halo, axis); });
  }

  PartitionId create_partition(IndexSpaceId parent, std::vector<rt::Rect> pieces,
                               bool disjoint) override {
    SigBuilder sb = sig_create_partition(cap(), parent, pieces, disjoint);
    api_call("create_partition", sb);
    return replicated_create<PartitionId>(
        [&] { return rt_.forest_.create_partition(parent, std::move(pieces), disjoint); });
  }

  PartitionId partition_grid(IndexSpaceId parent, std::size_t tiles_x, std::size_t tiles_y,
                             std::int64_t halo) override {
    SigBuilder sb = sig_partition_grid(cap(), parent, tiles_x, tiles_y, halo);
    api_call("partition_grid", sb);
    return replicated_create<PartitionId>(
        [&] { return rt_.forest_.partition_grid(parent, tiles_x, tiles_y, halo); });
  }

  void destroy_region(RegionTreeId tree) override {
    SigBuilder sb = sig_destroy_region(cap(), tree);
    api_call("destroy_region", sb);
    rt_.issue(*this, DeletePayload{tree});
  }

  void destroy_region_deferred(RegionTreeId tree) override {
    // GC-finalizer path: deliberately NOT hashed/checked — shards may call it
    // at different control points; the runtime reaches consensus by polling
    // (paper §4.3) before inserting the deletion into the analysis stream.
    st_.deferred_requests.push_back(tree);
    rt_.start_deferred_poller();
  }

  const rt::RegionForest& forest() const override { return rt_.forest_; }

  // ---- operations ----
  void fill(IndexSpaceId region, std::vector<FieldId> fields) override {
    SigBuilder sb = sig_fill(cap(), region, fields);
    api_call("fill", sb);
    rt_.issue(*this, FillPayload{region, std::move(fields)});
  }

  Future launch(const TaskLaunch& launch) override {
    SigBuilder sb = sig_launch(cap(), launch);
    api_call("launch", sb);
    TaskPayload p{launch, ~0ull};
    Future f;
    if (launch.wants_future) {
      f.id = st_.next_future++;
      p.future_id = f.id;
    }
    rt_.issue(*this, std::move(p));
    return f;
  }

  FutureMap index_launch(const IndexLaunch& launch) override {
    SigBuilder sb = sig_index_launch(cap(), launch);
    api_call("index_launch", sb);
    IndexPayload p{launch, ~0ull};
    FutureMap fm;
    if (launch.wants_futures) {
      fm.id = st_.next_future_map++;
      p.future_map_id = fm.id;
    }
    rt_.issue(*this, std::move(p));
    return fm;
  }

  Future reduce_future_map(const FutureMap& fm, ReduceOp op) override {
    SigBuilder sb = sig_reduce_future_map(cap(), fm, op);
    api_call("reduce_future_map", sb);
    DCR_CHECK(fm.valid()) << "reducing an invalid future map";
    Future f;
    f.id = st_.next_future++;
    rt_.issue(*this, ReducePayload{fm.id, op, f.id});
    return f;
  }

  double get_future(const Future& f) override {
    SigBuilder sb = sig_get_future(cap(), f);
    api_call("get_future", sb);
    DCR_CHECK(f.valid()) << "waiting on an invalid future";
    // Control-taint (dcr/replicate.hpp): this value is about to flow into a
    // control decision; mark the producing ops SDC-critical.
    rt_.note_control_future(f.id);
    auto it = rt_.futures_.find(f.id);
    DCR_CHECK(it != rt_.futures_.end()) << "future " << f.id << " has no producer";
    const SimTime wait_start = rt_.clock_.now();
    pctx_.wait(it->second.per_shard_event[shard_.value]);
    prof_wait(prof::Counter::FutureWaits, prof::Counter::FutureWaitNs,
              prof::Hist::FutureWaitNs, prof::SpanKind::FutureWait, wait_start);
    if (rt_.scope_) {
      // The collective's merged context names the contribution that released
      // this wait last (the producing shard + span).
      rt_.scope_->on_future_wait(shard_.value, f.id, wait_start, rt_.clock_.now(),
                                 it->second.coll->result_ctx());
    }
    return it->second.coll->result();
  }

  bool future_is_ready(const Future& f) override {
    // Timing-dependent by design (Figure 5): the *call* is still hashed, but
    // the returned value may differ across shards — branching on it is the
    // control-determinism violation the checker exists to catch.
    SigBuilder sb = sig_future_is_ready(cap(), f);
    api_call("future_is_ready", sb);
    // Polling is a control observation too: the (timing-dependent) readiness
    // bit can steer launch counts, so the producing ops are SDC-critical.
    rt_.note_control_future(f.id);
    auto it = rt_.futures_.find(f.id);
    if (it == rt_.futures_.end()) return false;
    return it->second.per_shard_event[shard_.value].has_triggered();
  }

  void execution_fence() override {
    SigBuilder sb = sig_execution_fence(cap());
    api_call("execution_fence", sb);
    // A fence op forces a cross-shard pipeline barrier (its coarse decision
    // fences on the previous op), so once our fine tail drains, every
    // shard's launches for prior ops are registered with the quiescence
    // tracker; then wait for all of them to complete.
    const SimTime wait_start = rt_.clock_.now();
    rt_.issue(*this, FencePayload{});
    pctx_.wait(st_.fine_tail);
    while (!rt_.quiescence_.idle()) pctx_.wait(rt_.quiescence_.idle_event());
    rt_.profiler_.shard(shard_.value).add(prof::Counter::ExecutionFences);
    rt_.profiler_.emit({prof::SpanKind::ExecutionFence, prof::Lane::Control, shard_.value,
                        wait_start, rt_.clock_.now()});
  }

  void attach_file(IndexSpaceId region, std::vector<FieldId> fields,
                   std::string file) override {
    SigBuilder sb = sig_attach_file(cap(), region, fields, file);
    api_call("attach_file", sb);
    AttachPayload p;
    p.region = region;
    p.fields = std::move(fields);
    p.file = std::move(file);
    rt_.issue(*this, std::move(p));
  }

  void detach_file(IndexSpaceId region, std::vector<FieldId> fields) override {
    SigBuilder sb = sig_detach_file(cap(), region, fields);
    api_call("detach_file", sb);
    AttachPayload p;
    p.region = region;
    p.fields = std::move(fields);
    p.detach = true;
    rt_.issue(*this, std::move(p));
  }

  void attach_file_group(PartitionId partition, std::vector<FieldId> fields,
                         std::string file_basename) override {
    SigBuilder sb = sig_attach_file_group(cap(), partition, fields, file_basename);
    api_call("attach_file_group", sb);
    AttachPayload p;
    p.partition = partition;
    p.fields = std::move(fields);
    p.file = std::move(file_basename);
    rt_.issue(*this, std::move(p));
  }

  void detach_file_group(PartitionId partition, std::vector<FieldId> fields) override {
    SigBuilder sb = sig_detach_file_group(cap(), partition, fields);
    api_call("detach_file_group", sb);
    AttachPayload p;
    p.partition = partition;
    p.fields = std::move(fields);
    p.detach = true;
    rt_.issue(*this, std::move(p));
  }

  // ---- tracing (dependence templates, dcr/template.hpp) ----
  void begin_trace(TraceId id) override {
    SigBuilder sb = sig_begin_trace(cap(), id);
    api_call("begin_trace", sb);
    if (!rt_.config_.tracing_enabled) return;
    if (st_.auto_open) {
      // An auto-detected window is open: the explicit window wins.  The tap
      // in api_call usually aborted it already (the begin_trace signature
      // breaks the repeat); this handles a begin_trace that happens to land
      // on a matching token.
      rt_.retire_auto_window(st_, shard_.value,
                             "explicit begin_trace inside an auto window");
    }
    DCR_CHECK(!st_.templates.active()) << "nested traces are not supported";
    // The window keys its validity on the forest mutation epoch, the runtime
    // recovery epoch, and the count of consensus deletions this shard has
    // folded in (insertions shift op ids, breaking relative dep offsets).
    st_.templates.begin(id, rt_.forest_.mutation_epoch(), rt_.recovery_epoch_,
                        st_.deletions_processed, rt_.config_.template_validation);
    st_.windows_opened++;  // iteration tag for dcr-prof spans
    st_.window_started = rt_.clock_.now();
  }

  void end_trace(TraceId id) override {
    SigBuilder sb = sig_end_trace(cap(), id);
    api_call("end_trace", sb);
    if (!rt_.config_.tracing_enabled) return;
    DCR_CHECK(st_.templates.active() && *st_.templates.active() == id)
        << "mismatched end_trace";
    close_window_accounting();
  }

  // Window hit/miss accounting + close, shared by explicit end_trace and
  // auto-detected windows.
  void close_window_accounting() { rt_.close_template_window(st_, shard_.value); }

  // ---- automatic trace identification (dcr/trace_id.hpp) ----
  // Per-call tap, run BEFORE the template manager records the call: on Open
  // the window must exist so this call becomes its first op, and on
  // Close/CloseOpen the previous window must not absorb this call.  The tap
  // issues no API calls of its own, so auto windows are invisible to the §3
  // determinism checker — window placement only affects per-shard analysis
  // caching, never the decision stream.
  void auto_trace_observe() {
    const DcrConfig& cfg = rt_.config_;
    if (!cfg.auto_trace.enabled || !cfg.tracing_enabled || st_.auto_stop) return;
    // Suppress promotions while an explicit (app-keyed) window is active; the
    // detector keeps tracking so the auto trace resumes after end_trace.
    const bool explicit_open = st_.templates.active() && !st_.auto_open;
    const TraceIdentifier::Result r =
        st_.auto_tracer.observe(st_.last_template_hash, explicit_open);
    if (explicit_open) return;  // suppressed: no actions can fire
    switch (r.action) {
      case TraceIdentifier::Action::None:
        break;
      case TraceIdentifier::Action::Open:
        if (!st_.templates.active()) auto_open_window(r.trace);
        break;
      case TraceIdentifier::Action::Close:
        auto_close_window();
        break;
      case TraceIdentifier::Action::CloseOpen:
        auto_close_window();
        auto_open_window(r.trace);
        break;
      case TraceIdentifier::Action::AbortClose:
        // The repeat broke mid-period: discard the half-recorded capture so
        // it can never validate or replay.
        rt_.retire_auto_window(st_, shard_.value, "auto trace broke mid-period");
        break;
    }
  }

  void auto_open_window(TraceId id) {
    st_.templates.begin(id, rt_.forest_.mutation_epoch(), rt_.recovery_epoch_,
                        st_.deletions_processed, rt_.config_.template_validation);
    st_.windows_opened++;
    st_.window_started = rt_.clock_.now();
    st_.auto_open = true;
  }

  void auto_close_window() {
    // The window can already be gone (consensus deletion aborts underneath
    // us, SDC healing invalidates mid-window): skip the accounting then.
    if (st_.templates.active()) close_window_accounting();
    st_.auto_open = false;
  }

  // ---- environment ----
  std::size_t num_shards() const override { return rt_.num_shards(); }
  ShardId shard_id() const override { return shard_; }
  Philox4x32& rng() override { return *st_.rng; }
  SimTime now() const override { return pctx_.now(); }

  sim::ProcessContext& process() { return pctx_; }
  ShardId shard() const { return shard_; }

 private:
  DcrRuntime& rt_;
  ShardId shard_;
  sim::ProcessContext& pctx_;
  DcrRuntime::ShardState& st_;
};

// ===========================================================================
// DcrRuntime
// ===========================================================================

namespace {
// record_trace needs the realized graph's edges, so it implies
// record_task_graph; normalized before any member (tracker_) consumes it.
DcrConfig normalize_config(DcrConfig config) {
  if (config.record_trace) config.record_task_graph = true;
  return config;
}

std::vector<NodeId> make_placement(const sim::Machine& machine, const DcrConfig& config) {
  DCR_CHECK(config.shards_per_node >= 1);
  const std::size_t shards = machine.num_nodes() * config.shards_per_node;
  std::vector<NodeId> placement;
  placement.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    placement.push_back(NodeId(static_cast<std::uint32_t>(s / config.shards_per_node)));
  }
  return placement;
}
}  // namespace

DcrRuntime::DcrRuntime(sim::Machine& machine, FunctionRegistry& functions, DcrConfig config)
    : machine_(machine),
      functions_(functions),
      config_(normalize_config(config)),
      placement_(make_placement(machine, config_)),
      profiler_(placement_.size(), config_.profile),
      physical_(forest_, machine.network()),
      tracker_(/*keep_completed=*/config_.record_task_graph),
      checker_(machine.sim(), machine.network(), placement_, config.determinism_checks),
      quiescence_(machine.sim()) {
  const std::size_t shards = placement_.size();
  for (std::size_t s = 0; s < shards; ++s) {
    auto st = std::make_unique<ShardState>();
    st->id = ShardId(static_cast<std::uint32_t>(s));
    st->node = placement_[s];
    st->rng = std::make_unique<Philox4x32>(/*seed=*/0x5eed, /*stream=*/0);  // same on all shards
    shards_.push_back(std::move(st));
  }
  if (config_.record_trace) {
    trace_ = std::make_unique<spy::Trace>();
    trace_->num_shards = shards;
    trace_->calls.resize(shards);
  }
  if (config_.scope) {
    scope_ = std::make_unique<dcr::scope::Recorder>(shards);
    if (config_.flight_capacity > 0) {
      flight_ = std::make_unique<dcr::scope::FlightRecorder>(
          shards, config_.flight_capacity);
      scope_->set_flight(flight_.get());
      // Fatal-signal hook, mirroring the threads backend: crashes that never
      // reach abort_execution still leave a post-mortem dump.
      if (!config_.flight_path.empty()) {
        dcr::scope::FlightRecorder::arm_signal_dump(
            flight_.get(), config_.flight_path, &profiler_);
      }
    }
    // Count causal traffic per origin shard (host-side; one call per logical
    // message, retransmissions excluded).
    machine_.network().set_send_tap(
        [rec = scope_.get()](NodeId, NodeId, std::uint64_t bytes,
                             const dcr::scope::TraceCtx& ctx) {
          rec->on_message(ctx, bytes);
        });
  }
  if (config_.sdc_replication) {
    ReplicationConfig rc;
    rc.replicas = config_.sdc_replicas;
    rc.quorum = config_.sdc_quorum;
    rc.retry_budget = config_.sdc_retry_budget;
    rc.digest_bytes = config_.sdc_digest_bytes;
    ReplicationExecutor::Hooks hooks;
    hooks.proc_for = [this](std::uint32_t s, std::uint64_t point_index) -> sim::Processor& {
      return compute_proc_for(ShardId(s), point_index);
    };
    hooks.node_of = [this](std::uint32_t s) { return placement_[s]; };
    hooks.shard_usable = [this](std::uint32_t s) {
      const ShardState& st = *shards_[s];
      if (st.dead || st.crashed) return false;
      if (const sim::FaultPlan* plan = machine_.faults()) {
        if (plan->node_dark(st.node, machine_.sim().now())) return false;
      }
      return true;
    };
    hooks.abort = [this](std::string reason) { abort_execution(std::move(reason)); };
    replicator_ = std::make_unique<ReplicationExecutor>(
        machine_, profiler_, rc, static_cast<std::uint32_t>(shards), std::move(hooks));
    sdc_suspect_counts_.assign(shards, 0);
  }
}

DcrRuntime::~DcrRuntime() {
  // The send tap captures the recorder; detach it before the recorder dies.
  if (scope_) machine_.network().set_send_tap(nullptr);
  if (flight_ && !config_.flight_path.empty()) {
    dcr::scope::FlightRecorder::arm_signal_dump(nullptr, {}, nullptr);
  }
}

dcr::scope::TraceCtx DcrRuntime::scope_ctx(ShardId s) const {
  if (!scope_) return {};
  return scope_->current_ctx(s.value, clock_.now());
}

bool DcrRuntime::finished() const {
  if (aborted_) return true;
  if (shards_.empty()) return false;
  for (const auto& st : shards_) {
    if (!st->done) return false;
  }
  return true;
}

// ----------------------------------------------------------- coarse stage
//
// The analysis itself lives in dcr/coarse.hpp (shared with the threads
// backend); these wrappers mirror DcrStats and emit the spy trace records
// exactly once per op — gated on the analyzer's `fresh` out-param.

void DcrRuntime::emit_coarse_decision(const OpRecord& op, const CoarseDecision& dec) {
  stats_.coarse_deps += dec.deps;
  stats_.fences_elided += dec.elided;
  if (!dec.fence_sources.empty()) stats_.fences_inserted++;
  if (trace_) {
    // Ops reach here exactly once, in program order (analyzer-checked).
    for (const spy::CoarseDepRecord& d : dec.dep_records) trace_->coarse_deps.push_back(d);
    trace_->ops.push_back({op.id, dec.kind, op.call_index, dec.fence_sources});
  }
}

const CoarseDecision& DcrRuntime::coarse_decision(const OpRecord& op) {
  bool fresh = false;
  const CoarseDecision& dec = coarse_.decide(op, forest_, statics_prover_, statics_ledger_,
                                             single_op_owner(op.id), &fresh);
  if (fresh) emit_coarse_decision(op, dec);
  return dec;
}

// ----------------------------------------------------- dependence templates

std::shared_ptr<const PointPlanList> DcrRuntime::make_point_plan(ShardId s,
                                                                 const IndexPayload& index) {
  const IndexLaunch& launch = index.launch;
  const auto& points =
      shardings_.owned_points(launch.sharding, launch.domain, num_shards(), s);
  auto plan = std::make_shared<PointPlanList>();
  plan->reserve(points.size());
  for (const rt::Point& p : points) {
    PointPlan pp;
    pp.point = p;
    pp.point_index = rt::linearize(launch.domain, p);
    pp.reqs.reserve(launch.requirements.size());
    for (const rt::GroupRequirement& gr : launch.requirements) {
      pp.reqs.push_back(gr.concretize(forest_, projections_, p, launch.domain));
    }
    plan->push_back(std::move(pp));
  }
  return plan;
}

void DcrRuntime::capture_template_op(ShardState& st, const OpRecord& op,
                                     const CoarseDecision& dec) {
  TemplateOp rec;
  rec.payload_kind = op.payload.index();
  rec.call_hash = op.call_hash;
  rec.kind = dec.kind;
  rec.num_reqs = dec.num_reqs;
  rec.summaries = dec.summaries;
  rec.deps.reserve(dec.dep_records.size());
  for (const spy::CoarseDepRecord& d : dec.dep_records) {
    if (d.prev.value >= op.id.value) {
      st.templates.abort_window("non-causal coarse dependence during capture");
      return;
    }
    rec.deps.push_back({op.id.value - d.prev.value, d.prev.value, /*absolute=*/false,
                        d.tree, d.field, d.elided});
  }
  rec.fences.reserve(dec.fence_sources.size());
  for (OpId src : dec.fence_sources) {
    rec.fences.push_back({op.id.value - src.value, src.value, /*absolute=*/false});
  }
  rec.plan = op.plan;
  st.templates.record_op(std::move(rec));
}

void DcrRuntime::validate_template_op(ShardState& st, const OpRecord& op,
                                      const CoarseDecision& dec) {
  TemplateOp& rec = *op.trec;
  auto fail = [&](const char* what) {
    st.templates.validation_failed(std::string("shadow compare mismatch at op ") +
                                   std::to_string(op.id.value) + ": " + what);
  };
  if (!(rec.call_hash == op.call_hash)) return fail("API-call identity");
  if (rec.kind != dec.kind) return fail("op kind");
  if (rec.num_reqs != dec.num_reqs) return fail("requirement count");
  if (rec.summaries != dec.summaries) return fail("requirement summaries");
  if (rec.deps.size() != dec.dep_records.size()) return fail("coarse dependence count");
  for (std::size_t i = 0; i < rec.deps.size(); ++i) {
    const spy::CoarseDepRecord& d = dec.dep_records[i];
    TemplateDep& rd = rec.deps[i];
    if (rd.tree != d.tree || rd.field != d.field || rd.elided != d.elided) {
      return fail("coarse dependences / elision verdicts");
    }
    // Resolve which source encoding survived an iteration: per-iteration
    // sources keep their relative offset; fixed ops (an init fill issued
    // before the loop) keep their absolute id.
    if (rd.prev_offset == op.id.value - d.prev.value) {
      rd.absolute = false;
    } else if (rd.abs_source == d.prev.value) {
      rd.absolute = true;
    } else {
      return fail("coarse dependence source");
    }
  }
  if (rec.fences.size() != dec.fence_sources.size()) return fail("fence count");
  for (std::size_t i = 0; i < rec.fences.size(); ++i) {
    const OpId src = dec.fence_sources[i];
    TemplateFence& rf = rec.fences[i];
    if (rf.prev_offset == op.id.value - src.value) {
      rf.absolute = false;
    } else if (rf.abs_source == src.value) {
      rf.absolute = true;
    } else {
      return fail("fence sources");
    }
  }
  const PointPlanList empty;
  const PointPlanList& fresh_plan = op.plan ? *op.plan : empty;
  const PointPlanList& stored_plan = rec.plan ? *rec.plan : empty;
  if (!(fresh_plan == stored_plan)) return fail("fine-stage point plan");
}

const CoarseDecision& DcrRuntime::install_replayed_decision(const OpRecord& op) {
  bool fresh = false;
  const CoarseDecision& dec = coarse_.install_replayed(op, statics_ledger_, &fresh);
  if (fresh) emit_coarse_decision(op, dec);
  return dec;
}

bool DcrRuntime::all_fences_complete() const {
  for (const auto& [id, rec] : fences_) {
    if (!rec.coll->complete()) return false;
  }
  return true;
}

DcrRuntime::FutureRecord& DcrRuntime::ensure_future(std::uint64_t id, OpId producer,
                                                    bool /*broadcast*/) {
  auto [it, inserted] = futures_.try_emplace(id);
  FutureRecord& fut = it->second;
  if (!inserted) return fut;
  profiler_.global().add(prof::GlobalCounter::FutureCollectives);
  profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  // Single-task futures broadcast from the owner shard to all shards (§4.2):
  // the placement is rotated so the owner is the broadcast root.
  const ShardId owner = single_op_owner(producer);
  std::vector<NodeId> rotated(num_shards());
  for (std::size_t r = 0; r < num_shards(); ++r) {
    rotated[r] = placement_[(owner.value + r) % num_shards()];
  }
  fut.coll = std::make_shared<sim::Collective<double>>(
      machine_.sim(), machine_.network(), std::move(rotated), sim::CollectiveKind::Broadcast,
      sizeof(double), [](double a, double) { return a; });
  fut.per_shard_event.resize(num_shards());
  for (std::size_t sh = 0; sh < num_shards(); ++sh) {
    // Non-root ranks arrive immediately; the root (owner) arrives with the
    // value when its task completes (see finish_point_task).
    const std::size_t rank = (sh + num_shards() - owner.value) % num_shards();
    if (rank != 0) {
      const sim::UserEvent gate = fut.per_shard_event[sh];
      fut.coll->arrive(rank, 0.0).on_trigger(
          [this, gate] { gate.trigger(machine_.sim().now()); });
    }
  }
  return fut;
}

DcrRuntime::FutureRecord& DcrRuntime::ensure_reduce_future(std::uint64_t id, ReduceOp rop) {
  auto [it, inserted] = futures_.try_emplace(id);
  FutureRecord& fut = it->second;
  if (!inserted) return fut;
  profiler_.global().add(prof::GlobalCounter::FutureCollectives);
  profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  fut.coll = std::make_shared<sim::Collective<double>>(
      machine_.sim(), machine_.network(), placement_, sim::CollectiveKind::AllReduce,
      sizeof(double), [rop](double a, double b) { return apply_reduce(rop, a, b); });
  fut.per_shard_event.resize(num_shards());
  return fut;
}

DcrRuntime::FenceRecord& DcrRuntime::fence_for(OpId dependent) {
  auto it = fences_.find(dependent);
  if (it == fences_.end()) {
    FenceRecord rec;
    rec.coll = std::make_unique<sim::FenceCollective>(machine_.sim(), machine_.network(),
                                                      placement_);
    it = fences_.emplace(dependent, std::move(rec)).first;
    profiler_.global().add(prof::GlobalCounter::FenceCollectives);
    profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  }
  return it->second;
}

// ----------------------------------------------------------------- issuing

void DcrRuntime::issue(ShardContext& ctx, OpPayload payload) {
  ShardState& st = shard(ctx.shard());
  // Consensus-agreed deferred deletions scheduled at this op index run first.
  while (true) {
    auto it = agreed_insertions_.find(st.next_op);
    if (it == agreed_insertions_.end()) break;
    // An insertion shifts every later op id, breaking a template's relative
    // dependence offsets: drop any window in flight (deletions_processed is
    // part of the template validity key, so stored templates also invalidate
    // at their next begin).
    st.templates.abort_window("consensus deletion inserted inside a trace window");
    OpRecord del{OpId(st.next_op), OpPayload(it->second), false};
    st.next_op++;
    st.deletions_processed++;
    commit_op(ctx.shard(), del);
  }

  OpRecord op{OpId(st.next_op++), std::move(payload), false};
  // The API call that issued this op was hashed just before issue().
  if (st.api_calls > 0) op.call_index = st.api_calls - 1;
  stats_.ops_issued = std::max(stats_.ops_issued, st.next_op);

  // Mapper query: "Legion queries mappers to select a sharding function for
  // each subtask launch" (§4).  Deterministic, so every shard rewrites the
  // launch identically.
  if (config_.mapper) {
    if (auto* index = std::get_if<IndexPayload>(&op.payload)) {
      index->launch.sharding =
          config_.mapper->select_sharding(index->launch, num_shards());
    }
  }

  // Futures are created eagerly at issue so the control program can wait on
  // them before any shard's fine stage has reached the producing op.
  if (const auto* task = std::get_if<TaskPayload>(&op.payload)) {
    if (task->future_id != ~0ull) ensure_future(task->future_id, op.id, /*broadcast=*/true);
  } else if (const auto* red = std::get_if<ReducePayload>(&op.payload)) {
    ensure_reduce_future(red->future_id, red->op);
  }

  // Control-taint registration (dcr/replicate.hpp): every future and future
  // map remembers its producing op, so a later control observation can taint
  // the producers.  try_emplace semantics make the N replicated issuers of
  // the same op idempotent.
  if (const auto* task = std::get_if<TaskPayload>(&op.payload)) {
    if (task->future_id != ~0ull) taint_.note_future(task->future_id, op.id.value);
  } else if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    if (index->future_map_id != ~0ull) {
      taint_.note_future_map(index->future_map_id, op.id.value);
    }
  } else if (const auto* red = std::get_if<ReducePayload>(&op.payload)) {
    taint_.note_reduce(red->future_id, op.id.value, red->fm_id);
  }

  // Dependence templates (dcr/template.hpp): capture this op's decisions or
  // replay the recorded ones, per the window's mode.
  if (st.templates.active()) {
    op.call_hash = st.last_template_hash;
    switch (st.templates.mode()) {
      case TemplateManager::Mode::Capture:
        op.tmode = TemplateManager::Mode::Capture;
        if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
          op.plan = make_point_plan(ctx.shard(), *index);
        }
        break;
      case TemplateManager::Mode::Validate: {
        // Fresh analysis still drives execution; decisions are shadow-compared
        // against the recording in validate_template_op().
        TemplateOp* rec = st.templates.next_op();
        if (rec == nullptr) break;  // window just aborted
        if (rec->payload_kind != op.payload.index()) {
          st.templates.abort_window("op payload kind diverged from the recording");
          break;
        }
        op.tmode = TemplateManager::Mode::Validate;
        op.trec = rec;
        if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
          op.plan = make_point_plan(ctx.shard(), *index);
        }
        break;
      }
      case TemplateManager::Mode::Replay: {
        TemplateOp* rec = st.templates.next_op();
        if (rec == nullptr) break;
        if (rec->payload_kind != op.payload.index() || !(rec->call_hash == op.call_hash)) {
          st.templates.abort_window("op identity diverged from the recording");
          break;
        }
        op.tmode = TemplateManager::Mode::Replay;
        op.trec = rec;
        op.plan = rec->plan;
        op.traced = true;  // charge the reduced analysis costs
        // A replayed (recovery) op re-derives template state without re-counting.
        if (op.id.value >= st.replay_ops_end) stats_.traced_ops++;
        break;
      }
      case TemplateManager::Mode::Inactive:
        break;
    }
  }

  commit_op(ctx.shard(), op);
}

// Replay-aware dispatch: the dead incarnation's committed ops already did
// their externally visible work (coarse analysis folded in, fence arrivals
// registered, fine stage enqueued — all of which survive the process kill),
// so a replacement skips them entirely; fresh ops process normally and are
// appended to the commit log.  Commit happens in the same non-blocking region
// as the op's api_call hash, so a crash never splits a call from its op.
void DcrRuntime::commit_op(ShardId s, const OpRecord& op) {
  ShardState& st = shard(s);
  if (op.id.value < st.replay_ops_end) {
    // The op's external work is already done, but a replacement shard
    // fast-forwarding through a trace window still re-captures the template:
    // the decision is in the shared cache (the dead incarnation processed it).
    if (op.tmode == TemplateManager::Mode::Capture ||
        op.tmode == TemplateManager::Mode::Validate) {
      if (const CoarseDecision* dec = coarse_.find(op.id)) {
        if (op.tmode == TemplateManager::Mode::Validate) {
          validate_template_op(st, op, *dec);
        }
        capture_template_op(st, op, *dec);
      } else {
        st.templates.abort_window("committed op has no cached coarse decision");
      }
    }
    return;
  }
  if (op.tmode == TemplateManager::Mode::Replay && op.trec != nullptr) {
    install_replayed_decision(op);
  }
  process_op(s, op);
  st.commit.record_op(op.id.value);
  if (std::holds_alternative<FencePayload>(op.payload)) {
    st.commit.record_epoch(op.id.value);
  }
}

void DcrRuntime::process_op(ShardId s, const OpRecord& op) {
  ShardState& st = shard(s);
  // Replayed ops had their recorded decision installed by commit_op, so this
  // lookup hits the cache and skips the conflict scans entirely.
  const CoarseDecision& dec = coarse_decision(op);
  if (op.tmode == TemplateManager::Mode::Capture) {
    capture_template_op(st, op, dec);
  } else if (op.tmode == TemplateManager::Mode::Validate) {
    validate_template_op(st, op, dec);
    // Also feed the shadow re-recording that replaces the stored template if
    // the compare above mismatched (record_op routes by mode).
    capture_template_op(st, op, dec);
  }

  // Iteration tag for spans: the trace window this op falls into, if any.
  const std::uint64_t prof_iter =
      st.templates.active().has_value() ? st.windows_opened - 1 : prof::kNoId;
  prof::Counters& pc = profiler_.shard(s.value);

  // ---- coarse stage cost (Figure 9 top): independent of group size ----
  const SimTime coarse_cost =
      (op.traced ? config_.traced_coarse_cost_per_req : config_.coarse_cost_per_req) *
      std::max<std::size_t>(1, dec.num_reqs);
  const sim::Event coarse_done = analysis_proc(s).enqueue(coarse_cost);
  pc.add(op.traced ? prof::Counter::TracedCoarseOps : prof::Counter::CoarseOps);
  pc.add(prof::Counter::CoarseAnalysisNs, coarse_cost);
  pc.observe(prof::Hist::CoarseStageNs, coarse_cost);
  if (profiler_.spans_enabled()) {
    // The analysis processor is a serial FIFO, so [end - cost, end] always
    // lies inside the true busy interval even when a straggler fault
    // stretched the nominal cost; Analysis-lane spans stay disjoint.
    const bool traced = op.traced;
    const std::uint64_t opid = op.id.value;
    const std::uint32_t shard_idx = s.value;
    coarse_done.on_trigger([this, shard_idx, coarse_cost, traced, opid, prof_iter] {
      const SimTime end = clock_.now();
      profiler_.emit({traced ? prof::SpanKind::CoarseReplay : prof::SpanKind::CoarseAnalysis,
                      prof::Lane::Analysis, shard_idx, end - coarse_cost, end, opid,
                      prof_iter});
    });
  }

  // ---- fence gating: arrive once our fine pipeline reaches this op ----
  std::vector<sim::Event> pre{coarse_done, st.fine_tail};
  if (!dec.fence_sources.empty()) {
    FenceRecord* fence = &fence_for(op.id);
    sim::UserEvent gate;
    pc.add(prof::Counter::FenceWaits);
    const std::uint64_t opid = op.id.value;
    auto arrive = [this, fence, s, gate, opid, prof_iter] {
      // Fence-wait span: from this shard's arrival to the round completing at
      // this shard.  Waits on the Fence lane are ordered by the fine_tail
      // chain, so per-shard spans nest trivially (they are disjoint).
      const SimTime wait_start = clock_.now();
      // dcr-scope: stamp this arrival with the shard's current span, so the
      // collective's latest-merge yields the fence's releasing shard + span.
      dcr::scope::TraceCtx ctx;
      if (scope_) ctx = scope_->fence_arrival(opid, s.value, prof_iter, wait_start);
      fence->coll->arrive(s.value, ctx).on_trigger([this, gate, s, wait_start, opid, prof_iter] {
        const SimTime now = clock_.now();
        prof::Counters& c = profiler_.shard(s.value);
        c.add(prof::Counter::FenceWaitNs, now - wait_start);
        c.observe(prof::Hist::FenceWaitNs, now - wait_start);
        profiler_.emit({prof::SpanKind::FenceWait, prof::Lane::Fence, s.value, wait_start,
                        now, opid, prof_iter});
        if (scope_) scope_->on_fence_wait(s.value, opid, wait_start, now);
        gate.trigger(now);
      });
    };
    if (st.fine_tail.has_triggered()) {
      arrive();
    } else {
      st.fine_tail.on_trigger(arrive);
    }
    pre.push_back(gate);
  }

  // ---- fine stage cost (Figure 9 bottom): proportional to owned points ----
  std::uint64_t owned = 0;
  if (op.plan) {
    // Captured or replayed fine-stage mapping: the owned-point set is the
    // plan itself (no sharding-function enumeration needed on replay).
    owned = op.plan->size();
  } else if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    owned = shardings_
                .owned_points(index->launch.sharding, index->launch.domain, num_shards(), s)
                .size();
  } else if (const auto* attach = std::get_if<AttachPayload>(&op.payload);
             attach && attach->partition.valid()) {
    const rt::Rect dom = rt::Rect::r1(
        0, static_cast<std::int64_t>(forest_.num_subregions(attach->partition)) - 1);
    owned = shardings_.owned_points(ShardingRegistry::blocked(), dom, num_shards(), s).size();
  } else if (!std::holds_alternative<ReducePayload>(op.payload) &&
             !std::holds_alternative<FencePayload>(op.payload)) {
    owned = (single_op_owner(op.id) == s) ? 1 : 0;
  }
  // Static skip (src/statics): a launch whose interference the prover fully
  // resolved needs no per-point fine-stage discrimination — the affine forms
  // predetermine every point's outcome — so the per-point charge collapses to
  // zero and the fine stage is O(1).  Replayed ops never carry static_skip
  // (they already charge the reduced traced costs).
  const SimTime per_point_cost =
      op.traced ? config_.traced_fine_cost_per_point : config_.fine_cost_per_point;
  const bool static_skip = dec.static_skip && !op.traced;
  const SimTime fine_cost =
      (op.traced ? config_.traced_fine_cost_per_op : config_.fine_cost_per_op) +
      (static_skip ? 0 : per_point_cost * owned);
  pc.add(op.traced ? prof::Counter::TracedFineOps : prof::Counter::FineOps);
  pc.add(prof::Counter::FineAnalysisNs, fine_cost);
  pc.add(prof::Counter::FinePoints, owned);
  if (static_skip) {
    pc.add(prof::Counter::StaticSkipOps);
    pc.add(prof::Counter::StaticSkipPoints, owned);
    pc.add(prof::Counter::StaticSkipSavedNs, per_point_cost * owned);
  }
  pc.observe(prof::Hist::FineStageNs, fine_cost);
  pc.observe(prof::Hist::FinePointsPerOp, owned);

  OpRecord op_copy = op;
  // The template record may be dropped (window abort, invalidation) before
  // the fine stage runs; the shared_ptr plan is all execute_points needs.
  op_copy.trec = nullptr;
  const bool traced = op.traced;
  const std::uint64_t opid = op.id.value;
  const sim::Event fine_done = analysis_proc(s).enqueue(
      fine_cost, sim::merge_events(std::span<const sim::Event>(pre)),
      [this, s, fine_cost, traced, opid, prof_iter, op_copy = std::move(op_copy)] {
        const SimTime end = clock_.now();
        if (profiler_.spans_enabled()) {
          profiler_.emit({traced ? prof::SpanKind::FineReplay : prof::SpanKind::FineAnalysis,
                          prof::Lane::Analysis, s.value, end - fine_cost, end, opid,
                          prof_iter});
        }
        // dcr-scope: this completed fine stage becomes the shard's current
        // span — the causal parent of the task launches and collective
        // contributions issued by execute_points below, and of any fence
        // arrival chained behind this op via fine_tail.
        if (scope_) scope_->on_fine_stage(s.value, opid, traced, end - fine_cost, end);
        execute_points(s, op_copy);
      });
  st.fine_tail = fine_done;
}

// --------------------------------------------------------------- execution

void DcrRuntime::execute_points(ShardId s, const OpRecord& op) {
  ShardState& st = shard(s);
  const NodeId node = st.node;

  if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    const IndexLaunch& launch = index->launch;
    // Future-map bookkeeping for this shard.
    FutureMapRecord* fm = nullptr;
    if (index->future_map_id != ~0ull) {
      auto [it, inserted] = future_maps_.try_emplace(index->future_map_id);
      fm = &it->second;
      if (inserted) {
        fm->op = op.id;
        fm->domain = launch.domain;
        fm->shard_values_ready.assign(num_shards(), sim::Event::no_event());
        fm->shard_partial_sum.assign(num_shards(), 0.0);
        fm->shard_partial_min.assign(num_shards(),
                                     std::numeric_limits<double>::infinity());
        fm->shard_partial_max.assign(num_shards(),
                                     -std::numeric_limits<double>::infinity());
      }
    }
    std::vector<sim::Event> completions;
    if (op.plan) {
      // Template path: the per-point projection results were recorded at
      // capture, so the replay touches neither the forest nor the projection
      // registry.
      for (const PointPlan& pp : *op.plan) {
        completions.push_back(launch_point_task(s, op, pp.point, pp.point_index, pp.reqs,
                                                launch.args, launch.fn,
                                                index->future_map_id));
      }
    } else {
      const auto& points =
          shardings_.owned_points(launch.sharding, launch.domain, num_shards(), s);
      for (const rt::Point& p : points) {
        std::vector<rt::Requirement> reqs;
        reqs.reserve(launch.requirements.size());
        for (const rt::GroupRequirement& gr : launch.requirements) {
          reqs.push_back(gr.concretize(forest_, projections_, p, launch.domain));
        }
        const std::uint64_t point_index = rt::linearize(launch.domain, p);
        completions.push_back(launch_point_task(s, op, p, point_index, reqs, launch.args,
                                                launch.fn, index->future_map_id));
      }
    }
    if (fm) {
      fm->shard_values_ready[s.value] = completions.empty()
                                            ? sim::Event::no_event()
                                            : sim::merge_events(std::span<const sim::Event>(
                                                  completions));
    }
    return;
  }

  if (const auto* task = std::get_if<TaskPayload>(&op.payload)) {
    const ShardId owner = single_op_owner(op.id);
    if (owner == s) {
      rt::Point p;
      p.dim = 1;
      const sim::Event done = launch_point_task(s, op, p, 0, task->launch.requirements,
                                                task->launch.args, task->launch.fn, ~0ull,
                                                task->future_id);
      (void)done;
    }
    return;
  }

  if (const auto* fill = std::get_if<FillPayload>(&op.payload)) {
    if (single_op_owner(op.id) != s) return;
    const rt::Rect rect = forest_.bounds(fill->region);
    const RegionTreeId tree = forest_.tree_of(fill->region);
    const TaskId tid(op.id.value * kPointsPerOp);
    sim::UserEvent done;
    std::vector<sim::Event> pre;
    for (FieldId f : fill->fields) {
      auto conflicts = tracker_.record_use(tree, f, rect, rt::Privilege::WriteDiscard,
                                           rt::kNoRedop, tid, done);
      if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
      record_realized(tid, op.id, 0, conflicts.tasks);
      physical_.record_fill(tree, f, rect);
    }
    spy_record_task(s, tid, op.id, 0,
                    {{tree, rect, fill->fields, rt::Privilege::WriteDiscard, rt::kNoRedop}});
    // Fills are cheap metadata operations materialized lazily.
    const sim::Event fin = analysis_proc(s).enqueue(
        us(1), sim::merge_events(std::span<const sim::Event>(pre)),
        [this, done] { done.trigger(machine_.sim().now()); });
    (void)fin;
    quiescence_.add(done);
    return;
  }

  if (const auto* attach = std::get_if<AttachPayload>(&op.payload)) {
    if (attach->partition.valid()) {
      // Parallel file I/O: every shard attaches/flushes the pieces it owns.
      const RegionTreeId tree = forest_.tree_of_partition(attach->partition);
      const rt::Rect dom = rt::Rect::r1(
          0, static_cast<std::int64_t>(forest_.num_subregions(attach->partition)) - 1);
      const auto& points =
          shardings_.owned_points(ShardingRegistry::blocked(), dom, num_shards(), s);
      for (const rt::Point& p : points) {
        const std::uint64_t color = rt::linearize(dom, p);
        const rt::Rect rect = forest_.bounds(forest_.subregion(attach->partition, color));
        std::uint64_t piece_bytes = 0;
        for (FieldId f : attach->fields) piece_bytes += rect.volume() * forest_.field_size(f);
        const auto io = static_cast<SimTime>(static_cast<double>(piece_bytes) *
                                             config_.file_ns_per_byte);
        const TaskId tid(op.id.value * kPointsPerOp + color);
        sim::UserEvent done;
        std::vector<sim::Event> pre;
        std::vector<TaskId> preds;
        for (FieldId f : attach->fields) {
          const auto priv =
              attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard;
          auto conflicts = tracker_.record_use(tree, f, rect, priv, rt::kNoRedop, tid, done);
          if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
          preds.insert(preds.end(), conflicts.tasks.begin(), conflicts.tasks.end());
          if (attach->detach) {
            pre.push_back(physical_.acquire(tree, f, rect, st.node));
          } else {
            physical_.record_write(tree, f, rect, st.node, done);
          }
        }
        record_realized(tid, op.id, color, preds);
        spy_record_task(s, tid, op.id, color,
                        {{tree, rect, attach->fields,
                          attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard,
                          rt::kNoRedop}});
        analysis_proc(s).enqueue(io, sim::merge_events(std::span<const sim::Event>(pre)),
                                 [this, done] { done.trigger(machine_.sim().now()); });
        quiescence_.add(done);
      }
      return;
    }
    if (single_op_owner(op.id) != s) return;
    const rt::Rect rect = forest_.bounds(attach->region);
    const RegionTreeId tree = forest_.tree_of(attach->region);
    std::uint64_t bytes = 0;
    for (FieldId f : attach->fields) bytes += rect.volume() * forest_.field_size(f);
    const SimTime io_time =
        static_cast<SimTime>(static_cast<double>(bytes) * config_.file_ns_per_byte);
    const TaskId tid(op.id.value * kPointsPerOp);
    sim::UserEvent done;
    std::vector<sim::Event> pre;
    for (FieldId f : attach->fields) {
      const auto priv =
          attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard;
      auto conflicts = tracker_.record_use(tree, f, rect, priv, rt::kNoRedop, tid, done);
      if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
      record_realized(tid, op.id, 0, conflicts.tasks);
      if (attach->detach) {
        // Flush: gather valid data to the owner node before writing back.
        pre.push_back(physical_.acquire(tree, f, rect, node));
      } else {
        physical_.record_write(tree, f, rect, node, done);
      }
    }
    spy_record_task(s, tid, op.id, 0,
                    {{tree, rect, attach->fields,
                      attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard,
                      rt::kNoRedop}});
    analysis_proc(s).enqueue(io_time, sim::merge_events(std::span<const sim::Event>(pre)),
                             [this, done] { done.trigger(machine_.sim().now()); });
    quiescence_.add(done);
    return;
  }

  if (const auto* red = std::get_if<ReducePayload>(&op.payload)) {
    auto fmit = future_maps_.find(red->fm_id);
    DCR_CHECK(fmit != future_maps_.end()) << "reduce of unknown future map";
    FutureMapRecord& fm = fmit->second;
    FutureRecord& fut = futures_.at(red->future_id);  // created at issue
    // Arrive with this shard's partial once its point values are known.
    const sim::UserEvent gate = fut.per_shard_event[s.value];
    const sim::Event ready = fm.shard_values_ready[s.value];
    auto arrive = [this, fmp = &fm, futp = &fut, s, gate, rop = red->op] {
      double partial = 0.0;
      switch (rop) {
        case ReduceOp::Sum: partial = fmp->shard_partial_sum[s.value]; break;
        case ReduceOp::Min: partial = fmp->shard_partial_min[s.value]; break;
        case ReduceOp::Max: partial = fmp->shard_partial_max[s.value]; break;
      }
      // dcr-scope: this contribution is caused by the shard's current span
      // (the fine stage that produced its partial values).
      futp->coll->arrive(s.value, partial, scope_ctx(s)).on_trigger([this, gate] {
        gate.trigger(machine_.sim().now());
      });
    };
    if (ready.has_triggered()) {
      arrive();
    } else {
      ready.on_trigger(arrive);
    }
    quiescence_.add(gate);
    return;
  }

  if (const auto* del = std::get_if<DeletePayload>(&op.payload)) {
    if (!forest_.tree_destroyed(del->tree)) forest_.destroy_tree(del->tree);
    return;
  }
}

sim::Event DcrRuntime::launch_point_task(ShardId s, const OpRecord& op, const rt::Point& point,
                                         std::uint64_t point_index,
                                         const std::vector<rt::Requirement>& reqs,
                                         const std::vector<std::int64_t>& args, FunctionId fn,
                                         std::uint64_t future_map_id,
                                         std::uint64_t future_id) {
  ShardState& st = shard(s);
  const NodeId node = st.node;
  const TaskId tid(op.id.value * kPointsPerOp + point_index);

  PointTaskInfo info;
  info.fn = fn;
  info.point = point;
  if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    info.domain = index->launch.domain;
  }
  info.requirements = reqs;
  info.args = args;
  for (const rt::Requirement& r : reqs) {
    info.volume += forest_.bounds(r.region).volume();
  }

  sim::UserEvent done;
  std::vector<sim::Event> pre;
  std::vector<TaskId> conflict_tasks;
  for (const rt::Requirement& r : reqs) {
    const rt::Rect rect = forest_.bounds(r.region);
    const RegionTreeId tree = forest_.tree_of(r.region);
    for (FieldId f : r.fields) {
      if (rt::is_reader(r.privilege)) {
        const sim::Event copied = physical_.acquire(tree, f, rect, node);
        if (!copied.has_triggered()) pre.push_back(copied);
      }
      auto conflicts = tracker_.record_use(tree, f, rect, r.privilege, r.redop, tid, done);
      if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
      conflict_tasks.insert(conflict_tasks.end(), conflicts.tasks.begin(),
                            conflicts.tasks.end());
      if (rt::is_writer(r.privilege)) {
        physical_.record_write(tree, f, rect, node, done);
      }
    }
  }
  record_realized(tid, op.id, point_index, conflict_tasks);
  if (trace_) {
    std::vector<spy::AccessRecord> accesses;
    accesses.reserve(reqs.size());
    for (const rt::Requirement& r : reqs) {
      accesses.push_back({forest_.tree_of(r.region), forest_.bounds(r.region), r.fields,
                          r.privilege, r.redop});
    }
    spy_record_task(s, tid, op.id, point_index, std::move(accesses));
  }
  if (scope_) {
    // Task-launch ledger: tagged with the shard's current span (the fine
    // stage that launched this point).
    scope_->on_task_launch(s.value, op.id.value, point_index, clock_.now());
  }

  const SimTime duration = functions_.at(fn).duration(info);
  FunctionProfile& prof = profile_[fn];
  prof.tasks++;
  prof.total_time += duration;
  sim::Processor& proc = compute_proc_for(s, point_index);
  const sim::Event pre_merged = sim::merge_events(std::span<const sim::Event>(pre));
  const bool wants_value = future_map_id != ~0ull || future_id != ~0ull;

  if (replicator_ && wants_value && num_shards() > 1 && taint_.op_tainted(op.id.value)) {
    // SDC-critical point (dcr/replicate.hpp): the primary runs in place but
    // its completion event and value contribution are gated on the quorum
    // verdict over the duplicate executions the ticket launches.  The voted
    // value — never the primary's raw result — reaches the future collective.
    const std::uint64_t ticket = replicator_->open(
        op.id.value, s.value, point_index, duration, pre_merged,
        /*value_of=*/
        [this, info, tid](std::uint32_t exec) { return task_result(info, tid, exec); },
        /*on_resolved=*/
        [this, s, done, info, future_map_id, future_id, point_index, opid = op.id,
         traced = op.traced](const QuorumOutcome& out) {
          finish_point_task(s, info, future_map_id, future_id, out.value);
          done.trigger(machine_.sim().now());
          if (scope_) {
            scope_->on_quorum({opid.value, point_index, s.value, out.rounds, out.ballots,
                               out.mismatches, out.primary_corrupted, out.corrupted_shards,
                               out.opened, out.resolved_at});
          }
          if (out.mismatches > 0) on_corruption_healed(opid, traced, out);
        },
        functions_.at(fn).name);
    proc.enqueue(duration, pre_merged,
                 [this, ticket] { replicator_->primary_complete(ticket); },
                 functions_.at(fn).name);
  } else {
    // Unverified path.  A taint that arrives after this launch cannot
    // retroactively replicate the point; record the op so the race is
    // visible (stats_.sdc_late_taints).
    if (replicator_ && wants_value) value_ops_launched_.insert(op.id.value);
    proc.enqueue(duration, pre_merged,
                 [this, s, done, info = std::move(info), future_map_id, future_id, tid,
                  wants_value] {
                   const double v = wants_value ? task_result(info, tid, 0) : 0.0;
                   finish_point_task(s, info, future_map_id, future_id, v);
                   done.trigger(machine_.sim().now());
                 },
                 functions_.at(fn).name);
  }
  quiescence_.add(done);
  stats_.point_tasks_launched++;
  return done;
}

// One execution instance's result: the registered value model plus this
// instance's silent-corruption fate.  The instance key packs (task, exec) so
// the primary (exec 0) of a replicated run corrupts exactly as an
// unreplicated run does, and every replica draws an independent fate.
double DcrRuntime::task_result(const PointTaskInfo& info, TaskId tid, std::uint32_t exec) {
  const TaskFunction& fn = functions_.at(info.fn);
  DCR_CHECK(fn.future_value != nullptr)
      << "task '" << fn.name << "' launched for a future but has no value model";
  double v = fn.future_value(info);
  if (sim::FaultPlan* plan = machine_.faults()) {
    double weight = 1.0;
    const auto it = config_.sdc_class_weights.find(info.fn.value);
    if (it != config_.sdc_class_weights.end()) weight = it->second;
    v = plan->corrupt_value(tid.value * 64 + exec, v, weight).value;
  }
  return v;
}

void DcrRuntime::note_control_future(std::uint64_t future_id) {
  const std::vector<std::uint64_t> newly = taint_.taint_future(future_id);
  if (newly.empty()) return;
  profiler_.global().add(prof::GlobalCounter::TaintedOps, newly.size());
  if (!replicator_) return;
  for (std::uint64_t opv : newly) {
    if (value_ops_launched_.count(opv) != 0) stats_.sdc_late_taints++;
  }
}

void DcrRuntime::close_template_window(ShardState& st, std::size_t shard_idx) {
  prof::Counters& pc = profiler_.shard(shard_idx);
  pc.add(prof::Counter::WindowsClosed);
  pc.add(st.templates.mode() == TemplateManager::Mode::Replay
             ? prof::Counter::TemplateWindowHits
             : prof::Counter::TemplateWindowMisses);
  st.templates.end(forest_);
  profiler_.emit({prof::SpanKind::TraceWindow, prof::Lane::Control, shard_idx,
                  st.window_started, clock_.now(), prof::kNoId,
                  st.windows_opened - 1});
}

void DcrRuntime::retire_auto_window(ShardState& st, std::size_t shard_idx,
                                    const char* reason) {
  if (st.templates.active()) {
    st.templates.abort_window(reason);  // no-op if already aborted underneath
    close_template_window(st, shard_idx);
  }
  st.auto_open = false;
  st.auto_tracer.interrupt();
}

void DcrRuntime::on_corruption_healed(OpId op, bool traced, const QuorumOutcome& out) {
  if (config_.sdc_invalidate_templates) {
    // The corrupted value may have been observed by control before the heal
    // (future_is_ready) or captured alongside cached analysis: bump the
    // recovery epoch so every shard drops its templates at the next window
    // begin — the same invalidation a failover uses.
    recovery_epoch_++;
    // The epoch bump only takes effect at the NEXT window begin; a window
    // that is open right now was keyed on the stale epoch.  A mid-capture
    // window may have folded the corrupt value into its recording (and a
    // mid-replay window is serving decisions derived from it), so abort it
    // here — otherwise the half-recorded trace reaches Recorded state and a
    // later occurrence (explicit or auto-promoted) could validate against
    // poisoned decisions.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ShardState& st = *shards_[i];
      if (st.auto_open) {
        retire_auto_window(st, i,
                           "SDC heal invalidated the template epoch mid-window");
      } else if (st.templates.active()) {
        // Explicit window: the abort leaves the slot for its end_trace.
        st.templates.abort_window("SDC heal invalidated the template epoch mid-window");
      }
    }
    if (traced) {
      // The healed op was itself replayed from a template: re-validate its
      // cached fence decisions by re-issuing them into the prof global
      // ledger.  Spy records are NOT re-appended (the decision stream is
      // unchanged), so the dcr-prof cross-check subtracts the SdcReissued*
      // counters before comparing against the trace.
      if (const CoarseDecision* found = coarse_.find(op)) {
        const CoarseDecision& dec = *found;
        prof::Counters& g = profiler_.global();
        g.add(prof::GlobalCounter::FenceDecisions, dec.deps);
        g.add(prof::GlobalCounter::FencesElided, dec.elided);
        g.add(prof::GlobalCounter::FencesIssued, dec.deps - dec.elided);
        g.add(prof::GlobalCounter::SdcReissuedDecisions, dec.deps);
        g.add(prof::GlobalCounter::SdcReissuedElisions, dec.elided);
        g.add(prof::GlobalCounter::SdcReissuedFences, dec.deps - dec.elided);
      }
    }
  }
  if (config_.sdc_suspect_threshold == 0 || machine_.faults() == nullptr) return;
  for (const std::uint32_t bad : out.corrupted_shards) {
    if (++sdc_suspect_counts_[bad] != config_.sdc_suspect_threshold) continue;
    ShardState& st = shard(ShardId(bad));
    if (st.dead || st.done) continue;
    stats_.sdc_failovers++;
    // Corruption-aware failover: the shard's node is presumed compromised;
    // push it through the PR-1 declare-dead -> tail-re-replay path.  Deferred
    // to a fresh calendar item — declare_dead kills a control process, which
    // must not happen inside the trigger cascade delivering the ballot.
    machine_.sim().schedule(0, [this, sp = &st] {
      if (!aborted_ && !sp->dead && !sp->done) declare_dead(*sp);
    });
  }
}

void DcrRuntime::finish_point_task(ShardId s, const PointTaskInfo& /*info*/,
                                   std::uint64_t future_map_id, std::uint64_t future_id,
                                   double value) {
  if (future_map_id != ~0ull) {
    FutureMapRecord& fm = future_maps_.at(future_map_id);
    fm.shard_partial_sum[s.value] += value;
    fm.shard_partial_min[s.value] = std::min(fm.shard_partial_min[s.value], value);
    fm.shard_partial_max[s.value] = std::max(fm.shard_partial_max[s.value], value);
  }
  if (future_id != ~0ull) {
    FutureRecord& fut = futures_.at(future_id);
    // Only the owner shard executes a single task; it is the broadcast root.
    const sim::UserEvent gate = fut.per_shard_event[s.value];
    fut.coll->arrive(/*rank=*/0, value, scope_ctx(s)).on_trigger(
        [this, gate] { gate.trigger(machine_.sim().now()); });
  }
}

sim::Processor& DcrRuntime::compute_proc_for(ShardId s, std::uint64_t point_index) {
  const NodeId node = placement_[s.value];
  const std::size_t per_node = machine_.config().compute_procs_per_node;
  std::size_t slot;
  if (config_.mapper) {
    slot = config_.mapper->select_processor(FunctionId::invalid(), point_index, per_node) %
           per_node;
  } else if (config_.shards_per_node == per_node) {
    slot = s.value % config_.shards_per_node;  // one shard drives one processor
  } else {
    slot = point_index % per_node;
  }
  return machine_.compute_proc(node, slot);
}

void DcrRuntime::record_realized(TaskId tid, OpId op, std::uint64_t point_index,
                                 const std::vector<TaskId>& preds) {
  if (!config_.record_task_graph) return;
  if (!realized_graph_.has_task(tid)) {
    realized_graph_.add_task(tid);
    realized_tasks_.push_back(RealizedTask{tid, op, point_index});
  }
  for (TaskId p : preds) {
    if (!realized_graph_.has_edge(p, tid)) {
      realized_graph_.add_edge(p, tid);
      if (trace_) trace_->edges.push_back({p, tid});
    }
  }
}

void DcrRuntime::spy_record_task(ShardId s, TaskId tid, OpId op, std::uint64_t point_index,
                                 std::vector<spy::AccessRecord> accesses) {
  if (!trace_) return;
  trace_->tasks.push_back({tid, op, point_index, s, std::move(accesses)});
}

// ------------------------------------------------------ deferred deletions

void DcrRuntime::start_deferred_poller() {
  if (poller_active_) return;
  poller_active_ = true;
  deferred_poll_interval_ = config_.deferred_poll_initial;
  machine_.sim().spawn("deferred-poller", [this](sim::ProcessContext& pctx) {
    for (;;) {
      pctx.delay(deferred_poll_interval_);
      if (aborted_) {
        poller_active_ = false;
        return;
      }
      const bool progressed = check_deferred_consensus();
      profiler_.global().add(prof::GlobalCounter::DeferredPolls);
      profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
      // One consensus poll costs a small collective among the shards.
      auto poll = std::make_shared<sim::Collective<int>>(
          machine_.sim(), machine_.network(), placement_, sim::CollectiveKind::AllReduce,
          sizeof(std::uint64_t), [](int a, int) { return a; });
      sim::Event done;
      for (std::size_t sh = 0; sh < num_shards(); ++sh) {
        done = poll->arrive(sh, 0);
      }
      pctx.wait(done);
      if (progressed) {
        deferred_poll_interval_ = config_.deferred_poll_initial;  // GC active: poll fast
      } else {
        deferred_poll_interval_ =
            std::min(deferred_poll_interval_ * 2, config_.deferred_poll_max);
      }
      bool all_done = true;
      for (const auto& st : shards_) all_done = all_done && st->main_returned;
      if (all_done) {
        check_deferred_consensus();
        deferred_drained_ = true;
        poller_active_ = false;
        return;
      }
    }
  });
}

bool DcrRuntime::check_deferred_consensus() {
  std::size_t min_count = std::numeric_limits<std::size_t>::max();
  std::uint64_t max_next_op = 0;
  for (const auto& st : shards_) {
    min_count = std::min(min_count, st->deferred_requests.size());
    max_next_op = std::max(max_next_op, st->next_op);
  }
  bool progressed = false;
  while (deferred_consensus_ < min_count) {
    const RegionTreeId tree = shards_[0]->deferred_requests[deferred_consensus_];
    for (const auto& st : shards_) {
      if (st->deferred_requests[deferred_consensus_] != tree) {
        stats_.determinism_violation = true;
        stats_.violation_message = "deferred deletions diverged across shards";
        return progressed;
      }
    }
    // Insert at an index no shard has passed yet, after prior insertions.
    std::uint64_t idx = max_next_op;
    if (!agreed_insertions_.empty()) {
      idx = std::max(idx, agreed_insertions_.rbegin()->first + 1);
    }
    agreed_insertions_.emplace(idx, DeletePayload{tree});
    deferred_consensus_++;
    progressed = true;
  }
  return progressed;
}

void DcrRuntime::finalize_shard(ShardContext& ctx) {
  ShardState& st = shard(ctx.shard());
  st.main_returned = true;
  // The control program is over: an open auto-detected window can never
  // complete its period, so discard its capture, and gate the detector off so
  // the finalization fence below cannot open a fresh window.
  if (st.auto_open) {
    retire_auto_window(st, ctx.shard().value,
                       "control program ended inside an auto window");
  }
  st.auto_stop = true;
  // Drain: wait until deferred consensus settles (poller observes all shards
  // done), then process any agreed insertions this shard has not reached.
  while (poller_active_ && !deferred_drained_) {
    ctx.process().delay(config_.deferred_poll_initial);
  }
  for (auto& [idx, payload] : agreed_insertions_) {
    if (idx >= st.next_op) {
      OpRecord del{OpId(idx), OpPayload(payload), false};
      st.next_op = idx + 1;
      st.deletions_processed++;
      process_op(ctx.shard(), del);
    }
  }
  ctx.execution_fence();
  st.done = true;
}

// ----------------------------------------------------------------- execute

DcrStats DcrRuntime::execute(const ApplicationMain& main) {
  main_ = main;  // kept so replacement shards can re-execute the program
  for (auto& st : shards_) spawn_shard(*st);
  if (sim::FaultPlan* plan = machine_.faults()) {
    DCR_CHECK(machine_.reliable() != nullptr)
        << "fault plan attached without Machine::install_faults";
    plan->on_crash([this](NodeId n, SimTime t) { on_node_crash(n, t); });
    start_monitor();
  }
  if (config_.halt_on_violation && checker_.enabled()) {
    checker_.set_violation_handler(
        [this](const std::string& msg) { abort_execution(msg); });
  }
  stats_.makespan = machine_.sim().run();

  stats_.completed = true;
  for (const auto& st : shards_) stats_.completed = stats_.completed && st->done;
  if (checker_.has_violation()) {
    stats_.determinism_violation = true;
    stats_.violation_message = checker_.violation_message();
  }
  if (checker_.checks_unresolved() > 0) stats_.completed = false;
  stats_.bytes_moved = physical_.bytes_moved();
  stats_.messages = machine_.network().stats().messages;
  for (std::size_t n = 0; n < machine_.num_nodes(); ++n) {
    stats_.analysis_busy += machine_.analysis_proc(NodeId(static_cast<std::uint32_t>(n))).busy_time();
  }
  stats_.compute_busy = machine_.total_compute_busy();
  for (const auto& st : shards_) {
    const TemplateManager::Counters& c = st->templates.counters();
    stats_.templates_captured += c.captured;
    stats_.templates_validated += c.validated;
    stats_.template_replays += c.window_replays;
    stats_.template_invalidations += c.invalidated;
    stats_.template_validation_failures += c.validation_failures;
  }
  for (const auto& st : shards_) {
    const TraceIdentifier::Counters& a = st->auto_tracer.counters();
    stats_.auto_trace_detections += a.detections;
    stats_.auto_trace_promotions += a.promotions;
    stats_.auto_trace_demotions += a.demotions;
    stats_.auto_trace_windows += a.windows;
    stats_.auto_trace_aborts += a.aborts;
    stats_.auto_trace_collisions += a.collisions;
    prof::Counters& pc = profiler_.shard(st->id.value);
    pc.add(prof::Counter::AutoTraceDetections, a.detections);
    pc.add(prof::Counter::AutoTracePromotions, a.promotions);
    pc.add(prof::Counter::AutoTraceDemotions, a.demotions);
    pc.add(prof::Counter::AutoTraceWindows, a.windows);
    pc.add(prof::Counter::AutoTraceAborts, a.aborts);
    pc.add(prof::Counter::AutoTraceCollisions, a.collisions);
  }

  stats_.aborted = aborted_;
  stats_.abort_message = abort_message_;
  if (aborted_) stats_.completed = false;
  // With a spy trace on hand, upgrade the hash-only determinism-violation
  // message to the linter's argument-level report: which call diverged, which
  // shards disagree, and which argument differed.
  if (trace_ && stats_.determinism_violation) {
    const spy::LintResult lint = spy::lint_control_determinism(*trace_);
    if (lint.divergent) {
      stats_.violation_message = lint.message;
      if (stats_.aborted) stats_.abort_message = lint.message;
    }
  }
  // A determinism violation without halt_on_violation never reached
  // abort_execution; the flight rings are just as useful there.
  if (flight_ && !flight_dumped_ && !config_.flight_path.empty() &&
      stats_.determinism_violation) {
    flight_dumped_ = true;
    flight_->dump(config_.flight_path, stats_.violation_message.c_str(),
                  &profiler_);
  }
  stats_.failures = failures_;
  stats_.failures_detected = failures_.size();
  if (const sim::FaultPlan* plan = machine_.faults()) {
    stats_.messages_dropped = plan->stats().drops + plan->stats().blackouts;
    stats_.sdc_corruptions_injected = plan->stats().sdc_injected;
  }
  if (const sim::ReliableDelivery* rel = machine_.reliable()) {
    stats_.retransmits = rel->stats().retransmits;
  }

  // SDC replication: mirror the taint set and the quorum executor's ledger.
  stats_.sdc_tainted_ops = taint_.tainted_ops();
  stats_.sdc_tainted_futures = taint_.tainted_futures();
  if (replicator_) {
    const ReplicationExecutor::Stats& rs = replicator_->stats();
    stats_.sdc_tickets = rs.tickets;
    stats_.sdc_replicas_issued = rs.replicas_issued;
    stats_.sdc_replicas_compared = rs.replicas_compared;
    stats_.sdc_replicas_lost = rs.replicas_lost;
    stats_.sdc_corruptions_detected = rs.mismatched_ballots;
    stats_.sdc_corruptions_healed = rs.healed;
    stats_.sdc_quorum_rounds = rs.rounds;
    stats_.sdc_stale_votes = rs.stale_votes;
  }

  // Static interference analysis: mirror the prover's verdict ledger.  The
  // resolved/unresolved split was charged online in coarse_decision; cache
  // hits come from the prover itself.
  {
    const statics::InterferenceProver::Stats& ps = statics_prover_.stats();
    stats_.statics_cache_hits = ps.cache_hits;
    profiler_.global().add(prof::GlobalCounter::StaticProofCacheHits, ps.cache_hits);
    stats_.statics_resolved_ops =
        profiler_.global().get(prof::GlobalCounter::StaticLaunchesResolved);
    stats_.statics_unresolved_ops =
        profiler_.global().get(prof::GlobalCounter::StaticLaunchesUnresolved);
    for (std::size_t sh = 0; sh < num_shards(); ++sh) {
      stats_.statics_skipped_points +=
          profiler_.shard(static_cast<std::uint32_t>(sh)).get(prof::Counter::StaticSkipPoints);
    }
  }

  // Mirror the end-of-run totals into the profiler's global counter bank so a
  // snapshot (tools/dcr-prof, golden traces) is self-contained: template
  // health, transport retries, and fault/recovery history all live beside the
  // fence/elision ledger that was maintained online.
  prof::Counters& g = profiler_.global();
  g.add(prof::GlobalCounter::TemplateShadowMismatches, stats_.template_validation_failures);
  g.add(prof::GlobalCounter::TemplateInvalidations, stats_.template_invalidations);
  g.add(prof::GlobalCounter::Retransmits, stats_.retransmits);
  g.add(prof::GlobalCounter::MessagesDropped, stats_.messages_dropped);
  g.add(prof::GlobalCounter::FailuresDetected, stats_.failures_detected);
  g.add(prof::GlobalCounter::Recoveries, stats_.recoveries);
  g.add(prof::GlobalCounter::RecoveryEpochs, recovery_epoch_);
  for (const auto& [op, rec] : fences_) {
    (void)op;
    if (rec.coll && rec.coll->complete()) {
      g.add(prof::GlobalCounter::CollectiveLatencyNs, rec.coll->latency());
    }
  }

  // dcr-scope: harvest every fence's per-rank timestamps + merged releaser
  // into the blame ledger, in dependent-op order (fences_ is an ordered map).
  if (scope_) {
    for (const auto& [op, rec] : fences_) {
      if (rec.coll) scope_->harvest_fence(op.value, *rec.coll);
    }
    scope_->set_run_info(stats_.makespan, recovery_epoch_);
  }
  return stats_;
}

// ------------------------------------------------ failure detection/recovery

void DcrRuntime::spawn_shard(ShardState& st) {
  std::string name = "shard-" + std::to_string(st.id.value);
  if (st.incarnation > 0) name += "#" + std::to_string(st.incarnation);
  st.process = &machine_.sim().spawn(
      std::move(name), [this, sp = &st](sim::ProcessContext& pctx) {
        ShardContext ctx(*this, sp->id, pctx);
        main_(ctx);
        finalize_shard(ctx);
      });
}

// Fired by the fault plan at crash time: the node is fail-stop, so every
// control process hosted there dies mid-flight.  Detection is NOT free here —
// peers only learn of the death through the lease monitor below.
void DcrRuntime::on_node_crash(NodeId node, SimTime t) {
  for (auto& stp : shards_) {
    ShardState& st = *stp;
    if (st.node != node || st.crashed) continue;
    st.crashed = true;
    st.crashed_at = t;
    if (st.process && !st.process->finished()) st.process->kill();
  }
}

void DcrRuntime::start_monitor() {
  machine_.sim().spawn("failure-monitor", [this](sim::ProcessContext& pctx) {
    for (;;) {
      pctx.delay(config_.lease_interval);
      if (aborted_) return;
      bool all_done = true;
      for (const auto& st : shards_) all_done = all_done && st->done && !st->crashed;
      if (all_done) return;
      const SimTime now = pctx.now();
      for (auto& stp : shards_) {
        ShardState& st = *stp;
        if (st.dead || st.probe_inflight) continue;
        // A finished shard stops refreshing its lease by construction; only
        // chase it if its node actually died (it may still owe collective
        // relay hops to its peers).
        if (st.done && !st.crashed) continue;
        if (now - st.last_heard < config_.lease_timeout) continue;
        probe_shard(st);
      }
    }
  });
}

std::optional<NodeId> DcrRuntime::probe_source(NodeId target) const {
  for (const auto& st : shards_) {
    if (st->dead || st->crashed || st->node == target) continue;
    if (machine_.faults()->node_dark(st->node, machine_.sim().now())) continue;
    return st->node;
  }
  return std::nullopt;
}

// A stale lease alone is not proof of death — the shard may simply be blocked
// waiting on a future.  The monitor pings the suspect's node over the
// reliable transport (with a tight retry budget); an ack refreshes the lease,
// exhaustion of the budget is the declaration of death.
void DcrRuntime::probe_shard(ShardState& st) {
  const std::optional<NodeId> src = probe_source(st.node);
  if (!src) return;  // no live peer to probe from; try again next scan
  st.probe_inflight = true;
  sim::ReliableParams probe_params = machine_.reliable()->params();
  probe_params.max_attempts = config_.probe_attempts;
  auto t = machine_.reliable()->transfer(*src, st.node, /*bytes=*/64, &probe_params);
  t.acked.on_trigger([this, sp = &st] {
    sp->probe_inflight = false;
    sp->last_heard = machine_.sim().now();
  });
  t.failed.on_trigger([this, sp = &st] {
    sp->probe_inflight = false;
    if (!sp->dead) declare_dead(*sp);
  });
}

void DcrRuntime::declare_dead(ShardState& st) {
  if (st.dead) return;
  st.dead = true;
  // Fence the old incarnation even if the node is merely unreachable (a long
  // outage, not a crash): a zombie control program issuing ops concurrently
  // with its replacement would corrupt the replicated state.
  if (st.process && !st.process->finished()) st.process->kill();

  FailureReport rep;
  rep.shard = st.id;
  rep.node = st.node;
  rep.crashed_at = st.crashed ? st.crashed_at : machine_.sim().now();
  rep.detected_at = machine_.sim().now();
  rep.committed_ops = st.commit.committed_ops();
  rep.committed_api_calls = st.commit.committed_calls();
  rep.committed_epochs = st.commit.epochs();
  rep.outstanding_ops = quiescence_.outstanding();
  failures_.push_back(rep);

  if (!config_.auto_recover) {
    abort_execution("shard failure detected: " + rep.describe());
    return;
  }
  start_recovery(st);
}

// Control-deterministic recovery: bring the node back, reset the replayable
// cursors, and re-run the control program from the top.  The replicated-
// creation heap, futures map, shared coarse state, and fence collectives all
// survive in the runtime, so the replay is pure fast-forwarding: it re-derives
// shard-local state (cursors, trace signatures, RNG position) and skips every
// externally visible side effect below the committed frontier.
void DcrRuntime::start_recovery(ShardState& st) {
  const std::size_t report_idx = failures_.size() - 1;
  machine_.sim().schedule(config_.restart_delay, [this, sp = &st, report_idx] {
    if (aborted_) return;
    ShardState& st = *sp;
    machine_.faults()->restart_node(st.node, machine_.sim().now());
    st.crashed = false;
    st.dead = false;
    st.last_heard = machine_.sim().now();
    stats_.recoveries++;
    if (st.done) {
      // The shard had already finished; restarting the node just restores its
      // relay duties in still-pending collectives.  Nothing to replay.
      failures_[report_idx].recovered = true;
      failures_[report_idx].recovered_at = machine_.sim().now();
      return;
    }
    st.incarnation++;
    st.replay_ops_end = st.commit.committed_ops();
    st.replay_calls_end = st.commit.committed_calls();
    // Reset everything the control program re-derives.  fine_tail and the
    // commit log survive: the fine pipeline keeps draining under the
    // replacement, and the committed frontier must never move backwards.
    st.next_creation = 0;
    st.next_future = 0;
    st.next_future_map = 0;
    st.next_op = 0;
    st.api_calls = 0;
    st.rng = std::make_unique<Philox4x32>(/*seed=*/0x5eed, /*stream=*/0);
    // Failover drops every cached dependence template (ISSUE: templates are
    // rebuilt from scratch by the replacement) and bumps the runtime-wide
    // recovery epoch so live shards drop theirs at the next window begin.
    failures_[report_idx].templates_dropped = st.templates.size();
    st.templates.reset();
    // The replayed call stream deterministically rebuilds the auto tracer's
    // state from the top; starting from anything else would diverge from what
    // the dead incarnation did at the same call indices.
    st.auto_tracer.reset();
    st.auto_open = false;
    st.auto_stop = false;
    recovery_epoch_++;
    st.deferred_requests.clear();
    st.deletions_processed = 0;
    st.main_returned = false;
    st.pending_report = static_cast<std::int64_t>(report_idx);
    failures_[report_idx].replay_started = machine_.sim().now();
    if (st.replay_calls_end == 0) {
      // Crashed before the first API call: nothing to fast-forward through.
      failures_[report_idx].recovered = true;
      failures_[report_idx].recovered_at = machine_.sim().now();
      st.pending_report = -1;
    }
    spawn_shard(st);
  });
}

// Graceful abort: record the reason, then kill every shard's control process
// so the simulation drains instead of hanging on collectives that can never
// complete.  The kill is deferred to a fresh calendar item because an abort
// can be requested from inside a trigger cascade while a process is running
// (e.g. a determinism check resolving during another shard's API call).
void DcrRuntime::abort_execution(std::string reason) {
  if (aborted_) return;
  aborted_ = true;
  abort_message_ = std::move(reason);
  // Crash flight recorder: dump the per-shard rings at the abort point —
  // determinism violations, "SDC quorum unresolved", shard-failure aborts —
  // so post-mortem triage needs no re-run.
  if (flight_ && !flight_dumped_ && !config_.flight_path.empty()) {
    flight_dumped_ = true;
    flight_->dump(config_.flight_path, abort_message_.c_str(), &profiler_);
  }
  machine_.sim().schedule(0, [this] {
    for (auto& st : shards_) {
      if (st->process && !st->process->finished()) st->process->kill();
    }
  });
}

}  // namespace dcr::core
