// Automatic repeated-trace identification for dependence templates (DESIGN.md
// §16, after "Automatic Tracing in Task-Based Runtime Systems", PAPERS.md).
//
// Each shard taps its own task-launch signature stream (the per-call template
// identity hash, dcr/template.hpp) and feeds it to a TraceIdentifier.  The
// identifier keeps a rolling CRC32C fingerprint over the last `probe` call
// tokens and a fingerprint table mapping fingerprints to the stream position
// where they last occurred.  A table hit at distance d means the last `probe`
// calls *may* equal the `probe` calls ending d positions earlier — a repeat of
// period d.  Because the fingerprint is only 32 bits (and tests can shrink it
// further with `fp_mask_bits` to force collisions), every hit is verified
// against the actual token history before it is believed.
//
// A verified repeat arms a candidate period; once the repeat has persisted for
// `promote_periods` full periods, the candidate is promoted: the identifier
// derives a stable TraceId from the repeating token window and asks the
// runtime to open a template capture window (dcr/template.hpp) — from there
// the existing capture -> validate -> replay machinery applies unchanged,
// including epoch invalidation and shadow validation.  Hysteresis: when the
// stream stops repeating, completed windows close cleanly, half-recorded
// windows abort, and `demote_strikes` consecutive broken periods demote the
// trace back to scanning — a phase change costs at most
// (demote_strikes + 1) * period calls before the dead trace is dropped.
//
// Determinism: the identifier is a pure function of the observed token stream
// (plus the deterministic suppress/interrupt events issued by the replicated
// control program), and the token stream is identical on every shard by
// control replication (§3).  Hence all shards promote the same TraceId at the
// same launch index, at any shard count, on both the sim and threads backends.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/crc32c.hpp"
#include "common/hash128.hpp"
#include "common/types.hpp"

namespace dcr::core {

struct TraceIdConfig {
  bool enabled = false;         // master switch (DcrConfig::auto_trace.enabled)
  std::uint64_t min_period = 3;    // shortest repeat worth a template, in calls
  std::uint64_t max_period = 512;  // longest repeat tracked, in calls
  std::uint64_t probe = 8;         // rolling-fingerprint window length, in calls
  std::uint64_t promote_periods = 2;  // stable periods required before capture
  std::uint64_t demote_strikes = 2;   // broken periods tolerated before demotion
  // Test hook: when nonzero, fingerprint-table keys are masked to the low
  // `fp_mask_bits` bits, forcing table collisions so the verification path is
  // exercised deterministically.  0 = full 32-bit keys.
  std::uint32_t fp_mask_bits = 0;
};

// Online repeated-trace identifier.  One instance per shard; see file comment.
class TraceIdentifier {
 public:
  // What the runtime should do with the template window for this call.  The
  // call that produced the action has NOT been fed to the template manager
  // yet: on Open (and the open half of CloseOpen) the runtime first begins the
  // window, then records this call as its first op.
  enum class Action : std::uint8_t {
    None,       // nothing to do
    Open,       // begin a capture/validate/replay window keyed by trace()
    Close,      // the previous window completed a full period: end it
    CloseOpen,  // close the completed window and immediately open the next
    AbortClose, // the open window broke mid-period: abort it (discard capture)
  };

  struct Result {
    Action action = Action::None;
    TraceId trace = TraceId::invalid();
  };

  struct Counters {
    std::uint64_t detections = 0;  // verified repeats found while scanning
    std::uint64_t promotions = 0;  // candidates promoted to live traces
    std::uint64_t demotions = 0;   // live traces dropped by hysteresis
    std::uint64_t windows = 0;     // auto windows opened
    std::uint64_t aborts = 0;      // auto windows aborted mid-period
    std::uint64_t collisions = 0;  // fingerprint hits rejected by verification
  };

  TraceIdentifier() { configure(TraceIdConfig{}); }
  explicit TraceIdentifier(const TraceIdConfig& cfg) { configure(cfg); }

  void configure(const TraceIdConfig& cfg);

  // Feed the next task-launch signature.  `suppress` defers any Open while an
  // explicit (app-keyed) trace window is active; candidate tracking still
  // advances so the auto trace resumes once the explicit window ends.
  Result observe(const Hash128& sig, bool suppress);

  // The runtime aborted our open window underneath us (explicit begin_trace,
  // end-of-program flush).  Keeps the candidate armed; no strike.
  void interrupt();

  // Recovery replay-from-start: forget everything (the replayed stream will
  // deterministically rebuild the same state).
  void reset();

  bool window_open() const { return in_window_; }
  std::uint64_t period() const { return period_; }
  TraceId trace() const { return trace_; }
  const Counters& counters() const { return counters_; }
  // Every promotion as (launch index, trace id) — the determinism tests
  // compare these logs verbatim across shards and shard counts.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& promotion_log() const {
    return promotion_log_;
  }

  // --- fingerprint primitives, exposed for the property tests -------------
  // Raw CRC32C (init 0, no final xor) over the 4-byte little-endian encodings
  // of `n` tokens: the from-scratch reference the rolling update must match.
  static std::uint32_t window_fingerprint(const std::uint32_t* tokens, std::size_t n);
  // 32-bit token for one call signature.
  static std::uint32_t signature_token(const Hash128& sig);
  std::uint32_t fingerprint() const { return fp_; }  // current rolling value

 private:
  enum class State : std::uint8_t { Scanning, Armed, Tracing };

  std::uint32_t ring_at(std::uint64_t p) const {
    return ring_[p % ring_.size()];
  }
  void advance(std::uint32_t tok);          // ring + rolling fp + table upkeep
  bool verify_repeat(std::uint64_t d) const;
  void arm(std::uint64_t d);
  Result promote();                          // Armed -> Tracing, returns Open
  void demote();
  std::uint32_t table_key() const;
  TraceId derive_trace_id() const;           // CRC32C over one period of tokens

  TraceIdConfig cfg_;
  State state_ = State::Scanning;
  std::uint64_t pos_ = 0;   // tokens observed so far (next token's index)
  std::vector<std::uint32_t> ring_;  // last (max_period + probe) tokens
  std::uint32_t fp_ = 0;    // raw CRC32C of the last min(pos, probe) tokens
  // Z^{4(probe-1)} as four 256-entry tables: shifts a 32-bit CRC state past
  // (probe-1) zero tokens in four lookups (GF(2) linearity of CRC).
  std::array<std::array<std::uint32_t, 256>, 4> shift_out_{};
  std::unordered_map<std::uint32_t, std::uint64_t> table_;  // fp key -> last end pos

  std::uint64_t period_ = 0;      // armed/promoted candidate period d
  std::uint64_t match_run_ = 0;   // consecutive tok[p] == tok[p-d]
  TraceId trace_ = TraceId::invalid();
  bool in_window_ = false;
  std::uint64_t calls_in_window_ = 0;
  std::uint64_t strikes_ = 0;       // broken periods since last clean close
  std::uint64_t resume_run_ = 0;    // paused: consecutive matches toward reopen
  std::uint64_t mismatch_run_ = 0;  // paused: consecutive mismatches toward strike
  Counters counters_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> promotion_log_;
};

}  // namespace dcr::core
