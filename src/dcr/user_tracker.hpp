// Point-level user tracking: the precise dependence bookkeeping of the fine
// analysis stage.
//
// For each (region tree, field) we keep the frontier of outstanding uses
// (rect, reader/writer, completion event).  Recording a new use returns the
// merged completion event of every conflicting prior use — the event
// precondition wired into the point task (paper Figure 9, fine stage lines
// 5-8).
//
// Frontier pruning keeps the list from growing across iterations:
//  * a conflicting writer that fully covers a prior use supersedes it (any
//    later conflict with the old use also conflicts with the writer and is
//    ordered transitively), and
//  * uses whose completion event has already triggered impose no further
//    waits and are dropped — unless `keep_completed` is set, which the
//    realized-task-graph recording mode uses so no edges are lost.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/interval_index.hpp"
#include "runtime/privilege.hpp"
#include "sim/event.hpp"

namespace dcr::core {

class UserTracker {
 public:
  explicit UserTracker(bool keep_completed = false) : keep_completed_(keep_completed) {}

  struct Conflicts {
    sim::Event precondition;     // merged completion of conflicting priors
    std::vector<TaskId> tasks;   // the conflicting tasks (for graph recording)
  };

  // Record that `task` uses `rect` of (tree, field) with `priv`, completing
  // at `done`.  Returns the conflicts with prior outstanding uses.
  Conflicts record_use(RegionTreeId tree, FieldId field, const rt::Rect& rect,
                       rt::Privilege priv, rt::ReductionOpId redop, TaskId task,
                       sim::Event done) {
    auto& uses = state_[{tree, field}];
    Conflicts out;
    std::vector<sim::Event> events;
    // Collect conflicts, and prune superseded / completed uses in one pass.
    const bool writer = rt::is_writer(priv);
    auto removed = uses.extract_overlapping_if(rect, [&](const auto& item) {
      const Use& u = item.value;
      // A task never conflicts with itself: multiple requirements of one
      // task (e.g. RW owned + RO ghost of the same field) share a completion.
      const bool conflict = u.task != task && rt::overlaps(item.rect, rect) &&
                            rt::privileges_conflict(u.priv, u.redop, priv, redop);
      if (conflict) {
        events.push_back(u.done);
        out.tasks.push_back(u.task);
      }
      // Supersede only behind exclusive writers: pruning is sound only when
      // every future use that would conflict with the pruned entry also
      // conflicts with the pruner.  A Reduce does not conflict with later
      // same-operator reductions, so reductions never close an epoch —
      // pruning behind one would lose write->reducer orderings (found by the
      // DcrFuzz property tests).
      const bool superseded = conflict && writer && priv != rt::Privilege::Reduce &&
                              rect.contains(item.rect);
      const bool completed = !keep_completed_ && u.done.has_triggered();
      return superseded || completed;
    });
    (void)removed;
    uses.insert(rect, Use{priv, redop, task, std::move(done)});
    out.precondition = events.empty()
                           ? sim::Event::no_event()
                           : sim::merge_events(std::span<const sim::Event>(events));
    return out;
  }

  // Merged completion event of every outstanding use anywhere (for execution
  // fences).
  sim::Event all_outstanding() const {
    std::vector<sim::Event> events;
    for (const auto& [key, uses] : state_) {
      uses.for_each([&](const auto& item) {
        if (!item.value.done.has_triggered()) events.push_back(item.value.done);
      });
    }
    if (events.empty()) return sim::Event::no_event();
    return sim::merge_events(std::span<const sim::Event>(events));
  }

  std::size_t frontier_size(RegionTreeId tree, FieldId field) const {
    auto it = state_.find({tree, field});
    return it == state_.end() ? 0 : it->second.size();
  }

 private:
  struct Use {
    rt::Privilege priv;
    rt::ReductionOpId redop;
    TaskId task;
    sim::Event done;
  };

  bool keep_completed_;
  std::map<std::pair<RegionTreeId, FieldId>, rt::IntervalIndex<Use>> state_;
};

}  // namespace dcr::core
