// §3 call-identity hashing, shared by every execution backend.
//
// SigBuilder builds the control-determinism hash (and, when spy trace
// recording is on, the named-argument capture) for one API call.  The
// per-API sig_* helpers below encode the exact argument sequence of each
// call once, so the simulator backend (dcr/runtime.cpp) and the real-threads
// backend (exec/thread_runtime.cpp) produce identical §3 hashes and identical
// template-identity hashes *by construction* — the differential-determinism
// contract in tests/test_exec.cpp leans on this.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "dcr/api.hpp"
#include "runtime/geometry.hpp"
#include "spy/trace.hpp"

namespace dcr::core {

// Builds the §3 call-identity hash and, when spy trace recording is on, a
// parallel list of the same arguments as named text — the raw material for
// the control-determinism linter's argument-level diff (spy/verify.hpp).
// With capture off, this is the plain Hasher128 path plus one branch per arg.
//
// A second lane accumulates the *template-identity* hash (dcr/template.hpp):
// the same construction minus the arguments declared volatile via varg() —
// scalar task arguments and future / future-map ids, which legitimately
// differ across loop iterations without changing any analysis decision.  The
// full §3 hash still covers them, so the determinism checker is unaffected.
class SigBuilder {
 public:
  SigBuilder(const char* name, bool capture) : capture_(capture) {
    h_.string(name);
    t_.string(name);
  }

  template <typename T>
    requires std::is_integral_v<T>
  SigBuilder& arg(const char* key, T v) {
    h_.value(v);
    t_.value(v);
    if (capture_) args_.push_back({key, std::to_string(v)});
    return *this;
  }

  // Volatile argument: hashed for control determinism, excluded from the
  // template identity.
  template <typename T>
    requires std::is_integral_v<T>
  SigBuilder& varg(const char* key, T v) {
    h_.value(v);
    if (capture_) args_.push_back({key, std::to_string(v)});
    return *this;
  }

  template <typename T>
    requires std::is_enum_v<T>
  SigBuilder& arg(const char* key, T v) {
    return arg(key, static_cast<std::underlying_type_t<T>>(v));
  }

  SigBuilder& arg(const char* key, const std::string& s) {
    h_.string(s);
    t_.string(s);
    if (capture_) args_.push_back({key, s});
    return *this;
  }

  SigBuilder& arg(const char* key, const rt::Rect& r) {
    h_.value(r.dim).value(r.lo).value(r.hi);
    t_.value(r.dim).value(r.lo).value(r.hi);
    if (capture_) {
      std::string v = "[";
      for (int d = 0; d < r.dim; ++d) {
        if (d) v += ',';
        v += std::to_string(r.lo[static_cast<std::size_t>(d)]) + ".." +
             std::to_string(r.hi[static_cast<std::size_t>(d)]);
      }
      args_.push_back({key, v + "]"});
    }
    return *this;
  }

  SigBuilder& arg(const char* key, const std::vector<FieldId>& fields) {
    h_.value(fields.size());
    t_.value(fields.size());
    std::string v = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      h_.value(fields[i].value);
      t_.value(fields[i].value);
      if (capture_) {
        if (i) v += ',';
        v += std::to_string(fields[i].value);
      }
    }
    if (capture_) args_.push_back({key, v + "}"});
    return *this;
  }

  Hash128 finish() const { return h_.finish(); }
  Hash128 tfinish() const { return t_.finish(); }
  std::vector<spy::CallArg> take_args() { return std::move(args_); }

 private:
  Hasher128 h_;
  Hasher128 t_;
  bool capture_;
  std::vector<spy::CallArg> args_;
};

// ---- per-API signature encoders (one definition of each call's identity) ----

inline SigBuilder sig_create_field_space(bool capture) {
  return SigBuilder("create_field_space", capture);
}

inline SigBuilder sig_allocate_field(bool capture, FieldSpaceId fs, std::size_t bytes,
                                     const std::string& name) {
  SigBuilder sb("allocate_field", capture);
  sb.arg("field_space", fs.value).arg("bytes", bytes).arg("name", name);
  return sb;
}

inline SigBuilder sig_create_region(bool capture, const rt::Rect& bounds, FieldSpaceId fs) {
  SigBuilder sb("create_region", capture);
  sb.arg("bounds", bounds).arg("field_space", fs.value);
  return sb;
}

inline SigBuilder sig_partition_equal(bool capture, IndexSpaceId parent, std::size_t pieces,
                                      int axis) {
  SigBuilder sb("partition_equal", capture);
  sb.arg("parent", parent.value).arg("pieces", pieces).arg("axis", axis);
  return sb;
}

inline SigBuilder sig_partition_with_halo(bool capture, IndexSpaceId parent,
                                          std::size_t pieces, std::int64_t halo, int axis) {
  SigBuilder sb("partition_with_halo", capture);
  sb.arg("parent", parent.value).arg("pieces", pieces).arg("halo", halo).arg("axis", axis);
  return sb;
}

inline SigBuilder sig_create_partition(bool capture, IndexSpaceId parent,
                                       const std::vector<rt::Rect>& pieces, bool disjoint) {
  SigBuilder sb("create_partition", capture);
  sb.arg("parent", parent.value).arg("pieces", pieces.size()).arg("disjoint", disjoint);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    sb.arg(("piece" + std::to_string(i)).c_str(), pieces[i]);
  }
  return sb;
}

inline SigBuilder sig_partition_grid(bool capture, IndexSpaceId parent, std::size_t tiles_x,
                                     std::size_t tiles_y, std::int64_t halo) {
  SigBuilder sb("partition_grid", capture);
  sb.arg("parent", parent.value).arg("tiles_x", tiles_x).arg("tiles_y", tiles_y);
  sb.arg("halo", halo);
  return sb;
}

inline SigBuilder sig_destroy_region(bool capture, RegionTreeId tree) {
  SigBuilder sb("destroy_region", capture);
  sb.arg("tree", tree.value);
  return sb;
}

inline SigBuilder sig_fill(bool capture, IndexSpaceId region,
                           const std::vector<FieldId>& fields) {
  SigBuilder sb("fill", capture);
  sb.arg("region", region.value).arg("fields", fields);
  return sb;
}

inline SigBuilder sig_launch(bool capture, const TaskLaunch& launch) {
  SigBuilder sb("launch", capture);
  sb.arg("fn", launch.fn.value).arg("num_reqs", launch.requirements.size());
  for (std::size_t i = 0; i < launch.requirements.size(); ++i) {
    const auto& r = launch.requirements[i];
    const std::string k = "req" + std::to_string(i);
    sb.arg((k + ".region").c_str(), r.region.value);
    sb.arg((k + ".privilege").c_str(), r.privilege);
    sb.arg((k + ".redop").c_str(), r.redop);
    sb.arg((k + ".fields").c_str(), r.fields);
  }
  for (std::size_t i = 0; i < launch.args.size(); ++i) {
    // Scalar task arguments (e.g. the loop index) are volatile: they do not
    // affect any dependence-analysis decision.
    sb.varg(("arg" + std::to_string(i)).c_str(), launch.args[i]);
  }
  return sb;
}

inline SigBuilder sig_index_launch(bool capture, const IndexLaunch& launch) {
  SigBuilder sb("index_launch", capture);
  sb.arg("fn", launch.fn.value).arg("domain", launch.domain);
  sb.arg("sharding", launch.sharding.value);
  for (std::size_t i = 0; i < launch.requirements.size(); ++i) {
    const auto& r = launch.requirements[i];
    const std::string k = "req" + std::to_string(i);
    sb.arg((k + ".partition").c_str(), r.partition.value);
    sb.arg((k + ".region").c_str(), r.region.value);
    sb.arg((k + ".projection").c_str(), r.projection.value);
    sb.arg((k + ".privilege").c_str(), r.privilege);
    sb.arg((k + ".redop").c_str(), r.redop);
    sb.arg((k + ".fields").c_str(), r.fields);
  }
  for (std::size_t i = 0; i < launch.args.size(); ++i) {
    sb.varg(("arg" + std::to_string(i)).c_str(), launch.args[i]);
  }
  return sb;
}

inline SigBuilder sig_reduce_future_map(bool capture, const FutureMap& fm, ReduceOp op) {
  SigBuilder sb("reduce_future_map", capture);
  // Future-map ids increment monotonically across iterations: volatile.
  sb.varg("future_map", fm.id).arg("op", op);
  return sb;
}

inline SigBuilder sig_get_future(bool capture, const Future& f) {
  SigBuilder sb("get_future", capture);
  sb.varg("future", f.id);
  return sb;
}

inline SigBuilder sig_future_is_ready(bool capture, const Future& f) {
  SigBuilder sb("future_is_ready", capture);
  sb.varg("future", f.id);
  return sb;
}

inline SigBuilder sig_execution_fence(bool capture) {
  return SigBuilder("execution_fence", capture);
}

inline SigBuilder sig_attach_file(bool capture, IndexSpaceId region,
                                  const std::vector<FieldId>& fields,
                                  const std::string& file) {
  SigBuilder sb("attach_file", capture);
  sb.arg("region", region.value).arg("file", file).arg("fields", fields);
  return sb;
}

inline SigBuilder sig_detach_file(bool capture, IndexSpaceId region,
                                  const std::vector<FieldId>& fields) {
  SigBuilder sb("detach_file", capture);
  sb.arg("region", region.value).arg("fields", fields);
  return sb;
}

inline SigBuilder sig_attach_file_group(bool capture, PartitionId partition,
                                        const std::vector<FieldId>& fields,
                                        const std::string& file_basename) {
  SigBuilder sb("attach_file_group", capture);
  sb.arg("partition", partition.value).arg("file", file_basename).arg("fields", fields);
  return sb;
}

inline SigBuilder sig_detach_file_group(bool capture, PartitionId partition,
                                        const std::vector<FieldId>& fields) {
  SigBuilder sb("detach_file_group", capture);
  sb.arg("partition", partition.value).arg("fields", fields);
  return sb;
}

inline SigBuilder sig_begin_trace(bool capture, TraceId id) {
  SigBuilder sb("begin_trace", capture);
  sb.arg("trace", id.value);
  return sb;
}

inline SigBuilder sig_end_trace(bool capture, TraceId id) {
  SigBuilder sb("end_trace", capture);
  sb.arg("trace", id.value);
  return sb;
}

}  // namespace dcr::core
