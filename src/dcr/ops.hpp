// The backend-neutral op model of the replicated control program.
//
// One OpRecord per operation the control program issues, in program order
// (identical on every shard by control determinism).  CoarseDecision is the
// output of the coarse dependence stage for one op: its fence sources, its
// coarse dependences with their elision verdicts, and the requirement
// summaries that were folded into the shared epoch state.  Both execution
// backends — the discrete-event simulator (dcr/runtime.cpp) and the
// real-threads backend (exec/thread_runtime.cpp) — share these types and the
// CoarseAnalyzer (dcr/coarse.hpp) that produces the decisions, which is what
// makes their analysis streams comparable record-for-record.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "dcr/api.hpp"
#include "dcr/template.hpp"
#include "spy/trace.hpp"

namespace dcr::core {

// Canonical TaskId packing: task = op.id * kPointsPerOp + point_index.
inline constexpr std::uint64_t kPointsPerOp = 1ull << 20;

struct FillPayload {
  IndexSpaceId region;
  std::vector<FieldId> fields;
};
struct TaskPayload {
  TaskLaunch launch;
  std::uint64_t future_id = ~0ull;
};
struct IndexPayload {
  IndexLaunch launch;
  std::uint64_t future_map_id = ~0ull;
};
struct ReducePayload {  // reduce_future_map
  std::uint64_t fm_id;
  ReduceOp op;
  std::uint64_t future_id;
};
struct AttachPayload {
  IndexSpaceId region;                             // single variant
  PartitionId partition = PartitionId::invalid();  // group variant
  std::vector<FieldId> fields;
  std::string file;
  bool detach = false;
};
struct DeletePayload {
  RegionTreeId tree;
};
struct FencePayload {};  // execution fence: full pipeline barrier
using OpPayload =
    std::variant<FillPayload, TaskPayload, IndexPayload, ReducePayload, AttachPayload,
                 DeletePayload, FencePayload>;

struct OpRecord {
  OpId id;
  OpPayload payload;
  bool traced = false;  // replayed from a template: charge reduced costs
  std::uint64_t call_index = ~0ull;  // issuing API call (spy trace identity)
  // Dependence-template plumbing, set by issue() for ops inside a trace
  // window (transient: trec is only valid until the issuing call returns).
  TemplateManager::Mode tmode = TemplateManager::Mode::Inactive;
  TemplateOp* trec = nullptr;
  Hash128 call_hash{};  // template-identity hash of the issuing API call
  std::shared_ptr<const PointPlanList> plan{};  // fine-stage point mapping
};

// ReqSummary / PointPlan live in dcr/template.hpp (same namespace): the
// template layer records them verbatim.

struct CoarseDecision {
  std::vector<OpId> fence_sources;  // cross-shard fences to wait for
  std::uint64_t deps = 0;           // coarse dependences found (stats)
  std::uint64_t elided = 0;         // deps proven shard-local (stats)
  std::size_t num_reqs = 0;         // for cost accounting
  // Raw material for template capture and spy trace emission: every coarse
  // dependence with its elision verdict, this op's requirement summaries
  // (the epoch updates it folded into the shared state), and the spy
  // op-kind string.
  std::vector<spy::CoarseDepRecord> dep_records;
  std::vector<ReqSummary> summaries;
  std::string kind = "?";
  // Every requirement resolved and every coarse dependence classified by
  // the static prover: the fine stage charges O(1) instead of O(points).
  // Never set on replayed ops (those already charge traced costs).
  bool static_skip = false;
};

// Per-(tree,field) coarse users, shared by all shards (identical streams).
struct GroupUse {
  OpId op;
  ReqSummary req;
};
struct CoarseFieldState {
  std::optional<GroupUse> last_writer;
  std::vector<GroupUse> readers_since;
  std::vector<GroupUse> reducers_since;
};

}  // namespace dcr::core
