// Dependence templates: trace-and-replay of the control plane's analysis
// decisions for iterative programs.
//
// The paper's shards redo the full coarse + fine dependence analysis every
// loop iteration even when the program issues an identical API-call stream
// each time (stencil, circuit, pennant all do).  Following Execution
// Templates (Mashayekhi et al.) and automatic tracing in task-based runtimes
// (Yadav et al.), each shard captures, per trace window, the *outcome* of its
// analysis — coarse dependence edges with their fence/elide verdicts and the
// fine-stage per-owned-point mappings — keyed by the hashed window of API
// calls, and replays those decisions directly on a hash-identical recurrence,
// skipping region-tree traversal and re-analysis entirely.
//
// Lifecycle of a template (per shard, keyed by TraceId):
//
//   Capture   first occurrence of the window: run fresh analysis, record the
//             per-call template-identity hashes and per-op decisions.
//   Validate  second occurrence: fresh analysis still drives execution, but
//             every decision is shadow-compared against the recording, and at
//             window end the recording is audited against the executable
//             sequential semantics (analysis/semantics.hpp DEPseq) — the
//             spy-style idempotent-replay check.  A clean pass promotes the
//             template to Validated; a shadow-compare mismatch re-records the
//             window from the fresh decisions (the first occurrence was not
//             yet in steady state) and validation restarts next time; an
//             audit failure marks it Rejected (sticky: the recording matched
//             a fresh analysis yet contradicts the sequential semantics).
//   Replay    subsequent occurrences: per-call hashes are checked as the
//             window streams by; recorded decisions are installed and the
//             re-analysis is skipped.
//   Invalid   any region-forest mutation epoch change, recovery epoch bump,
//             deferred-deletion epoch change, or mid-window divergence drops
//             the template; the next occurrence re-captures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"

namespace dcr::core {

// Coarse-stage requirement summary: the upper-bound view plus the launch
// identity needed for the fence-elision proof.  Recorded verbatim in
// templates so a replay can fold the same epoch updates into the shared
// coarse state that a fresh analysis would have.
struct ReqSummary {
  RegionTreeId tree;
  IndexSpaceId upper_bound;
  std::vector<FieldId> fields;
  rt::Privilege privilege = rt::Privilege::ReadOnly;
  rt::ReductionOpId redop = rt::kNoRedop;
  // Launch identity (index launches only; single ops leave these invalid).
  bool is_index = false;
  ShardingId sharding;
  rt::Rect domain;
  PartitionId partition;       // invalid when the requirement names a region
  ProjectionId projection;
  ShardId single_owner;        // owner shard for single (non-index) ops

  friend bool operator==(const ReqSummary&, const ReqSummary&) = default;
};

// Paper §4.1, observation 2 (Figures 10/11): a coarse dependence between
// these two summaries stays on one shard iff they share sharding function,
// launch domain, *disjoint* partition, and projection (index<->index), or the
// same owner shard (single<->single).  Shared by the live analysis and the
// template validation audit.
bool summaries_shard_local(const rt::RegionForest& forest, const ReqSummary& prev,
                           const ReqSummary& next);

// Fine-stage mapping of one owned point of an index launch: everything
// execute_points derives from the region forest + projection functions, so a
// replay can launch the point without touching either.
struct PointPlan {
  rt::Point point;
  std::uint64_t point_index = 0;       // linearized within the launch domain
  std::vector<rt::Requirement> reqs;   // concretized per-point requirements

  friend bool operator==(const PointPlan&, const PointPlan&) = default;
};
using PointPlanList = std::vector<PointPlan>;

// One recorded coarse dependence, with its source in two encodings: relative
// to the dependent op (dependent - source) and as the absolute op id at
// capture.  Sources inside the window or in the previous iteration shift with
// the window, so their relative offset is stable; sources that are fixed ops
// (an init fill issued before the loop) keep a stable absolute id while the
// offset drifts by one period per iteration.  The validation pass resolves
// which encoding is stable for each dependence; replay reconstructs the
// source from the resolved one.
struct TemplateDep {
  std::uint64_t prev_offset = 0;  // dependent.id - source.id at capture
  std::uint64_t abs_source = 0;   // source.id at capture
  bool absolute = false;          // resolved by validation
  RegionTreeId tree;
  FieldId field;
  bool elided = false;
};

// A non-elided fence source, dual-encoded like TemplateDep.
struct TemplateFence {
  std::uint64_t prev_offset = 0;
  std::uint64_t abs_source = 0;
  bool absolute = false;
};

// The recorded outcome of analyzing one op of the window.
struct TemplateOp {
  std::size_t payload_kind = 0;  // OpPayload variant index (shape check)
  Hash128 call_hash;             // template-identity hash of the issuing call
  std::string kind;              // spy op-kind string, re-emitted on replay
  std::size_t num_reqs = 0;      // coarse cost accounting
  std::vector<ReqSummary> summaries;
  std::vector<TemplateDep> deps;
  std::vector<TemplateFence> fences;          // non-elided fence sources
  std::shared_ptr<const PointPlanList> plan;  // index launches only
};

struct DependenceTemplate {
  enum class State {
    Recorded,   // captured, awaiting its validation pass
    Validated,  // shadow-compare + DEPseq audit passed: eligible for replay
    Rejected,   // DEPseq audit failed: never replay, never re-capture
  };
  State state = State::Recorded;
  // Validity keys checked at window begin; any mismatch drops the template.
  std::uint64_t region_epoch = 0;     // rt::RegionForest::mutation_epoch()
  std::uint64_t recovery_epoch = 0;   // bumped per shard failover
  std::uint64_t deletion_epoch = 0;   // consensus deletions shift op ids
  std::vector<Hash128> call_hashes;   // every API call in the window, in order
  std::vector<TemplateOp> ops;
  std::uint64_t replays = 0;
};

// Per-shard template store + the state machine for the window in flight.
class TemplateManager {
 public:
  enum class Mode { Inactive, Capture, Validate, Replay };

  struct Counters {
    std::uint64_t captured = 0;
    std::uint64_t validated = 0;
    std::uint64_t window_replays = 0;        // whole windows replayed
    std::uint64_t invalidated = 0;           // epoch/shape invalidations
    std::uint64_t validation_failures = 0;   // shadow-compare/audit rejects
  };

  // Opens a trace window.  Epoch mismatches invalidate any stored template
  // first; the resulting mode decides how the runtime treats the window.
  Mode begin(TraceId id, std::uint64_t region_epoch, std::uint64_t recovery_epoch,
             std::uint64_t deletion_epoch, bool validation_enabled);

  // Feeds the template-identity hash of one API call inside the window.
  // Capture appends; Validate/Replay compare against the recording and abort
  // the window (returning false) on divergence.
  bool on_call(const Hash128& h);

  // Validate/Replay: the recorded op at the cursor, or nullptr after an
  // abort or when the window issues more ops than were recorded (abort).
  // Mutable: the validation pass writes the resolved source encodings back
  // into the recording (TemplateDep::absolute).
  TemplateOp* next_op();

  // Capture: append one analyzed op's decisions.  During Validate the op is
  // appended to the shadow re-recording instead (adopted on mismatch).
  void record_op(TemplateOp op);

  // Shape divergence (call stream, payload kind, op count, mid-window
  // insertion): drop the template; the rest of the window runs fresh and the
  // next occurrence re-captures.
  void abort_window(std::string reason);

  // Validation shadow-compare mismatch: the recording disagrees with a fresh
  // analysis of an identical call stream.  The common cause is a first
  // occurrence that was not yet in steady state (iteration 0 depends on the
  // setup fills at different offsets than iteration k depends on iteration
  // k-1), so the window is re-recorded from the fresh decisions being built
  // alongside the compare, and validation restarts at the next occurrence.
  // An analysis that is genuinely not a pure function of the call stream
  // (e.g. single-op ownership rotating with op ids) re-records forever and
  // simply never replays — sound, just unaccelerated.
  void validation_failed(std::string reason);

  // Closes the window: finalizes a capture, runs the validation audit
  // against `forest`, or retires a completed replay.
  void end(const rt::RegionForest& forest);

  Mode mode() const { return mode_; }
  std::optional<TraceId> active() const { return active_; }
  const Counters& counters() const { return counters_; }
  std::size_t size() const { return templates_.size(); }
  const std::string& last_event() const { return last_event_; }

  // Recovery: a replacement shard starts with no templates and re-captures
  // during its fast-forward replay.
  void reset();

  // Test hook: direct access to a stored template so negative tests can seed
  // a stale mutation and prove the validation pass catches it.
  DependenceTemplate* find(TraceId id) {
    auto it = templates_.find(id);
    return it == templates_.end() ? nullptr : &it->second;
  }

 private:
  DependenceTemplate& current() { return templates_.at(*active_); }

  std::map<TraceId, DependenceTemplate> templates_;
  Mode mode_ = Mode::Inactive;
  std::optional<TraceId> active_;
  std::size_t pos_ = 0;    // op cursor within the recording
  std::size_t calls_ = 0;  // call cursor within the recording
  // Validation builds a fresh recording alongside the compare; it replaces
  // the stored one when the shadow compare mismatches.
  DependenceTemplate fresh_;
  bool mismatch_ = false;
  Counters counters_;
  std::string last_event_;
};

// The spy-style idempotent-replay audit run at the end of a template's
// validation window, before first reuse:
//   1. every recorded cross-shard dependence still has its fence, and every
//      recorded *elided* dependence with an in-window source is re-proven
//      shard-local from the recorded summaries against the current forest;
//   2. the DEPseq executable sequential semantics (analysis/semantics.hpp),
//      run over the recorded fine-stage point plans with the concrete
//      requirements_conflict oracle, finds no point-level dependence that is
//      not covered by a (transitive) recorded coarse dependence.
// Returns false and fills `why` if the recording is unsound.
bool audit_template(const DependenceTemplate& t, const rt::RegionForest& forest,
                    std::string* why = nullptr);

}  // namespace dcr::core
