// The mapping interface (paper §4).
//
// "In our Legion implementation we do not attempt to decide automatically
// when to use DCR; instead we expose this decision in the Legion mapping
// interface, an API for application- and machine-specific policies that
// affect performance. ... Our mapping interface extensions enable mappers to
// specify which task(s) to dynamically control replicate, the number of
// shards, and on which processors shards should execute.  ...  When a DCR
// task executes, Legion queries mappers to select a sharding function for
// each subtask launch."
//
// A Mapper customizes per-launch policy without touching application code:
// the sharding function used for a group launch, and the compute-processor
// slot each point task runs on within its owner shard's node.  Mapper
// methods MUST be deterministic pure functions of their arguments — they are
// invoked identically on every shard and feed the replicated analysis, so a
// non-deterministic mapper is a control-determinism bug like any other.
#pragma once

#include <cstdint>

#include "dcr/api.hpp"

namespace dcr::core {

class Mapper {
 public:
  virtual ~Mapper() = default;

  // Sharding function for a group launch (default: whatever the launch
  // asked for).  Queried once per launch on each shard.
  virtual ShardingId select_sharding(const IndexLaunch& launch,
                                     std::size_t /*num_shards*/) {
    return launch.sharding;
  }

  // Compute-processor slot (0..slots-1) for a point task on its shard's
  // node.  Default: round-robin by point index.
  virtual std::size_t select_processor(FunctionId /*fn*/, std::uint64_t point_index,
                                       std::size_t slots) {
    return point_index % slots;
  }
};

// The default policies, usable as a base for partial overrides.
class DefaultMapper : public Mapper {};

}  // namespace dcr::core
