// Automatic control-replication decision — the future-work knob the paper
// leaves open (§4): "there is nothing that prevents the use of DCR from
// being automated by heuristics in the runtime system to decide when to use
// it; we have simply chosen to expose it through an API."
//
// The heuristic compares, per iteration of the (profiled or estimated)
// steady-state loop:
//
//   centralized analysis time  ~ ops * (c_op + c_task * points_per_op)
//   per-node compute time      ~ task_time_per_node
//   DCR analysis time per node ~ ops * (c_coarse + c_fine * points/node)
//                                 + fences * 2 log2(N) * alpha
//
// and recommends replication when the centralized controller would stop
// hiding behind compute — with hysteresis so marginal cases do not flap.
// The inputs can come from a measured profile (OpStreamProfile::from_stats)
// or be estimated up front from the application structure.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "dcr/runtime.hpp"

namespace dcr::core {

struct OpStreamProfile {
  double ops_per_iteration = 0;        // group launches + other ops
  double points_per_op = 0;            // average launch width
  SimTime compute_per_node_per_iter = 0;
  double fences_per_iteration = 0;     // cross-shard fences (DCR only)

  // Derive a profile from a completed (small-scale) run.
  static OpStreamProfile from_stats(const DcrStats& stats, std::size_t nodes,
                                    std::size_t iterations) {
    OpStreamProfile p;
    const double iters = std::max<double>(1, static_cast<double>(iterations));
    p.ops_per_iteration = static_cast<double>(stats.ops_issued) / iters;
    p.points_per_op =
        stats.ops_issued
            ? static_cast<double>(stats.point_tasks_launched) /
                  static_cast<double>(stats.ops_issued)
            : 0;
    p.compute_per_node_per_iter = static_cast<SimTime>(
        static_cast<double>(stats.compute_busy) / (iters * static_cast<double>(nodes)));
    p.fences_per_iteration = static_cast<double>(stats.fences_inserted) / iters;
    return p;
  }
};

struct AutoReplicateCosts {
  SimTime central_cost_per_op = ns(500);
  SimTime central_cost_per_task = us(20);
  SimTime dcr_coarse_cost_per_op = us(1);
  SimTime dcr_fine_cost_per_point = us(1);
  SimTime fence_alpha = us(1);
  // Replicate only when the controller would exceed this fraction of the
  // compute time (hysteresis against flapping near the break-even point).
  double utilization_threshold = 0.5;
};

struct AutoReplicateDecision {
  bool replicate = false;
  SimTime central_analysis_per_iter = 0;
  SimTime dcr_analysis_per_node_per_iter = 0;
  SimTime compute_per_node_per_iter = 0;
  // Smallest node count at which the heuristic starts recommending DCR.
  std::size_t crossover_nodes = 0;
};

inline SimTime central_analysis_estimate(const OpStreamProfile& p, std::size_t nodes,
                                         const AutoReplicateCosts& c) {
  // Points scale with the machine in the weak-scaling regime the paper
  // targets: launch width ~ nodes * (width at 1 node).
  const double points = p.points_per_op * static_cast<double>(nodes);
  return static_cast<SimTime>(
      p.ops_per_iteration *
      (static_cast<double>(c.central_cost_per_op) +
       static_cast<double>(c.central_cost_per_task) * points));
}

inline SimTime dcr_analysis_estimate(const OpStreamProfile& p, std::size_t nodes,
                                     const AutoReplicateCosts& c) {
  const double log2n =
      nodes > 1 ? std::log2(static_cast<double>(nodes)) : 0.0;
  return static_cast<SimTime>(
      p.ops_per_iteration * (static_cast<double>(c.dcr_coarse_cost_per_op) +
                             static_cast<double>(c.dcr_fine_cost_per_point) *
                                 p.points_per_op) +
      p.fences_per_iteration * 2.0 * log2n * static_cast<double>(c.fence_alpha));
}

// Decide whether to control-replicate a program with profile `p` on `nodes`
// nodes.  `p.points_per_op` and `p.compute_per_node_per_iter` are the
// 1-node-equivalent values (weak scaling multiplies points by `nodes`).
inline AutoReplicateDecision decide_replication(const OpStreamProfile& p,
                                                std::size_t nodes,
                                                const AutoReplicateCosts& costs = {}) {
  AutoReplicateDecision d;
  d.compute_per_node_per_iter = p.compute_per_node_per_iter;
  d.central_analysis_per_iter = central_analysis_estimate(p, nodes, costs);
  d.dcr_analysis_per_node_per_iter = dcr_analysis_estimate(p, nodes, costs);
  const auto budget = static_cast<SimTime>(costs.utilization_threshold *
                                           static_cast<double>(p.compute_per_node_per_iter));
  d.replicate = d.central_analysis_per_iter > budget;
  // Find the crossover by scanning doublings (bounded; used for reporting).
  for (std::size_t n = 1; n <= (1u << 20); n *= 2) {
    if (central_analysis_estimate(p, n, costs) > budget) {
      d.crossover_nodes = n;
      break;
    }
  }
  return d;
}

}  // namespace dcr::core
