#include "dcr/replicate.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/crc32c.hpp"

namespace dcr::core {

// ------------------------------------------------------------ TaintTracker

void TaintTracker::note_future(std::uint64_t future_id, std::uint64_t producer_op) {
  future_src_.try_emplace(future_id, FutureSource{producer_op, ~0ull});
}

void TaintTracker::note_future_map(std::uint64_t fm_id, std::uint64_t producer_op) {
  fm_src_.try_emplace(fm_id, producer_op);
}

void TaintTracker::note_reduce(std::uint64_t future_id, std::uint64_t reduce_op,
                               std::uint64_t fm_id) {
  future_src_.try_emplace(future_id, FutureSource{reduce_op, fm_id});
}

std::vector<std::uint64_t> TaintTracker::taint_future(std::uint64_t future_id) {
  std::vector<std::uint64_t> newly;
  if (!tainted_futures_.insert(future_id).second) return newly;  // re-observation
  const auto it = future_src_.find(future_id);
  if (it == future_src_.end()) return newly;  // unknown future: nothing to mark
  if (tainted_ops_.insert(it->second.producer_op).second) {
    newly.push_back(it->second.producer_op);
  }
  // Transitive step: a reduce future's value is folded from the point values
  // of the index launch behind its future map — those tasks are the ones a
  // corruption actually strikes, so they carry the taint too.
  if (it->second.fm_id != ~0ull) {
    const auto fmit = fm_src_.find(it->second.fm_id);
    if (fmit != fm_src_.end() && tainted_ops_.insert(fmit->second).second) {
      newly.push_back(fmit->second);
    }
  }
  return newly;
}

// ----------------------------------------------------- ReplicationExecutor

ReplicationExecutor::ReplicationExecutor(sim::Machine& machine, prof::Profiler& profiler,
                                         ReplicationConfig config,
                                         std::uint32_t num_shards, Hooks hooks)
    : machine_(machine),
      profiler_(profiler),
      config_(config),
      num_shards_(num_shards),
      hooks_(std::move(hooks)) {
  DCR_CHECK(config_.replicas >= 2) << "replication needs >= 2 executions per task";
  DCR_CHECK(config_.quorum >= 2) << "a 1-vote quorum cannot out-vote anything";
  DCR_CHECK(config_.quorum <= config_.replicas + config_.retry_budget)
      << "quorum unreachable within the retry budget";
  stats_.blamed_by_shard.assign(num_shards, 0);
}

std::uint64_t ReplicationExecutor::open(std::uint64_t op, std::uint32_t primary_shard,
                                        std::uint64_t point_index, SimTime duration,
                                        sim::Event pre,
                                        std::function<double(std::uint32_t)> value_of,
                                        std::function<void(const QuorumOutcome&)> on_resolved,
                                        std::string label) {
  const std::uint64_t id = next_ticket_++;
  Ticket& t = tickets_[id];
  t.id = id;
  t.op = op;
  t.primary = primary_shard;
  t.point_index = point_index;
  t.duration = duration;
  t.pre = pre;
  t.opened = machine_.sim().now();
  t.value_of = std::move(value_of);
  t.on_resolved = std::move(on_resolved);
  t.label = std::move(label);
  t.launched = 1;  // the primary, already enqueued by the runtime
  ++stats_.tickets;
  for (std::uint32_t r = 1; r < config_.replicas; ++r) launch_replica(t);
  return id;
}

// Rotation placement: execution k prefers shard (primary + k) mod N, then
// linearly probes past unusable (dead/crashed/dark) shards.  Deterministic —
// placement depends only on the ticket's launch count and current liveness —
// and re-execution rounds keep rotating, so repeated rounds against a
// corrupting shard land on fresh voters.
std::uint32_t ReplicationExecutor::pick_shard(const Ticket& t) const {
  const std::uint32_t start = t.launched % num_shards_;
  for (std::uint32_t probe = 0; probe < num_shards_; ++probe) {
    const std::uint32_t s = (t.primary + start + probe) % num_shards_;
    if (s == t.primary) continue;
    if (hooks_.shard_usable && !hooks_.shard_usable(s)) continue;
    return s;
  }
  // Every peer is unreachable right now; fall back to the rotation slot and
  // let the digest transport surface the loss (which re-executes later).
  return (t.primary + std::max<std::uint32_t>(start, 1)) % num_shards_;
}

void ReplicationExecutor::launch_replica(Ticket& t) {
  const std::uint32_t shard = pick_shard(t);
  const std::uint32_t exec = t.launched++;
  ++stats_.replicas_issued;
  profiler_.global().add(prof::GlobalCounter::ReplicasIssued);
  profiler_.shard(shard).add(prof::Counter::ReplicaTasks);

  // The duplicate charges the same duration on the replica shard's processor,
  // gated on the primary's merged precondition (inputs are modeled as
  // resident once the producing tasks complete).  The body is a shadow: it
  // computes the value and ships a digest — no tracker, physical, spy, or
  // collective side effects, so replicated and unreplicated runs realize
  // identical task graphs.
  sim::Processor& proc = hooks_.proc_for(shard, t.point_index);
  proc.enqueue(
      t.duration, t.pre,
      [this, id = t.id, exec, shard] {
        Ticket& t = tickets_.at(id);
        const double value = t.value_of(exec);
        const NodeId src = hooks_.node_of(shard);
        const NodeId dst = hooks_.node_of(t.primary);
        if (src == dst) {  // co-located shards: no transport hop to lose
          cast(id, exec, shard, value);
          return;
        }
        if (sim::ReliableDelivery* rel = machine_.reliable()) {
          // First signal wins: `delivered` fires at the receiver, `failed` at
          // the sender on give-up — and a transfer whose payload landed but
          // whose acks all dropped fires *both*, so guard against the second.
          auto settled = std::make_shared<bool>(false);
          sim::ReliableDelivery::Transfer tr =
              rel->transfer(src, dst, config_.digest_bytes);
          tr.delivered.on_trigger([this, id, exec, shard, value, settled] {
            if (*settled) return;
            *settled = true;
            cast(id, exec, shard, value);
          });
          tr.failed.on_trigger([this, id, settled] {
            if (*settled) return;
            *settled = true;
            lose(id);
          });
        } else {
          machine_.network().send(src, dst, config_.digest_bytes)
              .on_trigger([this, id, exec, shard, value] { cast(id, exec, shard, value); });
        }
      },
      t.label + "!r" + std::to_string(exec));
}

void ReplicationExecutor::primary_complete(std::uint64_t ticket) {
  Ticket& t = tickets_.at(ticket);
  cast(ticket, /*exec=*/0, t.primary, t.value_of(0));
}

void ReplicationExecutor::cast(std::uint64_t ticket, std::uint32_t exec,
                               std::uint32_t shard, double value) {
  Ticket& t = tickets_.at(ticket);
  if (exec != 0) {  // arrived ballots count compared even when stale
    ++stats_.replicas_compared;
    profiler_.global().add(prof::GlobalCounter::ReplicasCompared);
  }
  const std::uint32_t digest = crc32c_double(value);
  if (t.resolved) {
    // A straggler past an already-settled quorum (resolution fires as soon as
    // `quorum` digests agree).  Audit it — and if it disagrees with the
    // winner, it is a corrupted execution detected late: blame its shard.
    ++stats_.stale_votes;
    profiler_.global().add(prof::GlobalCounter::StaleQuorumVotes);
    if (digest != t.winner_digest) {
      ++stats_.mismatched_ballots;
      stats_.blamed_by_shard[shard]++;
      prof::Counters& g = profiler_.global();
      g.add(prof::GlobalCounter::ReplicaMismatches);
      g.add(prof::GlobalCounter::CorruptionsDetected);
      profiler_.shard(shard).add(prof::Counter::CorruptionsBlamed);
    }
    return;
  }
  t.ballots.push_back(Ballot{exec, shard, digest, value});
  evaluate(t);
}

void ReplicationExecutor::lose(std::uint64_t ticket) {
  Ticket& t = tickets_.at(ticket);
  ++stats_.replicas_lost;
  profiler_.global().add(prof::GlobalCounter::ReplicasLost);
  if (t.resolved) return;
  ++t.lost;
  evaluate(t);
}

void ReplicationExecutor::evaluate(Ticket& t) {
  // Tally digests; the winner is the most-voted digest, ties broken toward
  // the ballot set containing the earliest execution instance (the primary's
  // digest wins an even split only to *name* a winner — a tie is below any
  // quorum >= 2, so ties always re-execute rather than resolve).
  std::uint32_t winner = 0;
  std::size_t winner_count = 0;
  std::uint32_t winner_first_exec = ~0u;
  bool primary_arrived = false;
  for (const Ballot& b : t.ballots) {
    if (b.exec == 0) primary_arrived = true;
    std::size_t count = 0;
    std::uint32_t first_exec = ~0u;
    for (const Ballot& o : t.ballots) {
      if (o.digest != b.digest) continue;
      ++count;
      first_exec = std::min(first_exec, o.exec);
    }
    if (count > winner_count ||
        (count == winner_count && first_exec < winner_first_exec)) {
      winner = b.digest;
      winner_count = count;
      winner_first_exec = first_exec;
    }
  }

  // Resolve the moment a quorum of digests agrees — but never before the
  // primary's own ballot: resolution triggers the primary task's completion
  // event, which must not precede its simulated execution.  Ballots still in
  // flight arrive as audited stale votes.
  if (winner_count >= config_.quorum && primary_arrived) {
    resolve(t, winner);
    return;
  }
  // No quorum yet: wait until every launched execution is accounted for
  // (ballot or loss) — re-executing over a partial round would double-launch.
  if (t.ballots.size() + t.lost < t.launched) return;
  if (t.rounds < config_.retry_budget) {
    ++t.rounds;
    ++stats_.rounds;
    profiler_.global().add(prof::GlobalCounter::QuorumRounds);
    launch_replica(t);
    return;
  }
  // Budget exhausted without agreement: the result is unverifiable, which is
  // exactly the situation replication exists to never silently accept.
  t.resolved = true;
  ++stats_.aborted;
  hooks_.abort("SDC quorum unresolved for task '" + t.label + "' (op " +
               std::to_string(t.op) + ", point " + std::to_string(t.point_index) +
               "): " + std::to_string(t.ballots.size()) + " ballots, best agreement " +
               std::to_string(winner_count) + " < quorum " +
               std::to_string(config_.quorum) + " after " + std::to_string(t.rounds) +
               " re-executions");
}

void ReplicationExecutor::resolve(Ticket& t, std::uint32_t winner_digest) {
  t.resolved = true;
  t.winner_digest = winner_digest;
  ++stats_.resolved;

  QuorumOutcome out;
  out.ballots = static_cast<std::uint32_t>(t.ballots.size());
  out.rounds = t.rounds;
  out.opened = t.opened;
  out.resolved_at = machine_.sim().now();
  bool have_value = false;
  for (const Ballot& b : t.ballots) {
    if (b.digest == winner_digest) {
      if (!have_value) {
        out.value = b.value;
        have_value = true;
      }
      continue;
    }
    ++out.mismatches;
    out.corrupted_shards.push_back(b.shard);
    if (b.exec == 0) out.primary_corrupted = true;
    stats_.blamed_by_shard[b.shard]++;
    profiler_.shard(b.shard).add(prof::Counter::CorruptionsBlamed);
  }
  DCR_CHECK(have_value) << "quorum resolved with no winning ballot";

  prof::Counters& g = profiler_.global();
  if (out.mismatches > 0) {
    ++stats_.healed;
    stats_.mismatched_ballots += out.mismatches;
    g.add(prof::GlobalCounter::ReplicaMismatches, out.mismatches);
    g.add(prof::GlobalCounter::CorruptionsDetected, out.mismatches);
    g.add(prof::GlobalCounter::CorruptionsHealed);
  }
  profiler_.shard(t.primary).observe(prof::Hist::QuorumResolveNs,
                                     static_cast<std::uint64_t>(out.resolved_at - t.opened));
  t.on_resolved(out);
}

}  // namespace dcr::core
