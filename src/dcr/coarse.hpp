// The shared coarse dependence stage (paper §4.1), backend-neutral.
//
// CoarseAnalyzer owns the state every shard shares — the per-(tree,field)
// epoch users, the per-op decision cache, and the in-program-order guard —
// and produces one CoarseDecision per op: coarse dependences, fence-elision
// verdicts, fence sources, and the static-interference skip license.  The
// first shard to reach an op computes the decision; later shards read the
// cached one.  Shards process ops in program order, so when op k is decided
// the epoch state has folded in exactly ops 0..k-1.
//
// Both execution backends drive this one analyzer implementation: the
// discrete-event simulator calls it from a single-threaded event loop, the
// real-threads backend (exec/thread_runtime.cpp) calls it under a mutex.
// That sharing — not a re-implementation — is what makes the two backends'
// fence/elision/dependence streams identical by construction, which the
// differential tests in tests/test_exec.cpp verify end to end.
//
// The analyzer charges the prof global fence/elision/statics ledgers itself
// (they must reconcile identically on both backends); the caller owns
// DcrStats mirroring and spy trace emission, gated on the `fresh` out-param
// so each op is emitted exactly once, in program order.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "dcr/ops.hpp"
#include "prof/profiler.hpp"
#include "runtime/region.hpp"
#include "statics/lint.hpp"
#include "statics/prover.hpp"

namespace dcr::core {

// Requirement summaries for one op: the coarse stage's task-group view.
// `owner` is the op's single-task owner shard (op.id % num_shards).
std::vector<ReqSummary> summarize_op(const OpPayload& payload, const rt::RegionForest& forest,
                                     ShardId owner);

class CoarseAnalyzer {
 public:
  struct Options {
    bool disable_fence_elision = false;
    bool static_analysis = true;
    bool statics_check = false;
  };

  CoarseAnalyzer(Options opts, prof::Profiler& profiler)
      : opts_(opts), profiler_(profiler) {}

  CoarseAnalyzer(const CoarseAnalyzer&) = delete;
  CoarseAnalyzer& operator=(const CoarseAnalyzer&) = delete;

  // The cached decision for `id`, or nullptr if no shard has computed it yet.
  const CoarseDecision* find(OpId id) const {
    auto it = decisions_.find(id);
    return it == decisions_.end() ? nullptr : &it->second;
  }

  // Fresh analysis: compute (or fetch) the decision for `op`.  `forest` and
  // `prover` are the calling shard's replicas — identical across shards by
  // control determinism, so the decision is shard-independent.  `*fresh` is
  // set iff this call computed the decision (the caller then mirrors stats
  // and emits trace records exactly once).
  const CoarseDecision& decide(const OpRecord& op, const rt::RegionForest& forest,
                               statics::InterferenceProver& prover,
                               statics::LaunchLedger& ledger, ShardId owner, bool* fresh);

  // Template replay: install the recorded decision without re-running the
  // conflict scans, folding the recorded summaries into the epoch state.
  const CoarseDecision& install_replayed(const OpRecord& op, statics::LaunchLedger& ledger,
                                         bool* fresh);

  // Ops folded into the epoch state so far (== the next op id expected).
  std::uint64_t next_op() const { return next_op_; }

 private:
  void apply_epoch_update(OpId op, FieldId f, const ReqSummary& r);

  Options opts_;
  prof::Profiler& profiler_;
  std::map<OpId, CoarseDecision> decisions_;
  std::map<std::pair<RegionTreeId, FieldId>, CoarseFieldState> state_;
  std::uint64_t next_op_ = 0;  // ops folded into state_
};

}  // namespace dcr::core
