// Shard failure reporting and control-deterministic recovery bookkeeping.
//
// The paper's control programs are *replicated*: every shard runs the same
// program and the replicated-creation heap plus the shared Philox RNG make
// every decision a pure function of (program, shard id).  That is what makes
// recovery cheap: a replacement shard does not need a memory image of its
// predecessor — it re-executes the control program from the top and fast-
// forwards through the prefix the dead shard had already committed, because
// that prefix is fully determined.  The commit log below records exactly how
// far the dead shard got (which operations it issued and which API-call
// determinism checks it contributed to), so the replacement can skip the
// side effects that already happened (agreed insertions, fence arrivals,
// check contributions) and rejoin live collectives at the failure frontier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dcr::core {

// Per-shard record of externally visible progress.  Appended between process
// block points, so a kill (which can only land while the shard process is
// blocked) always observes a consistent snapshot: an operation is either
// fully committed — inserted into the agreed schedule, its fence arrivals
// registered — or not started.
class CommitLog {
 public:
  // Max semantics: a replacement shard re-commits nothing, but a second crash
  // of the same shard must never shrink the committed frontier.
  void record_op(std::uint64_t op_index) { ops_ = std::max(ops_, op_index + 1); }
  void record_call(std::uint64_t call_index) { calls_ = std::max(calls_, call_index + 1); }

  // Epoch boundaries (mapping fences) let reports speak the application's
  // language: "crashed in epoch 12" rather than "after op 3041".
  void record_epoch(std::uint64_t op_index) { epoch_ops_.push_back(op_index); }

  std::uint64_t committed_ops() const { return ops_; }
  std::uint64_t committed_calls() const { return calls_; }
  std::uint64_t epochs() const { return epoch_ops_.size(); }
  const std::vector<std::uint64_t>& epoch_ops() const { return epoch_ops_; }

 private:
  std::uint64_t ops_ = 0;
  std::uint64_t calls_ = 0;
  std::vector<std::uint64_t> epoch_ops_;
};

// Structured description of one detected shard failure, surfaced through
// DcrStats instead of a hang: which shard died, when we noticed, and how far
// its control program had progressed.
struct FailureReport {
  ShardId shard;
  NodeId node;
  SimTime crashed_at = 0;    // when the fault plan killed the node
  SimTime detected_at = 0;   // when the lease monitor declared it dead
  std::uint64_t committed_ops = 0;       // operations the shard had issued
  std::uint64_t committed_api_calls = 0; // determinism checks contributed
  std::uint64_t committed_epochs = 0;    // epoch fences passed
  std::uint64_t outstanding_ops = 0;     // machine-wide in-flight tasks at detection
  // Cached dependence templates the failed shard lost; its replacement
  // re-captures them during fast-forward replay (dcr/template.hpp).
  std::uint64_t templates_dropped = 0;
  bool recovered = false;
  SimTime replay_started = 0;  // replacement spawned; fast-forward replay begins
  SimTime recovered_at = 0;  // replacement caught up to the failure frontier

  std::string describe() const {
    std::ostringstream os;
    os << "shard " << shard.value << " on node " << node.value << " failed at t="
       << crashed_at << "ns (detected t=" << detected_at << "ns) after "
       << committed_ops << " ops, " << committed_api_calls << " api calls, "
       << committed_epochs << " epochs; " << outstanding_ops
       << " tasks in flight, " << templates_dropped << " templates dropped";
    if (recovered) {
      os << "; recovered at t=" << recovered_at << "ns";
    } else {
      os << "; not recovered";
    }
    return os.str();
  }
};

}  // namespace dcr::core
