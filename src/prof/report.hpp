// Critical-path analysis over the dcr-prof span timeline.
//
// The span set of one run forms an interval order: span b can depend on span
// a only if a.end <= b.start.  The critical path is the maximum-weight chain
// under that order — the longest sequence of non-overlapping profiled work,
// a lower bound on the makespan attributable to the instrumented activities.
// The report also breaks inclusive time down by span kind (top-k) and
// computes the longest analysis chain per (shard, trace-window iteration),
// the per-iteration view the paper's figures reason about.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "prof/profiler.hpp"

namespace dcr::prof {

struct Report {
  struct KindTotal {
    SpanKind kind = SpanKind::kCount;
    std::uint64_t count = 0;
    SimTime inclusive_ns = 0;
  };
  // Every kind that appeared, sorted by inclusive time descending.
  std::vector<KindTotal> by_kind;

  // Maximum-weight chain over all spans (end <= start ordering).
  SimTime critical_path_ns = 0;
  std::vector<Span> critical_chain;

  // Longest Analysis-lane chain within one shard's trace-window iteration.
  struct IterationPath {
    std::uint32_t shard = 0;
    std::uint64_t iter = 0;
    std::uint64_t spans = 0;
    SimTime chain_ns = 0;
  };
  std::vector<IterationPath> per_iteration;  // sorted by (shard, iter)
};

Report build_report(const Profiler& p);

// Human-readable rendering: counter catalog, top-k kinds, critical path, and
// the slowest iterations.  `top_k` bounds both kind and iteration listings.
void render_report(std::ostream& os, const Profiler& p, const Report& r,
                   std::size_t top_k = 8);

}  // namespace dcr::prof
