// Counter-snapshot diffing, factored out of the dcr-prof CLI so tests (and
// dcr-scope's watchdog) can exercise it directly.  Snapshots are the
// {"global": {...}, "merged": {...}, "shards": [...]} objects written by
// Profiler::write_snapshot_json.
//
// Tolerant of schema drift between versions: a key present on only one side
// is reported as added/removed instead of being silently skipped (the old
// behaviour) — a renamed or dropped counter is itself a difference worth
// failing on.
#pragma once

#include <string>
#include <vector>

#include "prof/json.hpp"

namespace dcr::prof {

struct SnapshotDiff {
  struct Change {
    std::string key;  // "section.name"
    double a = 0;
    double b = 0;
  };
  std::vector<Change> changed;
  std::vector<std::string> added;    // present only in b
  std::vector<std::string> removed;  // present only in a
  bool any() const { return !changed.empty() || !added.empty() || !removed.empty(); }
};

// Diff one flat {name: number} section between two snapshot objects,
// appending into `out`.  Missing sections are tolerated (all keys of the
// other side become added/removed).
inline void diff_snapshot_section(const JsonValue& a, const JsonValue& b,
                                  const std::string& section, SnapshotDiff* out) {
  const JsonValue* oa = a.is_object() ? a.find(section) : nullptr;
  const JsonValue* ob = b.is_object() ? b.find(section) : nullptr;
  if (oa && oa->is_object()) {
    for (const auto& [key, va] : oa->object) {
      const JsonValue* vb = (ob && ob->is_object()) ? ob->find(key) : nullptr;
      if (!vb) {
        out->removed.push_back(section + "." + key);
      } else if (va.number != vb->number) {
        out->changed.push_back({section + "." + key, va.number, vb->number});
      }
    }
  }
  if (ob && ob->is_object()) {
    for (const auto& [key, vb] : ob->object) {
      (void)vb;
      if (!oa || !oa->is_object() || !oa->find(key)) {
        out->added.push_back(section + "." + key);
      }
    }
  }
}

inline SnapshotDiff diff_snapshots(const JsonValue& a, const JsonValue& b) {
  SnapshotDiff d;
  diff_snapshot_section(a, b, "global", &d);
  diff_snapshot_section(a, b, "merged", &d);
  return d;
}

}  // namespace dcr::prof
