// Minimal JSON value model and recursive-descent parser for the dcr-prof
// tooling: Chrome-trace schema validation (validate.hpp), snapshot diffing
// (tools/dcr-prof diff), and the golden-snapshot regression test.  Handles
// the subset dcr-prof emits — objects, arrays, strings without exotic
// escapes, integer/decimal numbers, booleans, null — and rejects anything
// else with a position-stamped error.  Deliberately dependency-free (the
// repo bakes in no JSON library) and separate from the file-local parser in
// spy/trace.cpp, which is shaped around JSONL trace records.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dcr::prof {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved (diff output follows the file's own order).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParseResult {
  std::optional<JsonValue> value;
  std::string error;  // empty on success
  bool ok() const { return value.has_value(); }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    JsonValue v;
    if (!parse_value(v)) {
      r.error = error_;
      return r;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      r.error = "trailing content at byte " + std::to_string(pos_);
      return r;
    }
    r.value = std::move(v);
    return r;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_string_value(JsonValue& out) {
    out.kind = JsonValue::Kind::String;
    return parse_string(out.string);
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::Null;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                                s_[pos_] == '-')) {
      ++pos_;
    }
    try {
      out.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    return pos_ > start;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace detail

inline JsonParseResult parse_json(const std::string& text) {
  return detail::JsonParser(text).run();
}

}  // namespace dcr::prof
