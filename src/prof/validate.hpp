// Chrome trace_event schema validation for dcr-prof exports.
//
// The exporter (profiler.cpp) and every consumer of its output share this one
// definition of "well-formed": the document is an object whose traceEvents is
// an array; every event is an object carrying a string name, a "ph" of "X"
// (complete span) or "M" (track metadata), numeric pid/tid, and — for "X"
// events — numeric ts plus a non-negative dur.  Used by tests/test_prof.cpp
// (also under the Asan build) and by `tools/dcr-prof trace --check`.
#pragma once

#include <string>
#include <vector>

#include "prof/json.hpp"

namespace dcr::prof {

// Returns one message per violation; empty means the trace is schema-valid.
inline std::vector<std::string> validate_chrome_trace(const std::string& text) {
  std::vector<std::string> errors;
  const JsonParseResult parsed = parse_json(text);
  if (!parsed.ok()) {
    errors.push_back("not valid JSON: " + parsed.error);
    return errors;
  }
  const JsonValue& root = *parsed.value;
  if (!root.is_object()) {
    errors.push_back("root is not an object");
    return errors;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    errors.push_back("missing traceEvents array");
    return errors;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (!e.is_object()) {
      errors.push_back(at + "not an object");
      continue;
    }
    const JsonValue* name = e.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      errors.push_back(at + "missing string name");
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() ||
        (ph->string != "X" && ph->string != "M")) {
      errors.push_back(at + "ph must be \"X\" or \"M\"");
      continue;
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = e.find(key);
      if (v == nullptr || !v->is_number()) {
        errors.push_back(at + "missing numeric " + key);
      }
    }
    if (ph->string == "X") {
      const JsonValue* ts = e.find("ts");
      if (ts == nullptr || !ts->is_number()) errors.push_back(at + "missing numeric ts");
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number()) {
        errors.push_back(at + "missing numeric dur");
      } else if (dur->number < 0) {
        errors.push_back(at + "negative dur");
      }
    }
  }
  return errors;
}

}  // namespace dcr::prof
