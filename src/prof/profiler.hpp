// dcr-prof: the always-on profiling and metrics layer.
//
// A Profiler owns one prof::Counters track per shard plus a global track
// (counters.hpp) and, when span recording is enabled (DcrConfig::profile), a
// structured span timeline: RAII prof::Scope spans (and explicitly emitted
// ones) over the coarse/fine analysis stages, template replay, fence waits,
// future waits, and trace windows.  Spans carry (shard, lane, kind, op,
// iteration) and export as Chrome trace_event JSON — one process per shard,
// one thread per lane — viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Everything here is host-side bookkeeping: no virtual time is ever charged,
// so profiling cannot perturb the simulated task graph or makespan (the
// profile-on/off equivalence sweep in tests/test_prof.cpp holds the runtime
// to that).  Lanes exist to keep spans on one track strictly nested: the
// Control lane follows the (sequential) control program, the Analysis lane
// follows the (serialized) analysis processor, the Fence lane's waits are
// ordered by the fine-tail chain, and Recovery gets its own lane because a
// fast-forward replay may straddle trace-window boundaries on Control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "prof/counters.hpp"

namespace dcr::prof {

inline constexpr std::uint64_t kNoId = ~0ull;

enum class Lane : std::uint8_t { Control, Analysis, Fence, Recovery, kCount };

enum class SpanKind : std::uint8_t {
  CoarseAnalysis,       // fresh coarse stage
  CoarseReplay,         // coarse stage replayed from a template
  FineAnalysis,         // fresh fine stage
  FineReplay,           // fine stage replayed from a template
  FenceWait,            // fence arrival -> collective completion
  FutureWait,           // get_future block
  ExecutionFence,       // execution_fence barrier (issue -> drain)
  TraceWindow,          // begin_trace -> end_trace
  RecoveryFastForward,  // replacement shard replaying the committed prefix
  kCount
};

inline const char* name(Lane l) {
  switch (l) {
    case Lane::Control: return "control";
    case Lane::Analysis: return "analysis";
    case Lane::Fence: return "fence";
    case Lane::Recovery: return "recovery";
    case Lane::kCount: break;
  }
  return "?";
}

inline const char* name(SpanKind k) {
  switch (k) {
    case SpanKind::CoarseAnalysis: return "coarse_analysis";
    case SpanKind::CoarseReplay: return "coarse_replay";
    case SpanKind::FineAnalysis: return "fine_analysis";
    case SpanKind::FineReplay: return "fine_replay";
    case SpanKind::FenceWait: return "fence_wait";
    case SpanKind::FutureWait: return "future_wait";
    case SpanKind::ExecutionFence: return "execution_fence";
    case SpanKind::TraceWindow: return "trace_window";
    case SpanKind::RecoveryFastForward: return "recovery_fast_forward";
    case SpanKind::kCount: break;
  }
  return "?";
}

struct Span {
  SpanKind kind;
  Lane lane;
  std::uint32_t shard = 0;
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t op = kNoId;    // op id, where one applies
  std::uint64_t iter = kNoId;  // trace-window ordinal on this shard
};

class Profiler {
 public:
  Profiler(std::size_t num_shards, bool spans_enabled)
      : num_shards_(num_shards),
        spans_enabled_(spans_enabled),
        shards_(std::make_unique<Counters[]>(num_shards)) {}

  std::size_t num_shards() const { return num_shards_; }
  bool spans_enabled() const { return spans_enabled_; }

  Counters& shard(std::uint32_t s) {
    DCR_CHECK(s < num_shards_);
    return shards_[s];
  }
  const Counters& shard(std::uint32_t s) const {
    DCR_CHECK(s < num_shards_);
    return shards_[s];
  }
  Counters& global() { return global_; }
  const Counters& global() const { return global_; }

  // Sum of one per-shard counter over every shard.
  std::uint64_t total(Counter c) const {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < num_shards_; ++s) n += shards_[s].get(c);
    return n;
  }

  // Thread-safe: the simulator backend emits from its single event loop, the
  // threads backend from every shard thread (counters are already atomic).
  void emit(const Span& s) {
    if (!spans_enabled_) return;
    DCR_CHECK(s.end >= s.start) << "negative-duration span " << name(s.kind);
    std::lock_guard<std::mutex> lk(spans_mu_);
    spans_.push_back(s);
  }
  // Only safe once emitting threads have been joined.
  const std::vector<Span>& spans() const { return spans_; }

  // Chrome trace_event JSON: pid = shard, tid = lane, complete ("X") events
  // with metadata naming each track.  Open in Perfetto / chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

  // Flat counter snapshot (global + merged + per-shard + histograms), stable
  // key order.  `zero_volatile` zeroes cost-model-derived values for golden
  // files (counters.hpp is_volatile).
  void write_snapshot_json(std::ostream& os, bool zero_volatile) const;

 private:
  std::size_t num_shards_;
  bool spans_enabled_;
  std::unique_ptr<Counters[]> shards_;
  Counters global_;
  std::mutex spans_mu_;
  std::vector<Span> spans_;
};

// RAII span over a region of a shard's control program: records the clock at
// construction and emits on destruction (or explicit close()).  The Clock
// (common/clock.hpp) decides whether timestamps are virtual ticks (sim) or
// wall nanoseconds (threads).  A no-op when span recording is disabled.
class Scope {
 public:
  Scope(Profiler& p, const Clock& clock, std::uint32_t shard, Lane lane,
        SpanKind kind, std::uint64_t op = kNoId, std::uint64_t iter = kNoId)
      : p_(p), clock_(clock) {
    span_.kind = kind;
    span_.lane = lane;
    span_.shard = shard;
    span_.op = op;
    span_.iter = iter;
    span_.start = clock.now();
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  void close() {
    if (closed_) return;
    closed_ = true;
    span_.end = clock_.now();
    p_.emit(span_);
  }

  ~Scope() { close(); }

 private:
  Profiler& p_;
  const Clock& clock_;
  Span span_{};
  bool closed_ = false;
};

}  // namespace dcr::prof
