#include "prof/report.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <ostream>
#include <utility>

namespace dcr::prof {

namespace {

// Maximum-weight chain over spans under the interval order (a precedes b iff
// a.end <= b.start).  Sweep spans by start time, keeping the best chain among
// spans that already ended; O(n log n) with predecessor links for
// reconstruction.  Returns indices into `spans` (chain order).
std::pair<SimTime, std::vector<std::size_t>> max_chain(const std::vector<Span>& spans,
                                                       const std::vector<std::size_t>& idx) {
  struct NodeState {
    SimTime best = 0;                     // best chain weight ending with this span
    std::size_t pred = ~std::size_t(0);  // previous span in that chain
  };
  std::vector<NodeState> state(idx.size());

  // Order by start for the sweep; by end for the "already finished" frontier.
  std::vector<std::size_t> by_start(idx.size()), by_end(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) by_start[i] = by_end[i] = i;
  auto start_of = [&](std::size_t i) { return spans[idx[i]].start; };
  auto end_of = [&](std::size_t i) { return spans[idx[i]].end; };
  std::stable_sort(by_start.begin(), by_start.end(),
                   [&](std::size_t a, std::size_t b) { return start_of(a) < start_of(b); });
  std::stable_sort(by_end.begin(), by_end.end(),
                   [&](std::size_t a, std::size_t b) { return end_of(a) < end_of(b); });

  SimTime frontier_best = 0;
  std::size_t frontier_pred = ~std::size_t(0);
  std::size_t next_end = 0;
  for (const std::size_t i : by_start) {
    // Fold in every span that ends at or before this span's start.
    while (next_end < by_end.size() && end_of(by_end[next_end]) <= start_of(i)) {
      const std::size_t j = by_end[next_end++];
      if (state[j].best > frontier_best) {
        frontier_best = state[j].best;
        frontier_pred = j;
      }
    }
    const Span& s = spans[idx[i]];
    state[i].best = frontier_best + (s.end - s.start);
    state[i].pred = frontier_pred;
  }

  SimTime best = 0;
  std::size_t best_i = ~std::size_t(0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state[i].best > best) {
      best = state[i].best;
      best_i = i;
    }
  }
  std::vector<std::size_t> chain;
  for (std::size_t i = best_i; i != ~std::size_t(0); i = state[i].pred) {
    chain.push_back(idx[i]);
  }
  std::reverse(chain.begin(), chain.end());
  return {best, std::move(chain)};
}

}  // namespace

Report build_report(const Profiler& p) {
  Report r;
  const std::vector<Span>& spans = p.spans();

  // Inclusive time by kind.
  std::map<SpanKind, Report::KindTotal> kinds;
  for (const Span& s : spans) {
    Report::KindTotal& kt = kinds[s.kind];
    kt.kind = s.kind;
    kt.count++;
    kt.inclusive_ns += s.end - s.start;
  }
  for (auto& [k, kt] : kinds) r.by_kind.push_back(kt);
  std::stable_sort(r.by_kind.begin(), r.by_kind.end(),
                   [](const Report::KindTotal& a, const Report::KindTotal& b) {
                     return a.inclusive_ns > b.inclusive_ns;
                   });

  // Overall critical path over every span.
  {
    std::vector<std::size_t> all(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) all[i] = i;
    auto [weight, chain] = max_chain(spans, all);
    r.critical_path_ns = weight;
    r.critical_chain.reserve(chain.size());
    for (const std::size_t i : chain) r.critical_chain.push_back(spans[i]);
  }

  // Longest analysis chain per (shard, iteration): Analysis-lane spans only —
  // a TraceWindow span would trivially dominate its own iteration.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::vector<std::size_t>> iters;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.iter == kNoId || s.lane != Lane::Analysis) continue;
    iters[{s.shard, s.iter}].push_back(i);
  }
  for (const auto& [key, idx] : iters) {
    auto [weight, chain] = max_chain(spans, idx);
    r.per_iteration.push_back({key.first, key.second, chain.size(), weight});
  }
  return r;
}

namespace {

void render_counters(std::ostream& os, const Profiler& p) {
  os << "counters (global):\n";
  for (std::size_t i = 0; i < static_cast<std::size_t>(GlobalCounter::kCount); ++i) {
    const auto c = static_cast<GlobalCounter>(i);
    os << "  " << name(c) << " = " << p.global().get(c) << "\n";
  }
  os << "counters (summed over " << p.num_shards() << " shards):\n";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
    const auto c = static_cast<Counter>(i);
    os << "  " << name(c) << " = " << p.total(c) << "\n";
  }
  os << "histograms (merged):\n";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Hist::kCount); ++i) {
    const auto h = static_cast<Hist>(i);
    std::uint64_t count = 0, sum = 0, max = 0;
    std::uint64_t min = ~0ull;
    for (std::uint32_t s = 0; s < p.num_shards(); ++s) {
      const Histogram& hg = p.shard(s).hist(h);
      if (hg.count() == 0) continue;
      count += hg.count();
      sum += hg.sum();
      min = std::min(min, hg.min());
      max = std::max(max, hg.max());
    }
    if (count == 0) min = 0;
    os << "  " << name(h) << ": count=" << count << " sum=" << sum << " min=" << min
       << " max=" << max << "\n";
  }
}

}  // namespace

void render_report(std::ostream& os, const Profiler& p, const Report& r,
                   std::size_t top_k) {
  render_counters(os, p);
  if (!p.spans_enabled()) {
    os << "(span timeline disabled; enable DcrConfig::profile for the critical-path "
          "report)\n";
    return;
  }
  os << "span kinds by inclusive time:\n";
  for (std::size_t i = 0; i < r.by_kind.size() && i < top_k; ++i) {
    const Report::KindTotal& kt = r.by_kind[i];
    os << "  " << name(kt.kind) << ": " << kt.inclusive_ns << " ns over " << kt.count
       << " spans\n";
  }
  os << "critical path: " << r.critical_path_ns << " ns over "
     << r.critical_chain.size() << " spans\n";
  for (std::size_t i = 0; i < r.critical_chain.size() && i < top_k; ++i) {
    const Span& s = r.critical_chain[i];
    os << "  [" << s.start << ", " << s.end << "] shard " << s.shard << " "
       << name(s.kind);
    if (s.op != kNoId) os << " op " << s.op;
    os << "\n";
  }
  if (r.critical_chain.size() > top_k) {
    os << "  ... " << (r.critical_chain.size() - top_k) << " more\n";
  }
  if (!r.per_iteration.empty()) {
    // Slowest iterations first for the listing (ties keep (shard, iter) order).
    std::vector<Report::IterationPath> by_cost = r.per_iteration;
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [](const Report::IterationPath& a, const Report::IterationPath& b) {
                       return a.chain_ns > b.chain_ns;
                     });
    os << "longest analysis chain per iteration (slowest first):\n";
    for (std::size_t i = 0; i < by_cost.size() && i < top_k; ++i) {
      const Report::IterationPath& ip = by_cost[i];
      os << "  shard " << ip.shard << " iter " << ip.iter << ": " << ip.chain_ns
         << " ns over " << ip.spans << " spans\n";
    }
  }
}

}  // namespace dcr::prof
