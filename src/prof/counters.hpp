// Lock-free monotonic counters and histogram summaries for the always-on
// profiling layer (dcr-prof).
//
// Every DCR run carries one Counters track per shard plus one Global track;
// the runtime's hot paths bump them unconditionally — the registry is plain
// atomics with relaxed ordering, so the cost is a handful of uncontended
// fetch_adds per op and the simulated execution is never perturbed (counters
// live host-side and charge no virtual time).  The simulator runs strictly
// one activity at a time, so the atomics are not needed for correctness;
// they keep the registry lock-free by construction and robust under Tsan,
// matching the conventions in sim/simulator.hpp.
//
// Counter values are pure functions of the (deterministic) virtual execution:
// two runs of the same seeded program produce identical snapshots, which is
// what makes the golden-snapshot regression in tests/golden/ meaningful.
// Time-valued entries are classified `is_volatile` so golden files can zero
// them and survive cost-model retuning; structural counts are kept verbatim.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace dcr::prof {

// Per-shard counters: each shard's analysis pipeline and control program bump
// its own track (no cross-shard contention by construction).
enum class Counter : std::size_t {
  CoarseOps,         // coarse stages run fresh
  TracedCoarseOps,   // coarse stages replayed from a dependence template
  CoarseAnalysisNs,  // virtual ns charged to the coarse stage
  FineOps,           // fine stages run fresh
  TracedFineOps,     // fine stages replayed from a template
  FineAnalysisNs,    // virtual ns charged to the fine stage
  FinePoints,        // owned points enumerated across all fine stages
  FenceWaits,        // pipeline stalls on a cross-shard fence collective
  FenceWaitNs,       // virtual ns from fence arrival to collective completion
  FutureWaits,       // control-program get_future blocks
  FutureWaitNs,      // virtual ns blocked in get_future
  ExecutionFences,   // execution_fence barriers the control program issued
  WindowsClosed,     // trace windows closed (end_trace reached)
  TemplateWindowHits,    // windows replayed from a validated template
  TemplateWindowMisses,  // windows that ran fresh analysis (capture/validate/abort)
  ReplicaTasks,          // duplicate executions this shard ran for other shards
  CorruptionsBlamed,     // ballots from this shard out-voted by a quorum
  StaticSkipOps,         // fine stages satisfied by a static verdict (O(1) cost)
  StaticSkipPoints,      // owned points those stages did not enumerate
  StaticSkipSavedNs,     // per-point fine cost the static verdicts avoided
  AutoTraceDetections,   // verified repeats found by the trace identifier
  AutoTracePromotions,   // repeats promoted into auto template windows
  AutoTraceDemotions,    // auto traces dropped by hysteresis (phase change)
  AutoTraceWindows,      // auto template windows opened
  AutoTraceAborts,       // auto windows aborted mid-period
  AutoTraceCollisions,   // fingerprint hits rejected by token verification
  kCount
};

// Runtime-wide counters: charged once per op (by whichever shard computes the
// shared coarse decision) or mirrored from subsystem stats at end of run.
enum class GlobalCounter : std::size_t {
  FenceDecisions,          // coarse dependences examined (fence-or-elide choices)
  FencesIssued,            // dependences that required a cross-shard fence
  FencesElided,            // dependences proven shard-local (§4.1 observation 2)
  ElisionProofsAttempted,  // same-(sharding,domain,partition,projection) proofs run
  ElisionProofsSucceeded,  // proofs that held (replays skip re-proving)
  FenceCollectives,        // distinct fence all-gathers created
  FutureCollectives,       // future broadcast / all-reduce collectives created
  DeferredPolls,           // deferred-deletion consensus poll rounds
  CollectiveRounds,        // total collective operations started
  CollectiveLatencyNs,     // summed fence latency: first arrival -> completion
  TemplateShadowMismatches,  // validation failures that forced a re-record
  TemplateInvalidations,     // templates dropped on epoch/shape changes
  Retransmits,             // reliable-transport resends (sim/reliable.hpp)
  MessagesDropped,         // fault-plan drops + blackout losses
  FailuresDetected,        // shards declared dead by the lease monitor
  Recoveries,              // replacement shards spawned
  RecoveryEpochs,          // runtime-wide template-invalidation epoch bumps
  TaintedOps,              // ops whose results feed control decisions
  ReplicasIssued,          // duplicate executions launched (incl. re-executions)
  ReplicasCompared,        // replica digests received and tallied at the primary
  ReplicasLost,            // replicas whose digest never arrived (crash/give-up)
  ReplicaMismatches,       // ballots disagreeing with the quorum winner
  QuorumRounds,            // re-execution rounds run after a disagreement/loss
  CorruptionsDetected,     // ballots out-voted by a quorum (corrupted executions)
  CorruptionsHealed,       // quorums resolved despite >= 1 mismatching ballot
  StaleQuorumVotes,        // ballots arriving after their quorum resolved
  SdcReissuedDecisions,    // cached fence decisions re-validated after a heal
  SdcReissuedFences,       //   ... of which had been issued fences
  SdcReissuedElisions,     //   ... of which had been elided
  StaticLaunchesResolved,    // index launches fully proven by the static prover
  StaticLaunchesUnresolved,  // index launches with >= 1 Unknown verdict
  StaticProofCacheHits,      // prover verdicts answered from the epoch cache
  kCount
};

// Histogram tracks kept per shard alongside the plain counters.
enum class Hist : std::size_t {
  FinePointsPerOp,  // owned points per fine stage (load balance)
  CoarseStageNs,    // coarse-stage virtual duration
  FineStageNs,      // fine-stage virtual duration
  FenceWaitNs,      // fence arrival -> completion
  FutureWaitNs,     // get_future block duration
  QuorumResolveNs,  // replication ticket open -> quorum verdict
  kCount
};

inline const char* name(Counter c) {
  switch (c) {
    case Counter::CoarseOps: return "coarse_ops";
    case Counter::TracedCoarseOps: return "traced_coarse_ops";
    case Counter::CoarseAnalysisNs: return "coarse_analysis_ns";
    case Counter::FineOps: return "fine_ops";
    case Counter::TracedFineOps: return "traced_fine_ops";
    case Counter::FineAnalysisNs: return "fine_analysis_ns";
    case Counter::FinePoints: return "fine_points";
    case Counter::FenceWaits: return "fence_waits";
    case Counter::FenceWaitNs: return "fence_wait_ns";
    case Counter::FutureWaits: return "future_waits";
    case Counter::FutureWaitNs: return "future_wait_ns";
    case Counter::ExecutionFences: return "execution_fences";
    case Counter::WindowsClosed: return "windows_closed";
    case Counter::TemplateWindowHits: return "template_window_hits";
    case Counter::TemplateWindowMisses: return "template_window_misses";
    case Counter::ReplicaTasks: return "replica_tasks";
    case Counter::CorruptionsBlamed: return "corruptions_blamed";
    case Counter::StaticSkipOps: return "static_skip_ops";
    case Counter::StaticSkipPoints: return "static_skip_points";
    case Counter::StaticSkipSavedNs: return "static_skip_saved_ns";
    case Counter::AutoTraceDetections: return "auto_trace_detections";
    case Counter::AutoTracePromotions: return "auto_trace_promotions";
    case Counter::AutoTraceDemotions: return "auto_trace_demotions";
    case Counter::AutoTraceWindows: return "auto_trace_windows";
    case Counter::AutoTraceAborts: return "auto_trace_aborts";
    case Counter::AutoTraceCollisions: return "auto_trace_collisions";
    case Counter::kCount: break;
  }
  return "?";
}

inline const char* name(GlobalCounter c) {
  switch (c) {
    case GlobalCounter::FenceDecisions: return "fence_decisions";
    case GlobalCounter::FencesIssued: return "fences_issued";
    case GlobalCounter::FencesElided: return "fences_elided";
    case GlobalCounter::ElisionProofsAttempted: return "elision_proofs_attempted";
    case GlobalCounter::ElisionProofsSucceeded: return "elision_proofs_succeeded";
    case GlobalCounter::FenceCollectives: return "fence_collectives";
    case GlobalCounter::FutureCollectives: return "future_collectives";
    case GlobalCounter::DeferredPolls: return "deferred_polls";
    case GlobalCounter::CollectiveRounds: return "collective_rounds";
    case GlobalCounter::CollectiveLatencyNs: return "collective_latency_ns";
    case GlobalCounter::TemplateShadowMismatches: return "template_shadow_mismatches";
    case GlobalCounter::TemplateInvalidations: return "template_invalidations";
    case GlobalCounter::Retransmits: return "retransmits";
    case GlobalCounter::MessagesDropped: return "messages_dropped";
    case GlobalCounter::FailuresDetected: return "failures_detected";
    case GlobalCounter::Recoveries: return "recoveries";
    case GlobalCounter::RecoveryEpochs: return "recovery_epochs";
    case GlobalCounter::TaintedOps: return "tainted_ops";
    case GlobalCounter::ReplicasIssued: return "replicas_issued";
    case GlobalCounter::ReplicasCompared: return "replicas_compared";
    case GlobalCounter::ReplicasLost: return "replicas_lost";
    case GlobalCounter::ReplicaMismatches: return "replica_mismatches";
    case GlobalCounter::QuorumRounds: return "quorum_rounds";
    case GlobalCounter::CorruptionsDetected: return "corruptions_detected";
    case GlobalCounter::CorruptionsHealed: return "corruptions_healed";
    case GlobalCounter::StaleQuorumVotes: return "stale_quorum_votes";
    case GlobalCounter::SdcReissuedDecisions: return "sdc_reissued_decisions";
    case GlobalCounter::SdcReissuedFences: return "sdc_reissued_fences";
    case GlobalCounter::SdcReissuedElisions: return "sdc_reissued_elisions";
    case GlobalCounter::StaticLaunchesResolved: return "static_launches_resolved";
    case GlobalCounter::StaticLaunchesUnresolved: return "static_launches_unresolved";
    case GlobalCounter::StaticProofCacheHits: return "static_proof_cache_hits";
    case GlobalCounter::kCount: break;
  }
  return "?";
}

inline const char* name(Hist h) {
  switch (h) {
    case Hist::FinePointsPerOp: return "fine_points_per_op";
    case Hist::CoarseStageNs: return "coarse_stage_ns";
    case Hist::FineStageNs: return "fine_stage_ns";
    case Hist::FenceWaitNs: return "fence_wait_ns";
    case Hist::FutureWaitNs: return "future_wait_ns";
    case Hist::QuorumResolveNs: return "quorum_resolve_ns";
    case Hist::kCount: break;
  }
  return "?";
}

// Volatile entries are derived from the virtual-time cost model (or from
// timing-dependent polling cadence); golden snapshots zero them so retuning
// DcrConfig costs does not churn committed files.  Structural counts stay.
inline bool is_volatile(Counter c) {
  switch (c) {
    case Counter::CoarseAnalysisNs:
    case Counter::FineAnalysisNs:
    case Counter::FenceWaitNs:
    case Counter::FutureWaitNs:
    case Counter::StaticSkipSavedNs:  // scales with the tuned per-point cost
      return true;
    default:
      return false;
  }
}

inline bool is_volatile(GlobalCounter c) {
  switch (c) {
    case GlobalCounter::CollectiveLatencyNs:
    case GlobalCounter::DeferredPolls:   // poll count tracks backoff timing
    case GlobalCounter::CollectiveRounds:  // includes the polls above
    case GlobalCounter::ReplicasLost:      // tracks reliable-transport give-ups
    case GlobalCounter::QuorumRounds:      // re-executions follow loss timing
    case GlobalCounter::StaleQuorumVotes:  // late arrivals follow jitter timing
      return true;
    default:
      return false;
  }
}

inline bool is_volatile(Hist h) { return h != Hist::FinePointsPerOp; }

// Monotonic histogram summary: count / sum / min / max plus power-of-two
// buckets (bucket k counts observations with bit_width(v) == k; zero lands
// in bucket 0).  All updates are relaxed atomics — single-writer under the
// simulator's one-activity-at-a-time execution, lock-free regardless.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_min(min_, v);
    atomic_max(max_, v);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t k) const {
    DCR_CHECK(k < kBuckets);
    return buckets_[k].load(std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t k = 0;
    while (v > 1) {
      v >>= 1;
      ++k;
    }
    return k;
  }

 private:
  static void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

// One track of the registry (a shard's counters, or the global track — the
// global track simply ignores its histogram slots).
class Counters {
 public:
  void add(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  void add(GlobalCounter c, std::uint64_t n = 1) {
    globals_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  void observe(Hist h, std::uint64_t v) {
    hists_[static_cast<std::size_t>(h)].observe(v);
  }

  std::uint64_t get(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t get(GlobalCounter c) const {
    return globals_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  const Histogram& hist(Hist h) const { return hists_[static_cast<std::size_t>(h)]; }

 private:
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Counter::kCount)>
      counters_{};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(GlobalCounter::kCount)>
      globals_{};
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount)> hists_{};
};

}  // namespace dcr::prof
