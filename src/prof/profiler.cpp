#include "prof/profiler.hpp"

#include <algorithm>
#include <ostream>

namespace dcr::prof {

namespace {

// Chrome trace_event timestamps are microseconds; keep sub-us precision by
// printing the ns value over 1000 with three decimals (exact: ns is integral).
void write_us(std::ostream& os, SimTime t_ns) {
  os << t_ns / 1000 << '.';
  const auto frac = static_cast<unsigned>(t_ns % 1000);
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void Profiler::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Track metadata: one "process" per shard, one "thread" per lane.
  for (std::size_t s = 0; s < num_shards_; ++s) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << s
       << ",\"tid\":0,\"args\":{\"name\":\"shard " << s << "\"}}";
    for (std::size_t l = 0; l < static_cast<std::size_t>(Lane::kCount); ++l) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << s << ",\"tid\":" << l
         << ",\"args\":{\"name\":\"" << name(static_cast<Lane>(l)) << "\"}}";
    }
  }
  for (const Span& sp : spans_) {
    sep();
    os << "{\"name\":\"" << name(sp.kind) << "\",\"cat\":\"" << name(sp.lane)
       << "\",\"ph\":\"X\",\"ts\":";
    write_us(os, sp.start);
    os << ",\"dur\":";
    write_us(os, sp.end - sp.start);
    os << ",\"pid\":" << sp.shard << ",\"tid\":" << static_cast<unsigned>(sp.lane)
       << ",\"args\":{";
    bool farg = true;
    if (sp.op != kNoId) {
      os << "\"op\":" << sp.op;
      farg = false;
    }
    if (sp.iter != kNoId) {
      if (!farg) os << ",";
      os << "\"iter\":" << sp.iter;
    }
    os << "}}";
  }
  os << "\n]}\n";
}

namespace {

void write_track(std::ostream& os, const Counters& c, bool zero_volatile) {
  os << "{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
    const auto ctr = static_cast<Counter>(i);
    const std::uint64_t v = (zero_volatile && is_volatile(ctr)) ? 0 : c.get(ctr);
    if (i) os << ",";
    os << "\"" << name(ctr) << "\":" << v;
  }
  os << "}";
}

void write_hists(std::ostream& os, const Profiler& p, bool zero_volatile) {
  os << "{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Hist::kCount); ++i) {
    const auto h = static_cast<Hist>(i);
    // Merge the per-shard histograms: counts always survive zeroing (they are
    // structural); value-derived stats go to zero for volatile tracks.
    std::uint64_t count = 0, sum = 0, max = 0;
    std::uint64_t min = ~0ull;
    for (std::uint32_t s = 0; s < p.num_shards(); ++s) {
      const Histogram& hg = p.shard(s).hist(h);
      if (hg.count() == 0) continue;
      count += hg.count();
      sum += hg.sum();
      min = std::min(min, hg.min());
      max = std::max(max, hg.max());
    }
    if (count == 0) min = 0;
    if (zero_volatile && is_volatile(h)) sum = min = max = 0;
    if (i) os << ",";
    os << "\"" << name(h) << "\":{\"count\":" << count << ",\"sum\":" << sum
       << ",\"min\":" << min << ",\"max\":" << max << "}";
  }
  os << "}";
}

}  // namespace

void Profiler::write_snapshot_json(std::ostream& os, bool zero_volatile) const {
  os << "{\n  \"num_shards\": " << num_shards_ << ",\n  \"global\": {";
  for (std::size_t i = 0; i < static_cast<std::size_t>(GlobalCounter::kCount); ++i) {
    const auto ctr = static_cast<GlobalCounter>(i);
    const std::uint64_t v = (zero_volatile && is_volatile(ctr)) ? 0 : global_.get(ctr);
    if (i) os << ",";
    os << "\"" << name(ctr) << "\":" << v;
  }
  os << "},\n  \"merged\": ";
  // Merged view: per-shard counters summed over every shard.
  {
    os << "{";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
      const auto ctr = static_cast<Counter>(i);
      const std::uint64_t v = (zero_volatile && is_volatile(ctr)) ? 0 : total(ctr);
      if (i) os << ",";
      os << "\"" << name(ctr) << "\":" << v;
    }
    os << "}";
  }
  os << ",\n  \"histograms\": ";
  write_hists(os, *this, zero_volatile);
  os << ",\n  \"shards\": [";
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (s) os << ",";
    os << "\n    ";
    write_track(os, shards_[s], zero_volatile);
  }
  os << "\n  ]\n}\n";
}

}  // namespace dcr::prof
