// Wall-clock collectives for the real-threads backend.
//
// FenceCollective: the cross-shard fence of paper §4.1/§4.2 as a reusable
// N-thread barrier — atomic arrival counter plus futex-style parking via
// C++20 atomic wait/notify (no mutex, no condvar).  Sense-reversing by
// generation so the same object serves every fence epoch.
//
// ValueCollective: the future all-reduce/broadcast — every shard pushes its
// (rank, value) contribution through an MPMC fan-in queue; the last arriver
// drains the queue, combines in deterministic rank order, and publishes the
// result for everyone.  Rank-order combination makes the result independent
// of arrival order, so repeated runs (and the differential tests) see one
// value stream.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "exec/queue.hpp"

namespace dcr::exec {

class FenceCollective {
 public:
  explicit FenceCollective(std::uint32_t ranks) : ranks_(ranks) {
    DCR_CHECK(ranks >= 1);
  }

  FenceCollective(const FenceCollective&) = delete;
  FenceCollective& operator=(const FenceCollective&) = delete;

  std::uint32_t ranks() const { return ranks_; }
  std::uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  // Arrive and block until all ranks of this generation have arrived.  The
  // last arriver bumps the generation and wakes the parked ranks.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      generation_.wait(gen, std::memory_order_acquire);
    }
  }

 private:
  const std::uint32_t ranks_;
  alignas(kCacheLine) std::atomic<std::uint32_t> arrived_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> generation_{0};
};

// One-shot all-reduce of doubles across N ranks.  Contributions fan in
// through an MPMC queue (multi-producer: every shard thread pushes); the
// rank that completes the set combines in ascending rank order and publishes.
class ValueCollective {
 public:
  using CombineFn = std::function<double(double, double)>;

  ValueCollective(std::uint32_t ranks, double init, CombineFn combine)
      : ranks_(ranks), init_(init), combine_(std::move(combine)), fanin_(ranks) {
    DCR_CHECK(ranks >= 1);
    slots_.assign(ranks_, 0.0);
    slot_set_.assign(ranks_, 0);
  }

  ValueCollective(const ValueCollective&) = delete;
  ValueCollective& operator=(const ValueCollective&) = delete;

  // Contribute rank `r`'s value; each rank contributes exactly once.
  void arrive(std::uint32_t r, double value) {
    DCR_CHECK(r < ranks_);
    const bool pushed = fanin_.try_push(Contribution{r, value});
    DCR_CHECK(pushed) << "value-collective fan-in overflow (duplicate arrival?)";
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_) {
      // Last arriver: drain the fan-in, combine in rank order, publish.
      while (auto c = fanin_.try_pop()) {
        DCR_CHECK(!slot_set_[c->rank]) << "duplicate value-collective arrival";
        slot_set_[c->rank] = 1;
        slots_[c->rank] = c->value;
      }
      double acc = init_;
      for (std::uint32_t i = 0; i < ranks_; ++i) {
        DCR_CHECK(slot_set_[i]) << "value-collective missing rank " << i;
        acc = combine_(acc, slots_[i]);
      }
      result_bits_.store(bits_of(acc), std::memory_order_relaxed);
      ready_.store(true, std::memory_order_release);
      ready_.notify_all();
    }
  }

  bool ready() const { return ready_.load(std::memory_order_acquire); }

  // Block until the combined value is published.
  double wait() const {
    while (!ready_.load(std::memory_order_acquire)) {
      ready_.wait(false, std::memory_order_acquire);
    }
    return value_of(result_bits_.load(std::memory_order_relaxed));
  }

  double result() const {
    DCR_CHECK(ready()) << "value collective not complete";
    return value_of(result_bits_.load(std::memory_order_relaxed));
  }

 private:
  struct Contribution {
    std::uint32_t rank = 0;
    double value = 0.0;
  };

  static std::uint64_t bits_of(double d) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(d));
    __builtin_memcpy(&b, &d, sizeof(b));
    return b;
  }
  static double value_of(std::uint64_t b) {
    double d;
    __builtin_memcpy(&d, &b, sizeof(d));
    return d;
  }

  const std::uint32_t ranks_;
  const double init_;
  CombineFn combine_;
  MpmcQueue<Contribution> fanin_;
  // Slot arrays are written only by the single draining thread (the last
  // arriver) and read after the ready_ release/acquire edge.
  std::vector<double> slots_;
  std::vector<std::uint8_t> slot_set_;
  alignas(kCacheLine) std::atomic<std::uint32_t> arrived_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> result_bits_{0};
  alignas(kCacheLine) std::atomic<bool> ready_{false};
};

}  // namespace dcr::exec
