// Wall-clock collectives for the real-threads backend.
//
// FenceCollective: the cross-shard fence of paper §4.1/§4.2 as a reusable
// N-thread barrier — atomic arrival counter plus futex-style parking via
// C++20 atomic wait/notify (no mutex, no condvar).  Sense-reversing by
// generation so the same object serves every fence epoch.
//
// ValueCollective: the future all-reduce/broadcast — every shard pushes its
// (rank, value) contribution through an MPMC fan-in queue; the last arriver
// drains the queue, combines in deterministic rank order, and publishes the
// result for everyone.  Rank-order combination makes the result independent
// of arrival order, so repeated runs (and the differential tests) see one
// value stream.
//
// dcr-scope blame (ThreadConfig::scope): the stamped arrival paths mirror the
// simulated collectives' blame surface (sim/collective.hpp) on wall-clock
// time — per-rank arrival/completion timestamps plus the associative
// latest-merge of the arriving TraceCtxs, read back at end-of-run by
// Recorder::harvest_fence / ValueCollective::result_ctx.  Each rank writes
// only its own slot before its acq_rel fetch_add; the RMW chain makes every
// slot visible to the last arriver, which folds the merged blame before
// releasing the round.  The stamped FenceCollective path supports exactly one
// round per object (the threads backend keys collectives by dependent op id,
// so every fence object serves one round).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "exec/queue.hpp"
#include "scope/context.hpp"

namespace dcr::exec {

class FenceCollective {
 public:
  explicit FenceCollective(std::uint32_t ranks) : ranks_(ranks), blame_(ranks) {
    DCR_CHECK(ranks >= 1);
  }

  FenceCollective(const FenceCollective&) = delete;
  FenceCollective& operator=(const FenceCollective&) = delete;

  std::uint32_t ranks() const { return ranks_; }
  std::uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  // Arrive and block until all ranks of this generation have arrived.  The
  // last arriver bumps the generation and wakes the parked ranks.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      generation_.wait(gen, std::memory_order_acquire);
    }
  }

  // Blame-stamped arrival (single round per object): record this rank's
  // wall-clock arrival time and causal context, then barrier as above.  The
  // last arriver folds the merged releaser/arrival summary before waking the
  // parked ranks.  After this returns, the caller stamps its wake time with
  // complete_rank — the same clock reads it charges to prof FenceWaitNs, so
  // the two ledgers reconcile exactly by construction.
  void arrive_and_wait(std::uint32_t rank, SimTime now,
                       const scope::TraceCtx& ctx) {
    DCR_CHECK(rank < ranks_);
    BlameSlot& slot = blame_[rank];
    DCR_CHECK(slot.arrived_at == kTimeNever)
        << "stamped fence collectives serve exactly one round";
    slot.arrived_at = now;
    slot.ctx = ctx;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_) {
      finalize_blame(now);
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      generation_.wait(gen, std::memory_order_acquire);
    }
  }

  // Stamp this rank's wake time (own-slot write; read after threads join).
  void complete_rank(std::uint32_t rank, SimTime now) {
    DCR_CHECK(rank < ranks_);
    blame_[rank].completed_at = now;
  }

  // ---- blame surface, mirroring sim::FenceCollective ----------------------
  // Valid once the round completed and the participating threads joined (or
  // otherwise synchronized with the caller).
  std::size_t num_ranks() const { return ranks_; }
  SimTime arrival_time(std::size_t r) const { return blame_[r].arrived_at; }
  SimTime completion_time(std::size_t r) const { return blame_[r].completed_at; }
  const scope::TraceCtx& releaser() const { return releaser_; }
  std::uint32_t last_arrival_rank() const { return last_arrival_rank_; }
  SimTime first_arrival() const { return first_arrival_; }
  SimTime last_arrival() const { return last_arrival_; }
  SimTime completed_at() const { return completed_at_; }
  bool complete() const { return complete_.load(std::memory_order_acquire); }

 private:
  struct BlameSlot {
    SimTime arrived_at = kTimeNever;
    SimTime completed_at = kTimeNever;
    scope::TraceCtx ctx;
  };

  // Last arriver only; every slot write happens-before via the arrived_ RMW
  // chain.  Ties broken exactly like sim::FenceCollective: later time wins,
  // equal times go to the larger rank.
  void finalize_blame(SimTime now) {
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      const BlameSlot& s = blame_[r];
      if (s.arrived_at < first_arrival_) first_arrival_ = s.arrived_at;
      if (last_arrival_rank_ == ~0u || s.arrived_at > last_arrival_ ||
          (s.arrived_at == last_arrival_ && r > last_arrival_rank_)) {
        last_arrival_ = s.arrived_at;
        last_arrival_rank_ = r;
      }
      releaser_ = scope::latest(releaser_, s.ctx);
    }
    completed_at_ = now;
    complete_.store(true, std::memory_order_release);
  }

  const std::uint32_t ranks_;
  std::vector<BlameSlot> blame_;
  scope::TraceCtx releaser_;
  std::uint32_t last_arrival_rank_ = ~0u;
  SimTime first_arrival_ = kTimeNever;
  SimTime last_arrival_ = 0;
  SimTime completed_at_ = kTimeNever;
  std::atomic<bool> complete_{false};
  alignas(kCacheLine) std::atomic<std::uint32_t> arrived_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> generation_{0};
};

// One-shot all-reduce of doubles across N ranks.  Contributions fan in
// through an MPMC queue (multi-producer: every shard thread pushes); the
// rank that completes the set combines in ascending rank order and publishes.
class ValueCollective {
 public:
  using CombineFn = std::function<double(double, double)>;

  ValueCollective(std::uint32_t ranks, double init, CombineFn combine)
      : ranks_(ranks), init_(init), combine_(std::move(combine)), fanin_(ranks) {
    DCR_CHECK(ranks >= 1);
    slots_.assign(ranks_, 0.0);
    slot_set_.assign(ranks_, 0);
  }

  ValueCollective(const ValueCollective&) = delete;
  ValueCollective& operator=(const ValueCollective&) = delete;

  // Contribute rank `r`'s value; each rank contributes exactly once.  The
  // optional TraceCtx is the contributor's causal context (ThreadConfig::
  // scope); the last arriver folds them with scope::latest so result_ctx()
  // names the globally last contributor, exactly like the simulated
  // collective's fan-in merge.
  void arrive(std::uint32_t r, double value, scope::TraceCtx ctx = {}) {
    DCR_CHECK(r < ranks_);
    const bool pushed = fanin_.try_push(Contribution{r, value, ctx});
    DCR_CHECK(pushed) << "value-collective fan-in overflow (duplicate arrival?)";
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_) {
      // Last arriver: drain the fan-in, combine in rank order, publish.
      while (auto c = fanin_.try_pop()) {
        DCR_CHECK(!slot_set_[c->rank]) << "duplicate value-collective arrival";
        slot_set_[c->rank] = 1;
        slots_[c->rank] = c->value;
        result_ctx_ = scope::latest(result_ctx_, c->ctx);
      }
      double acc = init_;
      for (std::uint32_t i = 0; i < ranks_; ++i) {
        DCR_CHECK(slot_set_[i]) << "value-collective missing rank " << i;
        acc = combine_(acc, slots_[i]);
      }
      result_bits_.store(bits_of(acc), std::memory_order_relaxed);
      ready_.store(true, std::memory_order_release);
      ready_.notify_all();
    }
  }

  bool ready() const { return ready_.load(std::memory_order_acquire); }

  // Block until the combined value is published.
  double wait() const {
    while (!ready_.load(std::memory_order_acquire)) {
      ready_.wait(false, std::memory_order_acquire);
    }
    return value_of(result_bits_.load(std::memory_order_relaxed));
  }

  double result() const {
    DCR_CHECK(ready()) << "value collective not complete";
    return value_of(result_bits_.load(std::memory_order_relaxed));
  }

  // Merged causal context of the contributions; valid once ready() (written
  // by the draining thread before the ready_ release, read after acquire).
  const scope::TraceCtx& result_ctx() const {
    DCR_CHECK(ready()) << "value collective not complete";
    return result_ctx_;
  }

 private:
  struct Contribution {
    std::uint32_t rank = 0;
    double value = 0.0;
    scope::TraceCtx ctx;
  };

  static std::uint64_t bits_of(double d) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(d));
    __builtin_memcpy(&b, &d, sizeof(b));
    return b;
  }
  static double value_of(std::uint64_t b) {
    double d;
    __builtin_memcpy(&d, &b, sizeof(d));
    return d;
  }

  const std::uint32_t ranks_;
  const double init_;
  CombineFn combine_;
  MpmcQueue<Contribution> fanin_;
  // Slot arrays and the merged context are written only by the single
  // draining thread (the last arriver) and read after the ready_
  // release/acquire edge.
  std::vector<double> slots_;
  std::vector<std::uint8_t> slot_set_;
  scope::TraceCtx result_ctx_;
  alignas(kCacheLine) std::atomic<std::uint32_t> arrived_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> result_bits_{0};
  alignas(kCacheLine) std::atomic<bool> ready_{false};
};

}  // namespace dcr::exec
