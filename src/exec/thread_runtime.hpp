// Real-threads execution backend: every shard of the control-replicated
// program runs as an OS thread, behind the same application API (Context) and
// observable surface (DcrStats, spy::Trace, prof::Profiler, realized task
// graph) as the discrete-event simulator backend (dcr/runtime.hpp).
//
// The load-bearing property is differential determinism: the same program
// produces a spy-identical task graph — identical §3 call-hash streams,
// identical op/coarse-dependence/elision records, identical realized tasks
// and edges, identical template window hits and statics verdicts — on both
// backends.  That is not an accident of testing but of construction:
//
//  * the §3 call hashing (dcr/sig.hpp), the op model (dcr/ops.hpp), and the
//    whole coarse dependence stage (dcr/coarse.hpp) are the *same code* on
//    both backends; the threads backend calls the shared CoarseAnalyzer
//    under a mutex where the simulator calls it from its event loop;
//  * per-shard state that the simulator replicates logically (region forest,
//    sharding memoization, template store, RNG) is replicated physically —
//    one instance per thread, no sharing, no locks;
//  * cross-shard coordination uses wall-clock primitives with the same
//    semantics as the simulated collectives: FenceCollective (sense-
//    reversing barrier) for pipeline fences, ValueCollective (MPMC fan-in,
//    rank-ordered combine) for future all-reduce, and bounded lock-free
//    SPSC mailboxes for broadcast future-value delivery.
//
// tests/test_exec.cpp enforces the property by running every fuzz program
// through both backends and diffing with spy::graph_equivalent.
//
// dcr-scope on threads (ThreadConfig::scope): the full causal-tracing stack
// runs on wall-clock time — TraceCtx rides the SPSC mailbox payloads, the
// exec collectives stamp per-rank arrival/completion blame timestamps, and
// the thread-safe Recorder ledgers (per-shard single-writer appends, merged
// at join) reconcile exactly against prof FenceWaitNs because the *same two
// clock reads* feed both ledgers.  A bounded per-shard flight-recorder ring
// (scope/flight.hpp) is dumped on determinism-violation aborts for
// post-mortem triage without a re-run.
//
// Deliberate non-goals (simulator-only features): fault injection and
// recovery, SDC replication, the physical data-movement model (bytes_moved
// reports 0; messages counts mailbox publishes only under scope), and
// deferred deletions (destroy_region_deferred aborts — there is no consensus
// poller).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/philox.hpp"
#include "common/types.hpp"
#include "dcr/api.hpp"
#include "dcr/coarse.hpp"
#include "dcr/mapper.hpp"
#include "dcr/ops.hpp"
#include "dcr/runtime.hpp"
#include "dcr/sharding.hpp"
#include "dcr/template.hpp"
#include "dcr/trace_id.hpp"
#include "dcr/user_tracker.hpp"
#include "exec/clock.hpp"
#include "exec/collective.hpp"
#include "exec/gate.hpp"
#include "exec/queue.hpp"
#include "prof/profiler.hpp"
#include "scope/recorder.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"
#include "runtime/task_graph.hpp"
#include "spy/trace.hpp"
#include "statics/lint.hpp"
#include "statics/prover.hpp"

namespace dcr::exec {

struct ThreadConfig {
  std::size_t num_shards = 2;

  // Concurrency cap for point-task execution (the stand-in for "P compute
  // cores"); 0 = uncapped.  Analysis always runs one thread per shard.
  std::uint32_t compute_slots = 0;

  // Each point task occupies a compute slot for (virtual duration ×
  // work_scale) wall nanoseconds, so the ConcurrencyGate yields measurable
  // strong scaling (bench/bench_exec.cpp).  0 = tasks are pure bookkeeping
  // (the differential tests).
  double work_scale = 0.0;

  // How the slot is occupied: busy-spin (models host-side compute — needs as
  // many cores as slots to actually scale) or a timed sleep (models the host
  // thread blocked on an offloaded accelerator kernel — sleeps overlap even
  // on a single core, so this is what bench_exec uses).
  bool work_sleep = false;

  // Per-(producer, consumer) SPSC future-value mailbox capacity.  The lock-
  // free ring covers the common case; overflow spills to a small mutexed
  // side buffer so a producer never blocks on a slow consumer (which could
  // deadlock against a fence).
  std::size_t mailbox_capacity = 256;

  // Analysis knobs, mirroring DcrConfig (dcr/runtime.hpp).
  bool determinism_checks = true;
  bool tracing_enabled = true;
  bool template_validation = true;
  // Automatic repeated-trace identification (dcr/trace_id.hpp): same detector
  // as the simulator backend, one instance per shard thread.
  core::TraceIdConfig auto_trace;
  bool disable_fence_elision = false;
  bool static_analysis = true;
  bool statics_check = false;
  bool record_task_graph = false;
  bool record_trace = false;  // implies record_task_graph
  bool profile = false;       // wall-clock prof spans via exec::WallClock

  // dcr-scope causal tracing (scope/recorder.hpp): thread-safe per-shard
  // ledgers on wall-clock time.  TraceCtx rides the mailbox payloads and the
  // collective arrivals; blame reports reconcile exactly against prof
  // FenceWaitNs (the same clock reads feed both).
  bool scope = false;
  // Crash flight recorder (scope/flight.hpp): ring of the most recent scope
  // events per shard, dumped to flight_path as Perfetto-loadable JSON when a
  // determinism violation aborts the run.  Requires scope; "" = keep the ring
  // in memory only (still dumpable via flight()).
  std::size_t flight_capacity = 256;
  std::string flight_path;

  // Deterministic mapping policy; must also be thread-safe (it is queried
  // concurrently from every shard thread).  nullptr = default policies.
  core::Mapper* mapper = nullptr;
};

class ThreadRuntime {
 public:
  ThreadRuntime(core::FunctionRegistry& functions, ThreadConfig config = {});
  ~ThreadRuntime();

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  // Runs `main` replicated across num_shards OS threads; returns once every
  // thread joins.  DcrStats::makespan is wall-clock nanoseconds; the
  // simulator-only fields (bytes_moved, messages, analysis_busy,
  // compute_busy, fault/SDC counters) are 0.
  core::DcrStats execute(const core::ApplicationMain& main);

  std::size_t num_shards() const { return config_.num_shards; }

  // Registration (before execute only): shardings are replicated into every
  // shard's registry; the projection registry is shared and read-only during
  // execution.
  ShardingId register_sharding(core::ShardingRegistry::ShardingFn fn);
  rt::ProjectionRegistry& projections() { return projections_; }

  // Observability, mirroring DcrRuntime.
  const spy::Trace* trace() const { return trace_.get(); }
  prof::Profiler& profiler() { return profiler_; }
  const prof::Profiler& profiler() const { return profiler_; }
  const rt::TaskGraph& realized_graph() const { return realized_graph_; }
  struct RealizedTask {
    TaskId id;
    OpId op;
    std::uint64_t point_index;
  };
  const std::vector<RealizedTask>& realized_tasks() const { return realized_tasks_; }
  const statics::LaunchLedger& statics_ledger() const { return statics_ledger_; }
  struct FunctionProfile {
    std::uint64_t tasks = 0;
    SimTime total_time = 0;  // summed virtual durations (cost model, not wall)
  };
  const std::map<FunctionId, FunctionProfile>& profile() const { return profile_; }
  core::TemplateManager& shard_templates(ShardId s);
  const core::TraceIdentifier& shard_auto_tracer(ShardId s);
  const Clock& clock() const { return clock_; }
  // dcr-scope causal ledger; non-null iff config.scope (name shadows the
  // namespace inside this class, hence the qualified type — same convention
  // as DcrRuntime::scope()).
  const dcr::scope::Recorder* scope() const { return scope_.get(); }
  const dcr::scope::FlightRecorder* flight() const { return flight_.get(); }

 private:
  friend class ThreadShardContext;

  struct FmPartial {
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  struct FutureMsg {
    std::uint64_t id = 0;
    double value = 0.0;
    // Causal context of the publish (ThreadConfig::scope): rides the SPSC
    // mailbox so the waiter can name the span that released its future wait.
    dcr::scope::TraceCtx ctx;
  };

  struct CachedFuture {
    double value = 0.0;
    dcr::scope::TraceCtx ctx;  // context the value was delivered with
  };

  // State owned by exactly one shard thread — the physical replica of what
  // the simulator backend replicates logically.
  struct ThreadShard {
    ShardId id;
    rt::RegionForest forest;
    core::ShardingRegistry shardings;
    std::unique_ptr<statics::InterferenceProver> prover;  // over this forest
    std::unique_ptr<Philox4x32> rng;
    core::TemplateManager templates;
    Hash128 last_template_hash{};
    // Automatic trace identification (dcr/trace_id.hpp): per-shard detector,
    // whether the open window is auto-opened, and the end-of-program gate.
    core::TraceIdentifier auto_tracer;
    bool auto_open = false;
    bool auto_stop = false;
    Hash128 call_fold{};  // running fold of §3 call hashes, compared at join
    std::uint64_t next_future = 0;
    std::uint64_t next_future_map = 0;
    std::uint64_t next_op = 0;
    std::uint64_t api_calls = 0;
    std::uint64_t windows_opened = 0;
    SimTime window_started = 0;
    std::map<std::uint64_t, CachedFuture> future_cache;  // delivered broadcast values
    std::map<std::uint64_t, FmPartial> fm_partials; // own partials per future map
    std::map<FunctionId, FunctionProfile> profile;  // merged into profile_ at join
    // Inbound future-value transport: one SPSC ring per producer shard plus
    // a mutexed overflow so producers never block (see ThreadConfig).
    std::vector<std::unique_ptr<SpscQueue<FutureMsg>>> inbox;
    std::mutex overflow_mu;
    std::vector<FutureMsg> overflow;
    alignas(kCacheLine) std::atomic<std::uint64_t> doorbell{0};
    std::string error;  // first failure on this thread, surfaced at join
  };

  struct FutureEntry {
    bool reduce = false;
    ShardId owner;                          // broadcast root (single-task owner)
    std::shared_ptr<ValueCollective> coll;  // non-null iff reduce
  };

  ThreadShard& shard(ShardId s) { return *shards_[s.value]; }
  ShardId single_op_owner(OpId op) const {
    return ShardId(static_cast<std::uint32_t>(op.value % config_.num_shards));
  }

  // Coarse-stage front door: the shared analyzer under analysis_mu_, stats
  // mirroring + spy emission gated on `fresh` (exactly once, program order).
  // Returns a copy so callers never touch the cache without the lock.
  core::CoarseDecision coarse_decision(ThreadShard& st, const core::OpRecord& op);
  core::CoarseDecision install_replayed_decision(const core::OpRecord& op);
  void emit_coarse_decision_locked(const core::OpRecord& op, const core::CoarseDecision& dec);

  // Dependence templates (same logic as DcrRuntime's, on this shard's store).
  void capture_template_op(ThreadShard& st, const core::OpRecord& op,
                           const core::CoarseDecision& dec);
  void validate_template_op(ThreadShard& st, const core::OpRecord& op,
                            const core::CoarseDecision& dec);
  std::shared_ptr<const core::PointPlanList> make_point_plan(ThreadShard& st,
                                                             const core::IndexPayload& index);

  std::shared_ptr<FenceCollective> fence_for(OpId dependent);
  void ensure_future(std::uint64_t id, OpId producer);
  void ensure_reduce_future(std::uint64_t id, core::ReduceOp rop);
  void publish_future(ThreadShard& st, std::uint64_t id, double value);
  void drain_inbox(ThreadShard& st);
  CachedFuture wait_broadcast(ThreadShard& st, std::uint64_t id);
  // The calling shard's current causal context; invalid when scope is off.
  dcr::scope::TraceCtx scope_ctx(const ThreadShard& st) const;
  bool checks_enabled() const;

  void issue(ThreadShard& st, core::OpPayload payload);
  void process_op(ThreadShard& st, const core::OpRecord& op);
  void execute_points(ThreadShard& st, const core::OpRecord& op,
                      const core::CoarseDecision& dec);
  void launch_point_task(ThreadShard& st, const core::OpRecord& op, const rt::Point& point,
                         std::uint64_t point_index, const std::vector<rt::Requirement>& reqs,
                         const std::vector<std::int64_t>& args, FunctionId fn,
                         std::uint64_t future_map_id, std::uint64_t future_id = ~0ull);
  void record_realized_locked(TaskId tid, OpId op, std::uint64_t point_index,
                              const std::vector<TaskId>& preds);
  void shard_main(ThreadShard& st, const core::ApplicationMain& main);
  void busy_spin(SimTime wall_ns);
  // Template window close + hit/miss accounting (mirrors
  // DcrRuntime::close_template_window).
  void close_template_window(ThreadShard& st);
  // Abort AND retire an auto-detected window: unlike an explicit window's
  // abort (which leaves the slot for its matching end_trace), an auto window
  // has no end_trace, so it must be closed here (mirrors
  // DcrRuntime::retire_auto_window).
  void retire_auto_window(ThreadShard& st, const char* reason);

  core::FunctionRegistry& functions_;
  ThreadConfig config_;
  prof::Profiler profiler_;
  WallClock clock_;
  rt::ProjectionRegistry projections_;
  statics::LaunchLedger statics_ledger_;
  core::UserTracker tracker_;
  core::CoarseAnalyzer coarse_{
      core::CoarseAnalyzer::Options{config_.disable_fence_elision, config_.static_analysis,
                                    config_.statics_check},
      profiler_};
  ConcurrencyGate gate_{config_.compute_slots};

  std::vector<std::unique_ptr<ThreadShard>> shards_;

  // analysis_mu_ guards the shared analyzer, the statics ledger, the DcrStats
  // mirrors below, and spy op/coarse-dep emission (program-order streams).
  std::mutex analysis_mu_;
  std::uint64_t coarse_deps_ = 0;
  std::uint64_t fences_elided_ = 0;
  std::uint64_t fences_inserted_ = 0;

  // graph_mu_ guards the user tracker, realized graph/tasks, spy task/edge
  // records, and the per-function profile.
  std::mutex graph_mu_;
  rt::TaskGraph realized_graph_;
  std::vector<RealizedTask> realized_tasks_;
  std::map<FunctionId, FunctionProfile> profile_;

  std::mutex futures_mu_;
  std::map<std::uint64_t, FutureEntry> futures_;
  std::mutex fences_mu_;
  std::map<std::uint64_t, std::shared_ptr<FenceCollective>> fences_;

  std::atomic<std::uint64_t> point_tasks_launched_{0};
  std::atomic<std::uint64_t> determinism_checks_{0};
  std::atomic<std::uint64_t> traced_ops_{0};

  std::unique_ptr<spy::Trace> trace_;  // non-null iff config_.record_trace
  // dcr-scope ledgers + crash flight recorder; non-null iff config_.scope.
  std::unique_ptr<dcr::scope::Recorder> scope_;
  std::unique_ptr<dcr::scope::FlightRecorder> flight_;
  bool executed_ = false;
};

}  // namespace dcr::exec
