// Bounded lock-free queues for the real-threads backend.
//
// SpscQueue: single-producer / single-consumer ring buffer with acquire /
// release publication — the N×N inter-shard mailboxes (one per directed shard
// pair) use it so future-value delivery never takes a lock.  MpmcQueue: the
// classic bounded multi-producer / multi-consumer ring with per-cell sequence
// numbers, used as the fan-in stage of value collectives where every shard
// pushes its contribution into one queue.
//
// Both are fixed-capacity (power of two) and non-blocking at this layer:
// try_push / try_pop return false on full / empty, and close() wakes anyone
// spinning in the blocking helpers so shutdown-while-blocked cannot hang
// (tests/test_exec.cpp stresses exactly that).  Blocking helpers park on the
// queue's atomic via C++20 wait/notify rather than spinning hot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace dcr::exec {

inline constexpr std::size_t kCacheLine = 64;

inline std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Producer side.  False when full (backpressure) or closed.
  bool try_push(T v) {
    if (closed()) return false;
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= capacity_) return false;
    cells_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    progress_.fetch_add(1, std::memory_order_release);
    progress_.notify_all();
    return true;
  }

  // Consumer side.  Empty optional when nothing is available.
  std::optional<T> try_pop() {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> v(std::move(cells_[h & mask_]));
    head_.store(h + 1, std::memory_order_release);
    progress_.fetch_add(1, std::memory_order_release);
    progress_.notify_all();
    return v;
  }

  // Blocking producer: parks while full.  False iff the queue was closed
  // before the value could be enqueued.  The generation is loaded BEFORE the
  // attempt: any state change in between (a pop, a close) bumps progress_,
  // so the wait returns instead of sleeping through it.  Waiting on the
  // cursors themselves would miss close() — it wakes current sleepers but
  // never changes a cursor, so a rank parking just after that notify would
  // hang (QueueStress.ShutdownWhileBlocked caught exactly this).
  bool push(T v) {
    for (;;) {
      const std::uint64_t gen = progress_.load(std::memory_order_acquire);
      if (try_push(v)) return true;  // copy: v must survive a failed attempt
      if (closed()) return false;
      progress_.wait(gen, std::memory_order_acquire);
    }
  }

  // Blocking consumer: parks while empty.  Empty optional iff the queue was
  // closed and fully drained.
  std::optional<T> pop() {
    for (;;) {
      const std::uint64_t gen = progress_.load(std::memory_order_acquire);
      if (auto v = try_pop()) return v;
      if (closed()) return try_pop();  // drain a racing final push
      progress_.wait(gen, std::memory_order_acquire);
    }
  }

  // Wakes every blocked producer and consumer; pending items stay poppable.
  void close() {
    closed_.store(true, std::memory_order_release);
    progress_.fetch_add(1, std::memory_order_release);
    progress_.notify_all();
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer cursor
  // Progress generation (same scheme as MpmcQueue::waiters_): bumped on every
  // successful push/pop and on close — the only atomic the blocking helpers
  // park on.  libstdc++ elides the futex syscall when nobody is waiting, so
  // the lock-free try_ paths stay cheap.
  alignas(kCacheLine) std::atomic<std::uint64_t> progress_{0};
  alignas(kCacheLine) std::atomic<bool> closed_{false};
};

// Bounded MPMC ring with per-cell sequence numbers (Vyukov): producers claim
// cells by CAS on the enqueue cursor, consumers by CAS on the dequeue cursor,
// and the cell's sequence publishes the payload between them.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return capacity_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  bool try_push(T v) {
    if (closed()) return false;
    std::size_t pos = enqueue_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          waiters_.fetch_add(1, std::memory_order_release);
          waiters_.notify_all();
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> try_pop() {
    std::size_t pos = dequeue_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          std::optional<T> v(std::move(cell.value));
          cell.seq.store(pos + capacity_, std::memory_order_release);
          waiters_.fetch_add(1, std::memory_order_release);
          waiters_.notify_all();
          return v;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
  }

  bool push(T v) {
    for (;;) {
      const std::uint64_t gen = waiters_.load(std::memory_order_acquire);
      if (try_push(v)) return true;  // copy: v must survive a failed attempt
      if (closed()) return false;
      waiters_.wait(gen, std::memory_order_acquire);
    }
  }

  std::optional<T> pop() {
    for (;;) {
      const std::uint64_t gen = waiters_.load(std::memory_order_acquire);
      if (auto v = try_pop()) return v;
      if (closed()) return try_pop();
      waiters_.wait(gen, std::memory_order_acquire);
    }
  }

  void close() {
    closed_.store(true, std::memory_order_release);
    waiters_.fetch_add(1, std::memory_order_release);
    waiters_.notify_all();
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_{0};
  // Progress generation: bumped on every successful push/pop/close so blocked
  // peers re-check instead of sleeping through a state change.
  alignas(kCacheLine) std::atomic<std::uint64_t> waiters_{0};
  alignas(kCacheLine) std::atomic<bool> closed_{false};
};

}  // namespace dcr::exec
