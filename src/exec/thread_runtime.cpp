#include "exec/thread_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/hash128.hpp"
#include "dcr/sig.hpp"
#include "spy/verify.hpp"

namespace dcr::exec {

using core::AttachPayload;
using core::CoarseDecision;
using core::DeletePayload;
using core::FencePayload;
using core::FillPayload;
using core::IndexPayload;
using core::OpPayload;
using core::OpRecord;
using core::PointPlan;
using core::PointPlanList;
using core::ReducePayload;
using core::SigBuilder;
using core::TaskPayload;
using core::TemplateDep;
using core::TemplateFence;
using core::TemplateManager;
using core::TemplateOp;

// ===========================================================================
// ThreadShardContext: the per-thread implementation of the application API.
// Mirrors the simulator's ShardContext (dcr/runtime.cpp) call for call —
// same sig_* hashing, same issue points, same prof accounting — minus the
// simulator-only machinery (virtual-time charging, replay fast-forwarding,
// control taint, dcr-scope).
// ===========================================================================
class ThreadShardContext final : public core::Context {
 public:
  ThreadShardContext(ThreadRuntime& rt, ThreadRuntime::ThreadShard& st)
      : rt_(rt), st_(st) {}

  // Each API call hashes its identity and arguments (paper §3).  Instead of
  // the simulator's per-call collective check, each thread folds its hash
  // stream into a running 128-bit digest compared across shards at join —
  // same detection guarantee, no cross-thread traffic on the hot path.
  void api_call(const char* name, SigBuilder& sig) {
    const Hash128 h = sig.finish();
    st_.last_template_hash = sig.tfinish();
    if (rt_.checks_enabled()) {
      rt_.determinism_checks_.fetch_add(1, std::memory_order_relaxed);
      Hasher128 fold;
      fold.value(st_.call_fold.lo).value(st_.call_fold.hi).value(h.lo).value(h.hi);
      st_.call_fold = fold.finish();
    }
    if (rt_.trace_) {
      rt_.trace_->calls[st_.id.value].push_back({st_.api_calls, name, h, sig.take_args()});
    }
    st_.api_calls++;
    auto_trace_observe();
    if (rt_.config_.tracing_enabled) st_.templates.on_call(st_.last_template_hash);
  }

  // Whether sig_* encoders should capture named arguments for the spy trace.
  bool cap() const { return rt_.trace_ != nullptr; }

  // ---- data model: every shard replays creations on its own forest replica;
  //      the handles agree across shards by control determinism ----
  FieldSpaceId create_field_space() override {
    SigBuilder sb = core::sig_create_field_space(cap());
    api_call("create_field_space", sb);
    return st_.forest.create_field_space();
  }

  FieldId allocate_field(FieldSpaceId fs, std::size_t bytes, std::string name) override {
    SigBuilder sb = core::sig_allocate_field(cap(), fs, bytes, name);
    api_call("allocate_field", sb);
    return st_.forest.allocate_field(fs, bytes, std::move(name));
  }

  RegionTreeId create_region(const rt::Rect& bounds, FieldSpaceId fs) override {
    SigBuilder sb = core::sig_create_region(cap(), bounds, fs);
    api_call("create_region", sb);
    return st_.forest.create_tree(bounds, fs);
  }

  IndexSpaceId root(RegionTreeId tree) override { return st_.forest.root(tree); }

  PartitionId partition_equal(IndexSpaceId parent, std::size_t pieces, int axis) override {
    SigBuilder sb = core::sig_partition_equal(cap(), parent, pieces, axis);
    api_call("partition_equal", sb);
    return st_.forest.partition_equal(parent, pieces, axis);
  }

  PartitionId partition_with_halo(IndexSpaceId parent, std::size_t pieces,
                                  std::int64_t halo, int axis) override {
    SigBuilder sb = core::sig_partition_with_halo(cap(), parent, pieces, halo, axis);
    api_call("partition_with_halo", sb);
    return st_.forest.partition_with_halo(parent, pieces, halo, axis);
  }

  PartitionId create_partition(IndexSpaceId parent, std::vector<rt::Rect> pieces,
                               bool disjoint) override {
    SigBuilder sb = core::sig_create_partition(cap(), parent, pieces, disjoint);
    api_call("create_partition", sb);
    return st_.forest.create_partition(parent, std::move(pieces), disjoint);
  }

  PartitionId partition_grid(IndexSpaceId parent, std::size_t tiles_x, std::size_t tiles_y,
                             std::int64_t halo) override {
    SigBuilder sb = core::sig_partition_grid(cap(), parent, tiles_x, tiles_y, halo);
    api_call("partition_grid", sb);
    return st_.forest.partition_grid(parent, tiles_x, tiles_y, halo);
  }

  void destroy_region(RegionTreeId tree) override {
    SigBuilder sb = core::sig_destroy_region(cap(), tree);
    api_call("destroy_region", sb);
    rt_.issue(st_, DeletePayload{tree});
  }

  void destroy_region_deferred(RegionTreeId tree) override {
    (void)tree;
    DCR_CHECK(false) << "destroy_region_deferred is not supported on the threads backend "
                        "(no deferred-deletion consensus poller); use destroy_region";
  }

  const rt::RegionForest& forest() const override { return st_.forest; }

  // ---- operations ----
  void fill(IndexSpaceId region, std::vector<FieldId> fields) override {
    SigBuilder sb = core::sig_fill(cap(), region, fields);
    api_call("fill", sb);
    rt_.issue(st_, FillPayload{region, std::move(fields)});
  }

  core::Future launch(const core::TaskLaunch& launch) override {
    SigBuilder sb = core::sig_launch(cap(), launch);
    api_call("launch", sb);
    TaskPayload p{launch, ~0ull};
    core::Future f;
    if (launch.wants_future) {
      f.id = st_.next_future++;
      p.future_id = f.id;
    }
    rt_.issue(st_, std::move(p));
    return f;
  }

  core::FutureMap index_launch(const core::IndexLaunch& launch) override {
    SigBuilder sb = core::sig_index_launch(cap(), launch);
    api_call("index_launch", sb);
    IndexPayload p{launch, ~0ull};
    core::FutureMap fm;
    if (launch.wants_futures) {
      fm.id = st_.next_future_map++;
      p.future_map_id = fm.id;
    }
    rt_.issue(st_, std::move(p));
    return fm;
  }

  core::Future reduce_future_map(const core::FutureMap& fm, core::ReduceOp op) override {
    SigBuilder sb = core::sig_reduce_future_map(cap(), fm, op);
    api_call("reduce_future_map", sb);
    DCR_CHECK(fm.valid()) << "reducing an invalid future map";
    core::Future f;
    f.id = st_.next_future++;
    rt_.issue(st_, ReducePayload{fm.id, op, f.id});
    return f;
  }

  double get_future(const core::Future& f) override {
    SigBuilder sb = core::sig_get_future(cap(), f);
    api_call("get_future", sb);
    DCR_CHECK(f.valid()) << "waiting on an invalid future";
    ThreadRuntime::FutureEntry entry;
    {
      std::lock_guard<std::mutex> lk(rt_.futures_mu_);
      auto it = rt_.futures_.find(f.id);
      DCR_CHECK(it != rt_.futures_.end()) << "future " << f.id << " has no producer";
      entry = it->second;
    }
    const SimTime wait_start = rt_.clock_.now();
    double v;
    dcr::scope::TraceCtx releaser;
    if (entry.reduce) {
      v = entry.coll->wait();
      // Merged context of the fan-in: the globally last contributor.
      if (rt_.scope_) releaser = entry.coll->result_ctx();
    } else {
      const ThreadRuntime::CachedFuture cf = rt_.wait_broadcast(st_, f.id);
      v = cf.value;
      releaser = cf.ctx;
    }
    const SimTime now = rt_.clock_.now();
    prof::Counters& pc = rt_.profiler_.shard(st_.id.value);
    pc.add(prof::Counter::FutureWaits);
    pc.add(prof::Counter::FutureWaitNs, now - wait_start);
    pc.observe(prof::Hist::FutureWaitNs, now - wait_start);
    rt_.profiler_.emit(
        {prof::SpanKind::FutureWait, prof::Lane::Control, st_.id.value, wait_start, now});
    if (rt_.scope_) {
      rt_.scope_->on_future_wait(st_.id.value, f.id, wait_start, now, releaser);
    }
    return v;
  }

  bool future_is_ready(const core::Future& f) override {
    // Timing-dependent by design (Figure 5): the *call* is still hashed, but
    // the returned value may differ across shards — here genuinely racy wall
    // clock rather than simulated divergence.
    SigBuilder sb = core::sig_future_is_ready(cap(), f);
    api_call("future_is_ready", sb);
    ThreadRuntime::FutureEntry entry;
    {
      std::lock_guard<std::mutex> lk(rt_.futures_mu_);
      auto it = rt_.futures_.find(f.id);
      if (it == rt_.futures_.end()) return false;
      entry = it->second;
    }
    if (entry.reduce) return entry.coll->ready();
    rt_.drain_inbox(st_);
    return st_.future_cache.count(f.id) != 0;
  }

  void execution_fence() override {
    SigBuilder sb = core::sig_execution_fence(cap());
    api_call("execution_fence", sb);
    // The fence op's coarse decision is a pipeline barrier (it fences on the
    // previous op), and processing is inline, so once issue() returns every
    // shard has finished executing every prior op's owned points.
    const SimTime wait_start = rt_.clock_.now();
    rt_.issue(st_, FencePayload{});
    rt_.profiler_.shard(st_.id.value).add(prof::Counter::ExecutionFences);
    rt_.profiler_.emit({prof::SpanKind::ExecutionFence, prof::Lane::Control, st_.id.value,
                        wait_start, rt_.clock_.now()});
  }

  void attach_file(IndexSpaceId region, std::vector<FieldId> fields,
                   std::string file) override {
    SigBuilder sb = core::sig_attach_file(cap(), region, fields, file);
    api_call("attach_file", sb);
    AttachPayload p;
    p.region = region;
    p.fields = std::move(fields);
    p.file = std::move(file);
    rt_.issue(st_, std::move(p));
  }

  void detach_file(IndexSpaceId region, std::vector<FieldId> fields) override {
    SigBuilder sb = core::sig_detach_file(cap(), region, fields);
    api_call("detach_file", sb);
    AttachPayload p;
    p.region = region;
    p.fields = std::move(fields);
    p.detach = true;
    rt_.issue(st_, std::move(p));
  }

  void attach_file_group(PartitionId partition, std::vector<FieldId> fields,
                         std::string file_basename) override {
    SigBuilder sb = core::sig_attach_file_group(cap(), partition, fields, file_basename);
    api_call("attach_file_group", sb);
    AttachPayload p;
    p.partition = partition;
    p.fields = std::move(fields);
    p.file = std::move(file_basename);
    rt_.issue(st_, std::move(p));
  }

  void detach_file_group(PartitionId partition, std::vector<FieldId> fields) override {
    SigBuilder sb = core::sig_detach_file_group(cap(), partition, fields);
    api_call("detach_file_group", sb);
    AttachPayload p;
    p.partition = partition;
    p.fields = std::move(fields);
    p.detach = true;
    rt_.issue(st_, std::move(p));
  }

  // ---- tracing (dependence templates, dcr/template.hpp) ----
  void begin_trace(TraceId id) override {
    SigBuilder sb = core::sig_begin_trace(cap(), id);
    api_call("begin_trace", sb);
    if (!rt_.config_.tracing_enabled) return;
    if (st_.auto_open) {
      // An auto-detected window is open: the explicit window wins (the tap in
      // api_call usually aborted it already when the begin_trace signature
      // broke the repeat).
      rt_.retire_auto_window(st_, "explicit begin_trace inside an auto window");
    }
    DCR_CHECK(!st_.templates.active()) << "nested traces are not supported";
    // No recovery or deferred-deletion epochs on this backend; the forest
    // mutation epoch is the only validity key that can move.
    st_.templates.begin(id, st_.forest.mutation_epoch(), /*recovery_epoch=*/0,
                        /*deletion_epoch=*/0, rt_.config_.template_validation);
    st_.windows_opened++;
    st_.window_started = rt_.clock_.now();
  }

  void end_trace(TraceId id) override {
    SigBuilder sb = core::sig_end_trace(cap(), id);
    api_call("end_trace", sb);
    if (!rt_.config_.tracing_enabled) return;
    DCR_CHECK(st_.templates.active() && *st_.templates.active() == id)
        << "mismatched end_trace";
    close_window_accounting();
  }

  // Window close + hit/miss accounting shared by explicit end_trace and
  // auto-detected windows (mirrors the simulator backend).
  void close_window_accounting() { rt_.close_template_window(st_); }

  // ---- automatic trace identification (dcr/trace_id.hpp) ----
  // Same tap as the simulator backend's ShardContext::auto_trace_observe:
  // runs before templates.on_call so Open windows receive the current call as
  // their first op.  The detector is a pure function of the call-hash stream,
  // which is identical across backends, so both promote the same traces at
  // the same call indices.
  void auto_trace_observe() {
    const ThreadConfig& cfg = rt_.config_;
    if (!cfg.auto_trace.enabled || !cfg.tracing_enabled || st_.auto_stop) return;
    const bool explicit_open = st_.templates.active() && !st_.auto_open;
    const core::TraceIdentifier::Result r =
        st_.auto_tracer.observe(st_.last_template_hash, explicit_open);
    if (explicit_open) return;  // suppressed: no actions can fire
    switch (r.action) {
      case core::TraceIdentifier::Action::None:
        break;
      case core::TraceIdentifier::Action::Open:
        if (!st_.templates.active()) auto_open_window(r.trace);
        break;
      case core::TraceIdentifier::Action::Close:
        auto_close_window();
        break;
      case core::TraceIdentifier::Action::CloseOpen:
        auto_close_window();
        auto_open_window(r.trace);
        break;
      case core::TraceIdentifier::Action::AbortClose:
        rt_.retire_auto_window(st_, "auto trace broke mid-period");
        break;
    }
  }

  void auto_open_window(TraceId id) {
    st_.templates.begin(id, st_.forest.mutation_epoch(), /*recovery_epoch=*/0,
                        /*deletion_epoch=*/0, rt_.config_.template_validation);
    st_.windows_opened++;
    st_.window_started = rt_.clock_.now();
    st_.auto_open = true;
  }

  void auto_close_window() {
    if (st_.templates.active()) close_window_accounting();
    st_.auto_open = false;
  }

  // ---- environment ----
  std::size_t num_shards() const override { return rt_.num_shards(); }
  ShardId shard_id() const override { return st_.id; }
  Philox4x32& rng() override { return *st_.rng; }
  SimTime now() const override { return rt_.clock_.now(); }

 private:
  ThreadRuntime& rt_;
  ThreadRuntime::ThreadShard& st_;
};

// ===========================================================================
// ThreadRuntime
// ===========================================================================

namespace {
// record_trace needs the realized graph's edges, so it implies
// record_task_graph; normalized before any member (tracker_) consumes it.
ThreadConfig normalize_config(ThreadConfig config) {
  if (config.record_trace) config.record_task_graph = true;
  if (config.num_shards == 0) config.num_shards = 1;
  return config;
}
}  // namespace

ThreadRuntime::ThreadRuntime(core::FunctionRegistry& functions, ThreadConfig config)
    : functions_(functions),
      config_(normalize_config(std::move(config))),
      profiler_(config_.num_shards, config_.profile),
      tracker_(/*keep_completed=*/config_.record_task_graph) {
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto st = std::make_unique<ThreadShard>();
    st->id = ShardId(static_cast<std::uint32_t>(s));
    st->prover = std::make_unique<statics::InterferenceProver>(st->forest, projections_,
                                                               config_.statics_check);
    st->rng = std::make_unique<Philox4x32>(/*seed=*/0x5eed, /*stream=*/0);
    st->inbox.reserve(config_.num_shards);
    for (std::size_t p = 0; p < config_.num_shards; ++p) {
      st->inbox.push_back(p == s ? nullptr
                                 : std::make_unique<SpscQueue<FutureMsg>>(
                                       config_.mailbox_capacity));
    }
    shards_.push_back(std::move(st));
  }
  if (config_.record_trace) {
    trace_ = std::make_unique<spy::Trace>();
    trace_->num_shards = config_.num_shards;
    trace_->calls.resize(config_.num_shards);
  }
  if (config_.scope) {
    scope_ = std::make_unique<dcr::scope::Recorder>(config_.num_shards);
    if (config_.flight_capacity > 0) {
      flight_ = std::make_unique<dcr::scope::FlightRecorder>(
          config_.num_shards, config_.flight_capacity);
      scope_->set_flight(flight_.get());
      // Fatal-signal hook: a wedged or crashing fleet (SIGSEGV/SIGABRT/
      // SIGBUS/SIGFPE on any shard thread) still leaves a post-mortem dump.
      if (!config_.flight_path.empty()) {
        dcr::scope::FlightRecorder::arm_signal_dump(
            flight_.get(), config_.flight_path, &profiler_);
      }
    }
  }
}

ThreadRuntime::~ThreadRuntime() {
  if (flight_ && !config_.flight_path.empty()) {
    dcr::scope::FlightRecorder::arm_signal_dump(nullptr, {}, nullptr);
  }
}

bool ThreadRuntime::checks_enabled() const {
  // Matches the simulator's DeterminismChecker::enabled(): the per-call count
  // is charged whenever checking is on, even single-shard (where the join
  // comparison below is vacuous) — keeps DcrStats parity exact.
  return config_.determinism_checks;
}

ShardingId ThreadRuntime::register_sharding(core::ShardingRegistry::ShardingFn fn) {
  DCR_CHECK(!executed_) << "register shardings before execute()";
  ShardingId id = ShardingId::invalid();
  for (auto& st : shards_) {
    const ShardingId got = st->shardings.register_sharding(fn);
    if (!id.valid()) id = got;
    DCR_CHECK(got.value == id.value) << "sharding registries diverged";
  }
  return id;
}

core::TemplateManager& ThreadRuntime::shard_templates(ShardId s) {
  return shard(s).templates;
}

const core::TraceIdentifier& ThreadRuntime::shard_auto_tracer(ShardId s) {
  return shard(s).auto_tracer;
}

// ----------------------------------------------------------- coarse stage

void ThreadRuntime::emit_coarse_decision_locked(const OpRecord& op,
                                                const CoarseDecision& dec) {
  coarse_deps_ += dec.deps;
  fences_elided_ += dec.elided;
  if (!dec.fence_sources.empty()) fences_inserted_++;
  if (trace_) {
    // Ops reach here exactly once, in program order (analyzer-checked).
    for (const spy::CoarseDepRecord& d : dec.dep_records) trace_->coarse_deps.push_back(d);
    trace_->ops.push_back({op.id, dec.kind, op.call_index, dec.fence_sources});
  }
}

CoarseDecision ThreadRuntime::coarse_decision(ThreadShard& st, const OpRecord& op) {
  std::lock_guard<std::mutex> lk(analysis_mu_);
  bool fresh = false;
  // The calling shard's forest/prover stand in for the simulator's shared
  // ones: every replica is at the same program point when its shard first
  // reaches this op, so whichever shard computes the decision sees identical
  // region state (control determinism).  Later shards hit the cache.
  const CoarseDecision& dec = coarse_.decide(op, st.forest, *st.prover, statics_ledger_,
                                             single_op_owner(op.id), &fresh);
  if (fresh) emit_coarse_decision_locked(op, dec);
  return dec;  // copy: the cache must not be read outside the lock
}

CoarseDecision ThreadRuntime::install_replayed_decision(const OpRecord& op) {
  std::lock_guard<std::mutex> lk(analysis_mu_);
  bool fresh = false;
  const CoarseDecision& dec = coarse_.install_replayed(op, statics_ledger_, &fresh);
  if (fresh) emit_coarse_decision_locked(op, dec);
  return dec;
}

// ----------------------------------------------------- dependence templates
// Same logic as DcrRuntime's capture/validate, operating on this shard's
// template store (dcr/runtime.cpp is the reference).

std::shared_ptr<const PointPlanList> ThreadRuntime::make_point_plan(
    ThreadShard& st, const IndexPayload& index) {
  const core::IndexLaunch& launch = index.launch;
  const auto& points =
      st.shardings.owned_points(launch.sharding, launch.domain, num_shards(), st.id);
  auto plan = std::make_shared<PointPlanList>();
  plan->reserve(points.size());
  for (const rt::Point& p : points) {
    PointPlan pp;
    pp.point = p;
    pp.point_index = rt::linearize(launch.domain, p);
    pp.reqs.reserve(launch.requirements.size());
    for (const rt::GroupRequirement& gr : launch.requirements) {
      pp.reqs.push_back(gr.concretize(st.forest, projections_, p, launch.domain));
    }
    plan->push_back(std::move(pp));
  }
  return plan;
}

void ThreadRuntime::capture_template_op(ThreadShard& st, const OpRecord& op,
                                        const CoarseDecision& dec) {
  TemplateOp rec;
  rec.payload_kind = op.payload.index();
  rec.call_hash = op.call_hash;
  rec.kind = dec.kind;
  rec.num_reqs = dec.num_reqs;
  rec.summaries = dec.summaries;
  rec.deps.reserve(dec.dep_records.size());
  for (const spy::CoarseDepRecord& d : dec.dep_records) {
    if (d.prev.value >= op.id.value) {
      st.templates.abort_window("non-causal coarse dependence during capture");
      return;
    }
    rec.deps.push_back({op.id.value - d.prev.value, d.prev.value, /*absolute=*/false,
                        d.tree, d.field, d.elided});
  }
  rec.fences.reserve(dec.fence_sources.size());
  for (OpId src : dec.fence_sources) {
    rec.fences.push_back({op.id.value - src.value, src.value, /*absolute=*/false});
  }
  rec.plan = op.plan;
  st.templates.record_op(std::move(rec));
}

void ThreadRuntime::validate_template_op(ThreadShard& st, const OpRecord& op,
                                         const CoarseDecision& dec) {
  TemplateOp& rec = *op.trec;
  auto fail = [&](const char* what) {
    st.templates.validation_failed(std::string("shadow compare mismatch at op ") +
                                   std::to_string(op.id.value) + ": " + what);
  };
  if (!(rec.call_hash == op.call_hash)) return fail("API-call identity");
  if (rec.kind != dec.kind) return fail("op kind");
  if (rec.num_reqs != dec.num_reqs) return fail("requirement count");
  if (rec.summaries != dec.summaries) return fail("requirement summaries");
  if (rec.deps.size() != dec.dep_records.size()) return fail("coarse dependence count");
  for (std::size_t i = 0; i < rec.deps.size(); ++i) {
    const spy::CoarseDepRecord& d = dec.dep_records[i];
    TemplateDep& rd = rec.deps[i];
    if (rd.tree != d.tree || rd.field != d.field || rd.elided != d.elided) {
      return fail("coarse dependences / elision verdicts");
    }
    if (rd.prev_offset == op.id.value - d.prev.value) {
      rd.absolute = false;
    } else if (rd.abs_source == d.prev.value) {
      rd.absolute = true;
    } else {
      return fail("coarse dependence source");
    }
  }
  if (rec.fences.size() != dec.fence_sources.size()) return fail("fence count");
  for (std::size_t i = 0; i < rec.fences.size(); ++i) {
    const OpId src = dec.fence_sources[i];
    TemplateFence& rf = rec.fences[i];
    if (rf.prev_offset == op.id.value - src.value) {
      rf.absolute = false;
    } else if (rf.abs_source == src.value) {
      rf.absolute = true;
    } else {
      return fail("fence sources");
    }
  }
  const PointPlanList empty;
  const PointPlanList& fresh_plan = op.plan ? *op.plan : empty;
  const PointPlanList& stored_plan = rec.plan ? *rec.plan : empty;
  if (!(fresh_plan == stored_plan)) return fail("fine-stage point plan");
}

// ------------------------------------------------------------- collectives

std::shared_ptr<FenceCollective> ThreadRuntime::fence_for(OpId dependent) {
  std::lock_guard<std::mutex> lk(fences_mu_);
  auto it = fences_.find(dependent.value);
  if (it == fences_.end()) {
    it = fences_
             .emplace(dependent.value, std::make_shared<FenceCollective>(
                                           static_cast<std::uint32_t>(num_shards())))
             .first;
    profiler_.global().add(prof::GlobalCounter::FenceCollectives);
    profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  }
  return it->second;
}

void ThreadRuntime::ensure_future(std::uint64_t id, OpId producer) {
  std::lock_guard<std::mutex> lk(futures_mu_);
  auto [it, inserted] = futures_.try_emplace(id);
  if (!inserted) return;
  profiler_.global().add(prof::GlobalCounter::FutureCollectives);
  profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  // Single-task futures broadcast from the owner shard (§4.2); delivery is
  // the SPSC mailbox fabric, so no collective object is needed.
  it->second.reduce = false;
  it->second.owner = single_op_owner(producer);
}

void ThreadRuntime::ensure_reduce_future(std::uint64_t id, core::ReduceOp rop) {
  std::lock_guard<std::mutex> lk(futures_mu_);
  auto [it, inserted] = futures_.try_emplace(id);
  if (!inserted) return;
  profiler_.global().add(prof::GlobalCounter::FutureCollectives);
  profiler_.global().add(prof::GlobalCounter::CollectiveRounds);
  double init = 0.0;
  switch (rop) {
    case core::ReduceOp::Sum: init = 0.0; break;
    case core::ReduceOp::Min: init = std::numeric_limits<double>::infinity(); break;
    case core::ReduceOp::Max: init = -std::numeric_limits<double>::infinity(); break;
  }
  it->second.reduce = true;
  it->second.owner = ShardId(0);
  it->second.coll = std::make_shared<ValueCollective>(
      static_cast<std::uint32_t>(num_shards()), init,
      [rop](double a, double b) { return core::apply_reduce(rop, a, b); });
}

dcr::scope::TraceCtx ThreadRuntime::scope_ctx(const ThreadShard& st) const {
  if (!scope_) return {};
  return scope_->current_ctx(st.id.value, clock_.now());
}

void ThreadRuntime::publish_future(ThreadShard& st, std::uint64_t id, double value) {
  // The producer's current span rides the mailbox payload so a waiter can
  // name the span that released it (the threads analogue of the simulator's
  // network-carried TraceCtx).
  const dcr::scope::TraceCtx ctx = scope_ctx(st);
  st.future_cache[id] = CachedFuture{value, ctx};
  for (auto& tp : shards_) {
    ThreadShard& peer = *tp;
    if (peer.id.value == st.id.value) continue;
    // try_push then overflow: the producer must never block on a slow
    // consumer — the consumer may be parked at a fence that needs this
    // producer's arrival to complete.
    if (!peer.inbox[st.id.value]->try_push(FutureMsg{id, value, ctx})) {
      std::lock_guard<std::mutex> lk(peer.overflow_mu);
      peer.overflow.push_back(FutureMsg{id, value, ctx});
    }
    peer.doorbell.fetch_add(1, std::memory_order_release);
    peer.doorbell.notify_all();
    // One logical message per peer delivery, counted against the origin.
    if (scope_) scope_->on_message(ctx, sizeof(FutureMsg));
  }
}

void ThreadRuntime::drain_inbox(ThreadShard& st) {
  for (auto& q : st.inbox) {
    if (!q) continue;
    while (auto m = q->try_pop()) st.future_cache[m->id] = CachedFuture{m->value, m->ctx};
  }
  std::vector<FutureMsg> spill;
  {
    std::lock_guard<std::mutex> lk(st.overflow_mu);
    spill.swap(st.overflow);
  }
  for (const FutureMsg& m : spill) st.future_cache[m.id] = CachedFuture{m.value, m.ctx};
}

ThreadRuntime::CachedFuture ThreadRuntime::wait_broadcast(ThreadShard& st,
                                                          std::uint64_t id) {
  for (;;) {
    auto it = st.future_cache.find(id);
    if (it != st.future_cache.end()) return it->second;
    // Doorbell generation loaded BEFORE the drain: a publish racing with the
    // drain bumps the generation, so the wait below returns immediately.
    const std::uint64_t gen = st.doorbell.load(std::memory_order_acquire);
    drain_inbox(st);
    auto it2 = st.future_cache.find(id);
    if (it2 != st.future_cache.end()) return it2->second;
    st.doorbell.wait(gen, std::memory_order_acquire);
  }
}

// ----------------------------------------------------------------- issuing

void ThreadRuntime::issue(ThreadShard& st, OpPayload payload) {
  OpRecord op{OpId(st.next_op++), std::move(payload), false};
  // The API call that issued this op was hashed just before issue().
  if (st.api_calls > 0) op.call_index = st.api_calls - 1;

  // Mapper query (§4): deterministic, so every shard rewrites identically.
  if (config_.mapper) {
    if (auto* index = std::get_if<IndexPayload>(&op.payload)) {
      index->launch.sharding = config_.mapper->select_sharding(index->launch, num_shards());
    }
  }

  // Futures are created eagerly at issue so the control program can wait on
  // them before any shard's execution has reached the producing op.
  if (const auto* task = std::get_if<TaskPayload>(&op.payload)) {
    if (task->future_id != ~0ull) ensure_future(task->future_id, op.id);
  } else if (const auto* red = std::get_if<ReducePayload>(&op.payload)) {
    ensure_reduce_future(red->future_id, red->op);
  }

  // Dependence templates: capture this op's decisions or replay the recorded
  // ones, per the window's mode (same dispatch as the simulator backend).
  if (st.templates.active()) {
    op.call_hash = st.last_template_hash;
    switch (st.templates.mode()) {
      case TemplateManager::Mode::Capture:
        op.tmode = TemplateManager::Mode::Capture;
        if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
          op.plan = make_point_plan(st, *index);
        }
        break;
      case TemplateManager::Mode::Validate: {
        TemplateOp* rec = st.templates.next_op();
        if (rec == nullptr) break;  // window just aborted
        if (rec->payload_kind != op.payload.index()) {
          st.templates.abort_window("op payload kind diverged from the recording");
          break;
        }
        op.tmode = TemplateManager::Mode::Validate;
        op.trec = rec;
        if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
          op.plan = make_point_plan(st, *index);
        }
        break;
      }
      case TemplateManager::Mode::Replay: {
        TemplateOp* rec = st.templates.next_op();
        if (rec == nullptr) break;
        if (rec->payload_kind != op.payload.index() || !(rec->call_hash == op.call_hash)) {
          st.templates.abort_window("op identity diverged from the recording");
          break;
        }
        op.tmode = TemplateManager::Mode::Replay;
        op.trec = rec;
        op.plan = rec->plan;
        op.traced = true;  // reduced analysis cost accounting
        traced_ops_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case TemplateManager::Mode::Inactive:
        break;
    }
  }

  if (op.tmode == TemplateManager::Mode::Replay && op.trec != nullptr) {
    install_replayed_decision(op);
  }
  process_op(st, op);
}

void ThreadRuntime::process_op(ThreadShard& st, const OpRecord& op) {
  // ---- coarse stage: the shared analyzer; replayed ops hit the cache ----
  const SimTime c0 = clock_.now();
  const CoarseDecision dec = coarse_decision(st, op);
  if (op.tmode == TemplateManager::Mode::Capture) {
    capture_template_op(st, op, dec);
  } else if (op.tmode == TemplateManager::Mode::Validate) {
    validate_template_op(st, op, dec);
    // Also feed the shadow re-recording that replaces the stored template if
    // the compare above mismatched (record_op routes by mode).
    capture_template_op(st, op, dec);
  }

  const std::uint64_t prof_iter =
      st.templates.active().has_value() ? st.windows_opened - 1 : prof::kNoId;
  prof::Counters& pc = profiler_.shard(st.id.value);
  const SimTime c1 = clock_.now();
  pc.add(op.traced ? prof::Counter::TracedCoarseOps : prof::Counter::CoarseOps);
  pc.add(prof::Counter::CoarseAnalysisNs, c1 - c0);  // real wall ns here
  pc.observe(prof::Hist::CoarseStageNs, c1 - c0);
  profiler_.emit({op.traced ? prof::SpanKind::CoarseReplay : prof::SpanKind::CoarseAnalysis,
                  prof::Lane::Analysis, st.id.value, c0, c1, op.id.value, prof_iter});

  // ---- fence gating: every shard processes every op, so every shard
  //      arrives; identical decision streams make the barrier order safe ----
  if (!dec.fence_sources.empty()) {
    pc.add(prof::Counter::FenceWaits);
    std::shared_ptr<FenceCollective> coll = fence_for(op.id);
    const SimTime w0 = clock_.now();
    if (scope_) {
      // Blame stamping: the SAME w0/w1 clock reads feed both the prof
      // FenceWaitNs charge below and the collective's per-rank blame slots,
      // so the two ledgers reconcile exactly by construction.
      const dcr::scope::TraceCtx ctx =
          scope_->fence_arrival(op.id.value, st.id.value, prof_iter, w0);
      coll->arrive_and_wait(st.id.value, w0, ctx);
    } else {
      coll->arrive_and_wait();
    }
    const SimTime w1 = clock_.now();
    if (scope_) {
      coll->complete_rank(st.id.value, w1);
      scope_->on_fence_wait(st.id.value, op.id.value, w0, w1);
    }
    pc.add(prof::Counter::FenceWaitNs, w1 - w0);
    pc.observe(prof::Hist::FenceWaitNs, w1 - w0);
    profiler_.emit({prof::SpanKind::FenceWait, prof::Lane::Fence, st.id.value, w0, w1,
                    op.id.value, prof_iter});
  }

  // ---- fine stage: owned-point accounting mirrors the simulator ----
  std::uint64_t owned = 0;
  if (op.plan) {
    owned = op.plan->size();
  } else if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    owned = st.shardings
                .owned_points(index->launch.sharding, index->launch.domain, num_shards(),
                              st.id)
                .size();
  } else if (const auto* attach = std::get_if<AttachPayload>(&op.payload);
             attach && attach->partition.valid()) {
    const rt::Rect dom = rt::Rect::r1(
        0, static_cast<std::int64_t>(st.forest.num_subregions(attach->partition)) - 1);
    owned = st.shardings
                .owned_points(core::ShardingRegistry::blocked(), dom, num_shards(), st.id)
                .size();
  } else if (!std::holds_alternative<ReducePayload>(op.payload) &&
             !std::holds_alternative<FencePayload>(op.payload)) {
    owned = (single_op_owner(op.id) == st.id) ? 1 : 0;
  }
  const bool static_skip = dec.static_skip && !op.traced;
  const SimTime f0 = clock_.now();
  pc.add(op.traced ? prof::Counter::TracedFineOps : prof::Counter::FineOps);
  pc.add(prof::Counter::FinePoints, owned);
  if (static_skip) {
    pc.add(prof::Counter::StaticSkipOps);
    pc.add(prof::Counter::StaticSkipPoints, owned);
    // No virtual cost model here, so no SavedNs estimate is charged.
  }
  execute_points(st, op, dec);
  const SimTime f1 = clock_.now();
  pc.add(prof::Counter::FineAnalysisNs, f1 - f0);
  pc.observe(prof::Hist::FineStageNs, f1 - f0);
  pc.observe(prof::Hist::FinePointsPerOp, owned);
  profiler_.emit({op.traced ? prof::SpanKind::FineReplay : prof::SpanKind::FineAnalysis,
                  prof::Lane::Analysis, st.id.value, f0, f1, op.id.value, prof_iter});
  if (scope_) {
    // The completed fine stage becomes this shard's current span — the
    // causal parent of every launch/arrival/publish it does next.
    scope_->on_fine_stage(st.id.value, op.id.value, op.traced, f0, f1);
  }
}

// --------------------------------------------------------------- execution

void ThreadRuntime::execute_points(ThreadShard& st, const OpRecord& op,
                                   const CoarseDecision& dec) {
  (void)dec;

  if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    const core::IndexLaunch& launch = index->launch;
    if (index->future_map_id != ~0ull) {
      st.fm_partials.try_emplace(index->future_map_id);  // identity partials
    }
    if (op.plan) {
      // Template path: per-point projection results were recorded at capture,
      // so the replay touches neither the forest nor the projection registry.
      for (const PointPlan& pp : *op.plan) {
        launch_point_task(st, op, pp.point, pp.point_index, pp.reqs, launch.args,
                          launch.fn, index->future_map_id);
      }
    } else {
      const auto& points =
          st.shardings.owned_points(launch.sharding, launch.domain, num_shards(), st.id);
      for (const rt::Point& p : points) {
        std::vector<rt::Requirement> reqs;
        reqs.reserve(launch.requirements.size());
        for (const rt::GroupRequirement& gr : launch.requirements) {
          reqs.push_back(gr.concretize(st.forest, projections_, p, launch.domain));
        }
        const std::uint64_t point_index = rt::linearize(launch.domain, p);
        launch_point_task(st, op, p, point_index, reqs, launch.args, launch.fn,
                          index->future_map_id);
      }
    }
    return;
  }

  if (const auto* task = std::get_if<TaskPayload>(&op.payload)) {
    if (single_op_owner(op.id) == st.id) {
      rt::Point p;
      p.dim = 1;
      launch_point_task(st, op, p, 0, task->launch.requirements, task->launch.args,
                        task->launch.fn, ~0ull, task->future_id);
    }
    return;
  }

  if (const auto* fill = std::get_if<FillPayload>(&op.payload)) {
    if (single_op_owner(op.id) != st.id) return;
    const rt::Rect rect = st.forest.bounds(fill->region);
    const RegionTreeId tree = st.forest.tree_of(fill->region);
    const TaskId tid(op.id.value * core::kPointsPerOp);
    if (config_.record_task_graph) {
      std::lock_guard<std::mutex> lk(graph_mu_);
      for (FieldId f : fill->fields) {
        auto conflicts = tracker_.record_use(tree, f, rect, rt::Privilege::WriteDiscard,
                                             rt::kNoRedop, tid, sim::Event::no_event());
        record_realized_locked(tid, op.id, 0, conflicts.tasks);
      }
      if (trace_) {
        trace_->tasks.push_back(
            {tid, op.id, 0, st.id,
             {{tree, rect, fill->fields, rt::Privilege::WriteDiscard, rt::kNoRedop}}});
      }
    }
    return;
  }

  if (const auto* attach = std::get_if<AttachPayload>(&op.payload)) {
    const auto priv =
        attach->detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard;
    if (attach->partition.valid()) {
      // Parallel file I/O: every shard attaches/flushes the pieces it owns.
      const RegionTreeId tree = st.forest.tree_of_partition(attach->partition);
      const rt::Rect dom = rt::Rect::r1(
          0, static_cast<std::int64_t>(st.forest.num_subregions(attach->partition)) - 1);
      const auto& points =
          st.shardings.owned_points(core::ShardingRegistry::blocked(), dom, num_shards(),
                                    st.id);
      for (const rt::Point& p : points) {
        const std::uint64_t color = rt::linearize(dom, p);
        const rt::Rect rect = st.forest.bounds(st.forest.subregion(attach->partition, color));
        const TaskId tid(op.id.value * core::kPointsPerOp + color);
        if (config_.record_task_graph) {
          std::lock_guard<std::mutex> lk(graph_mu_);
          std::vector<TaskId> preds;
          for (FieldId f : attach->fields) {
            auto conflicts = tracker_.record_use(tree, f, rect, priv, rt::kNoRedop, tid,
                                                 sim::Event::no_event());
            preds.insert(preds.end(), conflicts.tasks.begin(), conflicts.tasks.end());
          }
          record_realized_locked(tid, op.id, color, preds);
          if (trace_) {
            trace_->tasks.push_back(
                {tid, op.id, color, st.id, {{tree, rect, attach->fields, priv, rt::kNoRedop}}});
          }
        }
      }
      return;
    }
    if (single_op_owner(op.id) != st.id) return;
    const rt::Rect rect = st.forest.bounds(attach->region);
    const RegionTreeId tree = st.forest.tree_of(attach->region);
    const TaskId tid(op.id.value * core::kPointsPerOp);
    if (config_.record_task_graph) {
      std::lock_guard<std::mutex> lk(graph_mu_);
      for (FieldId f : attach->fields) {
        auto conflicts = tracker_.record_use(tree, f, rect, priv, rt::kNoRedop, tid,
                                             sim::Event::no_event());
        record_realized_locked(tid, op.id, 0, conflicts.tasks);
      }
      if (trace_) {
        trace_->tasks.push_back(
            {tid, op.id, 0, st.id, {{tree, rect, attach->fields, priv, rt::kNoRedop}}});
      }
    }
    return;
  }

  if (const auto* red = std::get_if<ReducePayload>(&op.payload)) {
    auto fit = st.fm_partials.find(red->fm_id);
    DCR_CHECK(fit != st.fm_partials.end()) << "reduce of unknown future map";
    double partial = 0.0;
    switch (red->op) {
      case core::ReduceOp::Sum: partial = fit->second.sum; break;
      case core::ReduceOp::Min: partial = fit->second.min; break;
      case core::ReduceOp::Max: partial = fit->second.max; break;
    }
    std::shared_ptr<ValueCollective> coll;
    {
      std::lock_guard<std::mutex> lk(futures_mu_);
      coll = futures_.at(red->future_id).coll;  // created at issue
    }
    // Inline execution: this shard's owned points of the producing launch
    // completed during that op's process_op, so the partial is final.
    coll->arrive(st.id.value, partial, scope_ctx(st));
    return;
  }

  if (const auto* del = std::get_if<DeletePayload>(&op.payload)) {
    // Each shard destroys its own replica at the same program point, so the
    // forests (and their mutation epochs) stay in lockstep.
    if (!st.forest.tree_destroyed(del->tree)) st.forest.destroy_tree(del->tree);
    return;
  }
}

void ThreadRuntime::launch_point_task(ThreadShard& st, const OpRecord& op,
                                      const rt::Point& point, std::uint64_t point_index,
                                      const std::vector<rt::Requirement>& reqs,
                                      const std::vector<std::int64_t>& args, FunctionId fn,
                                      std::uint64_t future_map_id, std::uint64_t future_id) {
  const TaskId tid(op.id.value * core::kPointsPerOp + point_index);

  core::PointTaskInfo info;
  info.fn = fn;
  info.point = point;
  if (const auto* index = std::get_if<IndexPayload>(&op.payload)) {
    info.domain = index->launch.domain;
  }
  info.requirements = reqs;
  info.args = args;
  for (const rt::Requirement& r : reqs) {
    info.volume += st.forest.bounds(r.region).volume();
  }

  if (config_.record_task_graph) {
    // One point task's dependence recording is atomic under graph_mu_.  The
    // edge set is still deterministic across interleavings: cross-shard
    // conflicting uses are ordered by a fence (their coarse dependence was
    // not elided), and elided dependences are provably same-shard.
    std::lock_guard<std::mutex> lk(graph_mu_);
    std::vector<TaskId> conflict_tasks;
    for (const rt::Requirement& r : reqs) {
      const rt::Rect rect = st.forest.bounds(r.region);
      const RegionTreeId tree = st.forest.tree_of(r.region);
      for (FieldId f : r.fields) {
        auto conflicts = tracker_.record_use(tree, f, rect, r.privilege, r.redop, tid,
                                             sim::Event::no_event());
        conflict_tasks.insert(conflict_tasks.end(), conflicts.tasks.begin(),
                              conflicts.tasks.end());
      }
    }
    record_realized_locked(tid, op.id, point_index, conflict_tasks);
    if (trace_) {
      std::vector<spy::AccessRecord> accesses;
      accesses.reserve(reqs.size());
      for (const rt::Requirement& r : reqs) {
        accesses.push_back({st.forest.tree_of(r.region), st.forest.bounds(r.region),
                            r.fields, r.privilege, r.redop});
      }
      trace_->tasks.push_back({tid, op.id, point_index, st.id, std::move(accesses)});
    }
  }

  const SimTime duration = functions_.at(fn).duration(info);
  FunctionProfile& fp = st.profile[fn];
  fp.tasks++;
  fp.total_time += duration;

  // Work model (benchmarks): occupy a compute slot in proportion to the
  // task's modeled duration — spinning (host compute) or sleeping (host
  // blocked on an offloaded kernel; overlaps regardless of core count).
  if (config_.work_scale > 0.0) {
    const auto wall_ns =
        static_cast<SimTime>(static_cast<double>(duration) * config_.work_scale);
    gate_.acquire();
    if (config_.work_sleep) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wall_ns));
    } else {
      busy_spin(wall_ns);
    }
    gate_.release();
  }

  const bool wants_value = future_map_id != ~0ull || future_id != ~0ull;
  double value = 0.0;
  if (wants_value) {
    const core::TaskFunction& f = functions_.at(fn);
    DCR_CHECK(f.future_value != nullptr)
        << "task '" << f.name << "' launched for a future but has no value model";
    value = f.future_value(info);
  }
  if (future_map_id != ~0ull) {
    FmPartial& p = st.fm_partials.at(future_map_id);
    p.sum += value;
    p.min = std::min(p.min, value);
    p.max = std::max(p.max, value);
  }
  if (future_id != ~0ull) {
    // Only the owner shard executes a single task; it is the broadcast root.
    publish_future(st, future_id, value);
  }
  point_tasks_launched_.fetch_add(1, std::memory_order_relaxed);
  if (scope_) {
    scope_->on_task_launch(st.id.value, op.id.value, point_index, clock_.now());
  }
}

void ThreadRuntime::record_realized_locked(TaskId tid, OpId op, std::uint64_t point_index,
                                           const std::vector<TaskId>& preds) {
  if (!config_.record_task_graph) return;
  if (!realized_graph_.has_task(tid)) {
    realized_graph_.add_task(tid);
    realized_tasks_.push_back(RealizedTask{tid, op, point_index});
  }
  for (TaskId p : preds) {
    if (!realized_graph_.has_edge(p, tid)) {
      realized_graph_.add_edge(p, tid);
      if (trace_) trace_->edges.push_back({p, tid});
    }
  }
}

void ThreadRuntime::busy_spin(SimTime wall_ns) {
  const SimTime until = clock_.now() + wall_ns;
  while (clock_.now() < until) {
    // Busy wait: this models compute occupancy, so yielding would defeat it.
  }
}

// ----------------------------------------------------------------- execute

void ThreadRuntime::close_template_window(ThreadShard& st) {
  prof::Counters& pc = profiler_.shard(st.id.value);
  pc.add(prof::Counter::WindowsClosed);
  pc.add(st.templates.mode() == TemplateManager::Mode::Replay
             ? prof::Counter::TemplateWindowHits
             : prof::Counter::TemplateWindowMisses);
  st.templates.end(st.forest);
  profiler_.emit({prof::SpanKind::TraceWindow, prof::Lane::Control, st.id.value,
                  st.window_started, clock_.now(), prof::kNoId,
                  st.windows_opened - 1});
}

void ThreadRuntime::retire_auto_window(ThreadShard& st, const char* reason) {
  if (st.templates.active()) {
    st.templates.abort_window(reason);  // no-op if already aborted underneath
    close_template_window(st);
  }
  st.auto_open = false;
  st.auto_tracer.interrupt();
}

void ThreadRuntime::shard_main(ThreadShard& st, const core::ApplicationMain& main) {
  try {
    ThreadShardContext ctx(*this, st);
    main(ctx);
    // The control program is over: discard any open auto window (it can never
    // complete its period) and stop the detector before the final barrier, so
    // the finalization fence matches the simulator's finalize_shard behavior.
    if (st.auto_open) {
      retire_auto_window(st, "control program ended inside an auto window");
    }
    st.auto_stop = true;
    // Final barrier so the call/op streams match the simulator's
    // finalize_shard, and every shard's work is done before join.
    ctx.execution_fence();
  } catch (const std::exception& e) {
    st.error = e.what();
  } catch (...) {
    st.error = "unknown exception in shard control program";
  }
}

core::DcrStats ThreadRuntime::execute(const core::ApplicationMain& main) {
  DCR_CHECK(!executed_) << "ThreadRuntime::execute may only run once";
  executed_ = true;
  const SimTime started = clock_.now();

  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (auto& st : shards_) {
    threads.emplace_back([this, &main, sp = st.get()] { shard_main(*sp, main); });
  }
  for (std::thread& t : threads) t.join();

  core::DcrStats stats;
  stats.makespan = clock_.now() - started;  // real wall-clock nanoseconds
  stats.completed = true;
  for (const auto& st : shards_) {
    if (!st->error.empty()) {
      stats.completed = false;
      stats.aborted = true;
      if (stats.abort_message.empty()) stats.abort_message = st->error;
    }
  }

  for (const auto& st : shards_) {
    stats.ops_issued = std::max(stats.ops_issued, st->next_op);
  }
  stats.point_tasks_launched = point_tasks_launched_.load(std::memory_order_relaxed);
  stats.fences_inserted = fences_inserted_;
  stats.fences_elided = fences_elided_;
  stats.coarse_deps = coarse_deps_;
  stats.determinism_checks = determinism_checks_.load(std::memory_order_relaxed);
  stats.traced_ops = traced_ops_.load(std::memory_order_relaxed);

  // Join-time control-determinism verification: the per-shard folded call
  // digests must agree (paper §3; the simulator checks per call instead).
  if (checks_enabled()) {
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      if (shards_[s]->api_calls != shards_[0]->api_calls ||
          !(shards_[s]->call_fold == shards_[0]->call_fold)) {
        stats.determinism_violation = true;
        stats.violation_message = "control determinism violation: shard " +
                                  std::to_string(s) +
                                  " call stream diverged from shard 0";
        break;
      }
    }
    if (trace_ && stats.determinism_violation) {
      // With a spy trace on hand, upgrade to the linter's argument-level
      // report: which call diverged and which argument differed.
      const spy::LintResult lint = spy::lint_control_determinism(*trace_);
      if (lint.divergent) stats.violation_message = lint.message;
    }
    if (stats.determinism_violation) stats.completed = false;
  }

  for (const auto& st : shards_) {
    const TemplateManager::Counters& c = st->templates.counters();
    stats.templates_captured += c.captured;
    stats.templates_validated += c.validated;
    stats.template_replays += c.window_replays;
    stats.template_invalidations += c.invalidated;
    stats.template_validation_failures += c.validation_failures;
    const core::TraceIdentifier::Counters& a = st->auto_tracer.counters();
    stats.auto_trace_detections += a.detections;
    stats.auto_trace_promotions += a.promotions;
    stats.auto_trace_demotions += a.demotions;
    stats.auto_trace_windows += a.windows;
    stats.auto_trace_aborts += a.aborts;
    stats.auto_trace_collisions += a.collisions;
    prof::Counters& apc = profiler_.shard(st->id.value);
    apc.add(prof::Counter::AutoTraceDetections, a.detections);
    apc.add(prof::Counter::AutoTracePromotions, a.promotions);
    apc.add(prof::Counter::AutoTraceDemotions, a.demotions);
    apc.add(prof::Counter::AutoTraceWindows, a.windows);
    apc.add(prof::Counter::AutoTraceAborts, a.aborts);
    apc.add(prof::Counter::AutoTraceCollisions, a.collisions);
    for (const auto& [fn, fp] : st->profile) {
      FunctionProfile& merged = profile_[fn];
      merged.tasks += fp.tasks;
      merged.total_time += fp.total_time;
    }
  }

  // Static interference analysis: resolved/unresolved were charged online by
  // the shared analyzer; cache hits come from the per-shard prover replicas
  // (their sum depends on which shard analyzed first, unlike the simulator's
  // single prover — excluded from differential parity for that reason).
  {
    std::uint64_t cache_hits = 0;
    for (const auto& st : shards_) cache_hits += st->prover->stats().cache_hits;
    stats.statics_cache_hits = cache_hits;
    profiler_.global().add(prof::GlobalCounter::StaticProofCacheHits, cache_hits);
    stats.statics_resolved_ops =
        profiler_.global().get(prof::GlobalCounter::StaticLaunchesResolved);
    stats.statics_unresolved_ops =
        profiler_.global().get(prof::GlobalCounter::StaticLaunchesUnresolved);
    for (std::size_t sh = 0; sh < num_shards(); ++sh) {
      stats.statics_skipped_points +=
          profiler_.shard(static_cast<std::uint32_t>(sh)).get(prof::Counter::StaticSkipPoints);
    }
  }

  // Mirror end-of-run totals into the global counter bank, as the simulator
  // backend does, so prof snapshots are self-contained on both backends.
  prof::Counters& g = profiler_.global();
  g.add(prof::GlobalCounter::TemplateShadowMismatches, stats.template_validation_failures);
  g.add(prof::GlobalCounter::TemplateInvalidations, stats.template_invalidations);

  // dcr-scope: the shards have quiesced (joined), so harvest every fence's
  // per-rank wall-clock timestamps + merged releaser into the blame ledger,
  // in dependent-op order (fences_ is an ordered map) — same drain point as
  // the simulator backend's end of execute.
  if (scope_) {
    std::lock_guard<std::mutex> lk(fences_mu_);
    for (const auto& [op, coll] : fences_) {
      if (coll) scope_->harvest_fence(op, *coll);
    }
    scope_->set_run_info(stats.makespan, /*recovery_epochs=*/0);
  }

  // Crash flight recorder: a determinism violation (or a shard thread dying
  // on an exception) aborts post-mortem triage to the ring dump — no re-run
  // needed to see what each shard was doing last.
  if (flight_ && !config_.flight_path.empty() &&
      (stats.determinism_violation || stats.aborted)) {
    const std::string& why = stats.determinism_violation
                                 ? stats.violation_message
                                 : stats.abort_message;
    flight_->dump(config_.flight_path, why.c_str(), &profiler_);
  }

  return stats;
}

}  // namespace dcr::exec
