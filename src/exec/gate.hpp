// ConcurrencyGate: caps how many shard threads execute point-task work
// simultaneously — the threads backend's stand-in for "P compute cores".
// A counting semaphore over an atomic with futex-style parking; shards
// release their slot before parking on a collective and reacquire after, so
// the gate never deadlocks a barrier.  Capacity 0 means uncapped.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/check.hpp"
#include "exec/queue.hpp"

namespace dcr::exec {

class ConcurrencyGate {
 public:
  explicit ConcurrencyGate(std::uint32_t slots) : slots_(slots) {}

  ConcurrencyGate(const ConcurrencyGate&) = delete;
  ConcurrencyGate& operator=(const ConcurrencyGate&) = delete;

  bool enabled() const { return slots_ != 0; }
  std::uint32_t slots() const { return slots_; }

  void acquire() {
    if (!enabled()) return;
    for (;;) {
      std::uint32_t cur = available_.load(std::memory_order_relaxed);
      while (cur > 0) {
        if (available_.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire)) {
          return;
        }
      }
      available_.wait(0, std::memory_order_acquire);
    }
  }

  void release() {
    if (!enabled()) return;
    const std::uint32_t prev = available_.fetch_add(1, std::memory_order_release);
    DCR_CHECK(prev < slots_) << "concurrency gate over-release";
    available_.notify_one();
  }

 private:
  const std::uint32_t slots_;
  alignas(kCacheLine) std::atomic<std::uint32_t> available_{slots_};
};

}  // namespace dcr::exec
