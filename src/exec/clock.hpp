// WallClock: the threads backend's Clock — real nanoseconds from
// std::chrono::steady_clock, zeroed at construction so span timestamps start
// near 0 like the simulator's virtual clock (common/clock.hpp).
#pragma once

#include <chrono>

#include "common/clock.hpp"

namespace dcr::exec {

class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  SimTime now() const override {
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace dcr::exec
