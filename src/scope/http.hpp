// Minimal localhost HTTP exposition endpoint for dcr-scope watch.
//
// Serves the latest Prometheus text snapshot (set via set_body, typically
// from the MetricsExposer's or WallMetricsRefresher's sink callback) at
// GET / and GET /metrics on 127.0.0.1:port; other paths get a 404 with a
// proper Content-Length.  A single background thread accepts connections,
// reads the request line, and writes the snapshot — no keep-alive, no TLS.
// Binding to the loopback interface only keeps the endpoint off the network;
// this is a debugging aid, not a production metrics server.
//
// Runs on a real OS thread alongside the (single-threaded, virtual-time)
// simulator: the sim thread only touches the server through the mutex-guarded
// set_body, so there is no interaction with simulated time.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace dcr::scope {

class MetricsHttpServer {
 public:
  // Binds and starts the accept loop.  `port` 0 lets the OS pick; the chosen
  // port is available via port().  On bind failure ok() is false and the
  // server is inert.
  explicit MetricsHttpServer(std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  const std::string& error() const { return error_; }

  // Replace the snapshot served to subsequent requests.  Thread-safe.
  void set_body(std::string body);

  void stop();

 private:
  void serve();

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::string body_;
  std::thread thread_;
};

}  // namespace dcr::scope
