// Causal trace context for dcr-scope.
//
// A TraceCtx names the *cause* of a message: the trace it belongs to, the
// span (completed fine-analysis stage) that produced it, the shard it
// originated on, and the virtual time at which that cause happened.  The
// runtime stamps one onto every fence arrival, future contribution, and
// collective hop; the network and reliable transport carry it alongside the
// payload so it survives retransmission.  Everything here is host-side
// bookkeeping — a TraceCtx never charges virtual time, so a scope-on run is
// makespan-identical to a scope-off run.
//
// The merge rule `latest` is an associative, commutative max over
// (at, origin); folding arrival contexts up a reduction tree therefore yields
// the globally last contributor at the root regardless of merge order — which
// is exactly the shard (and span) a fence round was waiting on.
//
// This header deliberately depends only on common/types.hpp so sim/ headers
// can include it without a library cycle (scope's compiled pieces live in
// dcr_scope, which links *above* dcr_sim).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dcr::scope {

inline constexpr std::uint64_t kNoSpan = ~0ull;
inline constexpr std::uint32_t kNoShard = ~0u;

struct TraceCtx {
  std::uint64_t trace = 0;        // 0 = invalid (tracing off / untraced message)
  std::uint64_t span = kNoSpan;   // producing span id; kNoSpan = control work
  std::uint32_t origin = kNoShard;
  SimTime at = 0;                 // virtual time of the causing event

  bool valid() const { return trace != 0; }

  friend bool operator==(const TraceCtx& a, const TraceCtx& b) {
    return a.trace == b.trace && a.span == b.span && a.origin == b.origin &&
           a.at == b.at;
  }
};

// Pick the later of two contexts: larger `at` wins, ties broken by larger
// origin so the result is independent of merge order.  Invalid contexts are
// identity elements.
inline const TraceCtx& latest(const TraceCtx& a, const TraceCtx& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  if (a.at != b.at) return b.at > a.at ? b : a;
  return b.origin > a.origin ? b : a;
}

}  // namespace dcr::scope
