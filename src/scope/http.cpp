#include "scope/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dcr::scope {

namespace {

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::strerror(errno);
    return;
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd_, 8) < 0) {
    error_ = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::set_body(std::string body) {
  std::lock_guard<std::mutex> lock(mu_);
  body_ = std::move(body);
}

void MetricsHttpServer::stop() {
  if (fd_ < 0) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void MetricsHttpServer::serve() {
  while (!stop_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // timeout (re-check stop_) or transient error
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Parse the request line: the snapshot is served at "/" and "/metrics";
    // any other path gets a 404 with a proper Content-Length so well-behaved
    // clients (and curl) terminate cleanly.
    char buf[1024];
    const ssize_t n = ::read(client, buf, sizeof(buf) - 1);
    std::string resp;
    if (n > 0) {
      buf[n] = '\0';
      std::string path;
      const std::string req(buf);
      const std::size_t sp0 = req.find(' ');
      if (sp0 != std::string::npos) {
        const std::size_t sp1 = req.find(' ', sp0 + 1);
        if (sp1 != std::string::npos) path = req.substr(sp0 + 1, sp1 - sp0 - 1);
      }
      // Ignore any query string; HTTP/0.9-style lines with no version still
      // route by prefix.
      const std::size_t q = path.find('?');
      if (q != std::string::npos) path.resize(q);
      if (path.empty() || path == "/" || path == "/metrics") {
        std::string body;
        {
          std::lock_guard<std::mutex> lock(mu_);
          body = body_;
        }
        resp =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n" +
            body;
      } else {
        const std::string body = "not found\n";
        resp =
            "HTTP/1.1 404 Not Found\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n" +
            body;
      }
    } else {
      resp = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
    }
    write_all(client, resp.data(), resp.size());
    ::close(client);
  }
}

}  // namespace dcr::scope
