#include "scope/metrics.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "prof/profiler.hpp"
#include "scope/recorder.hpp"
#include "sim/machine.hpp"
#include "sim/simulator.hpp"

namespace dcr::scope {

// ------------------------------------------------------------ registry

MetricsRegistry::Metric& MetricsRegistry::metric(const std::string& name,
                                                 const std::string& help,
                                                 Type type, bool is_volatile) {
  auto [it, inserted] = index_.try_emplace(name, metrics_.size());
  if (inserted) {
    metrics_.push_back(Metric{name, help, type, is_volatile, {}, {}});
  }
  Metric& m = metrics_[it->second];
  DCR_CHECK(m.type == type) << "metric " << name << " re-registered with a new type";
  return m;
}

void MetricsRegistry::set(const std::string& name, const std::string& help,
                          Type type, double value, const std::string& labels,
                          bool is_volatile) {
  DCR_CHECK(type != Type::Histogram) << "use set_histogram for " << name;
  Metric& m = metric(name, help, type, is_volatile);
  for (Sample& s : m.samples) {
    if (s.labels == labels) {
      s.value = value;
      return;
    }
  }
  m.samples.push_back(Sample{labels, value});
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& help,
                                    const prof::Histogram& h,
                                    const std::string& labels,
                                    bool is_volatile) {
  std::vector<std::uint64_t> buckets(prof::Histogram::kBuckets, 0);
  for (std::size_t k = 0; k < prof::Histogram::kBuckets; ++k) {
    buckets[k] = h.bucket(k);
  }
  set_histogram(name, help, buckets, h.count(), h.sum(), labels, is_volatile);
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& help,
                                    const std::vector<std::uint64_t>& pow2_buckets,
                                    std::uint64_t count, std::uint64_t sum,
                                    const std::string& labels,
                                    bool is_volatile) {
  Metric& m = metric(name, help, Type::Histogram, is_volatile);
  HistSample hs;
  hs.labels = labels;
  hs.count = count;
  hs.sum = sum;
  // Cumulative `le` buckets at power-of-two upper bounds; trailing empty
  // buckets are trimmed (the +Inf bucket always renders).
  std::uint64_t cum = 0;
  std::size_t top = 0;
  for (std::size_t k = 0; k < pow2_buckets.size(); ++k) {
    if (pow2_buckets[k] != 0) top = k;
  }
  for (std::size_t k = 0; k <= top && k < pow2_buckets.size(); ++k) {
    cum += pow2_buckets[k];
    hs.buckets.emplace_back(k == 0 ? 1 : (std::uint64_t{1} << k), cum);
  }
  for (HistSample& existing : m.hist_samples) {
    if (existing.labels == hs.labels) {
      existing = std::move(hs);
      return;
    }
  }
  m.hist_samples.push_back(std::move(hs));
}

const MetricsRegistry::Metric* MetricsRegistry::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

void MetricsRegistry::clear() {
  metrics_.clear();
  index_.clear();
}

namespace {
// Render a double the way Prometheus clients expect: integral values without
// a fractional part, everything else with enough digits to round-trip.
std::string num(double v) {
  const auto as_int = static_cast<long long>(v);
  if (static_cast<double>(as_int) == v) return std::to_string(as_int);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string braced(const std::string& labels) {
  return labels.empty() ? "" : "{" + labels + "}";
}

std::string with_extra(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return "{" + labels + "," + extra + "}";
}
}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os, bool zero_volatile) const {
  for (const Metric& m : metrics_) {
    const bool zero = zero_volatile && m.is_volatile;
    os << "# HELP " << m.name << " " << m.help << "\n";
    os << "# TYPE " << m.name << " ";
    switch (m.type) {
      case Type::Gauge: os << "gauge"; break;
      case Type::Counter: os << "counter"; break;
      case Type::Histogram: os << "histogram"; break;
    }
    os << "\n";
    for (const Sample& s : m.samples) {
      os << m.name << braced(s.labels) << " " << (zero ? "0" : num(s.value))
         << "\n";
    }
    for (const HistSample& hs : m.hist_samples) {
      if (!zero) {
        for (const auto& [le, cum] : hs.buckets) {
          os << m.name << "_bucket"
             << with_extra(hs.labels, "le=\"" + std::to_string(le) + "\"") << " "
             << cum << "\n";
        }
      }
      os << m.name << "_bucket" << with_extra(hs.labels, "le=\"+Inf\"") << " "
         << (zero ? 0 : hs.count) << "\n";
      os << m.name << "_sum" << braced(hs.labels) << " " << (zero ? 0 : hs.sum)
         << "\n";
      os << m.name << "_count" << braced(hs.labels) << " "
         << (zero ? 0 : hs.count) << "\n";
    }
  }
}

std::string MetricsRegistry::prometheus_text(bool zero_volatile) const {
  std::ostringstream os;
  write_prometheus(os, zero_volatile);
  return os.str();
}

// ------------------------------------------------------------ collection

void collect_metrics(MetricsRegistry& reg, const CollectInputs& in) {
  using Type = MetricsRegistry::Type;
  const prof::Profiler* p = in.prof;
  DCR_CHECK(p != nullptr) << "collect_metrics needs a profiler";
  const prof::Counters& g = p->global();

  const auto dec = static_cast<double>(g.get(prof::GlobalCounter::FenceDecisions));
  const auto eli = static_cast<double>(g.get(prof::GlobalCounter::FencesElided));
  reg.set("dcr_fence_decisions_total", "Coarse fence-or-elide choices examined",
          Type::Counter, dec);
  reg.set("dcr_fences_issued_total", "Cross-shard fences issued", Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::FencesIssued)));
  reg.set("dcr_fences_elided_total", "Dependences proven shard-local",
          Type::Counter, eli);
  reg.set("dcr_fence_elision_rate", "Fences elided / fence decisions",
          Type::Gauge, dec > 0 ? eli / dec : 0.0);

  const auto hits = static_cast<double>(p->total(prof::Counter::TemplateWindowHits));
  const auto misses =
      static_cast<double>(p->total(prof::Counter::TemplateWindowMisses));
  reg.set("dcr_template_window_hits_total",
          "Trace windows replayed from a validated template", Type::Counter, hits);
  reg.set("dcr_template_window_misses_total",
          "Trace windows that ran fresh analysis", Type::Counter, misses);
  reg.set("dcr_template_hit_rate", "Window hits / windows seen", Type::Gauge,
          hits + misses > 0 ? hits / (hits + misses) : 0.0);

  reg.set("dcr_recovery_epochs", "Runtime-wide template-invalidation epoch",
          Type::Gauge,
          static_cast<double>(g.get(prof::GlobalCounter::RecoveryEpochs)));
  reg.set("dcr_recoveries_total", "Replacement shards spawned", Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::Recoveries)));
  reg.set("dcr_failures_detected_total",
          "Shards declared dead by the lease monitor", Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::FailuresDetected)));
  reg.set("dcr_retransmits_total", "Reliable-transport resends", Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::Retransmits)));
  reg.set("dcr_messages_dropped_total", "Fault-plan drops and blackout losses",
          Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::MessagesDropped)));

  reg.set("dcr_collective_rounds_total", "Collective operations started",
          Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::CollectiveRounds)),
          /*labels=*/"", /*is_volatile=*/true);
  reg.set("dcr_collective_latency_ns_total",
          "Summed fence latency, first arrival to completion", Type::Counter,
          static_cast<double>(g.get(prof::GlobalCounter::CollectiveLatencyNs)),
          /*labels=*/"", /*is_volatile=*/true);

  // Merged fence/future wait histograms (summed across shards).
  for (const prof::Hist h : {prof::Hist::FenceWaitNs, prof::Hist::FutureWaitNs}) {
    std::vector<std::uint64_t> buckets(prof::Histogram::kBuckets, 0);
    std::uint64_t count = 0, sum = 0;
    for (std::uint32_t s = 0; s < p->num_shards(); ++s) {
      const prof::Histogram& sh = p->shard(s).hist(h);
      for (std::size_t k = 0; k < prof::Histogram::kBuckets; ++k) {
        buckets[k] += sh.bucket(k);
      }
      count += sh.count();
      sum += sh.sum();
    }
    const std::string nm = h == prof::Hist::FenceWaitNs
                               ? "dcr_fence_wait_ns"
                               : "dcr_future_wait_ns";
    reg.set_histogram(nm, "Per-shard wait, merged across shards", buckets,
                      count, sum);
  }

  // Per-shard analysis-queue depth: how far ahead of `now` the shard's
  // analysis processor is already committed.
  if (in.machine != nullptr && p->num_shards() > 0) {
    sim::Machine& mach = *in.machine;
    const std::size_t spn =
        std::max<std::size_t>(1, p->num_shards() / mach.num_nodes());
    for (std::uint32_t s = 0; s < p->num_shards(); ++s) {
      const auto node = NodeId(static_cast<std::uint32_t>(s / spn));
      const SimTime busy_until = mach.analysis_proc(node).busy_until();
      const SimTime depth = busy_until > in.now ? busy_until - in.now : 0;
      reg.set("dcr_shard_queue_depth_ns",
              "Committed analysis work ahead of now, per shard", Type::Gauge,
              static_cast<double>(depth), "shard=\"" + std::to_string(s) + "\"",
              /*is_volatile=*/true);
    }
    reg.set("dcr_traced_messages_total",
            "Logical sends carrying a causal context", Type::Counter,
            static_cast<double>(mach.network().stats().traced_messages));
  }

  if (in.recorder != nullptr) {
    // Atomic live counters, NOT the merged ledger views: collect_metrics may
    // run concurrently with shard threads (the wall-clock refresher), and the
    // merged views are only legal once the shards have quiesced.  After
    // quiesce the counts equal the merged sizes exactly.
    const Recorder& rec = *in.recorder;
    reg.set("dcr_scope_spans_total", "Completed fine-stage spans recorded",
            Type::Counter, static_cast<double>(rec.spans_recorded()));
    reg.set("dcr_scope_fences_recorded", "Fences harvested into the blame ledger",
            Type::Counter, static_cast<double>(rec.fences_recorded()));
    reg.set("dcr_scope_task_launches_total", "Point-task launches recorded",
            Type::Counter, static_cast<double>(rec.launches_recorded()));
  }

  if (in.makespan > 0) {
    reg.set("dcr_makespan_ns", "Virtual makespan of the completed run",
            Type::Gauge, static_cast<double>(in.makespan), /*labels=*/"",
            /*is_volatile=*/true);
  }
}

// ------------------------------------------------------------ exposer

MetricsExposer::MetricsExposer(sim::Simulator& sim, Options opts,
                               std::function<void(MetricsRegistry&)> collect)
    : sim_(sim), opts_(std::move(opts)), collect_(std::move(collect)) {
  DCR_CHECK(opts_.interval > 0);
  DCR_CHECK(collect_ != nullptr);
}

WallMetricsRefresher::WallMetricsRefresher(
    Options opts, std::function<void(MetricsRegistry&)> collect)
    : opts_(std::move(opts)), collect_(std::move(collect)) {
  DCR_CHECK(opts_.interval_ns > 0);
  DCR_CHECK(collect_ != nullptr);
}

WallMetricsRefresher::~WallMetricsRefresher() { stop(); }

void WallMetricsRefresher::tick() {
  reg_.clear();
  collect_(reg_);
  std::string text = reg_.prometheus_text();
  if (!opts_.out_path.empty()) {
    std::ofstream out(opts_.out_path, std::ios::trunc);
    out << text;
  }
  if (opts_.sink) opts_.sink(text);
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_ = std::move(text);
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void WallMetricsRefresher::start() {
  DCR_CHECK(!thread_.joinable()) << "refresher already started";
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
      lk.unlock();
      tick();
      lk.lock();
      cv_.wait_for(lk, std::chrono::nanoseconds(opts_.interval_ns),
                   [this] { return stopping_; });
    }
  });
}

void WallMetricsRefresher::stop() {
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    was_running = thread_.joinable();
    stopping_ = true;
  }
  cv_.notify_all();
  if (was_running) {
    thread_.join();
    // Final collection after the fleet quiesced, so the last served snapshot
    // covers the whole run.
    tick();
  }
}

std::string WallMetricsRefresher::last_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_;
}

void MetricsExposer::start() {
  sim_.spawn("scope-exposer", [this](sim::ProcessContext& pctx) {
    for (;;) {
      pctx.delay(opts_.interval);
      reg_.clear();
      collect_(reg_);
      last_ = reg_.prometheus_text();
      if (!opts_.out_path.empty()) {
        std::ofstream out(opts_.out_path, std::ios::trunc);
        out << last_;
      }
      if (opts_.sink) opts_.sink(last_);
      ++ticks_;
      if (opts_.done && opts_.done()) return;
    }
  });
}

}  // namespace dcr::scope
