#include "scope/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <numeric>
#include <string>

#include "prof/profiler.hpp"

namespace dcr::scope {

namespace {
std::string span_desc(const Recorder& rec, std::uint64_t span_id) {
  const SpanRec* sp = rec.span(span_id);
  if (sp == nullptr) return "<control>";
  std::string out = sp->replayed ? "fine-replay" : "fine";
  out += " op " + std::to_string(sp->op) + " (span " + std::to_string(sp->id) + ")";
  return out;
}

void write_us_col(std::ostream& os, SimTime ns) {
  os << std::setw(12) << std::fixed << std::setprecision(1)
     << static_cast<double>(ns) / 1000.0;
}

// Restores the caller's format flags: the renders set fixed/precision, which
// would otherwise leak into whatever the caller prints next.
class StreamStateGuard {
 public:
  explicit StreamStateGuard(std::ostream& os)
      : os_(os), flags_(os.flags()), precision_(os.precision()) {}
  ~StreamStateGuard() {
    os_.flags(flags_);
    os_.precision(precision_);
  }

 private:
  std::ostream& os_;
  std::ios_base::fmtflags flags_;
  std::streamsize precision_;
};
}  // namespace

BlameReport build_blame(const Recorder& rec, const prof::Profiler& prof) {
  BlameReport r;
  r.shard_wait_ns.assign(rec.num_shards(), 0);
  for (const FenceRec& f : rec.fences()) {
    BlameEntry e;
    e.op = f.op;
    e.iter = f.iter;
    e.complete = f.complete;
    e.first_arrival = f.first_arrival;
    e.last_arrival = f.last_arrival;
    e.latency = f.latency();
    e.total_wait = f.total_wait();
    for (std::size_t s = 0; s < f.shards.size(); ++s) {
      e.arrivals += f.shards[s].arrived() ? 1 : 0;
      if (s < r.shard_wait_ns.size()) r.shard_wait_ns[s] += f.shards[s].wait();
    }
    if (f.releaser.valid()) {
      e.releaser_shard = f.releaser.origin;
      e.releaser_span = f.releaser.span;
      if (const SpanRec* sp = rec.span(f.releaser.span)) {
        e.releaser_op = sp->op;
        e.releaser_replayed = sp->replayed;
      }
    } else {
      e.releaser_shard = f.last_shard;  // raw timestamps (tracing off)
    }
    r.total_wait_ns += e.total_wait;
    r.complete_fences += e.complete ? 1 : 0;
    if (e.complete && e.releaser_shard != kNoShard && e.releaser_span != kNoSpan) {
      r.attributed++;
    }
    r.fences.push_back(e);
  }

  const prof::Counters& g = prof.global();
  r.fence_decisions = g.get(prof::GlobalCounter::FenceDecisions);
  r.fences_issued = g.get(prof::GlobalCounter::FencesIssued);
  r.fences_elided = g.get(prof::GlobalCounter::FencesElided);
  r.ledger_consistent = r.fences_issued + r.fences_elided == r.fence_decisions;
  r.prof_shard_wait_ns.resize(prof.num_shards());
  bool waits_ok = prof.num_shards() == rec.num_shards();
  for (std::uint32_t s = 0; s < prof.num_shards(); ++s) {
    r.prof_shard_wait_ns[s] = prof.shard(s).get(prof::Counter::FenceWaitNs);
    if (waits_ok && r.prof_shard_wait_ns[s] != r.shard_wait_ns[s]) waits_ok = false;
  }
  r.waits_reconcile = waits_ok;
  return r;
}

void render_blame(std::ostream& os, const BlameReport& r, const Recorder& rec,
                  std::size_t top) {
  const StreamStateGuard guard(os);
  os << "fence blame ledger: " << r.fences.size() << " fences ("
     << r.complete_fences << " complete, " << r.attributed
     << " attributed to a shard+span)\n";
  os << "ledger: decisions=" << r.fence_decisions << " issued=" << r.fences_issued
     << " elided=" << r.fences_elided
     << (r.ledger_consistent ? "  [issued+elided==decisions]"
                             : "  [LEDGER MISMATCH]")
     << "\n";
  os << "per-shard waits " << (r.waits_reconcile ? "reconcile exactly"
                                                 : "DO NOT reconcile")
     << " with dcr-prof fence_wait_ns\n\n";

  std::vector<std::size_t> order(r.fences.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return r.fences[a].latency > r.fences[b].latency;
  });
  os << "   fence-op    iter  latency(us) tot-wait(us)  released by\n";
  std::size_t shown = 0;
  for (const std::size_t i : order) {
    if (shown++ >= top) break;
    const BlameEntry& e = r.fences[i];
    os << std::setw(11) << e.op << " ";
    if (e.iter == kNoIter) {
      os << std::setw(7) << "-";
    } else {
      os << std::setw(7) << e.iter;
    }
    write_us_col(os, e.latency);
    write_us_col(os, e.total_wait);
    os << "  ";
    if (!e.complete) {
      os << "<incomplete: " << e.arrivals << " arrivals>";
    } else if (e.releaser_shard == kNoShard) {
      os << "<unknown>";
    } else {
      os << "shard " << e.releaser_shard << ", " << span_desc(rec, e.releaser_span);
    }
    os << "\n";
  }
  if (order.size() > top) {
    os << "  ... " << (order.size() - top) << " more (use --top)\n";
  }
}

namespace {
void write_shard_array(std::ostream& os, const std::vector<SimTime>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ",";
    os << v[i];
  }
  os << "]";
}
}  // namespace

void write_blame_json(std::ostream& os, const BlameReport& r) {
  os << "{\n  \"fence_decisions\": " << r.fence_decisions
     << ",\n  \"fences_issued\": " << r.fences_issued
     << ",\n  \"fences_elided\": " << r.fences_elided
     << ",\n  \"ledger_consistent\": " << (r.ledger_consistent ? "true" : "false")
     << ",\n  \"waits_reconcile\": " << (r.waits_reconcile ? "true" : "false")
     << ",\n  \"total_wait_ns\": " << r.total_wait_ns
     << ",\n  \"shard_wait_ns\": ";
  write_shard_array(os, r.shard_wait_ns);
  os << ",\n  \"fences\": [";
  for (std::size_t i = 0; i < r.fences.size(); ++i) {
    const BlameEntry& e = r.fences[i];
    os << (i ? ",\n    " : "\n    ") << "{\"op\": " << e.op;
    if (e.iter != kNoIter) os << ", \"iter\": " << e.iter;
    os << ", \"complete\": " << (e.complete ? "true" : "false")
       << ", \"latency_ns\": " << e.latency
       << ", \"total_wait_ns\": " << e.total_wait;
    if (e.releaser_shard != kNoShard) {
      os << ", \"releaser_shard\": " << e.releaser_shard;
    }
    if (e.releaser_span != kNoSpan) {
      os << ", \"releaser_span\": " << e.releaser_span
         << ", \"releaser_op\": " << e.releaser_op
         << ", \"releaser_replayed\": " << (e.releaser_replayed ? "true" : "false");
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

SkewReport build_skew(const Recorder& rec) {
  SkewReport r;
  r.num_shards = rec.num_shards();
  r.matrix.assign(r.num_shards, std::vector<SimTime>(r.num_shards + 1, 0));
  r.blamed_ns.assign(r.num_shards, 0);
  r.waited_ns.assign(r.num_shards, 0);
  std::map<std::uint64_t, SkewReport::Epoch> epochs;
  std::map<std::uint64_t, std::vector<SimTime>> epoch_blame;  // iter -> per-shard
  for (const FenceRec& f : rec.fences()) {
    const std::uint32_t blamed =
        f.releaser.valid() ? f.releaser.origin : f.last_shard;
    const std::size_t col =
        blamed < r.num_shards ? blamed : r.num_shards;  // "<none>" column
    SkewReport::Epoch& ep = epochs[f.iter];
    ep.iter = f.iter;
    ep.fences++;
    auto& eb = epoch_blame[f.iter];
    eb.resize(r.num_shards, 0);
    for (std::size_t w = 0; w < f.shards.size() && w < r.num_shards; ++w) {
      const SimTime wait = f.shards[w].wait();
      if (wait == 0) continue;
      r.matrix[w][col] += wait;
      r.waited_ns[w] += wait;
      ep.total_ns += wait;
      if (col < r.num_shards) {
        r.blamed_ns[col] += wait;
        eb[col] += wait;
      }
    }
  }
  for (auto& [iter, ep] : epochs) {
    const std::vector<SimTime>& eb = epoch_blame[iter];
    for (std::uint32_t s = 0; s < eb.size(); ++s) {
      if (eb[s] > ep.critical_ns) {
        ep.critical_shard = s;
        ep.critical_ns = eb[s];
      }
    }
    r.epochs.push_back(ep);
  }
  r.ranking.resize(r.num_shards);
  std::iota(r.ranking.begin(), r.ranking.end(), 0);
  std::stable_sort(r.ranking.begin(), r.ranking.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return r.blamed_ns[a] > r.blamed_ns[b];
                   });
  return r;
}

void render_skew(std::ostream& os, const SkewReport& r) {
  const StreamStateGuard guard(os);
  os << "shard skew report (" << r.num_shards << " shards)\n\n";
  os << "straggler ranking (total fence wait blamed on each shard):\n";
  std::size_t shown = 0;
  for (const std::uint32_t s : r.ranking) {
    if (r.blamed_ns[s] == 0 && shown > 0) break;
    if (shown++ >= 8) break;
    os << "  #" << shown << "  shard " << std::setw(3) << s << "  blamed";
    write_us_col(os, r.blamed_ns[s]);
    os << " us   waited";
    write_us_col(os, r.waited_ns[s]);
    os << " us\n";
  }
  os << "\ncritical shard per epoch:\n";
  for (const SkewReport::Epoch& ep : r.epochs) {
    os << "  epoch ";
    if (ep.iter == kNoIter) {
      os << "<untraced>";
    } else {
      os << std::setw(4) << ep.iter << "      ";
    }
    os << "  fences " << std::setw(4) << ep.fences << "  critical ";
    if (ep.critical_shard == kNoShard) {
      os << "<none>";
    } else {
      os << "shard " << ep.critical_shard << " (";
      os << std::fixed << std::setprecision(1)
         << (ep.total_ns > 0
                 ? 100.0 * static_cast<double>(ep.critical_ns) /
                       static_cast<double>(ep.total_ns)
                 : 0.0)
         << "% of ";
      write_us_col(os, ep.total_ns);
      os << " us)";
    }
    os << "\n";
  }
  // Wait-on-whom matrix: render only for small machines; above 16 shards the
  // ranking and epochs carry the signal.
  if (r.num_shards <= 16) {
    os << "\nwait-on-whom matrix (us; row = waiter, col = blamed):\n      ";
    for (std::size_t c = 0; c < r.num_shards; ++c) {
      os << std::setw(8) << c;
    }
    os << "\n";
    for (std::size_t w = 0; w < r.num_shards; ++w) {
      os << std::setw(5) << w << " ";
      for (std::size_t c = 0; c < r.num_shards; ++c) {
        os << std::setw(8) << std::fixed << std::setprecision(0)
           << static_cast<double>(r.matrix[w][c]) / 1000.0;
      }
      os << "\n";
    }
  }
}

void write_skew_json(std::ostream& os, const SkewReport& r) {
  os << "{\n  \"num_shards\": " << r.num_shards << ",\n  \"blamed_ns\": ";
  write_shard_array(os, r.blamed_ns);
  os << ",\n  \"waited_ns\": ";
  write_shard_array(os, r.waited_ns);
  os << ",\n  \"ranking\": [";
  for (std::size_t i = 0; i < r.ranking.size(); ++i) {
    if (i) os << ",";
    os << r.ranking[i];
  }
  os << "],\n  \"epochs\": [";
  for (std::size_t i = 0; i < r.epochs.size(); ++i) {
    const SkewReport::Epoch& ep = r.epochs[i];
    os << (i ? ",\n    " : "\n    ") << "{";
    if (ep.iter != kNoIter) os << "\"iter\": " << ep.iter << ", ";
    if (ep.critical_shard != kNoShard) {
      os << "\"critical_shard\": " << ep.critical_shard
         << ", \"critical_ns\": " << ep.critical_ns << ", ";
    }
    os << "\"total_ns\": " << ep.total_ns << ", \"fences\": " << ep.fences << "}";
  }
  os << "\n  ],\n  \"matrix\": [";
  for (std::size_t w = 0; w < r.matrix.size(); ++w) {
    os << (w ? ",\n    " : "\n    ");
    write_shard_array(os, r.matrix[w]);
  }
  os << "\n  ]\n}\n";
}

QuorumReport build_quorum(const Recorder& rec, std::size_t top) {
  QuorumReport r;
  r.num_shards = rec.num_shards();
  r.blamed.assign(r.num_shards, 0);
  for (const QuorumRec& q : rec.quorums()) {
    ++r.tickets;
    if (q.mismatches > 0) ++r.healed;
    r.mismatches += q.mismatches;
    if (q.primary_corrupted) ++r.primary_corruptions;
    r.rounds += q.rounds;
    const SimTime lat = q.latency();
    r.total_latency_ns += lat;
    r.max_latency_ns = std::max(r.max_latency_ns, lat);
    std::size_t bucket = 0;
    for (SimTime t = lat / 1000; t > 1; t >>= 1) ++bucket;
    if (bucket >= r.latency_buckets.size()) r.latency_buckets.resize(bucket + 1, 0);
    r.latency_buckets[bucket]++;
    for (const std::uint32_t s : q.corrupted_shards) {
      if (s < r.num_shards) r.blamed[s]++;
    }
  }
  r.ranking.resize(r.num_shards);
  std::iota(r.ranking.begin(), r.ranking.end(), 0);
  std::stable_sort(r.ranking.begin(), r.ranking.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return r.blamed[a] > r.blamed[b];
                   });

  std::vector<const QuorumRec*> order;
  order.reserve(rec.quorums().size());
  for (const QuorumRec& q : rec.quorums()) order.push_back(&q);
  std::stable_sort(order.begin(), order.end(),
                   [](const QuorumRec* a, const QuorumRec* b) {
                     return a->latency() > b->latency();
                   });
  for (const QuorumRec* q : order) {
    if (r.slowest.size() >= top) break;
    r.slowest.push_back(QuorumReport::Entry{q->op, q->point, q->primary, q->rounds,
                                            q->ballots, q->mismatches,
                                            q->primary_corrupted, q->latency()});
  }
  return r;
}

void render_quorum(std::ostream& os, const QuorumReport& r) {
  const StreamStateGuard guard(os);
  os << "SDC quorum report (" << r.num_shards << " shards)\n";
  os << "quorums: " << r.tickets << " resolved, " << r.healed
     << " healed (>=1 mismatching ballot), " << r.mismatches
     << " ballots out-voted, " << r.primary_corruptions
     << " with a corrupted primary, " << r.rounds << " re-execution rounds\n";
  if (r.tickets > 0) {
    os << "resolve latency: mean";
    write_us_col(os, r.total_latency_ns / static_cast<SimTime>(r.tickets));
    os << " us, max";
    write_us_col(os, r.max_latency_ns);
    os << " us\n\nlatency histogram (us, power-of-two buckets):\n";
    for (std::size_t b = 0; b < r.latency_buckets.size(); ++b) {
      if (r.latency_buckets[b] == 0) continue;
      os << "  [" << std::setw(6) << (b == 0 ? 0 : (1ull << b)) << ", "
         << std::setw(6) << (1ull << (b + 1)) << ")  " << std::setw(8)
         << r.latency_buckets[b] << "\n";
    }
  }
  os << "\ncorruption sources (losing ballots per shard):\n";
  std::size_t shown = 0;
  for (const std::uint32_t s : r.ranking) {
    if (r.blamed[s] == 0 && shown > 0) break;
    if (shown++ >= 8) break;
    os << "  #" << shown << "  shard " << std::setw(3) << s << "  blamed "
       << std::setw(8) << r.blamed[s] << " corrupted ballots\n";
  }
  if (!r.slowest.empty()) {
    os << "\nslowest quorums:\n";
    os << "         op    point  primary  rounds  ballots  mismatch  latency(us)\n";
    for (const QuorumReport::Entry& e : r.slowest) {
      os << std::setw(11) << e.op << " " << std::setw(8) << e.point << " "
         << std::setw(8) << e.primary << " " << std::setw(7) << e.rounds << " "
         << std::setw(8) << e.ballots << " " << std::setw(9) << e.mismatches;
      write_us_col(os, e.latency);
      if (e.primary_corrupted) os << "  [primary corrupted]";
      os << "\n";
    }
  }
}

void write_quorum_json(std::ostream& os, const QuorumReport& r) {
  os << "{\n  \"num_shards\": " << r.num_shards
     << ",\n  \"tickets\": " << r.tickets << ",\n  \"healed\": " << r.healed
     << ",\n  \"mismatches\": " << r.mismatches
     << ",\n  \"primary_corruptions\": " << r.primary_corruptions
     << ",\n  \"rounds\": " << r.rounds
     << ",\n  \"total_latency_ns\": " << r.total_latency_ns
     << ",\n  \"max_latency_ns\": " << r.max_latency_ns
     << ",\n  \"latency_buckets_us_pow2\": [";
  for (std::size_t i = 0; i < r.latency_buckets.size(); ++i) {
    if (i) os << ",";
    os << r.latency_buckets[i];
  }
  os << "],\n  \"blamed\": [";
  for (std::size_t i = 0; i < r.blamed.size(); ++i) {
    if (i) os << ",";
    os << r.blamed[i];
  }
  os << "],\n  \"ranking\": [";
  for (std::size_t i = 0; i < r.ranking.size(); ++i) {
    if (i) os << ",";
    os << r.ranking[i];
  }
  os << "],\n  \"slowest\": [";
  for (std::size_t i = 0; i < r.slowest.size(); ++i) {
    const QuorumReport::Entry& e = r.slowest[i];
    os << (i ? ",\n    " : "\n    ") << "{\"op\": " << e.op
       << ", \"point\": " << e.point << ", \"primary\": " << e.primary
       << ", \"rounds\": " << e.rounds << ", \"ballots\": " << e.ballots
       << ", \"mismatches\": " << e.mismatches << ", \"primary_corrupted\": "
       << (e.primary_corrupted ? "true" : "false")
       << ", \"latency_ns\": " << e.latency << "}";
  }
  os << "\n  ]\n}\n";
}

// ------------------------------------------------- automatic trace identification

TraceIdReport build_trace_id(const prof::Profiler& prof) {
  TraceIdReport r;
  r.num_shards = prof.num_shards();
  r.shards.resize(r.num_shards);
  r.consistent = true;
  for (std::size_t s = 0; s < r.num_shards; ++s) {
    const prof::Counters& pc = prof.shard(static_cast<std::uint32_t>(s));
    TraceIdReport::Shard& sh = r.shards[s];
    sh.detections = pc.get(prof::Counter::AutoTraceDetections);
    sh.promotions = pc.get(prof::Counter::AutoTracePromotions);
    sh.demotions = pc.get(prof::Counter::AutoTraceDemotions);
    sh.windows = pc.get(prof::Counter::AutoTraceWindows);
    sh.aborts = pc.get(prof::Counter::AutoTraceAborts);
    sh.collisions = pc.get(prof::Counter::AutoTraceCollisions);
    sh.windows_closed = pc.get(prof::Counter::WindowsClosed);
    sh.window_hits = pc.get(prof::Counter::TemplateWindowHits);
    sh.window_misses = pc.get(prof::Counter::TemplateWindowMisses);
    r.total.detections += sh.detections;
    r.total.promotions += sh.promotions;
    r.total.demotions += sh.demotions;
    r.total.windows += sh.windows;
    r.total.aborts += sh.aborts;
    r.total.collisions += sh.collisions;
    r.total.windows_closed += sh.windows_closed;
    r.total.window_hits += sh.window_hits;
    r.total.window_misses += sh.window_misses;
    if (sh.window_hits + sh.window_misses != sh.windows_closed) r.consistent = false;
    if (sh.detections < sh.promotions || sh.promotions < sh.demotions) {
      r.consistent = false;
    }
  }
  if (r.total.windows_closed > 0) {
    r.hit_rate = static_cast<double>(r.total.window_hits) /
                 static_cast<double>(r.total.windows_closed);
  }
  return r;
}

void render_trace_id(std::ostream& os, const TraceIdReport& r) {
  const StreamStateGuard guard(os);
  os << "automatic trace identification (" << r.num_shards << " shards)\n";
  os << "detections: " << r.total.detections << ", promotions: "
     << r.total.promotions << ", demotions: " << r.total.demotions
     << ", fingerprint collisions: " << r.total.collisions << "\n";
  os << "auto windows: " << r.total.windows << " opened, " << r.total.aborts
     << " aborted mid-period\n";
  os << "window ledger: " << r.total.windows_closed << " closed, "
     << r.total.window_hits << " replay hits, " << r.total.window_misses
     << " misses -> hit rate " << std::fixed << std::setprecision(1)
     << (100.0 * r.hit_rate) << "%\n";
  os << "ledger invariants: " << (r.consistent ? "ok" : "VIOLATED") << "\n";
  // Per-shard rows only when shards disagree (they rarely should: detection
  // is control-deterministic, so skew indicates recovery or SDC interrupts).
  bool uniform = true;
  for (const TraceIdReport::Shard& sh : r.shards) {
    uniform = uniform && sh.promotions == r.shards[0].promotions &&
              sh.windows == r.shards[0].windows &&
              sh.window_hits == r.shards[0].window_hits;
  }
  if (!uniform) {
    os << "per-shard (non-uniform):\n";
    os << "  shard  detect  promote  demote  windows  aborts  hits  misses\n";
    for (std::size_t s = 0; s < r.shards.size(); ++s) {
      const TraceIdReport::Shard& sh = r.shards[s];
      os << "  " << std::setw(5) << s << " " << std::setw(7) << sh.detections
         << " " << std::setw(8) << sh.promotions << " " << std::setw(7)
         << sh.demotions << " " << std::setw(8) << sh.windows << " "
         << std::setw(7) << sh.aborts << " " << std::setw(5) << sh.window_hits
         << " " << std::setw(7) << sh.window_misses << "\n";
    }
  }
}

void write_trace_id_json(std::ostream& os, const TraceIdReport& r) {
  os << "{\n  \"num_shards\": " << r.num_shards
     << ",\n  \"detections\": " << r.total.detections
     << ",\n  \"promotions\": " << r.total.promotions
     << ",\n  \"demotions\": " << r.total.demotions
     << ",\n  \"windows\": " << r.total.windows
     << ",\n  \"aborts\": " << r.total.aborts
     << ",\n  \"collisions\": " << r.total.collisions
     << ",\n  \"windows_closed\": " << r.total.windows_closed
     << ",\n  \"window_hits\": " << r.total.window_hits
     << ",\n  \"window_misses\": " << r.total.window_misses
     << ",\n  \"hit_rate\": " << r.hit_rate
     << ",\n  \"consistent\": " << (r.consistent ? "true" : "false")
     << ",\n  \"shards\": [";
  for (std::size_t s = 0; s < r.shards.size(); ++s) {
    const TraceIdReport::Shard& sh = r.shards[s];
    os << (s ? ",\n    " : "\n    ") << "{\"detections\": " << sh.detections
       << ", \"promotions\": " << sh.promotions << ", \"demotions\": "
       << sh.demotions << ", \"windows\": " << sh.windows << ", \"aborts\": "
       << sh.aborts << ", \"collisions\": " << sh.collisions
       << ", \"window_hits\": " << sh.window_hits << ", \"window_misses\": "
       << sh.window_misses << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace dcr::scope
