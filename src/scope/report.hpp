// Blame and skew reports over the dcr-scope causal ledger.
//
// The blame report names, for every non-elided fence, the last-releasing
// shard and span, per-rank waits, and round latency — and reconciles those
// waits against dcr-prof's always-on fence ledger: for every shard, the sum
// of (completion - arrival) over all fences must equal the shard's
// FenceWaitNs counter *exactly* (both are computed from the same simulator
// instants), and the global ledger must satisfy issued + elided == decisions.
//
// The skew report rolls blame up into a wait-on-whom matrix
// (waiter shard x blamed shard, summed ns), a straggler ranking, and a
// critical shard per epoch (trace-window iteration).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "scope/recorder.hpp"

namespace dcr::prof {
class Profiler;
}

namespace dcr::scope {

struct BlameEntry {
  std::uint64_t op = 0;          // dependent OpId the fence protects
  std::uint64_t iter = kNoIter;
  std::size_t arrivals = 0;
  bool complete = false;
  SimTime first_arrival = 0;
  SimTime last_arrival = 0;
  SimTime latency = 0;      // first arrival -> last completion
  SimTime total_wait = 0;   // summed per-rank (completion - arrival)
  std::uint32_t releaser_shard = kNoShard;
  std::uint64_t releaser_span = kNoSpan;
  std::uint64_t releaser_op = 0;  // op of the releasing span (valid w/ span)
  bool releaser_replayed = false;
};

struct BlameReport {
  std::vector<BlameEntry> fences;
  std::vector<SimTime> shard_wait_ns;  // per waiter, summed over fences
  SimTime total_wait_ns = 0;
  std::size_t complete_fences = 0;
  std::size_t attributed = 0;  // complete fences with a named releaser shard+span

  // dcr-prof cross-check.
  std::uint64_t fence_decisions = 0;
  std::uint64_t fences_issued = 0;
  std::uint64_t fences_elided = 0;
  std::vector<SimTime> prof_shard_wait_ns;  // FenceWaitNs per shard
  bool ledger_consistent = false;  // issued + elided == decisions
  bool waits_reconcile = false;    // shard_wait_ns == prof_shard_wait_ns
  bool reconciled() const { return ledger_consistent && waits_reconcile; }
};

BlameReport build_blame(const Recorder& rec, const prof::Profiler& prof);
// Human-readable rendering; fences sorted by latency, capped at `top`.
void render_blame(std::ostream& os, const BlameReport& r, const Recorder& rec,
                  std::size_t top = 16);
void write_blame_json(std::ostream& os, const BlameReport& r);

struct SkewReport {
  std::size_t num_shards = 0;
  // matrix[waiter][blamed]: ns `waiter` spent in fence waits released last
  // by `blamed`.  Unattributed waits (no valid releaser) land in column
  // `num_shards` ("<none>").
  std::vector<std::vector<SimTime>> matrix;
  std::vector<SimTime> blamed_ns;  // column sums over real shards
  std::vector<SimTime> waited_ns;  // row sums
  std::vector<std::uint32_t> ranking;  // shards by blamed_ns descending

  struct Epoch {
    std::uint64_t iter = kNoIter;  // kNoIter = fences outside any window
    std::uint32_t critical_shard = kNoShard;
    SimTime critical_ns = 0;  // wait blamed on the critical shard this epoch
    SimTime total_ns = 0;
    std::uint64_t fences = 0;
  };
  std::vector<Epoch> epochs;
};

SkewReport build_skew(const Recorder& rec);
void render_skew(std::ostream& os, const SkewReport& r);
void write_skew_json(std::ostream& os, const SkewReport& r);

// SDC replication quorum report (dcr/replicate): per-ticket disagreement
// counts, a re-execution latency histogram (power-of-two microsecond
// buckets), and the shard ranking of corruption sources (losing ballots per
// shard — where corrupted results actually ran).
struct QuorumReport {
  std::size_t num_shards = 0;
  std::uint64_t tickets = 0;      // resolved quorums recorded
  std::uint64_t healed = 0;       // resolved despite >= 1 mismatching ballot
  std::uint64_t mismatches = 0;   // losing ballots across all quorums
  std::uint64_t primary_corruptions = 0;  // quorums where the primary lost
  std::uint64_t rounds = 0;       // re-execution rounds across all quorums
  SimTime total_latency_ns = 0;
  SimTime max_latency_ns = 0;

  // latency_buckets[i] counts quorums with latency in [2^i, 2^(i+1)) us;
  // bucket 0 also absorbs sub-microsecond resolutions.
  std::vector<std::uint64_t> latency_buckets;

  std::vector<std::uint64_t> blamed;    // losing ballots per shard
  std::vector<std::uint32_t> ranking;   // shards by blamed descending

  struct Entry {  // slowest quorums, for the rendered top list
    std::uint64_t op = 0;
    std::uint64_t point = 0;
    std::uint32_t primary = kNoShard;
    std::uint32_t rounds = 0;
    std::uint32_t ballots = 0;
    std::uint32_t mismatches = 0;
    bool primary_corrupted = false;
    SimTime latency = 0;
  };
  std::vector<Entry> slowest;
};

QuorumReport build_quorum(const Recorder& rec, std::size_t top = 16);
void render_quorum(std::ostream& os, const QuorumReport& r);
void write_quorum_json(std::ostream& os, const QuorumReport& r);

// Automatic trace identification report (dcr/trace_id): per-shard detector
// health read from the dcr-prof counter bank — repeats detected, traces
// promoted/demoted, windows opened/aborted, fingerprint collisions — plus the
// template window hit/miss ledger and the derived replay hit rate.
struct TraceIdReport {
  struct Shard {
    std::uint64_t detections = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t windows = 0;        // auto windows opened
    std::uint64_t aborts = 0;         // auto windows aborted mid-period
    std::uint64_t collisions = 0;     // fingerprint hits failing verification
    std::uint64_t windows_closed = 0; // all windows closed (auto + explicit)
    std::uint64_t window_hits = 0;    // closed windows served by replay
    std::uint64_t window_misses = 0;  // closed windows that ran fresh analysis
  };
  std::size_t num_shards = 0;
  std::vector<Shard> shards;
  Shard total;
  double hit_rate = 0.0;  // hits / closed windows, summed over shards
  // Ledger invariants: hits + misses == windows closed on every shard, and
  // detections >= promotions >= demotions (a trace must be detected before it
  // is promoted and promoted before it can demote).
  bool consistent = false;
};

TraceIdReport build_trace_id(const prof::Profiler& prof);
void render_trace_id(std::ostream& os, const TraceIdReport& r);
void write_trace_id_json(std::ostream& os, const TraceIdReport& r);

}  // namespace dcr::scope
