#include "scope/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "prof/profiler.hpp"

namespace dcr::scope {

FlightRecorder::FlightRecorder(std::size_t num_shards, std::size_t capacity)
    : capacity_(capacity) {
  DCR_CHECK(capacity >= 1);
  rings_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto ring = std::make_unique<Ring>();
    ring->events.resize(capacity);
    rings_.push_back(std::move(ring));
  }
}

void FlightRecorder::record(std::uint32_t shard, const FlightEvent& e) {
  DCR_CHECK(shard < rings_.size());
  Ring& ring = *rings_[shard];
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.events[head % capacity_] = e;
  // Release so a reader that acquires `head` sees the completed event.
  ring.head.store(head + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recorded(std::uint32_t shard) const {
  DCR_CHECK(shard < rings_.size());
  return rings_[shard]->head.load(std::memory_order_acquire);
}

namespace {

// Buffered async-signal-safe writer: snprintf into the caller's scratch,
// append here, flush with ::write.  No allocation, no locks, no iostreams.
struct SafeOut {
  int fd;
  char buf[4096];
  std::size_t len = 0;

  explicit SafeOut(int f) : fd(f) {}
  ~SafeOut() { flush(); }

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s, std::size_t n) {
    if (len + n > sizeof(buf)) flush();
    if (n > sizeof(buf)) {  // oversized chunk: write through
      std::size_t off = 0;
      while (off < n) {
        const ssize_t w = ::write(fd, s + off, n - off);
        if (w <= 0) return;
        off += static_cast<std::size_t>(w);
      }
      return;
    }
    std::memcpy(buf + len, s, n);
    len += n;
  }
  void puts(const char* s) { put(s, std::strlen(s)); }
  void putf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char tmp[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(tmp, sizeof(tmp), fmt, ap);
    va_end(ap);
    if (n > 0) put(tmp, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(tmp) - 1));
  }
};

const char* kind_name(FlightEvent::Kind k) {
  switch (k) {
    case FlightEvent::Kind::Span: return "fine";
    case FlightEvent::Kind::FenceWait: return "fence-wait";
    case FlightEvent::Kind::FutureWait: return "future-wait";
    case FlightEvent::Kind::Launch: return "launch";
  }
  return "?";
}

// Copy `s` into `out`, replacing JSON-hostile bytes so the reason string can
// be embedded without an allocator-backed escaper.
void sanitize(const char* s, char* out, std::size_t cap) {
  std::size_t i = 0;
  for (; s[i] != '\0' && i + 1 < cap; ++i) {
    const char c = s[i];
    out[i] = (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
                 ? ' '
                 : c;
  }
  out[i] = '\0';
}

}  // namespace

void FlightRecorder::dump_fd(int fd, const char* reason,
                             const prof::Profiler* prof) const {
  SafeOut out(fd);
  out.puts("{\"traceEvents\":[");
  bool first = true;
  for (std::size_t s = 0; s < rings_.size(); ++s) {
    const Ring& ring = *rings_[s];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t n = head < capacity_ ? head : capacity_;
    // Oldest retained event first.
    for (std::uint64_t k = 0; k < n; ++k) {
      const FlightEvent& e = ring.events[(head - n + k) % capacity_];
      const double ts_us = static_cast<double>(e.start) / 1000.0;
      const double dur_us =
          e.end > e.start ? static_cast<double>(e.end - e.start) / 1000.0 : 0.0;
      if (!first) out.puts(",");
      first = false;
      out.putf(
          "\n{\"name\":\"%s op %llu\",\"cat\":\"scope\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%llu,"
          "\"args\":{\"op\":%llu,\"aux\":%llu}}",
          kind_name(e.kind), static_cast<unsigned long long>(e.op), ts_us,
          dur_us, static_cast<unsigned long long>(s),
          static_cast<unsigned long long>(e.op),
          static_cast<unsigned long long>(e.aux));
    }
  }
  char safe_reason[256];
  sanitize(reason != nullptr ? reason : "", safe_reason, sizeof(safe_reason));
  out.putf("\n],\n\"metadata\":{\"reason\":\"%s\"", safe_reason);
  out.puts(",\"flight_recorded\":[");
  for (std::size_t s = 0; s < rings_.size(); ++s) {
    out.putf("%s%llu", s == 0 ? "" : ",",
             static_cast<unsigned long long>(
                 rings_[s]->head.load(std::memory_order_acquire)));
  }
  out.puts("]");
  if (prof != nullptr) {
    out.puts(",\"shard_fence_wait_ns\":[");
    for (std::uint32_t s = 0; s < prof->num_shards(); ++s) {
      out.putf("%s%llu", s == 0 ? "" : ",",
               static_cast<unsigned long long>(
                   prof->shard(s).get(prof::Counter::FenceWaitNs)));
    }
    out.puts("]");
  }
  out.puts("}}\n");
  out.flush();
}

bool FlightRecorder::dump(const std::string& path, const char* reason,
                          const prof::Profiler* prof) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_fd(fd, reason, prof);
  ::close(fd);
  return true;
}

// ------------------------------------------------------------ signal hook

namespace {
std::atomic<FlightRecorder*> g_armed{nullptr};
const prof::Profiler* g_armed_prof = nullptr;
char g_armed_path[512] = {0};

void flight_signal_handler(int sig) {
  FlightRecorder* fr = g_armed.exchange(nullptr, std::memory_order_acq_rel);
  if (fr != nullptr) {
    const int fd = ::open(g_armed_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      char reason[64];
      std::snprintf(reason, sizeof(reason), "fatal signal %d", sig);
      fr->dump_fd(fd, reason, g_armed_prof);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition; re-raise to die with it.
  ::raise(sig);
}

void set_handler(int sig, void (*fn)(int)) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = fn;
  sa.sa_flags = fn != nullptr ? SA_RESETHAND : 0;
  if (fn == nullptr) sa.sa_handler = SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(sig, &sa, nullptr);
}
}  // namespace

void FlightRecorder::arm_signal_dump(FlightRecorder* fr, std::string path,
                                     const prof::Profiler* prof) {
  constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
  if (fr == nullptr) {
    g_armed.store(nullptr, std::memory_order_release);
    for (int sig : kSignals) set_handler(sig, nullptr);
    return;
  }
  std::snprintf(g_armed_path, sizeof(g_armed_path), "%s", path.c_str());
  g_armed_prof = prof;
  g_armed.store(fr, std::memory_order_release);
  for (int sig : kSignals) set_handler(sig, &flight_signal_handler);
}

}  // namespace dcr::scope
