// Regression watchdog: diff a live BENCH-style snapshot against a committed
// baseline and flag threshold breaches.
//
// BENCH_*.json files are arrays of sweep records ({"sweep": "name", ...
// numeric fields ...}).  The watchdog matches records by sweep name and
// compares every numeric field shared by both sides; a field whose relative
// change exceeds the threshold is a breach.  Machine-dependent fields —
// wall-clock times and overhead ratios derived from them — are skipped by
// default, so the deterministic virtual-time fields (makespans, counter
// totals) carry the regression signal.  Schema drift between versions is
// tolerated: fields or sweeps present on only one side are reported as
// added/removed, not errors.
//
// Used by `dcr-scope watch --check-baseline` and wired into bench_prof /
// bench_scope so a perf regression fails the bench run loudly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "prof/json.hpp"

namespace dcr::scope {

struct BaselineDiff {
  struct Breach {
    std::string sweep;
    std::string key;
    double base = 0;
    double live = 0;
    double delta_pct = 0;
  };
  std::vector<Breach> breaches;
  std::vector<std::string> added;    // "sweep.key" present only in live
  std::vector<std::string> removed;  // "sweep.key" present only in baseline
  std::vector<std::string> skipped;  // machine-dependent fields not compared
  std::size_t compared = 0;          // numeric fields actually checked
  std::size_t matched_sweeps = 0;
  std::string error;                 // non-empty on malformed input

  bool ok() const { return error.empty() && breaches.empty() && matched_sweeps > 0; }
};

// Is this field machine-dependent (wall-clock derived)?
bool machine_dependent_field(const std::string& key);

// Compare two parsed BENCH-style arrays.  `threshold_pct` is the allowed
// relative change in percent; `include_wall` also compares wall-clock fields.
BaselineDiff check_baseline(const prof::JsonValue& baseline,
                            const prof::JsonValue& live, double threshold_pct,
                            bool include_wall = false);

// File-loading convenience: parses both files, returns a diff whose `error`
// is set if either fails to load or parse.
BaselineDiff check_baseline_files(const std::string& baseline_path,
                                  const std::string& live_path,
                                  double threshold_pct,
                                  bool include_wall = false);

void render_baseline_diff(std::ostream& os, const BaselineDiff& d,
                          double threshold_pct);

}  // namespace dcr::scope
