// dcr-scope recorder: the per-run causal ledger.
//
// The runtime (dcr/runtime.cpp, under DcrConfig::scope) feeds the recorder
// from its hot paths:
//   - on_fine_stage   when a shard finishes a fine-analysis stage (fresh or
//                     template replay) — this becomes the shard's *current
//                     span*, the causal parent of everything it does next;
//   - fence_arrival   when a shard's control thread reaches a fence — returns
//                     the context stamped onto the collective arrival;
//   - on_future_wait  when a blocking future wait resolves, with the merged
//                     context of the contribution that released it;
//   - on_task_launch  when a point task is launched;
//   - on_message      from the network send tap, once per logical message
//                     carrying a valid context;
//   - harvest_fence   at end of run, copying each FenceCollective's per-rank
//                     arrival/completion timestamps and merged releaser.
//
// Everything is plain host-side state: no simulator events, no virtual time.
// By construction a scope-on run has a makespan identical to scope-off, and
// per-rank fence waits (completion - arrival) equal dcr-prof's FenceWaitNs
// samples instant for instant, which is what lets reports reconcile the two
// ledgers exactly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "scope/context.hpp"
#include "sim/collective.hpp"

namespace dcr::scope {

inline constexpr std::uint64_t kNoIter = ~0ull;

// A completed fine-analysis stage on one shard: the unit of causal blame.
struct SpanRec {
  std::uint64_t id = kNoSpan;
  std::uint32_t shard = kNoShard;
  std::uint64_t op = 0;
  bool replayed = false;  // produced by template replay rather than fresh analysis
  SimTime start = 0;
  SimTime end = 0;
};

// One rank's view of a fence round.
struct FenceShard {
  SimTime arrived_at = kTimeNever;    // when this shard contributed
  SimTime completed_at = kTimeNever;  // when the combined result reached it
  bool arrived() const { return arrived_at != kTimeNever; }
  bool completed() const { return completed_at != kTimeNever; }
  SimTime wait() const {
    return completed() && arrived() ? completed_at - arrived_at : 0;
  }
};

// The blame ledger entry for one non-elided fence.
struct FenceRec {
  std::uint64_t op = 0;          // dependent OpId the fence protects
  std::uint64_t iter = kNoIter;  // loop iteration, if the program declared one
  std::vector<FenceShard> shards;
  TraceCtx releaser;             // merged context: last-releasing shard + span
  std::uint32_t last_shard = kNoShard;  // raw last arriver (valid scope-off too)
  SimTime first_arrival = kTimeNever;
  SimTime last_arrival = kTimeNever;
  SimTime completed_at = kTimeNever;
  bool complete = false;

  SimTime latency() const {
    return complete && completed_at >= first_arrival
               ? completed_at - first_arrival
               : 0;
  }
  SimTime total_wait() const {
    SimTime t = 0;
    for (const FenceShard& s : shards) t += s.wait();
    return t;
  }
};

// A resolved blocking future wait on one shard.
struct FutureRec {
  std::uint64_t future = 0;
  std::uint32_t shard = kNoShard;  // the waiter
  SimTime started = 0;
  SimTime ended = 0;
  TraceCtx releaser;  // last contribution merged into the future's collective
};

// A point-task launch, tagged with the span that caused it.
struct LaunchRec {
  std::uint32_t shard = kNoShard;
  std::uint64_t op = 0;
  std::uint64_t point = 0;
  std::uint64_t span = kNoSpan;
  SimTime at = 0;
};

// One resolved SDC-replication quorum (dcr/replicate).  Feeds the `quorum`
// report: disagreement counts, re-execution latency, and the shard ranking of
// corruption sources.
struct QuorumRec {
  std::uint64_t op = 0;
  std::uint64_t point = 0;
  std::uint32_t primary = kNoShard;
  std::uint32_t rounds = 0;      // re-execution rounds before resolution
  std::uint32_t ballots = 0;     // digests tallied (primary + replicas)
  std::uint32_t mismatches = 0;  // ballots out-voted by the winning digest
  bool primary_corrupted = false;
  std::vector<std::uint32_t> corrupted_shards;  // shard of each losing ballot
  SimTime opened = 0;
  SimTime resolved = 0;

  SimTime latency() const { return resolved >= opened ? resolved - opened : 0; }
};

struct MessageStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t num_shards, std::uint64_t trace_id = 1)
      : trace_(trace_id),
        current_(num_shards, kNoSpan),
        messages_(num_shards) {
    DCR_CHECK(trace_id != 0) << "trace id 0 means 'tracing off'";
  }

  std::uint64_t trace_id() const { return trace_; }
  std::size_t num_shards() const { return current_.size(); }

  // ---- spans -------------------------------------------------------------
  std::uint64_t on_fine_stage(std::uint32_t shard, std::uint64_t op,
                              bool replayed, SimTime start, SimTime end) {
    DCR_CHECK(shard < current_.size());
    const std::uint64_t id = spans_.size();
    spans_.push_back(SpanRec{id, shard, op, replayed, start, end});
    current_[shard] = id;
    return id;
  }

  // The context a message from `shard` carries right now: the shard's last
  // completed fine stage (kNoSpan while it is still in pure control work).
  TraceCtx current_ctx(std::uint32_t shard, SimTime now) const {
    DCR_CHECK(shard < current_.size());
    return TraceCtx{trace_, current_[shard], shard, now};
  }

  const std::vector<SpanRec>& spans() const { return spans_; }
  const SpanRec* span(std::uint64_t id) const {
    return id < spans_.size() ? &spans_[id] : nullptr;
  }

  // ---- fences ------------------------------------------------------------
  // Called when a shard's control thread reaches the fence for `fence_op`;
  // notes the iteration and returns the context to stamp onto the arrival.
  TraceCtx fence_arrival(std::uint64_t fence_op, std::uint32_t shard,
                         std::uint64_t iter, SimTime now) {
    auto [it, inserted] = fence_iters_.try_emplace(fence_op, iter);
    if (!inserted && it->second == kNoIter) it->second = iter;
    return current_ctx(shard, now);
  }

  // End-of-run: copy the collective's per-rank timestamps + merged releaser.
  void harvest_fence(std::uint64_t fence_op, const sim::FenceCollective& coll) {
    FenceRec rec;
    rec.op = fence_op;
    if (auto it = fence_iters_.find(fence_op); it != fence_iters_.end()) {
      rec.iter = it->second;
    }
    rec.shards.resize(coll.num_ranks());
    for (std::size_t r = 0; r < coll.num_ranks(); ++r) {
      rec.shards[r].arrived_at = coll.arrival_time(r);
      rec.shards[r].completed_at = coll.completion_time(r);
    }
    rec.releaser = coll.releaser();
    rec.last_shard = coll.last_arrival_rank();
    rec.first_arrival = coll.first_arrival();
    rec.last_arrival = coll.last_arrival();
    rec.completed_at = coll.completed_at();
    rec.complete = coll.complete();
    fences_.push_back(std::move(rec));
  }

  const std::vector<FenceRec>& fences() const { return fences_; }

  // ---- futures -----------------------------------------------------------
  void on_future_wait(std::uint32_t shard, std::uint64_t future,
                      SimTime started, SimTime ended, TraceCtx releaser) {
    future_waits_.push_back(FutureRec{future, shard, started, ended, releaser});
  }
  const std::vector<FutureRec>& future_waits() const { return future_waits_; }

  // ---- task launches -----------------------------------------------------
  void on_task_launch(std::uint32_t shard, std::uint64_t op, std::uint64_t point,
                      SimTime at) {
    DCR_CHECK(shard < current_.size());
    launches_.push_back(LaunchRec{shard, op, point, current_[shard], at});
  }
  const std::vector<LaunchRec>& launches() const { return launches_; }

  // ---- SDC quorums -------------------------------------------------------
  void on_quorum(QuorumRec rec) { quorums_.push_back(std::move(rec)); }
  const std::vector<QuorumRec>& quorums() const { return quorums_; }

  // ---- network tap -------------------------------------------------------
  void on_message(const TraceCtx& ctx, std::uint64_t bytes) {
    if (!ctx.valid() || ctx.origin >= messages_.size()) return;
    messages_[ctx.origin].messages++;
    messages_[ctx.origin].bytes += bytes;
  }
  const std::vector<MessageStats>& messages() const { return messages_; }

  // ---- run info ----------------------------------------------------------
  void set_run_info(SimTime makespan, std::uint64_t recovery_epochs) {
    makespan_ = makespan;
    recovery_epochs_ = recovery_epochs;
  }
  SimTime makespan() const { return makespan_; }
  std::uint64_t recovery_epochs() const { return recovery_epochs_; }

 private:
  std::uint64_t trace_;
  std::vector<SpanRec> spans_;
  std::vector<std::uint64_t> current_;  // per-shard current span id
  std::unordered_map<std::uint64_t, std::uint64_t> fence_iters_;
  std::vector<FenceRec> fences_;
  std::vector<FutureRec> future_waits_;
  std::vector<LaunchRec> launches_;
  std::vector<QuorumRec> quorums_;
  std::vector<MessageStats> messages_;
  SimTime makespan_ = 0;
  std::uint64_t recovery_epochs_ = 0;
};

}  // namespace dcr::scope
