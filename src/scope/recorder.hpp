// dcr-scope recorder: the per-run causal ledger.
//
// The runtime (dcr/runtime.cpp under DcrConfig::scope, or the real-threads
// backend exec/thread_runtime.cpp under ThreadConfig::scope) feeds the
// recorder from its hot paths:
//   - on_fine_stage   when a shard finishes a fine-analysis stage (fresh or
//                     template replay) — this becomes the shard's *current
//                     span*, the causal parent of everything it does next;
//   - fence_arrival   when a shard's control thread reaches a fence — returns
//                     the context stamped onto the collective arrival;
//   - on_fence_wait   when a shard's fence wait resolves (flight-recorder
//                     feed; the ledger itself is built by harvest_fence);
//   - on_future_wait  when a blocking future wait resolves, with the merged
//                     context of the contribution that released it;
//   - on_task_launch  when a point task is launched;
//   - on_message      from the network send tap (sim) or the mailbox publish
//                     path (threads), once per logical message carrying a
//                     valid context;
//   - harvest_fence   at end of run, copying each FenceCollective's per-rank
//                     arrival/completion timestamps and merged releaser.
//
// Thread-safety model (DESIGN.md §17): every hot-path hook writes only the
// calling shard's *single-writer* append ledger — no locks, no shared
// mutation.  Span ids come from one relaxed atomic counter so they are dense
// and globally unique on both backends.  The merged read-side views
// (spans(), launches(), ...) lazily splice the per-shard ledgers together and
// are only legal once the shards have quiesced (end of run on the threads
// backend; always on the single-threaded simulator).  Live observers — the
// wall-clock metrics refresher — must instead use the *_recorded() atomic
// counters, which are safe to read concurrently with writers.
//
// Everything is plain host-side state: no simulator events, no virtual time.
// By construction a scope-on run has a makespan identical to scope-off under
// the simulator, and per-rank fence waits (completion - arrival) equal
// dcr-prof's FenceWaitNs samples instant for instant — on the threads backend
// the *same two clock reads* feed both ledgers — which is what lets reports
// reconcile the two ledgers exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "scope/context.hpp"
#include "scope/flight.hpp"

namespace dcr::scope {

inline constexpr std::uint64_t kNoIter = ~0ull;

// A completed fine-analysis stage on one shard: the unit of causal blame.
struct SpanRec {
  std::uint64_t id = kNoSpan;
  std::uint32_t shard = kNoShard;
  std::uint64_t op = 0;
  bool replayed = false;  // produced by template replay rather than fresh analysis
  SimTime start = 0;
  SimTime end = 0;
};

// One rank's view of a fence round.
struct FenceShard {
  SimTime arrived_at = kTimeNever;    // when this shard contributed
  SimTime completed_at = kTimeNever;  // when the combined result reached it
  bool arrived() const { return arrived_at != kTimeNever; }
  bool completed() const { return completed_at != kTimeNever; }
  SimTime wait() const {
    return completed() && arrived() ? completed_at - arrived_at : 0;
  }
};

// The blame ledger entry for one non-elided fence.
struct FenceRec {
  std::uint64_t op = 0;          // dependent OpId the fence protects
  std::uint64_t iter = kNoIter;  // loop iteration, if the program declared one
  std::vector<FenceShard> shards;
  TraceCtx releaser;             // merged context: last-releasing shard + span
  std::uint32_t last_shard = kNoShard;  // raw last arriver (valid scope-off too)
  SimTime first_arrival = kTimeNever;
  SimTime last_arrival = kTimeNever;
  SimTime completed_at = kTimeNever;
  bool complete = false;

  SimTime latency() const {
    return complete && completed_at >= first_arrival
               ? completed_at - first_arrival
               : 0;
  }
  SimTime total_wait() const {
    SimTime t = 0;
    for (const FenceShard& s : shards) t += s.wait();
    return t;
  }
};

// A resolved blocking future wait on one shard.
struct FutureRec {
  std::uint64_t future = 0;
  std::uint32_t shard = kNoShard;  // the waiter
  SimTime started = 0;
  SimTime ended = 0;
  TraceCtx releaser;  // last contribution merged into the future's collective
};

// A point-task launch, tagged with the span that caused it.
struct LaunchRec {
  std::uint32_t shard = kNoShard;
  std::uint64_t op = 0;
  std::uint64_t point = 0;
  std::uint64_t span = kNoSpan;
  SimTime at = 0;
};

// One resolved SDC-replication quorum (dcr/replicate).  Feeds the `quorum`
// report: disagreement counts, re-execution latency, and the shard ranking of
// corruption sources.
struct QuorumRec {
  std::uint64_t op = 0;
  std::uint64_t point = 0;
  std::uint32_t primary = kNoShard;
  std::uint32_t rounds = 0;      // re-execution rounds before resolution
  std::uint32_t ballots = 0;     // digests tallied (primary + replicas)
  std::uint32_t mismatches = 0;  // ballots out-voted by the winning digest
  bool primary_corrupted = false;
  std::vector<std::uint32_t> corrupted_shards;  // shard of each losing ballot
  SimTime opened = 0;
  SimTime resolved = 0;

  SimTime latency() const { return resolved >= opened ? resolved - opened : 0; }
};

struct MessageStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t num_shards, std::uint64_t trace_id = 1)
      : trace_(trace_id) {
    DCR_CHECK(trace_id != 0) << "trace id 0 means 'tracing off'";
    shards_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<ShardLedger>());
    }
  }

  std::uint64_t trace_id() const { return trace_; }
  std::size_t num_shards() const { return shards_.size(); }

  // Attach a crash flight recorder (scope/flight.hpp): every hot-path hook
  // also appends a bounded-ring event, so a post-mortem dump needs no re-run.
  // Must be set before shard threads start; may be null.
  void set_flight(FlightRecorder* flight) { flight_ = flight; }
  FlightRecorder* flight() const { return flight_; }

  // ---- spans -------------------------------------------------------------
  // Called by the owning shard thread only.  Ids are dense across shards
  // (one atomic allocator), so after a quiesced merge spans()[i].id == i.
  std::uint64_t on_fine_stage(std::uint32_t shard, std::uint64_t op,
                              bool replayed, SimTime start, SimTime end) {
    ShardLedger& led = ledger(shard);
    const std::uint64_t id = next_span_.fetch_add(1, std::memory_order_relaxed);
    led.spans.push_back(SpanRec{id, shard, op, replayed, start, end});
    led.current = id;
    if (flight_ != nullptr) {
      flight_->record(shard, FlightEvent{FlightEvent::Kind::Span, shard, op,
                                         /*aux=*/id, start, end});
    }
    return id;
  }

  // The context a message from `shard` carries right now: the shard's last
  // completed fine stage (kNoSpan while it is still in pure control work).
  // Only the owning shard thread may call this (it reads the single-writer
  // current-span cell).
  TraceCtx current_ctx(std::uint32_t shard, SimTime now) const {
    return TraceCtx{trace_, ledger(shard).current, shard, now};
  }

  // ---- fences ------------------------------------------------------------
  // Called when a shard's control thread reaches the fence for `fence_op`;
  // notes the iteration and returns the context to stamp onto the arrival.
  TraceCtx fence_arrival(std::uint64_t fence_op, std::uint32_t shard,
                         std::uint64_t iter, SimTime now) {
    ledger(shard).fence_iters.emplace_back(fence_op, iter);
    return current_ctx(shard, now);
  }

  // A shard's fence wait resolved: [started, ended) is exactly the interval
  // prof charged to FenceWaitNs.  Feeds the flight recorder only — the blame
  // ledger itself is rebuilt from the collective at harvest_fence.
  void on_fence_wait(std::uint32_t shard, std::uint64_t fence_op,
                     SimTime started, SimTime ended) {
    if (flight_ != nullptr) {
      flight_->record(shard, FlightEvent{FlightEvent::Kind::FenceWait, shard,
                                         fence_op, /*aux=*/0, started, ended});
    }
  }

  // End-of-run (quiesced): copy the collective's per-rank timestamps + merged
  // releaser.  Templated so both sim::FenceCollective (virtual time) and
  // exec::FenceCollective (wall clock) harvest through the same code — the
  // two expose the same blame surface.
  template <typename Collective>
  void harvest_fence(std::uint64_t fence_op, const Collective& coll) {
    FenceRec rec;
    rec.op = fence_op;
    rec.iter = lookup_fence_iter(fence_op);
    rec.shards.resize(coll.num_ranks());
    for (std::size_t r = 0; r < coll.num_ranks(); ++r) {
      rec.shards[r].arrived_at = coll.arrival_time(r);
      rec.shards[r].completed_at = coll.completion_time(r);
    }
    rec.releaser = coll.releaser();
    rec.last_shard = coll.last_arrival_rank();
    rec.first_arrival = coll.first_arrival();
    rec.last_arrival = coll.last_arrival();
    rec.completed_at = coll.completed_at();
    rec.complete = coll.complete();
    fences_.push_back(std::move(rec));
    fences_count_.store(fences_.size(), std::memory_order_relaxed);
  }

  const std::vector<FenceRec>& fences() const { return fences_; }

  // ---- futures -----------------------------------------------------------
  void on_future_wait(std::uint32_t shard, std::uint64_t future,
                      SimTime started, SimTime ended, TraceCtx releaser) {
    ledger(shard).future_waits.push_back(
        FutureRec{future, shard, started, ended, releaser});
    future_waits_count_.fetch_add(1, std::memory_order_relaxed);
    if (flight_ != nullptr) {
      flight_->record(shard, FlightEvent{FlightEvent::Kind::FutureWait, shard,
                                         future, /*aux=*/releaser.origin,
                                         started, ended});
    }
  }

  // ---- task launches -----------------------------------------------------
  void on_task_launch(std::uint32_t shard, std::uint64_t op, std::uint64_t point,
                      SimTime at) {
    ShardLedger& led = ledger(shard);
    led.launches.push_back(LaunchRec{shard, op, point, led.current, at});
    launches_count_.fetch_add(1, std::memory_order_relaxed);
    if (flight_ != nullptr) {
      flight_->record(shard, FlightEvent{FlightEvent::Kind::Launch, shard, op,
                                         /*aux=*/point, at, at});
    }
  }

  // ---- SDC quorums (simulator-only callers; quiesced or single-threaded) --
  void on_quorum(QuorumRec rec) { quorums_.push_back(std::move(rec)); }
  const std::vector<QuorumRec>& quorums() const { return quorums_; }

  // ---- network tap -------------------------------------------------------
  // Atomic per-origin counters: safe from any thread (the sim network tap and
  // the threads backend's mailbox publish path both report the *origin*).
  void on_message(const TraceCtx& ctx, std::uint64_t bytes) {
    if (!ctx.valid() || ctx.origin >= shards_.size()) return;
    ShardLedger& led = *shards_[ctx.origin];
    led.messages.fetch_add(1, std::memory_order_relaxed);
    led.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  // ---- live counters (safe concurrently with writers) --------------------
  std::uint64_t spans_recorded() const {
    return next_span_.load(std::memory_order_relaxed);
  }
  std::uint64_t launches_recorded() const {
    return launches_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t future_waits_recorded() const {
    return future_waits_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t fences_recorded() const {
    return fences_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_recorded() const {
    std::uint64_t n = 0;
    for (const auto& led : shards_) {
      n += led->messages.load(std::memory_order_relaxed);
    }
    return n;
  }

  // ---- merged read-side views (quiesced shards only) ---------------------
  // Spans sorted by their dense ids, so spans()[i].id == i.
  const std::vector<SpanRec>& spans() const {
    merge_spans();
    return merged_spans_;
  }
  const SpanRec* span(std::uint64_t id) const {
    merge_spans();
    return id < merged_spans_.size() ? &merged_spans_[id] : nullptr;
  }
  const std::vector<FutureRec>& future_waits() const {
    const std::uint64_t want = future_waits_count_.load(std::memory_order_relaxed);
    if (merged_future_waits_.size() != want) {
      merged_future_waits_.clear();
      merged_future_waits_.reserve(want);
      for (const auto& led : shards_) {
        merged_future_waits_.insert(merged_future_waits_.end(),
                                    led->future_waits.begin(),
                                    led->future_waits.end());
      }
    }
    return merged_future_waits_;
  }
  const std::vector<LaunchRec>& launches() const {
    const std::uint64_t want = launches_count_.load(std::memory_order_relaxed);
    if (merged_launches_.size() != want) {
      merged_launches_.clear();
      merged_launches_.reserve(want);
      for (const auto& led : shards_) {
        merged_launches_.insert(merged_launches_.end(), led->launches.begin(),
                                led->launches.end());
      }
    }
    return merged_launches_;
  }
  const std::vector<MessageStats>& messages() const {
    merged_messages_.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      merged_messages_[s].messages =
          shards_[s]->messages.load(std::memory_order_relaxed);
      merged_messages_[s].bytes =
          shards_[s]->bytes.load(std::memory_order_relaxed);
    }
    return merged_messages_;
  }

  // ---- run info ----------------------------------------------------------
  void set_run_info(SimTime makespan, std::uint64_t recovery_epochs) {
    makespan_ = makespan;
    recovery_epochs_ = recovery_epochs;
  }
  SimTime makespan() const { return makespan_; }
  std::uint64_t recovery_epochs() const { return recovery_epochs_; }

 private:
  // Single-writer per-shard ledger; only the owning shard thread appends.
  // Heap-allocated so the atomics never share a cache line across shards.
  struct ShardLedger {
    std::vector<SpanRec> spans;
    std::vector<FutureRec> future_waits;
    std::vector<LaunchRec> launches;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> fence_iters;
    std::uint64_t current = kNoSpan;  // current span (owner thread only)
    alignas(64) std::atomic<std::uint64_t> messages{0};  // own cache line
    std::atomic<std::uint64_t> bytes{0};
  };

  ShardLedger& ledger(std::uint32_t shard) {
    DCR_CHECK(shard < shards_.size());
    return *shards_[shard];
  }
  const ShardLedger& ledger(std::uint32_t shard) const {
    DCR_CHECK(shard < shards_.size());
    return *shards_[shard];
  }

  // Iteration label for a fence, merged across shards: the first non-kNoIter
  // report wins (every shard of a deterministic program reports the same
  // label, so the merge order cannot change the value).
  std::uint64_t lookup_fence_iter(std::uint64_t fence_op) const {
    std::uint64_t iter = kNoIter;
    bool seen = false;
    for (const auto& led : shards_) {
      for (const auto& [op, it] : led->fence_iters) {
        if (op != fence_op) continue;
        seen = true;
        if (it != kNoIter && iter == kNoIter) iter = it;
      }
    }
    return seen ? iter : kNoIter;
  }

  void merge_spans() const {
    const std::uint64_t want = next_span_.load(std::memory_order_relaxed);
    if (merged_spans_.size() == want) return;
    merged_spans_.clear();
    merged_spans_.reserve(want);
    for (const auto& led : shards_) {
      merged_spans_.insert(merged_spans_.end(), led->spans.begin(),
                           led->spans.end());
    }
    // Dense ids: position by id so spans()[i].id == i on both backends.
    std::vector<SpanRec> by_id(merged_spans_.size());
    for (SpanRec& sp : merged_spans_) {
      DCR_CHECK(sp.id < by_id.size()) << "span ids must be dense";
      by_id[sp.id] = sp;
    }
    merged_spans_ = std::move(by_id);
  }

  std::uint64_t trace_;
  std::vector<std::unique_ptr<ShardLedger>> shards_;
  std::atomic<std::uint64_t> next_span_{0};
  std::atomic<std::uint64_t> launches_count_{0};
  std::atomic<std::uint64_t> future_waits_count_{0};
  std::atomic<std::uint64_t> fences_count_{0};
  std::vector<FenceRec> fences_;   // harvest-time only (quiesced)
  std::vector<QuorumRec> quorums_;
  FlightRecorder* flight_ = nullptr;
  SimTime makespan_ = 0;
  std::uint64_t recovery_epochs_ = 0;

  // Lazy merged views; rebuilt when the atomic counts outgrow them.  Only
  // touched from quiesced contexts (see header comment), so plain mutables.
  mutable std::vector<SpanRec> merged_spans_;
  mutable std::vector<FutureRec> merged_future_waits_;
  mutable std::vector<LaunchRec> merged_launches_;
  mutable std::vector<MessageStats> merged_messages_;
};

}  // namespace dcr::scope
