// Live metrics for dcr-scope: an online registry with Prometheus text-format
// exposition.
//
// MetricsRegistry mirrors the prof conventions: insertion-ordered (so output
// is deterministic and diffable), with time-valued entries classified
// volatile so snapshots can zero them (`write_prometheus(os, true)`) exactly
// like prof's golden counter snapshots.  `collect_metrics` builds a registry
// snapshot from the always-on prof counter banks plus live simulator state —
// fence elision rate, template hit rate, recovery epochs, per-shard queue
// depths, collective latencies — and is what both the `dcr-scope watch`
// exposer and the test suite call.
//
// The exposer runs as a simulator process *only when installed by the watch
// CLI*: a periodic tick extends the makespan to its next boundary, so it is
// deliberately not part of DcrConfig::scope (pure tracing must stay
// makespan-identical).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "prof/counters.hpp"

namespace dcr::prof {
class Profiler;
}
namespace dcr::sim {
class Machine;
class Simulator;
}

namespace dcr::scope {

class Recorder;

class MetricsRegistry {
 public:
  enum class Type { Gauge, Counter, Histogram };

  struct Sample {
    std::string labels;  // rendered label set, e.g. `shard="3"` ("" = none)
    double value = 0;
  };
  // One histogram series: cumulative power-of-two buckets plus sum/count.
  struct HistSample {
    std::string labels;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // le -> cumulative
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  struct Metric {
    std::string name;
    std::string help;
    Type type = Type::Gauge;
    bool is_volatile = false;  // time-valued: zeroed under zero_volatile
    std::vector<Sample> samples;
    std::vector<HistSample> hist_samples;
  };

  // Set (or overwrite) one sample of a gauge/counter metric.
  void set(const std::string& name, const std::string& help, Type type,
           double value, const std::string& labels = "",
           bool is_volatile = false);

  // Export a prof::Histogram as one Prometheus histogram series.
  void set_histogram(const std::string& name, const std::string& help,
                     const prof::Histogram& h, const std::string& labels = "",
                     bool is_volatile = true);
  // Same, from pre-summed per-bucket counts (for cross-shard merges).
  void set_histogram(const std::string& name, const std::string& help,
                     const std::vector<std::uint64_t>& pow2_buckets,
                     std::uint64_t count, std::uint64_t sum,
                     const std::string& labels = "", bool is_volatile = true);

  const std::vector<Metric>& metrics() const { return metrics_; }
  const Metric* find(const std::string& name) const;
  void clear();

  // Prometheus text format, in insertion order.  With zero_volatile, every
  // metric classified volatile renders as 0 (histograms render empty), so
  // two runs differing only in the cost model produce identical text.
  void write_prometheus(std::ostream& os, bool zero_volatile = false) const;
  std::string prometheus_text(bool zero_volatile = false) const;

 private:
  Metric& metric(const std::string& name, const std::string& help, Type type,
                 bool is_volatile);

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
};

// Everything collect_metrics reads.  `recorder` is optional (scope-off runs
// still expose the always-on counters); `makespan` is 0 while running.
struct CollectInputs {
  const prof::Profiler* prof = nullptr;
  sim::Machine* machine = nullptr;
  const Recorder* recorder = nullptr;
  SimTime now = 0;
  SimTime makespan = 0;
};

// Populate `reg` with the dcr-scope metric schema (DESIGN.md §12).
void collect_metrics(MetricsRegistry& reg, const CollectInputs& in);

// Periodic exposition driven by virtual time.  Spawned as a simulator
// process by `dcr-scope watch`; each tick re-collects, renders, writes
// `out_path` (if set) and calls `sink` (if set).  NB: ticking extends the
// run's makespan to the next tick boundary — never install this in a run
// whose makespan you are comparing against a scope-off run.
class MetricsExposer {
 public:
  struct Options {
    SimTime interval = ms(1);
    std::string out_path;                           // "" = no file
    std::function<void(const std::string&)> sink;   // e.g. HTTP server update
    std::function<bool()> done;  // stop ticking once true (checked post-tick)
  };

  MetricsExposer(sim::Simulator& sim, Options opts,
                 std::function<void(MetricsRegistry&)> collect);

  // Spawn the exposer process; call once, before Simulator::run.
  void start();

  std::uint64_t ticks() const { return ticks_; }
  const std::string& last_text() const { return last_; }

 private:
  sim::Simulator& sim_;
  Options opts_;
  std::function<void(MetricsRegistry&)> collect_;
  MetricsRegistry reg_;
  std::uint64_t ticks_ = 0;
  std::string last_;
};

// Wall-clock sibling of MetricsExposer for the real-threads backend: a
// background OS thread re-collects every `interval_ns` wall nanoseconds while
// the shard threads execute, renders the Prometheus text, writes `out_path`
// (if set) and calls `sink` (if set).  The collect callback must only read
// state that is safe concurrently with running shards — the always-on prof
// counter banks and the Recorder's *_recorded() atomic counters qualify; the
// merged ledger views do not.  Unlike the virtual-time exposer, ticking never
// perturbs the run's makespan (it steals no simulated time and runs on its
// own core).
class WallMetricsRefresher {
 public:
  struct Options {
    SimTime interval_ns = ms(100);
    std::string out_path;                          // "" = no file
    std::function<void(const std::string&)> sink;  // e.g. HTTP server update
  };

  WallMetricsRefresher(Options opts, std::function<void(MetricsRegistry&)> collect);
  ~WallMetricsRefresher();

  WallMetricsRefresher(const WallMetricsRefresher&) = delete;
  WallMetricsRefresher& operator=(const WallMetricsRefresher&) = delete;

  // Start the refresher thread; call before the shard fleet executes.
  void start();
  // Stop and join; performs one final collection so the served snapshot
  // reflects the completed run.  Idempotent.
  void stop();

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  // Latest rendered snapshot (mutex-copied; safe while running).
  std::string last_text() const;

 private:
  void tick();

  Options opts_;
  std::function<void(MetricsRegistry&)> collect_;
  MetricsRegistry reg_;  // refresher thread only (and stop() after join)
  std::atomic<std::uint64_t> ticks_{0};
  mutable std::mutex mu_;  // guards last_ and stop/cv handshake
  std::condition_variable cv_;
  bool stopping_ = false;
  std::string last_;
  std::thread thread_;
};

}  // namespace dcr::scope
