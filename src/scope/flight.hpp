// Crash flight recorder for dcr-scope (DESIGN.md §17).
//
// A bounded per-shard ring of the most recent scope events (fine-stage spans,
// fence waits, future waits, task launches).  The Recorder feeds it from the
// same hot-path hooks that build the causal ledger, so it works identically
// under the simulator and the real-threads backend.  When a run dies — a
// control-determinism violation, an "SDC quorum unresolved" abort, or a fatal
// signal — the rings are dumped as Perfetto-loadable Chrome trace_event JSON
// plus a blame summary (per-shard FenceWaitNs totals from the always-on prof
// counters), so post-mortem triage needs no re-run.
//
// Concurrency: each ring is single-writer (the owning shard thread); the
// head index is published with a release store so a quiesced reader sees
// complete events.  The dump path uses only async-signal-safe primitives
// (snprintf into a stack buffer + ::write), which is what makes the fatal-
// signal hook sound: no allocation, no locks, no iostreams.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dcr::prof {
class Profiler;
}

namespace dcr::scope {

struct FlightEvent {
  enum class Kind : std::uint8_t {
    Span = 0,        // fine-analysis stage; aux = span id
    FenceWait = 1,   // fence wait interval; op = dependent op id
    FutureWait = 2,  // blocking future wait; op = future id, aux = releaser
    Launch = 3,      // point-task launch; aux = point index
  };
  Kind kind = Kind::Span;
  std::uint32_t shard = 0;
  std::uint64_t op = 0;
  std::uint64_t aux = 0;
  SimTime start = 0;
  SimTime end = 0;
};

class FlightRecorder {
 public:
  // One ring of `capacity` events per shard.
  explicit FlightRecorder(std::size_t num_shards, std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  std::size_t num_shards() const { return rings_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Append to `shard`'s ring; only the owning shard thread may call this.
  void record(std::uint32_t shard, const FlightEvent& e);

  // Total events ever recorded on `shard` (the ring keeps the last
  // `capacity()` of them).
  std::uint64_t recorded(std::uint32_t shard) const;

  // Dump every ring as Chrome trace_event JSON ("traceEvents" array; one
  // Perfetto track per shard) plus a "metadata" blame summary: the abort
  // reason and, when `prof` is non-null, per-shard FenceWaitNs totals read
  // from the lock-free counter banks.  Async-signal-safe; returns false if
  // the file cannot be opened.
  bool dump(const std::string& path, const char* reason,
            const prof::Profiler* prof) const;
  // Same, onto an already-open descriptor.
  void dump_fd(int fd, const char* reason, const prof::Profiler* prof) const;

  // Install a process-wide fatal-signal hook (SIGSEGV, SIGABRT, SIGBUS,
  // SIGFPE) that dumps this recorder to `path` before re-raising.  Only one
  // recorder can be armed at a time; passing nullptr disarms.
  static void arm_signal_dump(FlightRecorder* fr, std::string path,
                              const prof::Profiler* prof);

 private:
  struct Ring {
    std::vector<FlightEvent> events;
    alignas(64) std::atomic<std::uint64_t> head{0};
  };

  const std::size_t capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace dcr::scope
