#include "scope/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace dcr::scope {

namespace {

std::string read_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string sweep_name(const prof::JsonValue& record) {
  const prof::JsonValue* s = record.find("sweep");
  if (s && s->is_string()) return s->string;
  return {};
}

const prof::JsonValue* find_sweep(const prof::JsonValue& arr,
                                  const std::string& name) {
  for (const auto& rec : arr.array) {
    if (rec.is_object() && sweep_name(rec) == name) return &rec;
  }
  return nullptr;
}

double rel_delta_pct(double base, double live) {
  if (base == live) return 0;
  const double denom = std::max(std::abs(base), 1e-12);
  return (live - base) / denom * 100.0;
}

}  // namespace

bool machine_dependent_field(const std::string& key) {
  return key.find("wall") != std::string::npos ||
         key.find("overhead") != std::string::npos;
}

BaselineDiff check_baseline(const prof::JsonValue& baseline,
                            const prof::JsonValue& live, double threshold_pct,
                            bool include_wall) {
  BaselineDiff d;
  if (!baseline.is_array()) {
    d.error = "baseline is not a JSON array of sweep records";
    return d;
  }
  if (!live.is_array()) {
    d.error = "live snapshot is not a JSON array of sweep records";
    return d;
  }

  for (const auto& brec : baseline.array) {
    if (!brec.is_object()) continue;
    const std::string name = sweep_name(brec);
    const prof::JsonValue* lrec = find_sweep(live, name);
    if (!lrec) {
      d.removed.push_back(name + ".*");
      continue;
    }
    ++d.matched_sweeps;
    for (const auto& [key, bval] : brec.object) {
      if (key == "sweep") continue;
      const prof::JsonValue* lval = lrec->find(key);
      if (!lval) {
        d.removed.push_back(name + "." + key);
        continue;
      }
      if (!bval.is_number() || !lval->is_number()) continue;
      if (!include_wall && machine_dependent_field(key)) {
        d.skipped.push_back(name + "." + key);
        continue;
      }
      ++d.compared;
      const double delta = rel_delta_pct(bval.number, lval->number);
      if (std::abs(delta) > threshold_pct) {
        d.breaches.push_back({name, key, bval.number, lval->number, delta});
      }
    }
    // Fields the live snapshot has that the baseline lacks.
    for (const auto& [key, lval] : lrec->object) {
      if (key == "sweep") continue;
      if (!brec.find(key)) d.added.push_back(name + "." + key);
    }
  }
  // Sweeps the live snapshot has that the baseline lacks.
  for (const auto& lrec : live.array) {
    if (!lrec.is_object()) continue;
    const std::string name = sweep_name(lrec);
    if (!find_sweep(baseline, name)) d.added.push_back(name + ".*");
  }
  return d;
}

BaselineDiff check_baseline_files(const std::string& baseline_path,
                                  const std::string& live_path,
                                  double threshold_pct, bool include_wall) {
  BaselineDiff d;
  std::string err;
  const std::string btext = read_file(baseline_path, &err);
  if (!err.empty()) {
    d.error = err;
    return d;
  }
  const std::string ltext = read_file(live_path, &err);
  if (!err.empty()) {
    d.error = err;
    return d;
  }
  const prof::JsonParseResult bp = prof::parse_json(btext);
  if (!bp.ok()) {
    d.error = baseline_path + ": " + bp.error;
    return d;
  }
  const prof::JsonParseResult lp = prof::parse_json(ltext);
  if (!lp.ok()) {
    d.error = live_path + ": " + lp.error;
    return d;
  }
  return check_baseline(*bp.value, *lp.value, threshold_pct, include_wall);
}

void render_baseline_diff(std::ostream& os, const BaselineDiff& d,
                          double threshold_pct) {
  if (!d.error.empty()) {
    os << "baseline check FAILED: " << d.error << "\n";
    return;
  }
  os << "baseline check: " << d.matched_sweeps << " sweep(s) matched, "
     << d.compared << " field(s) compared, threshold " << threshold_pct
     << "%\n";
  if (d.matched_sweeps == 0) {
    os << "  FAIL: no sweep records matched the baseline\n";
    return;
  }
  for (const auto& b : d.breaches) {
    os << "  BREACH " << b.sweep << "." << b.key << ": " << b.base << " -> "
       << b.live << " (" << (b.delta_pct >= 0 ? "+" : "") << b.delta_pct
       << "%)\n";
  }
  if (!d.added.empty()) {
    os << "  added (live only):";
    for (const auto& k : d.added) os << " " << k;
    os << "\n";
  }
  if (!d.removed.empty()) {
    os << "  removed (baseline only):";
    for (const auto& k : d.removed) os << " " << k;
    os << "\n";
  }
  if (!d.skipped.empty()) {
    os << "  skipped " << d.skipped.size()
       << " machine-dependent field(s) (wall/overhead)\n";
  }
  os << (d.ok() ? "  OK: within threshold\n" : "  FAIL\n");
}

}  // namespace dcr::scope
