// Explicit message-passing (MPI-style) comparator for Figure 14.
//
// The paper compares Legion+DCR Pennant against "an independently developed
// and optimized version of Pennant written using MPI and CUDA", in three
// configurations: CPU-only, CUDA, and CUDA+GPUDirect.  Here each rank is a
// real SimProcess running the explicit SPMD program: compute the cycle,
// exchange halos with neighbours, all-reduce dt, repeat.  All parallelism is
// explicit — there is no runtime analysis of any kind, which is precisely
// what the explicit model buys (and what it costs the programmer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/collective.hpp"
#include "sim/machine.hpp"

namespace dcr::baselines {

struct MpiPennantConfig {
  std::int64_t zones_per_rank = 10000;
  std::size_t cycles = 10;
  double compute_ns_per_zone = 3.0;  // per cycle (sum over phases)
  std::uint64_t halo_bytes = 4096;   // boundary exchange per neighbor per cycle
  // Variant knobs: CPU-only is ~20x slower compute; without GPUDirect every
  // halo stages through host memory (extra copies -> higher effective cost).
  double compute_scale = 1.0;  // 1.0 = GPU; ~20 = CPU-only
  double halo_scale = 1.0;     // 1.0 = GPUDirect; ~3 = staged through host
};

inline MpiPennantConfig mpi_pennant_cpu(MpiPennantConfig base = {}) {
  base.compute_scale = 20.0;
  base.halo_scale = 1.0;  // host-resident data needs no staging
  return base;
}
inline MpiPennantConfig mpi_pennant_cuda(MpiPennantConfig base = {}) {
  // Without GPUDirect every halo stages device->host->device and the 8
  // ranks per node contend for PCIe; modeled as a per-cycle compute
  // inflation plus tripled halo cost.
  base.compute_scale = 1.8;
  base.halo_scale = 3.0;
  return base;
}
inline MpiPennantConfig mpi_pennant_gpudirect(MpiPennantConfig base = {}) {
  base.compute_scale = 1.0;
  base.halo_scale = 1.0;
  return base;
}

struct MpiStats {
  SimTime makespan = 0;
  double throughput_iters_per_sec = 0.0;
};

// Run the explicit Pennant on `ranks` ranks (one per compute processor,
// blocked over nodes).  Each rank: compute; halo exchange with +-1
// neighbours; dt all-reduce; next cycle.
inline MpiStats run_mpi_pennant(sim::Machine& machine, std::size_t ranks,
                                const MpiPennantConfig& cfg) {
  DCR_CHECK(ranks >= 1);
  std::vector<NodeId> placement;
  const std::size_t per_node = (ranks + machine.num_nodes() - 1) / machine.num_nodes();
  for (std::size_t r = 0; r < ranks; ++r) {
    placement.push_back(NodeId(static_cast<std::uint32_t>(r / per_node)));
  }

  // One dt all-reduce per cycle, shared across ranks.
  struct Shared {
    std::vector<std::unique_ptr<sim::Collective<double>>> dt;
    std::vector<std::vector<sim::UserEvent>> halo_recv;  // [cycle][rank]
    std::vector<std::vector<int>> halo_arrived;          // expected arrivals
  };
  auto shared = std::make_shared<Shared>();
  shared->dt.reserve(cfg.cycles);
  for (std::size_t c = 0; c < cfg.cycles; ++c) {
    shared->dt.push_back(std::make_unique<sim::Collective<double>>(
        machine.sim(), machine.network(), placement, sim::CollectiveKind::AllReduce,
        sizeof(double), [](double a, double b) { return a < b ? a : b; }));
    shared->halo_recv.emplace_back(ranks);
    shared->halo_arrived.emplace_back(ranks, 0);
  }
  // Expected halo messages per rank per cycle: one from each neighbor.
  std::vector<int> expected(ranks, 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    expected[r] = (r > 0 ? 1 : 0) + (r + 1 < ranks ? 1 : 0);
  }

  const SimTime compute = static_cast<SimTime>(
      cfg.compute_ns_per_zone * cfg.compute_scale * static_cast<double>(cfg.zones_per_rank));
  const auto halo_bytes =
      static_cast<std::uint64_t>(static_cast<double>(cfg.halo_bytes) * cfg.halo_scale);

  for (std::size_t r = 0; r < ranks; ++r) {
    machine.sim().spawn(
        "mpi-rank-" + std::to_string(r), [&, r, shared](sim::ProcessContext& pctx) {
          const NodeId me = placement[r];
          for (std::size_t c = 0; c < cfg.cycles; ++c) {
            pctx.delay(compute);
            // Post halo sends to neighbours.
            auto send_to = [&](std::size_t dst) {
              machine.network().send(
                  me, placement[dst], halo_bytes, [&machine, shared, c, dst, expected] {
                    if (++shared->halo_arrived[c][dst] == expected[dst]) {
                      // All halos for (c, dst) arrived.
                      shared->halo_recv[c][dst].trigger(machine.sim().now());
                    }
                  });
            };
            if (r > 0) send_to(r - 1);
            if (r + 1 < ranks) send_to(r + 1);
            if (expected[r] > 0 && !shared->halo_recv[c][r].has_triggered()) {
              pctx.wait(shared->halo_recv[c][r]);
            }
            // Global dt reduction gates the next cycle.
            pctx.wait(shared->dt[c]->arrive(r, 1e-3 / (1.0 + static_cast<double>(c))));
          }
        });
  }
  MpiStats stats;
  stats.makespan = machine.sim().run();
  stats.throughput_iters_per_sec =
      static_cast<double>(cfg.cycles) / (static_cast<double>(stats.makespan) * 1e-9);
  return stats;
}

}  // namespace dcr::baselines
