// Static control replication (SCR) baseline — Regent's compile-time
// transformation (paper §5.1, Slaughter et al. SC'17).
//
// SCR compiles the implicitly parallel program into explicitly parallel SPMD
// code: the dependence analysis happens entirely at compile time, so at run
// time each node just executes its slice with point-to-point synchronization.
// We model this as the DCR executor with all *analysis* costs zeroed — the
// sharded execution structure, data movement, and synchronization events are
// identical to what Regent's generated code performs; what disappears is the
// runtime analysis work ("static control replication, when it applies, has
// no runtime overhead").  Control-determinism checks do not exist in compiled
// code and are disabled.
//
// SCR's *applicability* limits (statically known partition counts, no
// data-dependent control flow, §5.2) are a property of the compiler, not of
// the execution model; benches that exercise those features simply do not
// offer an SCR series, as in the paper.
#pragma once

#include "dcr/runtime.hpp"

namespace dcr::baselines {

inline core::DcrConfig scr_config(core::DcrConfig base = {}) {
  base.issue_cost = ns(20);  // compiled loop bookkeeping, not runtime calls
  base.coarse_cost_per_req = 0;
  base.fine_cost_per_point = 0;
  base.fine_cost_per_op = 0;
  base.hash_cost = 0;
  base.determinism_checks = false;
  base.tracing_enabled = false;
  return base;
}

}  // namespace dcr::baselines
