// Centralized lazy-evaluation executor — the paper's "No Control Replication"
// configuration and, with different cost parameters, the Dask/Spark-style
// comparators of Figures 19 and 20.
//
// One control program runs on node 0.  Every operation's dependence analysis
// is performed there, *enumerating every point task* (this is exactly what
// makes it a sequential bottleneck: analysis cost grows with machine size
// while per-node work stays constant in weak scaling).  Point tasks are then
// dispatched to worker nodes with one message each, and completion/future
// values flow back to node 0 — reproducing both the analysis-throughput and
// the message-ingress bottlenecks of a centralized controller.
//
// With `schedule_caching` (TensorFlow/Spark-style memoization of repeated
// loops, §1/§6), repeated traced loops charge a reduced per-task cost.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dcr/api.hpp"
#include "dcr/sharding.hpp"
#include "dcr/user_tracker.hpp"
#include "runtime/physical.hpp"
#include "runtime/region.hpp"
#include "sim/machine.hpp"

namespace dcr::baselines {

struct CentralConfig {
  SimTime issue_cost = ns(200);         // control program, per API call
  SimTime analysis_cost_per_task = us(1);  // node-0 dependence analysis, per point
  SimTime analysis_cost_per_op = ns(500);
  std::uint64_t dispatch_bytes = 256;   // task-launch message size
  std::uint64_t completion_bytes = 64;  // completion/future-value message size
  bool schedule_caching = false;        // TF/Spark-style repeated-loop caching
  SimTime cached_cost_per_task = ns(50);
  double file_ns_per_byte = 0.25;
};

struct CentralStats {
  SimTime makespan = 0;
  std::uint64_t ops_issued = 0;
  std::uint64_t point_tasks_launched = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
  SimTime controller_busy = 0;  // node-0 analysis processor busy time
  SimTime compute_busy = 0;
  bool completed = false;
};

class CentralRuntime {
 public:
  CentralRuntime(sim::Machine& machine, core::FunctionRegistry& functions,
                 CentralConfig config = {});

  CentralStats execute(const core::ApplicationMain& main);

  rt::RegionForest& forest() { return forest_; }
  rt::ProjectionRegistry& projections() { return projections_; }

 private:
  friend class CentralContext;

  struct FutureState {
    sim::Event ready;   // value arrived back at node 0
    double value = 0.0;
  };
  struct FutureMapState {
    std::vector<double> values;         // per point, filled at completion
    std::vector<sim::UserEvent> ready;  // per point arrival at node 0
  };

  NodeId target_node(std::uint64_t point_index, std::uint64_t total) const;
  // Serialize `duration` of analysis work on the controller's processor.
  sim::Event controller_work(SimTime duration);

  sim::Machine& machine_;
  core::FunctionRegistry& functions_;
  CentralConfig config_;

  rt::RegionForest forest_;
  rt::ProjectionRegistry projections_;
  std::unique_ptr<rt::PhysicalState> physical_;
  core::UserTracker tracker_;

  sim::Event analysis_tail_;  // serializes controller-side analysis
  std::vector<sim::Event> all_completions_;
  std::map<std::uint64_t, FutureState> futures_;
  std::map<std::uint64_t, FutureMapState> future_maps_;

  CentralStats stats_;
  std::uint64_t next_op_ = 0;
};

}  // namespace dcr::baselines
