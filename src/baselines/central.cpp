#include "baselines/central.hpp"

#include <algorithm>
#include <limits>

namespace dcr::baselines {

using core::Context;
using core::Future;
using core::FutureMap;
using core::IndexLaunch;
using core::PointTaskInfo;
using core::ReduceOp;
using core::TaskLaunch;

namespace {
constexpr NodeId kController{0};
}

// ===========================================================================
// CentralContext
// ===========================================================================
class CentralContext final : public Context {
 public:
  CentralContext(CentralRuntime& rt, sim::ProcessContext& pctx) : rt_(rt), pctx_(pctx) {}

  void api_call() { pctx_.delay(rt_.config_.issue_cost); }

  // ---- data model: direct, single control program ----
  FieldSpaceId create_field_space() override {
    api_call();
    return rt_.forest_.create_field_space();
  }
  FieldId allocate_field(FieldSpaceId fs, std::size_t bytes, std::string name) override {
    api_call();
    return rt_.forest_.allocate_field(fs, bytes, std::move(name));
  }
  RegionTreeId create_region(const rt::Rect& bounds, FieldSpaceId fs) override {
    api_call();
    return rt_.forest_.create_tree(bounds, fs);
  }
  IndexSpaceId root(RegionTreeId tree) override { return rt_.forest_.root(tree); }
  PartitionId partition_equal(IndexSpaceId parent, std::size_t pieces, int axis) override {
    api_call();
    return rt_.forest_.partition_equal(parent, pieces, axis);
  }
  PartitionId partition_with_halo(IndexSpaceId parent, std::size_t pieces, std::int64_t halo,
                                  int axis) override {
    api_call();
    return rt_.forest_.partition_with_halo(parent, pieces, halo, axis);
  }
  PartitionId create_partition(IndexSpaceId parent, std::vector<rt::Rect> pieces,
                               bool disjoint) override {
    api_call();
    return rt_.forest_.create_partition(parent, std::move(pieces), disjoint);
  }
  PartitionId partition_grid(IndexSpaceId parent, std::size_t tiles_x, std::size_t tiles_y,
                             std::int64_t halo) override {
    api_call();
    return rt_.forest_.partition_grid(parent, tiles_x, tiles_y, halo);
  }
  void destroy_region(RegionTreeId tree) override {
    api_call();
    // Single controller: deletion is ordered by construction; apply when all
    // outstanding work completes (conservatively: at once, metadata only).
    if (!rt_.forest_.tree_destroyed(tree)) rt_.forest_.destroy_tree(tree);
  }
  void destroy_region_deferred(RegionTreeId tree) override {
    // No replication -> no consensus needed (paper §4.3 applies to DCR only).
    if (!rt_.forest_.tree_destroyed(tree)) rt_.forest_.destroy_tree(tree);
  }
  const rt::RegionForest& forest() const override { return rt_.forest_; }

  // ---- operations ----
  void fill(IndexSpaceId region, std::vector<FieldId> fields) override {
    api_call();
    rt_.next_op_++;
    rt_.stats_.ops_issued++;
    const rt::Rect rect = rt_.forest_.bounds(region);
    const RegionTreeId tree = rt_.forest_.tree_of(region);
    const TaskId tid(rt_.next_op_ << 20);
    const sim::Event analyzed = rt_.controller_work(rt_.config_.analysis_cost_per_op);
    sim::UserEvent done;
    std::vector<sim::Event> pre{analyzed};
    for (FieldId f : fields) {
      auto conflicts = rt_.tracker_.record_use(tree, f, rect, rt::Privilege::WriteDiscard,
                                               rt::kNoRedop, tid, done);
      if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
      rt_.physical_->record_fill(tree, f, rect);
    }
    rt_.machine_.analysis_proc(kController)
        .enqueue(us(1), sim::merge_events(std::span<const sim::Event>(pre)),
                 [this, done] { done.trigger(rt_.machine_.sim().now()); });
    rt_.all_completions_.push_back(done);
  }

  Future launch(const TaskLaunch& launch) override {
    api_call();
    Future f;
    if (launch.wants_future) f.id = next_future_++;
    run_tasks(launch.fn, rt::Rect::r1(0, 0), /*single=*/true, {}, launch.requirements,
              launch.args, f.id, ~0ull);
    return f;
  }

  FutureMap index_launch(const IndexLaunch& launch) override {
    api_call();
    FutureMap fm;
    if (launch.wants_futures) fm.id = next_future_map_++;
    run_tasks(launch.fn, launch.domain, /*single=*/false, launch.requirements, {},
              launch.args, ~0ull, fm.id);
    return fm;
  }

  Future reduce_future_map(const FutureMap& fm, ReduceOp op) override {
    api_call();
    DCR_CHECK(fm.valid());
    auto& fms = rt_.future_maps_.at(fm.id);
    Future f;
    f.id = next_future_++;
    auto& fut = rt_.futures_[f.id];
    sim::UserEvent gate;
    fut.ready = gate;
    // All per-point values must have arrived at the controller.
    auto* fmsp = &fms;
    auto* futp = &fut;
    std::vector<sim::Event> arrivals(fms.ready.begin(), fms.ready.end());
    sim::merge_events(std::span<const sim::Event>(arrivals))
        .on_trigger([this, fmsp, futp, op, gate] {
          double acc = op == ReduceOp::Min ? std::numeric_limits<double>::infinity()
                       : op == ReduceOp::Max ? -std::numeric_limits<double>::infinity()
                                             : 0.0;
          for (double v : fmsp->values) acc = core::apply_reduce(op, acc, v);
          futp->value = acc;
          gate.trigger(rt_.machine_.sim().now());
        });
    return f;
  }

  double get_future(const Future& f) override {
    api_call();
    DCR_CHECK(f.valid());
    auto it = rt_.futures_.find(f.id);
    DCR_CHECK(it != rt_.futures_.end());
    pctx_.wait(it->second.ready);
    return it->second.value;
  }

  bool future_is_ready(const Future& f) override {
    api_call();
    auto it = rt_.futures_.find(f.id);
    return it != rt_.futures_.end() && it->second.ready.has_triggered();
  }

  void execution_fence() override {
    api_call();
    for (;;) {
      std::vector<sim::Event> pending;
      for (const sim::Event& e : rt_.all_completions_) {
        if (!e.has_triggered()) pending.push_back(e);
      }
      if (pending.empty()) break;
      pctx_.wait(sim::merge_events(std::span<const sim::Event>(pending)));
    }
  }

  void attach_file(IndexSpaceId region, std::vector<FieldId> fields,
                   std::string /*file*/) override {
    api_call();
    attach_impl(region, fields, /*detach=*/false);
  }
  void detach_file(IndexSpaceId region, std::vector<FieldId> fields) override {
    api_call();
    attach_impl(region, fields, /*detach=*/true);
  }

  void attach_file_group(PartitionId partition, std::vector<FieldId> fields,
                         std::string /*basename*/) override {
    api_call();
    // A centralized runtime still performs group I/O, but schedules it all
    // from the controller, piece by piece.
    for (std::uint64_t c = 0; c < rt_.forest_.num_subregions(partition); ++c) {
      attach_impl(rt_.forest_.subregion(partition, c), fields, /*detach=*/false);
    }
  }
  void detach_file_group(PartitionId partition, std::vector<FieldId> fields) override {
    api_call();
    for (std::uint64_t c = 0; c < rt_.forest_.num_subregions(partition); ++c) {
      attach_impl(rt_.forest_.subregion(partition, c), fields, /*detach=*/true);
    }
  }

  void begin_trace(TraceId id) override {
    api_call();
    active_trace_ = id;
  }
  void end_trace(TraceId id) override {
    api_call();
    DCR_CHECK(active_trace_ && *active_trace_ == id);
    traces_seen_.insert(id);
    active_trace_.reset();
  }

  std::size_t num_shards() const override { return 1; }
  ShardId shard_id() const override { return ShardId(0); }
  Philox4x32& rng() override { return rng_; }
  SimTime now() const override { return pctx_.now(); }

 private:
  void attach_impl(IndexSpaceId region, const std::vector<FieldId>& fields, bool detach) {
    rt_.next_op_++;
    rt_.stats_.ops_issued++;
    const rt::Rect rect = rt_.forest_.bounds(region);
    const RegionTreeId tree = rt_.forest_.tree_of(region);
    std::uint64_t bytes = 0;
    for (FieldId f : fields) bytes += rect.volume() * rt_.forest_.field_size(f);
    const TaskId tid(rt_.next_op_ << 20);
    sim::UserEvent done;
    std::vector<sim::Event> pre{rt_.controller_work(rt_.config_.analysis_cost_per_op)};
    for (FieldId f : fields) {
      const auto priv = detach ? rt::Privilege::ReadOnly : rt::Privilege::WriteDiscard;
      auto conflicts = rt_.tracker_.record_use(tree, f, rect, priv, rt::kNoRedop, tid, done);
      if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
      if (detach) {
        pre.push_back(rt_.physical_->acquire(tree, f, rect, kController));
      } else {
        rt_.physical_->record_write(tree, f, rect, kController, done);
      }
    }
    const auto io = static_cast<SimTime>(static_cast<double>(bytes) * rt_.config_.file_ns_per_byte);
    rt_.machine_.analysis_proc(kController)
        .enqueue(io, sim::merge_events(std::span<const sim::Event>(pre)),
                 [this, done] { done.trigger(rt_.machine_.sim().now()); });
    rt_.all_completions_.push_back(done);
  }

  // Shared path for single and index launches: the controller analyzes and
  // dispatches every point.
  void run_tasks(FunctionId fn, const rt::Rect& domain, bool single,
                 const std::vector<rt::GroupRequirement>& group_reqs,
                 const std::vector<rt::Requirement>& single_reqs,
                 const std::vector<std::int64_t>& args, std::uint64_t future_id,
                 std::uint64_t future_map_id) {
    rt_.next_op_++;
    rt_.stats_.ops_issued++;
    const std::uint64_t npoints = single ? 1 : domain.volume();
    const bool cached =
        rt_.config_.schedule_caching && active_trace_ && traces_seen_.count(*active_trace_);
    const SimTime per_task =
        cached ? rt_.config_.cached_cost_per_task : rt_.config_.analysis_cost_per_task;
    const sim::Event analyzed =
        rt_.controller_work(rt_.config_.analysis_cost_per_op + per_task * npoints);

    CentralRuntime::FutureMapState* fms = nullptr;
    if (future_map_id != ~0ull) {
      fms = &rt_.future_maps_[future_map_id];
      fms->values.assign(npoints, 0.0);
      fms->ready.assign(npoints, sim::UserEvent());
      for (auto& e : fms->ready) e = sim::UserEvent();
    }
    CentralRuntime::FutureState* fut = nullptr;
    sim::UserEvent fut_gate;
    if (future_id != ~0ull) {
      fut = &rt_.futures_[future_id];
      fut->ready = fut_gate;
    }

    const std::uint64_t op = rt_.next_op_;
    for (std::uint64_t i = 0; i < npoints; ++i) {
      const rt::Point p = single ? rt::Point::p1(0) : rt::delinearize(domain, i);
      PointTaskInfo info;
      info.fn = fn;
      info.point = p;
      info.domain = domain;
      info.args = args;
      if (single) {
        info.requirements = single_reqs;
      } else {
        info.requirements.reserve(group_reqs.size());
        for (const auto& gr : group_reqs) {
          info.requirements.push_back(gr.concretize(rt_.forest_, rt_.projections_, p, domain));
        }
      }
      for (const auto& r : info.requirements) {
        info.volume += rt_.forest_.bounds(r.region).volume();
      }

      const NodeId target = rt_.target_node(i, npoints);
      const TaskId tid((op << 20) + i);
      sim::UserEvent done;
      std::vector<sim::Event> pre;
      // The dispatch message leaves the controller once analysis finishes.
      pre.push_back(rt_.machine_.network().copy(kController, target,
                                                rt_.config_.dispatch_bytes, analyzed));
      for (const auto& r : info.requirements) {
        const rt::Rect rect = rt_.forest_.bounds(r.region);
        const RegionTreeId tree = rt_.forest_.tree_of(r.region);
        for (FieldId f : r.fields) {
          if (rt::is_reader(r.privilege)) {
            const sim::Event copied = rt_.physical_->acquire(tree, f, rect, target);
            if (!copied.has_triggered()) pre.push_back(copied);
          }
          auto conflicts =
              rt_.tracker_.record_use(tree, f, rect, r.privilege, r.redop, tid, done);
          if (!conflicts.precondition.has_triggered()) pre.push_back(conflicts.precondition);
          if (rt::is_writer(r.privilege)) {
            rt_.physical_->record_write(tree, f, rect, target, done);
          }
        }
      }

      const SimTime duration = rt_.functions_.at(fn).duration(info);
      sim::Processor& proc = rt_.machine_.compute_proc(
          target, i % rt_.machine_.config().compute_procs_per_node);
      const bool wants_value = fms != nullptr || fut != nullptr;
      proc.enqueue(
          duration, sim::merge_events(std::span<const sim::Event>(pre)),
          [this, done, info = std::move(info), target, wants_value, fms, fut, fut_gate, i] {
            done.trigger(rt_.machine_.sim().now());
            if (!wants_value) return;
            const auto& f = rt_.functions_.at(info.fn);
            DCR_CHECK(f.future_value != nullptr);
            const double v = f.future_value(info);
            // Result message back to the controller.
            sim::Event arrived = rt_.machine_.network().send(
                target, kController, rt_.config_.completion_bytes);
            if (fms) {
              const sim::UserEvent gate = fms->ready[i];
              arrived.on_trigger([this, fms, v, gate, i] {
                fms->values[i] = v;
                gate.trigger(rt_.machine_.sim().now());
              });
            }
            if (fut) {
              arrived.on_trigger([this, fut, v, fut_gate] {
                fut->value = v;
                fut_gate.trigger(rt_.machine_.sim().now());
              });
            }
          });
      rt_.all_completions_.push_back(done);
      rt_.stats_.point_tasks_launched++;
    }
  }

  CentralRuntime& rt_;
  sim::ProcessContext& pctx_;
  Philox4x32 rng_{0x5eed, 0};
  std::uint64_t next_future_ = 0;
  std::uint64_t next_future_map_ = 0;
  std::optional<TraceId> active_trace_;
  std::set<TraceId> traces_seen_;
};

// ===========================================================================
// CentralRuntime
// ===========================================================================

CentralRuntime::CentralRuntime(sim::Machine& machine, core::FunctionRegistry& functions,
                               CentralConfig config)
    : machine_(machine),
      functions_(functions),
      config_(config),
      physical_(std::make_unique<rt::PhysicalState>(forest_, machine.network())) {}

sim::Event CentralRuntime::controller_work(SimTime duration) {
  analysis_tail_ =
      machine_.analysis_proc(kController).enqueue(duration, analysis_tail_);
  return analysis_tail_;
}

NodeId CentralRuntime::target_node(std::uint64_t point_index, std::uint64_t total) const {
  // Blocked placement across nodes, matching the blocked sharding DCR uses.
  const std::uint64_t n = machine_.num_nodes();
  const std::uint64_t block = (total + n - 1) / n;
  return NodeId(static_cast<std::uint32_t>(std::min(point_index / block, n - 1)));
}

CentralStats CentralRuntime::execute(const core::ApplicationMain& main) {
  machine_.sim().spawn("controller", [this, &main](sim::ProcessContext& pctx) {
    CentralContext ctx(*this, pctx);
    main(ctx);
    ctx.execution_fence();
    stats_.completed = true;
  });
  stats_.makespan = machine_.sim().run();
  stats_.bytes_moved = physical_->bytes_moved();
  stats_.messages = machine_.network().stats().messages;
  stats_.controller_busy = machine_.analysis_proc(kController).busy_time();
  stats_.compute_busy = machine_.total_compute_busy();
  return stats_;
}

}  // namespace dcr::baselines
