// TensorFlow (+ Horovod) comparator model for Figures 15 and 18.
//
// TensorFlow's lazy-evaluation architecture compiles the dataflow graph once
// and replays it every iteration, so there is no per-iteration dependence
// analysis: iteration time is compute overlapped with the gradient ring
// all-reduce ("TensorFlow uses data parallelism, keeping a replica of the
// model weights on each GPU, and performs collective reductions across GPUs
// using Horovod", §5.3).  Horovod overlaps communication with the backward
// pass — communication hides behind all but the first layer's backward — so
//
//   t_iter = fwd_total + max(bwd_total, allreduce_total) + session_overhead
//
// This is the standard analytic model for synchronous data-parallel SGD; the
// same ring-all-reduce term feeds the FlexFlow app (apps/nn.hpp), so the two
// systems differ exactly where the paper says they do: the execution model,
// not the collective algorithm.
#pragma once

#include <algorithm>

#include "apps/nn.hpp"

namespace dcr::baselines {

struct TfConfig {
  sim::NetworkParams net;
  SimTime session_overhead_per_iter = us(50);  // graph dispatch, feed/fetch
};

// Virtual time for `iterations` data-parallel training iterations.
// compute_scale = 1.0 models a fixed per-GPU batch; 1/gpus models a fixed
// global batch (per-GPU compute shrinks, gradient volume does not).
inline SimTime tf_training_time(const apps::NetworkSpec& spec, std::size_t gpus,
                                std::size_t iterations, const TfConfig& cfg = {},
                                double compute_scale = 1.0) {
  SimTime fwd = 0, bwd = 0, comm = 0;
  for (const auto& l : spec.layers) {
    fwd += static_cast<SimTime>(static_cast<double>(l.fwd_time) * compute_scale);
    bwd += static_cast<SimTime>(static_cast<double>(l.bwd_time) * compute_scale);
    comm += apps::ring_allreduce_time(l.param_bytes, gpus, cfg.net);
  }
  const SimTime iter = fwd + std::max(bwd, comm) + cfg.session_overhead_per_iter;
  return iter * iterations;
}

}  // namespace dcr::baselines
