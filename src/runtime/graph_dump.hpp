// Task-graph visualization: Graphviz DOT export of realized task graphs,
// in the spirit of Legion Spy.  Used for debugging dependence analyses and
// in documentation; tests verify structural fidelity of the output.
#pragma once

#include <functional>
#include <ostream>
#include <sstream>
#include <string>

#include "runtime/task_graph.hpp"

namespace dcr::rt {

// Write `graph` as a DOT digraph.  `label` (optional) maps a TaskId to the
// node label; defaults to "t<id>".
inline void write_dot(std::ostream& os, const TaskGraph& graph,
                      const std::function<std::string(TaskId)>& label = nullptr,
                      const std::string& name = "task_graph") {
  os << "digraph " << name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (TaskId t : graph.tasks()) {
    os << "  t" << t.value << " [label=\""
       << (label ? label(t) : "t" + std::to_string(t.value)) << "\"];\n";
  }
  for (TaskId t : graph.tasks()) {
    for (TaskId s : graph.successors(t)) {
      os << "  t" << t.value << " -> t" << s.value << ";\n";
    }
  }
  os << "}\n";
}

inline std::string to_dot(const TaskGraph& graph,
                          const std::function<std::string(TaskId)>& label = nullptr,
                          const std::string& name = "task_graph") {
  std::ostringstream os;
  write_dot(os, graph, label, name);
  return os.str();
}

}  // namespace dcr::rt
