// The task graph G = <T, D>: output of dependence analysis (paper §2).
//
// Used three ways: (1) the formal-semantics systems DEPseq/DEPrep build task
// graphs that Theorem 1 tests compare for equality, (2) executors record the
// realized dependence structure for validation, (3) utilities (topological
// order, reachability, transitive reduction) support tests and the tracing
// optimization.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dcr::rt {

class TaskGraph {
 public:
  void add_task(TaskId t) {
    DCR_CHECK(!preds_.count(t)) << "task " << t.value << " added twice";
    preds_[t];
    succs_[t];
  }

  bool has_task(TaskId t) const { return preds_.count(t) != 0; }

  void add_edge(TaskId from, TaskId to) {
    DCR_CHECK(has_task(from) && has_task(to));
    DCR_CHECK(from != to) << "self edge on task " << from.value;
    succs_[from].insert(to);
    preds_[to].insert(from);
  }

  bool has_edge(TaskId from, TaskId to) const {
    auto it = succs_.find(from);
    return it != succs_.end() && it->second.count(to) != 0;
  }

  std::size_t num_tasks() const { return preds_.size(); }

  std::size_t num_edges() const {
    std::size_t n = 0;
    for (const auto& [t, s] : succs_) n += s.size();
    return n;
  }

  const std::set<TaskId>& predecessors(TaskId t) const {
    auto it = preds_.find(t);
    DCR_CHECK(it != preds_.end());
    return it->second;
  }
  const std::set<TaskId>& successors(TaskId t) const {
    auto it = succs_.find(t);
    DCR_CHECK(it != succs_.end());
    return it->second;
  }

  std::vector<TaskId> tasks() const {
    std::vector<TaskId> out;
    out.reserve(preds_.size());
    for (const auto& [t, p] : preds_) out.push_back(t);
    return out;
  }

  friend bool operator==(const TaskGraph& a, const TaskGraph& b) {
    return a.succs_ == b.succs_;  // preds_ is the mirror image
  }

  // Kahn topological order (deterministic: ready set ordered by TaskId).
  std::vector<TaskId> topological_order() const {
    std::map<TaskId, std::size_t> indeg;
    for (const auto& [t, p] : preds_) indeg[t] = p.size();
    std::set<TaskId> ready;
    for (const auto& [t, d] : indeg) {
      if (d == 0) ready.insert(t);
    }
    std::vector<TaskId> order;
    order.reserve(preds_.size());
    while (!ready.empty()) {
      const TaskId t = *ready.begin();
      ready.erase(ready.begin());
      order.push_back(t);
      for (TaskId s : succs_.at(t)) {
        if (--indeg[s] == 0) ready.insert(s);
      }
    }
    DCR_CHECK(order.size() == preds_.size()) << "task graph has a cycle";
    return order;
  }

  bool is_acyclic() const {
    std::map<TaskId, std::size_t> indeg;
    for (const auto& [t, p] : preds_) indeg[t] = p.size();
    std::set<TaskId> ready;
    for (const auto& [t, d] : indeg) {
      if (d == 0) ready.insert(t);
    }
    std::size_t emitted = 0;
    while (!ready.empty()) {
      const TaskId t = *ready.begin();
      ready.erase(ready.begin());
      ++emitted;
      for (TaskId s : succs_.at(t)) {
        if (--indeg[s] == 0) ready.insert(s);
      }
    }
    return emitted == preds_.size();
  }

  bool reaches(TaskId from, TaskId to) const {
    if (from == to) return true;
    std::set<TaskId> seen{from};
    std::vector<TaskId> stack{from};
    while (!stack.empty()) {
      const TaskId t = stack.back();
      stack.pop_back();
      for (TaskId s : succs_.at(t)) {
        if (s == to) return true;
        if (seen.insert(s).second) stack.push_back(s);
      }
    }
    return false;
  }

  // Two graphs describe the same partial order if their transitive closures
  // agree.  (Paper §2, final ¶: "transitive dependences are redundant".)
  bool same_partial_order(const TaskGraph& other) const {
    if (tasks() != other.tasks()) return false;
    return transitive_closure().succs_ == other.transitive_closure().succs_;
  }

  TaskGraph transitive_closure() const {
    TaskGraph out;
    for (const auto& [t, p] : preds_) out.add_task(t);
    // Process in reverse topological order, unioning successor reach sets.
    const std::vector<TaskId> order = topological_order();
    std::map<TaskId, std::set<TaskId>> reach;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      std::set<TaskId>& r = reach[*it];
      for (TaskId s : succs_.at(*it)) {
        r.insert(s);
        r.insert(reach[s].begin(), reach[s].end());
      }
      for (TaskId s : r) out.add_edge(*it, s);
    }
    return out;
  }

  // Minimal graph with the same partial order.
  TaskGraph transitive_reduction() const {
    TaskGraph out;
    for (const auto& [t, p] : preds_) out.add_task(t);
    const TaskGraph closure = transitive_closure();
    for (const auto& [t, succ] : succs_) {
      for (TaskId s : succ) {
        bool redundant = false;
        for (TaskId mid : succ) {
          if (mid != s && closure.has_edge(mid, s)) {
            redundant = true;
            break;
          }
        }
        if (!redundant) out.add_edge(t, s);
      }
    }
    return out;
  }

 private:
  std::map<TaskId, std::set<TaskId>> preds_;
  std::map<TaskId, std::set<TaskId>> succs_;
};

}  // namespace dcr::rt
