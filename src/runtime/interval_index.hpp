// Interval index over axis 0 of rects: the access pattern of every tracker
// in this runtime is "find entries whose rectangle may overlap [lo, hi]".
// Regions are partitioned along axis 0 in all the paper's workloads, so
// indexing that axis turns O(all entries) scans into O(overlapping entries)
// — the difference between quadratic and linear total analysis cost at 512
// nodes.  Entries keyed by lo[0]; queries widen the key range by the largest
// entry width seen (whole-region entries degrade gracefully to full scans).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "runtime/geometry.hpp"

namespace dcr::rt {

template <typename T>
class IntervalIndex {
 public:
  struct Item {
    Rect rect;
    T value;
  };

  void insert(const Rect& rect, T value) {
    max_width_ = std::max(max_width_, rect.extent(0));
    by_lo_.emplace(rect.lo[0], Item{rect, std::move(value)});
  }

  std::size_t size() const { return by_lo_.size(); }
  bool empty() const { return by_lo_.empty(); }

  // Visit every item whose axis-0 interval overlaps [rect.lo[0], rect.hi[0]].
  // (Axis-0 overlap is necessary for rect overlap; callers still do the full
  // rect test.)  `fn` must not mutate the index.
  template <typename Fn>
  void for_each_overlapping(const Rect& rect, Fn&& fn) const {
    if (by_lo_.empty()) return;
    auto it = by_lo_.lower_bound(rect.lo[0] - max_width_);
    const std::int64_t qhi = rect.hi[0];
    for (; it != by_lo_.end() && it->first <= qhi; ++it) {
      if (it->second.rect.hi[0] >= rect.lo[0]) fn(it->second);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [lo, item] : by_lo_) fn(item);
  }

  // Remove and return every item overlapping `rect` on axis 0 for which
  // `pred(item)` holds.
  template <typename Pred>
  std::vector<Item> extract_overlapping_if(const Rect& rect, Pred&& pred) {
    std::vector<Item> out;
    if (by_lo_.empty()) return out;
    auto it = by_lo_.lower_bound(rect.lo[0] - max_width_);
    const std::int64_t qhi = rect.hi[0];
    while (it != by_lo_.end() && it->first <= qhi) {
      if (it->second.rect.hi[0] >= rect.lo[0] && pred(it->second)) {
        out.push_back(std::move(it->second));
        it = by_lo_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

 private:
  std::multimap<std::int64_t, Item> by_lo_;
  std::int64_t max_width_ = 0;
};

}  // namespace dcr::rt
