// Logical region forest: index spaces, field spaces, regions, partitions.
//
// Mirrors Legion's data model (paper §4): a region is a table over an index
// space (rows) and a field space (columns); partitions split a region into
// subregions, which can be recursively partitioned, forming a *region tree*.
// "An important property of region trees is that any region in the tree is a
// superset of all the regions in its subtree" — the coarse analysis stage
// exploits exactly this to reason about task groups without enumerating
// points.
//
// Partitions may be disjoint (e.g. `owned` in Figure 8) or aliased (e.g.
// `ghost`); disjointness is what lets the forest *prove* two subregions
// independent structurally, without geometry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"

namespace dcr::rt {

struct FieldDesc {
  FieldId id;
  std::size_t size_bytes = 8;
  std::string name;
};

class RegionForest {
 public:
  RegionForest() = default;

  // ---- field spaces ----
  FieldSpaceId create_field_space();
  FieldId allocate_field(FieldSpaceId fs, std::size_t size_bytes, std::string name = {});
  void free_field(FieldSpaceId fs, FieldId f);
  std::size_t field_size(FieldId f) const;
  const std::string& field_name(FieldId f) const;
  std::vector<FieldId> fields(FieldSpaceId fs) const;

  // ---- region trees ----
  // Creates a new tree whose root region covers `bounds` with fields from fs.
  RegionTreeId create_tree(const Rect& bounds, FieldSpaceId fs);
  void destroy_tree(RegionTreeId tree);
  bool tree_destroyed(RegionTreeId tree) const;
  IndexSpaceId root(RegionTreeId tree) const;
  FieldSpaceId field_space(RegionTreeId tree) const;
  std::size_t num_trees() const { return trees_.size(); }

  // ---- partitions ----
  // General form: one subregion per color, arbitrary rects (may alias parent
  // boundaries for ghost regions).  `disjoint` is asserted by the caller and
  // verified in debug builds.
  PartitionId create_partition(IndexSpaceId parent, std::vector<Rect> pieces, bool disjoint);
  // Blocked equal partition along `axis` into `pieces` subregions (disjoint).
  PartitionId partition_equal(IndexSpaceId parent, std::size_t pieces, int axis = 0);
  // Ghost partition: blocked pieces extended by `halo` on each side of
  // `axis`, clamped to the parent bounds (aliased).
  PartitionId partition_with_halo(IndexSpaceId parent, std::size_t pieces, std::int64_t halo,
                                  int axis = 0);
  // 2-D grid tiling: tiles_x * tiles_y disjoint tiles over axes 0 and 1,
  // colored row-major (x fastest).  `halo` > 0 produces the aliased ghost
  // variant extended on all four sides (clamped to the parent).
  PartitionId partition_grid(IndexSpaceId parent, std::size_t tiles_x, std::size_t tiles_y,
                             std::int64_t halo = 0);

  std::size_t num_subregions(PartitionId p) const;
  // Total partitions ever created; partition ids are dense below this.  Lets
  // offline passes (the statics lint) enumerate partitions a program never
  // launched on.
  std::size_t num_partitions() const { return partitions_.size(); }
  IndexSpaceId subregion(PartitionId p, std::uint64_t color) const;
  bool is_disjoint(PartitionId p) const;
  IndexSpaceId parent_region(PartitionId p) const;
  RegionTreeId tree_of_partition(PartitionId p) const;

  // ---- region nodes ----
  const Rect& bounds(IndexSpaceId r) const;
  RegionTreeId tree_of(IndexSpaceId r) const;
  std::optional<PartitionId> parent_partition(IndexSpaceId r) const;
  std::uint64_t color(IndexSpaceId r) const;  // color within parent partition
  int depth(IndexSpaceId r) const;            // root = 0
  std::size_t num_regions() const { return regions_.size(); }

  // ---- queries ----
  bool is_region_ancestor(IndexSpaceId anc, IndexSpaceId desc) const;
  IndexSpaceId lowest_common_region(IndexSpaceId a, IndexSpaceId b) const;

  // Exact geometric overlap (dense rects, same tree required).
  bool regions_overlap(IndexSpaceId a, IndexSpaceId b) const;

  // Monotone counter bumped by every structural mutation (tree/partition/
  // field creation or destruction).  Cached analysis artifacts — dependence
  // templates in particular — key their validity on this: a changed epoch
  // means region/partition ids or shapes may have shifted under them.
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  // True only if the *tree structure* proves a and b disjoint: they diverge
  // below a common disjoint partition.  Conservative: returns false for
  // aliased/cross-partition pairs even when the geometry happens to be
  // disjoint.  This models what Legion's coarse analysis can conclude
  // symbolically (paper §4.1, Figure 10 discussion).
  bool structurally_disjoint(IndexSpaceId a, IndexSpaceId b) const;

 private:
  struct RegionNode {
    IndexSpaceId id;
    RegionTreeId tree;
    Rect bounds;
    PartitionId parent = PartitionId::invalid();
    std::uint64_t color_in_parent = 0;
    int depth = 0;
    std::vector<PartitionId> child_partitions;
  };
  struct PartitionNode {
    PartitionId id;
    IndexSpaceId parent;
    bool disjoint = false;
    std::vector<IndexSpaceId> children;  // indexed by color
  };
  struct TreeRec {
    IndexSpaceId root;
    FieldSpaceId fs;
    bool destroyed = false;
  };
  struct FieldSpaceRec {
    std::vector<FieldId> fields;
  };
  struct FieldRec {
    std::size_t size = 0;
    std::string name;
    bool freed = false;
  };

  const RegionNode& region(IndexSpaceId r) const {
    DCR_CHECK(r.value < regions_.size()) << "bad region id";
    return regions_[r.value];
  }
  const PartitionNode& partition(PartitionId p) const {
    DCR_CHECK(p.value < partitions_.size()) << "bad partition id";
    return partitions_[p.value];
  }

  IndexSpaceId new_region(RegionTreeId tree, const Rect& bounds, PartitionId parent,
                          std::uint64_t color, int depth);

  std::vector<RegionNode> regions_;
  std::uint64_t mutation_epoch_ = 0;
  std::vector<PartitionNode> partitions_;
  std::vector<TreeRec> trees_;
  std::vector<FieldSpaceRec> field_spaces_;
  std::vector<FieldRec> fields_;
};

}  // namespace dcr::rt
