// Physical-state tracker: which node holds valid data for each piece of each
// (region tree, field), and what copies a task's region requirements imply.
//
// This models the "make_valid_region" step of the fine-stage analysis (paper
// Figure 9, line 7): before a point task runs on a node, every piece of its
// subregion that was last written elsewhere must be copied in.  Copies are
// issued over the simulated network gated on producer completion events, so
// halo exchanges, gradient movement, etc. emerge from the dataflow rather
// than being scripted per application.
//
// The tracker is shared machine-wide: each op's updates are applied by the
// one shard that owns it during its fine stage, and cross-shard fences order
// conflicting updates (paper §4.1), so a single ground-truth view is
// consistent with the distributed execution it models.  Entries are kept in
// an axis-0 interval index so lookups touch only overlapping pieces.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/interval_index.hpp"
#include "runtime/region.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"

namespace dcr::rt {

class PhysicalState {
 public:
  PhysicalState(const RegionForest& forest, sim::Network& net)
      : forest_(&forest), net_(&net) {}

  // Ensure `rect` of (tree, field) is valid at `node`.  Issues network copies
  // for the pieces last written on other nodes; the returned event triggers
  // when every needed piece has arrived (no_event if nothing to move).
  // Replica entries are recorded immediately so later readers on the same
  // node do not duplicate in-flight transfers.
  sim::Event acquire(RegionTreeId tree, FieldId field, const Rect& rect, NodeId node) {
    auto& entries = state_[{tree, field}];
    const std::size_t fsize = forest_->field_size(field);

    // Pieces of `rect` not already valid locally.
    std::vector<Rect> missing{rect};
    entries.for_each_overlapping(rect, [&](const auto& item) {
      if (item.value.node != node || missing.empty()) return;
      std::vector<Rect> next;
      for (const Rect& m : missing) {
        auto pieces = subtract(m, item.rect);
        next.insert(next.end(), pieces.begin(), pieces.end());
      }
      missing = std::move(next);
    });
    if (missing.empty()) return sim::Event::no_event();

    std::vector<sim::Event> arrivals;
    std::vector<std::pair<Rect, Holder>> replicas;
    for (const Rect& m : missing) {
      // Cover `m` with *disjoint* pieces: several entries (the producer plus
      // replicas on other nodes) may hold the same data, and each piece must
      // be fetched exactly once.
      std::vector<Rect> remaining{m};
      entries.for_each_overlapping(m, [&](const auto& item) {
        if (item.value.node == node || remaining.empty()) return;
        std::vector<Rect> next;
        for (const Rect& r : remaining) {
          const Rect ov = intersect(r, item.rect);
          if (ov.is_empty()) {
            next.push_back(r);
            continue;
          }
          const std::uint64_t bytes = ov.volume() * fsize;
          sim::Event arrived = net_->copy(item.value.node, node, bytes, item.value.ready);
          bytes_moved_ += bytes;
          ++copies_issued_;
          arrivals.push_back(arrived);
          replicas.emplace_back(ov, Holder{node, arrived});
          for (const Rect& piece : subtract(r, item.rect)) next.push_back(piece);
        }
        remaining = std::move(next);
      });
      // Pieces overlapping no entry were never written: valid everywhere.
    }
    for (auto& [r, h] : replicas) entries.insert(r, std::move(h));
    if (arrivals.empty()) return sim::Event::no_event();
    return sim::merge_events(std::span<const sim::Event>(arrivals));
  }

  // Record that `node` produces `rect` of (tree, field), valid once `ready`
  // triggers.  Overlapping pieces of all other entries are invalidated.
  void record_write(RegionTreeId tree, FieldId field, const Rect& rect, NodeId node,
                    sim::Event ready) {
    auto& entries = state_[{tree, field}];
    auto removed = entries.extract_overlapping_if(
        rect, [&](const auto& item) { return overlaps(item.rect, rect); });
    for (auto& item : removed) {
      for (const Rect& piece : subtract(item.rect, rect)) {
        entries.insert(piece, item.value);
      }
    }
    entries.insert(rect, Holder{node, std::move(ready)});
  }

  // Record a fill of `rect`: fills are lazy (materialized in place at first
  // use on every node), so the filled pieces become valid *everywhere* —
  // overlapping entries are simply invalidated and no owner is recorded.
  void record_fill(RegionTreeId tree, FieldId field, const Rect& rect) {
    auto& entries = state_[{tree, field}];
    auto removed = entries.extract_overlapping_if(
        rect, [&](const auto& item) { return overlaps(item.rect, rect); });
    for (auto& item : removed) {
      for (const Rect& piece : subtract(item.rect, rect)) {
        entries.insert(piece, item.value);
      }
    }
  }

  // Validity event for reading `rect`: merged readiness of every overlapping
  // entry (used when a consumer runs on the same node as the producer and no
  // copy is needed, but the data still is not ready until the producer ran).
  sim::Event ready_event(RegionTreeId tree, FieldId field, const Rect& rect) const {
    auto it = state_.find({tree, field});
    if (it == state_.end()) return sim::Event::no_event();
    std::vector<sim::Event> events;
    it->second.for_each_overlapping(rect, [&](const auto& item) {
      if (overlaps(item.rect, rect) && !item.value.ready.has_triggered()) {
        events.push_back(item.value.ready);
      }
    });
    if (events.empty()) return sim::Event::no_event();
    return sim::merge_events(std::span<const sim::Event>(events));
  }

  // Where is `rect` currently valid?  For tests.
  std::vector<std::pair<Rect, NodeId>> holders(RegionTreeId tree, FieldId field,
                                               const Rect& rect) const {
    std::vector<std::pair<Rect, NodeId>> out;
    auto it = state_.find({tree, field});
    if (it == state_.end()) return out;
    it->second.for_each_overlapping(rect, [&](const auto& item) {
      const Rect ov = intersect(item.rect, rect);
      if (!ov.is_empty()) out.emplace_back(ov, item.value.node);
    });
    return out;
  }

  // Entry counts per (tree, field) — diagnostics for fragmentation.
  std::vector<std::pair<std::pair<RegionTreeId, FieldId>, std::size_t>> entry_counts() const {
    std::vector<std::pair<std::pair<RegionTreeId, FieldId>, std::size_t>> out;
    for (const auto& [key, idx] : state_) out.emplace_back(key, idx.size());
    return out;
  }

  std::uint64_t bytes_moved() const { return bytes_moved_; }
  std::uint64_t copies_issued() const { return copies_issued_; }
  void reset_stats() { bytes_moved_ = 0; copies_issued_ = 0; }

 private:
  struct Holder {
    NodeId node;
    sim::Event ready;
  };

  const RegionForest* forest_;
  sim::Network* net_;
  std::map<std::pair<RegionTreeId, FieldId>, IntervalIndex<Holder>> state_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t copies_issued_ = 0;
};

}  // namespace dcr::rt
