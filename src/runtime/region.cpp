#include "runtime/region.hpp"

#include <algorithm>

namespace dcr::rt {

// ----------------------------------------------------------- field spaces

FieldSpaceId RegionForest::create_field_space() {
  mutation_epoch_++;
  field_spaces_.emplace_back();
  return FieldSpaceId(static_cast<std::uint32_t>(field_spaces_.size() - 1));
}

FieldId RegionForest::allocate_field(FieldSpaceId fs, std::size_t size_bytes,
                                     std::string name) {
  DCR_CHECK(fs.value < field_spaces_.size());
  mutation_epoch_++;
  const FieldId f(static_cast<std::uint32_t>(fields_.size()));
  fields_.push_back(FieldRec{size_bytes, std::move(name), false});
  field_spaces_[fs.value].fields.push_back(f);
  return f;
}

void RegionForest::free_field(FieldSpaceId fs, FieldId f) {
  DCR_CHECK(fs.value < field_spaces_.size() && f.value < fields_.size());
  auto& list = field_spaces_[fs.value].fields;
  auto it = std::find(list.begin(), list.end(), f);
  DCR_CHECK(it != list.end()) << "field not in field space";
  mutation_epoch_++;
  list.erase(it);
  fields_[f.value].freed = true;
}

std::size_t RegionForest::field_size(FieldId f) const {
  DCR_CHECK(f.value < fields_.size());
  return fields_[f.value].size;
}

const std::string& RegionForest::field_name(FieldId f) const {
  DCR_CHECK(f.value < fields_.size());
  return fields_[f.value].name;
}

std::vector<FieldId> RegionForest::fields(FieldSpaceId fs) const {
  DCR_CHECK(fs.value < field_spaces_.size());
  return field_spaces_[fs.value].fields;
}

// ------------------------------------------------------------ region trees

IndexSpaceId RegionForest::new_region(RegionTreeId tree, const Rect& bounds,
                                      PartitionId parent, std::uint64_t color,
                                      int depth) {
  const IndexSpaceId id(static_cast<std::uint32_t>(regions_.size()));
  RegionNode node;
  node.id = id;
  node.tree = tree;
  node.bounds = bounds;
  node.parent = parent;
  node.color_in_parent = color;
  node.depth = depth;
  regions_.push_back(std::move(node));
  return id;
}

RegionTreeId RegionForest::create_tree(const Rect& bounds, FieldSpaceId fs) {
  DCR_CHECK(fs.value < field_spaces_.size());
  mutation_epoch_++;
  const RegionTreeId tree(static_cast<std::uint32_t>(trees_.size()));
  const IndexSpaceId root =
      new_region(tree, bounds, PartitionId::invalid(), 0, /*depth=*/0);
  trees_.push_back(TreeRec{root, fs, false});
  return tree;
}

void RegionForest::destroy_tree(RegionTreeId tree) {
  DCR_CHECK(tree.value < trees_.size());
  DCR_CHECK(!trees_[tree.value].destroyed) << "double destroy of region tree";
  mutation_epoch_++;
  trees_[tree.value].destroyed = true;
}

bool RegionForest::tree_destroyed(RegionTreeId tree) const {
  DCR_CHECK(tree.value < trees_.size());
  return trees_[tree.value].destroyed;
}

IndexSpaceId RegionForest::root(RegionTreeId tree) const {
  DCR_CHECK(tree.value < trees_.size());
  return trees_[tree.value].root;
}

FieldSpaceId RegionForest::field_space(RegionTreeId tree) const {
  DCR_CHECK(tree.value < trees_.size());
  return trees_[tree.value].fs;
}

// -------------------------------------------------------------- partitions

PartitionId RegionForest::create_partition(IndexSpaceId parent, std::vector<Rect> pieces,
                                           bool disjoint) {
  const RegionNode& pr = region(parent);
  for (const Rect& piece : pieces) {
    DCR_CHECK(pr.bounds.contains(piece))
        << "partition piece " << piece << " escapes parent " << pr.bounds;
  }
#ifndef NDEBUG
  if (disjoint) {
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      for (std::size_t j = i + 1; j < pieces.size(); ++j) {
        DCR_CHECK(!overlaps(pieces[i], pieces[j]))
            << "disjoint partition has overlapping pieces " << i << "," << j;
      }
    }
  }
#endif
  mutation_epoch_++;
  const PartitionId pid(static_cast<std::uint32_t>(partitions_.size()));
  PartitionNode node;
  node.id = pid;
  node.parent = parent;
  node.disjoint = disjoint;
  node.children.reserve(pieces.size());
  // Copy out of `pr` before new_region() — child insertion may reallocate
  // regions_ and invalidate the reference.
  const RegionTreeId tree = pr.tree;
  const int child_depth = pr.depth + 1;
  for (std::size_t c = 0; c < pieces.size(); ++c) {
    node.children.push_back(new_region(tree, pieces[c], pid, c, child_depth));
  }
  partitions_.push_back(std::move(node));
  regions_[parent.value].child_partitions.push_back(pid);
  return pid;
}

PartitionId RegionForest::partition_equal(IndexSpaceId parent, std::size_t pieces,
                                          int axis) {
  const Rect& b = bounds(parent);
  DCR_CHECK(axis >= 0 && axis < b.dim);
  DCR_CHECK(pieces >= 1);
  const auto ai = static_cast<std::size_t>(axis);
  const std::int64_t extent = b.extent(axis);
  std::vector<Rect> rects;
  rects.reserve(pieces);
  for (std::size_t c = 0; c < pieces; ++c) {
    Rect piece = b;
    piece.lo[ai] = b.lo[ai] + static_cast<std::int64_t>(c) * extent / static_cast<std::int64_t>(pieces);
    piece.hi[ai] = b.lo[ai] + static_cast<std::int64_t>(c + 1) * extent / static_cast<std::int64_t>(pieces) - 1;
    rects.push_back(piece);
  }
  return create_partition(parent, std::move(rects), /*disjoint=*/true);
}

PartitionId RegionForest::partition_with_halo(IndexSpaceId parent, std::size_t pieces,
                                              std::int64_t halo, int axis) {
  const Rect& b = bounds(parent);
  DCR_CHECK(axis >= 0 && axis < b.dim);
  const auto ai = static_cast<std::size_t>(axis);
  const std::int64_t extent = b.extent(axis);
  std::vector<Rect> rects;
  rects.reserve(pieces);
  for (std::size_t c = 0; c < pieces; ++c) {
    Rect piece = b;
    piece.lo[ai] = std::max(
        b.lo[ai],
        b.lo[ai] + static_cast<std::int64_t>(c) * extent / static_cast<std::int64_t>(pieces) - halo);
    piece.hi[ai] = std::min(
        b.hi[ai],
        b.lo[ai] + static_cast<std::int64_t>(c + 1) * extent / static_cast<std::int64_t>(pieces) - 1 + halo);
    rects.push_back(piece);
  }
  return create_partition(parent, std::move(rects), /*disjoint=*/false);
}

PartitionId RegionForest::partition_grid(IndexSpaceId parent, std::size_t tiles_x,
                                         std::size_t tiles_y, std::int64_t halo) {
  const Rect& b = bounds(parent);
  DCR_CHECK(b.dim >= 2) << "grid partition needs a 2-D (or higher) region";
  DCR_CHECK(tiles_x >= 1 && tiles_y >= 1);
  const std::int64_t ex = b.extent(0);
  const std::int64_t ey = b.extent(1);
  std::vector<Rect> rects;
  rects.reserve(tiles_x * tiles_y);
  for (std::size_t ty = 0; ty < tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x; ++tx) {
      Rect piece = b;
      piece.lo[0] = b.lo[0] + static_cast<std::int64_t>(tx) * ex / static_cast<std::int64_t>(tiles_x);
      piece.hi[0] = b.lo[0] + static_cast<std::int64_t>(tx + 1) * ex / static_cast<std::int64_t>(tiles_x) - 1;
      piece.lo[1] = b.lo[1] + static_cast<std::int64_t>(ty) * ey / static_cast<std::int64_t>(tiles_y);
      piece.hi[1] = b.lo[1] + static_cast<std::int64_t>(ty + 1) * ey / static_cast<std::int64_t>(tiles_y) - 1;
      if (halo > 0) {
        piece.lo[0] = std::max(b.lo[0], piece.lo[0] - halo);
        piece.hi[0] = std::min(b.hi[0], piece.hi[0] + halo);
        piece.lo[1] = std::max(b.lo[1], piece.lo[1] - halo);
        piece.hi[1] = std::min(b.hi[1], piece.hi[1] + halo);
      }
      rects.push_back(piece);
    }
  }
  return create_partition(parent, std::move(rects), /*disjoint=*/halo == 0);
}

std::size_t RegionForest::num_subregions(PartitionId p) const {
  return partition(p).children.size();
}

IndexSpaceId RegionForest::subregion(PartitionId p, std::uint64_t color) const {
  const PartitionNode& node = partition(p);
  DCR_CHECK(color < node.children.size())
      << "color " << color << " out of range for partition with "
      << node.children.size() << " pieces";
  return node.children[color];
}

bool RegionForest::is_disjoint(PartitionId p) const { return partition(p).disjoint; }

IndexSpaceId RegionForest::parent_region(PartitionId p) const { return partition(p).parent; }

RegionTreeId RegionForest::tree_of_partition(PartitionId p) const {
  return region(partition(p).parent).tree;
}

// ------------------------------------------------------------ region nodes

const Rect& RegionForest::bounds(IndexSpaceId r) const { return region(r).bounds; }

RegionTreeId RegionForest::tree_of(IndexSpaceId r) const { return region(r).tree; }

std::optional<PartitionId> RegionForest::parent_partition(IndexSpaceId r) const {
  const RegionNode& node = region(r);
  if (!node.parent.valid()) return std::nullopt;
  return node.parent;
}

std::uint64_t RegionForest::color(IndexSpaceId r) const { return region(r).color_in_parent; }

int RegionForest::depth(IndexSpaceId r) const { return region(r).depth; }

// ------------------------------------------------------------------ queries

bool RegionForest::is_region_ancestor(IndexSpaceId anc, IndexSpaceId desc) const {
  if (tree_of(anc) != tree_of(desc)) return false;
  IndexSpaceId cur = desc;
  while (true) {
    if (cur == anc) return true;
    const RegionNode& node = region(cur);
    if (!node.parent.valid()) return false;
    cur = partition(node.parent).parent;
  }
}

IndexSpaceId RegionForest::lowest_common_region(IndexSpaceId a, IndexSpaceId b) const {
  DCR_CHECK(tree_of(a) == tree_of(b)) << "LCA requires same tree";
  IndexSpaceId x = a, y = b;
  while (region(x).depth > region(y).depth) x = partition(region(x).parent).parent;
  while (region(y).depth > region(x).depth) y = partition(region(y).parent).parent;
  while (x != y) {
    x = partition(region(x).parent).parent;
    y = partition(region(y).parent).parent;
  }
  return x;
}

bool RegionForest::regions_overlap(IndexSpaceId a, IndexSpaceId b) const {
  if (tree_of(a) != tree_of(b)) return false;
  return overlaps(bounds(a), bounds(b));
}

bool RegionForest::structurally_disjoint(IndexSpaceId a, IndexSpaceId b) const {
  if (tree_of(a) != tree_of(b)) return true;  // different trees: different data
  if (a == b) return false;
  // Walk both up to the depth of the LCA's children and compare the
  // partitions/colors through which they descend from the LCA.
  IndexSpaceId x = a, y = b;
  while (region(x).depth > region(y).depth) x = partition(region(x).parent).parent;
  while (region(y).depth > region(x).depth) y = partition(region(y).parent).parent;
  if (x == y) return false;  // one is an ancestor of the other
  while (true) {
    const RegionNode& nx = region(x);
    const RegionNode& ny = region(y);
    const IndexSpaceId px = partition(nx.parent).parent;
    const IndexSpaceId py = partition(ny.parent).parent;
    if (px == py) {
      // Diverge below the common region px: structurally disjoint iff they
      // descend through the *same disjoint partition* via different colors.
      if (nx.parent == ny.parent) {
        DCR_DCHECK(nx.color_in_parent != ny.color_in_parent);
        return partition(nx.parent).disjoint;
      }
      return false;  // different partitions of the same region: may alias
    }
    x = px;
    y = py;
  }
}

}  // namespace dcr::rt
