// Region requirements, projection functions, and the pairwise dependence
// oracle.
//
// A *concrete* Requirement names one region + fields + privilege, as used by
// a single task.  A GroupRequirement is the upper-bound form used by a group
// (index) task launch: a partition (or a single region shared by all points)
// plus a projection function that maps each point of the launch domain to its
// subregion — the `t(p[f(i_j)])` form of paper §4.
//
// The oracle implements exactly the three-step check of paper §4.1: shared
// index points -> common field -> at least one writer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"
#include "runtime/region.hpp"
#include "statics/affine.hpp"

namespace dcr::rt {

struct Requirement {
  IndexSpaceId region;
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::ReadOnly;
  ReductionOpId redop = kNoRedop;

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

// Projection functions are pure: (partition, point, launch domain) -> region.
// Purity is what allows memoization and the symbolic fence-elision proof
// (paper §4: "Because sharding functions are pure, we can memoize their
// results" — the same holds for projections).
class ProjectionRegistry {
 public:
  using ProjectionFn =
      std::function<IndexSpaceId(const RegionForest&, PartitionId, const Point&, const Rect&)>;
  // Declarative form: (point, launch domain) -> color of the target partition.
  // A projection registered this way gets an opaque fn synthesized from it,
  // so the symbolic and the opaque forms agree by construction on the colors
  // the ColorFn produces.
  using ColorFn = std::function<std::uint64_t(const Point&, const Rect&)>;

  ProjectionRegistry() {
    // Projection 0: identity — point i maps to the subregion colored by the
    // linearization of i in the launch domain (the `owned[id(.)]` form).
    // Registered with its symbolic (affine) form, validated at construction.
    register_projection([](const Point& p, const Rect& domain) { return linearize(domain, p); },
                        statics::AffineProjection::identity());
  }

  // Opaque registration: no symbolic form, the static prover answers Unknown
  // for every launch using it and the runtime falls back to per-point fine
  // analysis.  Always sound.
  ProjectionId register_projection(ProjectionFn fn) {
    fns_.push_back(std::move(fn));
    syms_.push_back(std::nullopt);
    return ProjectionId(static_cast<std::uint32_t>(fns_.size() - 1));
  }

  // Symbolic registration: the affine form is validated against the concrete
  // color fn by exhaustive comparison over the fixed sample-domain suite; any
  // mismatch aborts loudly (a wrong symbolic form would let the prover skip
  // fine analysis that was actually needed).
  ProjectionId register_projection(ColorFn color, const statics::AffineProjection& sym) {
    validate_symbolic(color, sym);
    ColorFn shared = std::move(color);
    fns_.push_back([shared](const RegionForest& forest, PartitionId part, const Point& p,
                            const Rect& domain) {
      return forest.subregion(part, shared(p, domain));
    });
    syms_.push_back(sym);
    return ProjectionId(static_cast<std::uint32_t>(fns_.size() - 1));
  }

  IndexSpaceId apply(ProjectionId id, const RegionForest& forest, PartitionId part,
                     const Point& p, const Rect& domain) const {
    DCR_CHECK(id.value < fns_.size()) << "unknown projection function";
    return fns_[id.value](forest, part, p, domain);
  }

  // Symbolic form, or nullptr for opaque projections.
  const statics::AffineProjection* symbolic(ProjectionId id) const {
    DCR_CHECK(id.value < syms_.size()) << "unknown projection function";
    return syms_[id.value].has_value() ? &*syms_[id.value] : nullptr;
  }

  static ProjectionId identity() { return ProjectionId(0); }

 private:
  static void validate_symbolic(const ColorFn& color, const statics::AffineProjection& sym) {
    std::uint64_t compared = 0;
    for (const Rect& domain : statics::sample_domains()) {
      for (std::uint64_t idx = 0; idx < domain.volume(); ++idx) {
        const Point p = delinearize(domain, idx);
        const auto symbolic_color = statics::eval_color(sym, domain, p);
        if (!symbolic_color.has_value()) continue;  // sym undefined here: no claim
        DCR_CHECK(*symbolic_color == color(p, domain))
            << "symbolic projection mismatch: " << statics::to_string(sym, domain.dim)
            << " claims color " << *symbolic_color << " but the concrete fn returns "
            << color(p, domain) << " at linear point " << idx << " of a " << domain.dim
            << "-d sample domain";
        ++compared;
      }
    }
    DCR_CHECK(compared > 0)
        << "symbolic projection " << statics::to_string(sym)
        << " is undefined on every sample domain; refusing a vacuous registration";
  }

  std::vector<ProjectionFn> fns_;
  std::vector<std::optional<statics::AffineProjection>> syms_;
};

struct GroupRequirement {
  // Exactly one of partition/region is valid.  The partition (or region) is
  // the coarse-stage upper bound for every point's concrete requirement.
  PartitionId partition = PartitionId::invalid();
  IndexSpaceId region = IndexSpaceId::invalid();
  ProjectionId projection = ProjectionRegistry::identity();
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::ReadOnly;
  ReductionOpId redop = kNoRedop;

  bool uses_partition() const { return partition.valid(); }

  static GroupRequirement on_partition(PartitionId p, std::vector<FieldId> fields,
                                       Privilege priv, ReductionOpId redop = kNoRedop,
                                       ProjectionId proj = ProjectionRegistry::identity()) {
    GroupRequirement r;
    r.partition = p;
    r.projection = proj;
    r.fields = std::move(fields);
    r.privilege = priv;
    r.redop = redop;
    return r;
  }
  static GroupRequirement on_region(IndexSpaceId reg, std::vector<FieldId> fields,
                                    Privilege priv, ReductionOpId redop = kNoRedop) {
    GroupRequirement r;
    r.region = reg;
    r.fields = std::move(fields);
    r.privilege = priv;
    r.redop = redop;
    return r;
  }

  // Concrete requirement for one point of the launch domain.
  Requirement concretize(const RegionForest& forest, const ProjectionRegistry& projs,
                         const Point& p, const Rect& domain) const {
    Requirement req;
    req.region = uses_partition() ? projs.apply(projection, forest, partition, p, domain)
                                  : region;
    req.fields = fields;
    req.privilege = privilege;
    req.redop = redop;
    return req;
  }

  // Upper-bound region covering every point's concrete requirement.
  IndexSpaceId upper_bound(const RegionForest& forest) const {
    return uses_partition() ? forest.parent_region(partition) : region;
  }
};

// On the per-point fine path, so the common cases must not be O(n·m): field
// ids are small dense integers in practice, so a 64-bit occupancy mask
// resolves both hit and miss in O(n+m); only ids >= 64 (none today) fall back
// to the quadratic scan, and then only for the unmasked ids.
inline bool fields_intersect(const std::vector<FieldId>& a, const std::vector<FieldId>& b) {
  if (a.empty() || b.empty()) return false;
  if (a.size() == 1 && b.size() == 1) return a[0] == b[0];
  std::uint64_t mask_a = 0, mask_b = 0;
  bool all_small = true;
  for (FieldId fa : a) {
    if (fa.value < 64) {
      mask_a |= std::uint64_t{1} << fa.value;
    } else {
      all_small = false;
    }
  }
  for (FieldId fb : b) {
    if (fb.value < 64) {
      mask_b |= std::uint64_t{1} << fb.value;
    } else {
      all_small = false;
    }
  }
  if ((mask_a & mask_b) != 0) return true;
  if (all_small) return false;
  for (FieldId fa : a) {
    if (fa.value < 64) continue;  // misses in the mask are exact
    if (std::find(b.begin(), b.end(), fa) != b.end()) return true;
  }
  return false;
}

// The dependence oracle on concrete requirements (paper §4.1, final ¶).
inline bool requirements_conflict(const RegionForest& forest, const Requirement& a,
                                  const Requirement& b) {
  if (forest.tree_of(a.region) != forest.tree_of(b.region)) return false;
  if (!forest.regions_overlap(a.region, b.region)) return false;
  if (!fields_intersect(a.fields, b.fields)) return false;
  return privileges_conflict(a.privilege, a.redop, b.privilege, b.redop);
}

// Conservative (symbolic) oracle on group-launch upper bounds: used by the
// coarse stage, which must not enumerate points.  Compares the upper-bound
// region nodes using structural disjointness first, then geometry of the
// bounds.
inline bool group_bounds_may_conflict(const RegionForest& forest, IndexSpaceId ub_a,
                                      const std::vector<FieldId>& fields_a, Privilege priv_a,
                                      ReductionOpId redop_a, IndexSpaceId ub_b,
                                      const std::vector<FieldId>& fields_b, Privilege priv_b,
                                      ReductionOpId redop_b) {
  if (forest.tree_of(ub_a) != forest.tree_of(ub_b)) return false;
  if (!fields_intersect(fields_a, fields_b)) return false;
  if (!privileges_conflict(priv_a, redop_a, priv_b, redop_b)) return false;
  if (forest.structurally_disjoint(ub_a, ub_b)) return false;
  return forest.regions_overlap(ub_a, ub_b);
}

}  // namespace dcr::rt
