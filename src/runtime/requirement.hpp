// Region requirements, projection functions, and the pairwise dependence
// oracle.
//
// A *concrete* Requirement names one region + fields + privilege, as used by
// a single task.  A GroupRequirement is the upper-bound form used by a group
// (index) task launch: a partition (or a single region shared by all points)
// plus a projection function that maps each point of the launch domain to its
// subregion — the `t(p[f(i_j)])` form of paper §4.
//
// The oracle implements exactly the three-step check of paper §4.1: shared
// index points -> common field -> at least one writer.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"
#include "runtime/region.hpp"

namespace dcr::rt {

struct Requirement {
  IndexSpaceId region;
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::ReadOnly;
  ReductionOpId redop = kNoRedop;

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

// Projection functions are pure: (partition, point, launch domain) -> region.
// Purity is what allows memoization and the symbolic fence-elision proof
// (paper §4: "Because sharding functions are pure, we can memoize their
// results" — the same holds for projections).
class ProjectionRegistry {
 public:
  using ProjectionFn =
      std::function<IndexSpaceId(const RegionForest&, PartitionId, const Point&, const Rect&)>;

  ProjectionRegistry() {
    // Projection 0: identity — point i maps to the subregion colored by the
    // linearization of i in the launch domain (the `owned[id(.)]` form).
    register_projection([](const RegionForest& forest, PartitionId part, const Point& p,
                           const Rect& domain) {
      return forest.subregion(part, linearize(domain, p));
    });
  }

  ProjectionId register_projection(ProjectionFn fn) {
    fns_.push_back(std::move(fn));
    return ProjectionId(static_cast<std::uint32_t>(fns_.size() - 1));
  }

  IndexSpaceId apply(ProjectionId id, const RegionForest& forest, PartitionId part,
                     const Point& p, const Rect& domain) const {
    DCR_CHECK(id.value < fns_.size()) << "unknown projection function";
    return fns_[id.value](forest, part, p, domain);
  }

  static ProjectionId identity() { return ProjectionId(0); }

 private:
  std::vector<ProjectionFn> fns_;
};

struct GroupRequirement {
  // Exactly one of partition/region is valid.  The partition (or region) is
  // the coarse-stage upper bound for every point's concrete requirement.
  PartitionId partition = PartitionId::invalid();
  IndexSpaceId region = IndexSpaceId::invalid();
  ProjectionId projection = ProjectionRegistry::identity();
  std::vector<FieldId> fields;
  Privilege privilege = Privilege::ReadOnly;
  ReductionOpId redop = kNoRedop;

  bool uses_partition() const { return partition.valid(); }

  static GroupRequirement on_partition(PartitionId p, std::vector<FieldId> fields,
                                       Privilege priv, ReductionOpId redop = kNoRedop,
                                       ProjectionId proj = ProjectionRegistry::identity()) {
    GroupRequirement r;
    r.partition = p;
    r.projection = proj;
    r.fields = std::move(fields);
    r.privilege = priv;
    r.redop = redop;
    return r;
  }
  static GroupRequirement on_region(IndexSpaceId reg, std::vector<FieldId> fields,
                                    Privilege priv, ReductionOpId redop = kNoRedop) {
    GroupRequirement r;
    r.region = reg;
    r.fields = std::move(fields);
    r.privilege = priv;
    r.redop = redop;
    return r;
  }

  // Concrete requirement for one point of the launch domain.
  Requirement concretize(const RegionForest& forest, const ProjectionRegistry& projs,
                         const Point& p, const Rect& domain) const {
    Requirement req;
    req.region = uses_partition() ? projs.apply(projection, forest, partition, p, domain)
                                  : region;
    req.fields = fields;
    req.privilege = privilege;
    req.redop = redop;
    return req;
  }

  // Upper-bound region covering every point's concrete requirement.
  IndexSpaceId upper_bound(const RegionForest& forest) const {
    return uses_partition() ? forest.parent_region(partition) : region;
  }
};

inline bool fields_intersect(const std::vector<FieldId>& a, const std::vector<FieldId>& b) {
  for (FieldId fa : a) {
    if (std::find(b.begin(), b.end(), fa) != b.end()) return true;
  }
  return false;
}

// The dependence oracle on concrete requirements (paper §4.1, final ¶).
inline bool requirements_conflict(const RegionForest& forest, const Requirement& a,
                                  const Requirement& b) {
  if (forest.tree_of(a.region) != forest.tree_of(b.region)) return false;
  if (!forest.regions_overlap(a.region, b.region)) return false;
  if (!fields_intersect(a.fields, b.fields)) return false;
  return privileges_conflict(a.privilege, a.redop, b.privilege, b.redop);
}

// Conservative (symbolic) oracle on group-launch upper bounds: used by the
// coarse stage, which must not enumerate points.  Compares the upper-bound
// region nodes using structural disjointness first, then geometry of the
// bounds.
inline bool group_bounds_may_conflict(const RegionForest& forest, IndexSpaceId ub_a,
                                      const std::vector<FieldId>& fields_a, Privilege priv_a,
                                      ReductionOpId redop_a, IndexSpaceId ub_b,
                                      const std::vector<FieldId>& fields_b, Privilege priv_b,
                                      ReductionOpId redop_b) {
  if (forest.tree_of(ub_a) != forest.tree_of(ub_b)) return false;
  if (!fields_intersect(fields_a, fields_b)) return false;
  if (!privileges_conflict(priv_a, redop_a, priv_b, redop_b)) return false;
  if (forest.structurally_disjoint(ub_a, ub_b)) return false;
  return forest.regions_overlap(ub_a, ub_b);
}

}  // namespace dcr::rt
