// Privileges on region requirements and the privilege-level conflict rules.
//
// Paper §4.1 (dependence oracle): "we lastly check to see if either task
// writes its region argument; if at least one is writing then a dependence is
// required."  As in Legion, concurrent reductions with the *same* reduction
// operator commute and are not ordered against each other.
#pragma once

#include <cstdint>
#include <string_view>

namespace dcr::rt {

enum class Privilege : std::uint8_t {
  None,
  ReadOnly,
  ReadWrite,
  WriteDiscard,  // write-only: contents overwritten, no flow-in dependence on data
  Reduce,        // accumulate with a reduction operator
};

using ReductionOpId = std::uint16_t;
inline constexpr ReductionOpId kNoRedop = 0;

constexpr bool is_writer(Privilege p) {
  return p == Privilege::ReadWrite || p == Privilege::WriteDiscard ||
         p == Privilege::Reduce;
}

constexpr bool is_reader(Privilege p) {
  return p == Privilege::ReadOnly || p == Privilege::ReadWrite;
}

// Do two accesses to the same data require ordering?
constexpr bool privileges_conflict(Privilege a, ReductionOpId a_op, Privilege b,
                                   ReductionOpId b_op) {
  if (a == Privilege::None || b == Privilege::None) return false;
  if (a == Privilege::ReadOnly && b == Privilege::ReadOnly) return false;
  if (a == Privilege::Reduce && b == Privilege::Reduce) return a_op != b_op;
  return true;  // at least one non-commuting writer
}

constexpr std::string_view to_string(Privilege p) {
  switch (p) {
    case Privilege::None: return "NONE";
    case Privilege::ReadOnly: return "RO";
    case Privilege::ReadWrite: return "RW";
    case Privilege::WriteDiscard: return "WD";
    case Privilege::Reduce: return "RED";
  }
  return "?";
}

}  // namespace dcr::rt
