// Dense rectangular index-space geometry (1-D to 3-D).
//
// Legion index spaces in the applications the paper evaluates are dense
// N-dimensional rectangles ("ispace(int1d, {x = ncells})" in Figure 7), so
// the forest supports dense Rects: exact intersection/containment/volume and
// rectangle subtraction (used by the physical-state tracker to compute which
// pieces of a subregion need copying between nodes).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/check.hpp"

namespace dcr::rt {

inline constexpr int kMaxDim = 3;

struct Point {
  int dim = 1;
  std::array<std::int64_t, kMaxDim> c{0, 0, 0};

  static Point p1(std::int64_t x) { return Point{1, {x, 0, 0}}; }
  static Point p2(std::int64_t x, std::int64_t y) { return Point{2, {x, y, 0}}; }
  static Point p3(std::int64_t x, std::int64_t y, std::int64_t z) {
    return Point{3, {x, y, z}};
  }

  std::int64_t operator[](int i) const { return c[static_cast<std::size_t>(i)]; }
  std::int64_t& operator[](int i) { return c[static_cast<std::size_t>(i)]; }

  friend bool operator==(const Point&, const Point&) = default;
};

struct Rect {
  int dim = 1;
  std::array<std::int64_t, kMaxDim> lo{0, 0, 0};
  std::array<std::int64_t, kMaxDim> hi{-1, -1, -1};  // inclusive; lo>hi = empty

  static Rect r1(std::int64_t lo, std::int64_t hi) { return Rect{1, {lo, 0, 0}, {hi, 0, 0}}; }
  static Rect r2(std::int64_t xlo, std::int64_t xhi, std::int64_t ylo, std::int64_t yhi) {
    return Rect{2, {xlo, ylo, 0}, {xhi, yhi, 0}};
  }
  static Rect r3(std::int64_t xlo, std::int64_t xhi, std::int64_t ylo, std::int64_t yhi,
                 std::int64_t zlo, std::int64_t zhi) {
    return Rect{3, {xlo, ylo, zlo}, {xhi, yhi, zhi}};
  }
  static Rect empty(int dim = 1) {
    Rect r;
    r.dim = dim;
    return r;
  }

  bool is_empty() const {
    for (int d = 0; d < dim; ++d) {
      if (lo[static_cast<std::size_t>(d)] > hi[static_cast<std::size_t>(d)]) return true;
    }
    return false;
  }

  std::int64_t extent(int d) const {
    return hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)] + 1;
  }

  std::uint64_t volume() const {
    if (is_empty()) return 0;
    std::uint64_t v = 1;
    for (int d = 0; d < dim; ++d) v *= static_cast<std::uint64_t>(extent(d));
    return v;
  }

  bool contains(const Point& p) const {
    DCR_DCHECK(p.dim == dim);
    for (int d = 0; d < dim; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (p.c[i] < lo[i] || p.c[i] > hi[i]) return false;
    }
    return true;
  }

  bool contains(const Rect& r) const {
    DCR_DCHECK(r.dim == dim);
    if (r.is_empty()) return true;
    for (int d = 0; d < dim; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (r.lo[i] < lo[i] || r.hi[i] > hi[i]) return false;
    }
    return true;
  }

  // Compare only the used dimensions (helpers leave trailing dims at their
  // defaults, which must not affect equality).
  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.dim != b.dim) return false;
    if (a.is_empty() && b.is_empty()) return true;
    for (int d = 0; d < a.dim; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (a.lo[i] != b.lo[i] || a.hi[i] != b.hi[i]) return false;
    }
    return true;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  os << "[";
  for (int d = 0; d < r.dim; ++d) {
    const auto i = static_cast<std::size_t>(d);
    os << (d ? "," : "") << r.lo[i] << ".." << r.hi[i];
  }
  return os << "]";
}

inline Rect intersect(const Rect& a, const Rect& b) {
  DCR_DCHECK(a.dim == b.dim);
  Rect r;
  r.dim = a.dim;
  for (int d = 0; d < a.dim; ++d) {
    const auto i = static_cast<std::size_t>(d);
    r.lo[i] = std::max(a.lo[i], b.lo[i]);
    r.hi[i] = std::min(a.hi[i], b.hi[i]);
  }
  return r;
}

inline bool overlaps(const Rect& a, const Rect& b) { return !intersect(a, b).is_empty(); }

// Tightest rectangle covering both inputs.
inline Rect bounding_union(const Rect& a, const Rect& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  DCR_DCHECK(a.dim == b.dim);
  Rect r;
  r.dim = a.dim;
  for (int d = 0; d < a.dim; ++d) {
    const auto i = static_cast<std::size_t>(d);
    r.lo[i] = std::min(a.lo[i], b.lo[i]);
    r.hi[i] = std::max(a.hi[i], b.hi[i]);
  }
  return r;
}

// a \ b as a set of disjoint rectangles (at most 2*dim pieces).
inline std::vector<Rect> subtract(const Rect& a, const Rect& b) {
  if (a.is_empty()) return {};
  const Rect ov = intersect(a, b);
  if (ov.is_empty()) return {a};
  std::vector<Rect> out;
  Rect rest = a;  // shrinks toward the overlap, axis by axis
  for (int d = 0; d < a.dim; ++d) {
    const auto i = static_cast<std::size_t>(d);
    if (rest.lo[i] < ov.lo[i]) {
      Rect below = rest;
      below.hi[i] = ov.lo[i] - 1;
      out.push_back(below);
      rest.lo[i] = ov.lo[i];
    }
    if (rest.hi[i] > ov.hi[i]) {
      Rect above = rest;
      above.lo[i] = ov.hi[i] + 1;
      out.push_back(above);
      rest.hi[i] = ov.hi[i];
    }
  }
  return out;
}

// Row-major iteration order over the points of a rect (used for deterministic
// enumeration in tests and fills).
template <typename Fn>
void for_each_point(const Rect& r, Fn&& fn) {
  if (r.is_empty()) return;
  Point p;
  p.dim = r.dim;
  std::array<std::int64_t, kMaxDim> lo = r.lo, hi = r.hi;
  for (int d = r.dim; d < kMaxDim; ++d) {
    lo[static_cast<std::size_t>(d)] = hi[static_cast<std::size_t>(d)] = 0;
  }
  for (std::int64_t z = lo[2]; z <= hi[2]; ++z) {
    for (std::int64_t y = lo[1]; y <= hi[1]; ++y) {
      for (std::int64_t x = lo[0]; x <= hi[0]; ++x) {
        p.c = {x, y, z};
        fn(p);
      }
    }
  }
}

// Linearize a point within a rect (row-major); inverse of delinearize.
inline std::uint64_t linearize(const Rect& r, const Point& p) {
  DCR_DCHECK(r.contains(p));
  std::uint64_t idx = 0;
  for (int d = r.dim - 1; d >= 0; --d) {
    const auto i = static_cast<std::size_t>(d);
    idx = idx * static_cast<std::uint64_t>(r.extent(d)) +
          static_cast<std::uint64_t>(p.c[i] - r.lo[i]);
  }
  return idx;
}

inline Point delinearize(const Rect& r, std::uint64_t idx) {
  Point p;
  p.dim = r.dim;
  for (int d = 0; d < r.dim; ++d) {
    const auto i = static_cast<std::size_t>(d);
    const auto ext = static_cast<std::uint64_t>(r.extent(d));
    p.c[i] = r.lo[i] + static_cast<std::int64_t>(idx % ext);
    idx /= ext;
  }
  DCR_DCHECK(idx == 0);
  return p;
}

}  // namespace dcr::rt
