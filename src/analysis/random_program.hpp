// Random abstract-program generator for property-testing Theorem 1.
//
// Generated programs mimic the structure the paper's applications exhibit:
// group launches over disjoint tiles (with per-task privileges on random
// field sets) interleaved with occasional whole-domain single-task
// operations (fills, I/O).  The dependence oracle is derived from interval
// overlap + field intersection + writer rules — the same three-step check
// Legion uses — so intra-group independence holds by construction (disjoint
// tiles) and cross-group dependences are nontrivial.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/semantics.hpp"
#include "common/philox.hpp"

namespace dcr::an {

struct RandomProgramConfig {
  std::size_t num_groups = 12;
  std::size_t max_group_width = 8;   // tiles per group launch
  std::size_t num_fields = 3;
  std::size_t domain = 64;           // abstract 1-D domain size
  double whole_domain_op_prob = 0.2; // chance a group is a single fill-like op
  double write_prob = 0.6;
};

struct RandomProgram {
  AProgram program;  // owners unset (ShardId default); shard before analyzing
  Oracle oracle;
};

inline RandomProgram generate_random_program(const RandomProgramConfig& cfg,
                                             Philox4x32& rng) {
  struct Access {
    std::int64_t lo, hi;
    std::uint64_t field_mask;
    bool writes;
  };
  auto accesses = std::make_shared<std::map<TaskId, std::vector<Access>>>();

  AProgram program;
  std::uint64_t next_task = 0;
  for (std::size_t g = 0; g < cfg.num_groups; ++g) {
    ATaskGroup tg;
    if (rng.next_double() < cfg.whole_domain_op_prob) {
      // Whole-domain op: one task touching everything (like a fill).
      const TaskId t(next_task++);
      const std::uint64_t mask = 1 + rng.next_below((1ull << cfg.num_fields) - 1);
      (*accesses)[t].push_back(Access{0, static_cast<std::int64_t>(cfg.domain) - 1,
                                      mask, rng.next_double() < cfg.write_prob});
      tg.push_back(ATask{t, ShardId(0)});
    } else {
      // Group launch over disjoint tiles; same field/privilege per point
      // (like an index launch), tile width chosen randomly.
      const std::size_t width = 1 + rng.next_below(cfg.max_group_width);
      const std::uint64_t mask = 1 + rng.next_below((1ull << cfg.num_fields) - 1);
      const bool writes = rng.next_double() < cfg.write_prob;
      const std::size_t tile = cfg.domain / width;
      for (std::size_t i = 0; i < width; ++i) {
        const TaskId t(next_task++);
        (*accesses)[t].push_back(
            Access{static_cast<std::int64_t>(i * tile),
                   static_cast<std::int64_t>(i == width - 1 ? cfg.domain - 1
                                                            : (i + 1) * tile - 1),
                   mask, writes});
        tg.push_back(ATask{t, ShardId(0)});
      }
    }
    program.push_back(std::move(tg));
  }

  Oracle oracle = [accesses](TaskId t1, TaskId t2) {
    auto i1 = accesses->find(t1);
    auto i2 = accesses->find(t2);
    if (i1 == accesses->end() || i2 == accesses->end()) return false;
    for (const auto& a : i1->second) {
      for (const auto& b : i2->second) {
        if (a.lo > b.hi || b.lo > a.hi) continue;       // disjoint points
        if ((a.field_mask & b.field_mask) == 0) continue;  // disjoint fields
        if (a.writes || b.writes) return true;          // writer involved
      }
    }
    return false;
  };
  return RandomProgram{std::move(program), std::move(oracle)};
}

}  // namespace dcr::an
