#include "analysis/semantics.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace dcr::an {

rt::TaskGraph analyze_sequential(const AProgram& program, const Oracle& oracle) {
  rt::TaskGraph graph;
  std::vector<TaskId> analyzed;  // T, in program order
  for (const ATaskGroup& tg : program) {
    // T' = T ∪ tg ; D' = D ∪ T =x=> tg
    for (const ATask& t : tg) graph.add_task(t.id);
    for (const ATask& t : tg) {
      for (TaskId prev : analyzed) {
        if (oracle(prev, t.id)) graph.add_edge(prev, t.id);
      }
    }
    for (const ATask& t : tg) analyzed.push_back(t.id);
  }
  return graph;
}

namespace {

// One shard's state s_i = (p_i, c_i, d_i).  p_i is represented as a cursor
// into the (replicated) program; c_i as the ordered prefix of analyzed tasks
// (all tasks of completed groups, not just owned ones — rule Tb/Tc add the
// whole group to c_i).
struct ShardState {
  std::size_t next_group = 0;              // p_i
  std::vector<TaskId> completed;           // c_i, in program order
  std::size_t completed_groups = 0;        // |c_i| in groups (for the c_k check)
  std::vector<std::pair<TaskId, TaskId>> outstanding;  // d_i
  bool has_outstanding = false;  // distinguishes d_i = ∅ from "computed empty"
};

}  // namespace

rt::TaskGraph analyze_replicated(const AProgram& program, std::size_t num_shards,
                                 const Oracle& oracle, Philox4x32& rng,
                                 ReplicatedStats* stats) {
  DCR_CHECK(num_shards >= 1);
  ReplicatedStats local_stats;
  ReplicatedStats& st = stats ? *stats : local_stats;

  // Owner shard per task and group index per task, for the Tb gating check
  // (t^k ∈ c_k means shard k has completed the group containing t^k).
  std::map<TaskId, ShardId> owner;
  std::map<TaskId, std::size_t> group_of;
  for (std::size_t g = 0; g < program.size(); ++g) {
    for (const ATask& t : program[g]) {
      DCR_CHECK(t.owner.value < num_shards) << "task owned by nonexistent shard";
      owner[t.id] = t.owner;
      group_of[t.id] = g;
    }
  }

  std::vector<ShardState> shards(num_shards);
  rt::TaskGraph graph;

  auto owned_subset = [&](std::size_t g, std::size_t shard) {
    std::vector<TaskId> out;
    for (const ATask& t : program[g]) {
      if (t.owner.value == shard) out.push_back(t.id);
    }
    return out;
  };

  // Which rules are enabled for shard i?
  enum class Rule { None, Ta, Tb, Tc };
  auto enabled = [&](std::size_t i) -> Rule {
    ShardState& s = shards[i];
    if (s.has_outstanding) {
      // Tb: all dependent predecessors analyzed by their owner shards.
      for (const auto& [pred, succ] : s.outstanding) {
        const std::size_t k = owner.at(pred).value;
        if (group_of.at(pred) >= shards[k].completed_groups) {
          ++st.stalls;
          return Rule::None;
        }
      }
      return Rule::Tb;
    }
    if (s.next_group >= program.size()) return Rule::None;  // done
    // d'_i = c_i =x=> tg(i): Ta if nonempty, Tc if empty.
    for (TaskId mine : owned_subset(s.next_group, i)) {
      for (TaskId prev : s.completed) {
        if (oracle(prev, mine)) return Rule::Ta;
      }
    }
    return Rule::Tc;
  };

  auto step = [&](std::size_t i, Rule rule) {
    ShardState& s = shards[i];
    const std::size_t g = s.next_group;
    switch (rule) {
      case Rule::Ta: {
        DCR_CHECK(!s.has_outstanding);
        for (TaskId mine : owned_subset(g, i)) {
          for (TaskId prev : s.completed) {
            if (oracle(prev, mine)) s.outstanding.emplace_back(prev, mine);
          }
        }
        DCR_CHECK(!s.outstanding.empty());
        s.has_outstanding = true;
        ++st.ta_steps;
        break;
      }
      case Rule::Tb: {
        DCR_CHECK(s.has_outstanding);
        for (TaskId mine : owned_subset(g, i)) {
          if (!graph.has_task(mine)) graph.add_task(mine);
        }
        for (const auto& [pred, succ] : s.outstanding) graph.add_edge(pred, succ);
        s.outstanding.clear();
        s.has_outstanding = false;
        for (const ATask& t : program[g]) s.completed.push_back(t.id);
        s.completed_groups++;
        s.next_group++;
        ++st.tb_steps;
        break;
      }
      case Rule::Tc: {
        for (TaskId mine : owned_subset(g, i)) {
          if (!graph.has_task(mine)) graph.add_task(mine);
        }
        for (const ATask& t : program[g]) s.completed.push_back(t.id);
        s.completed_groups++;
        s.next_group++;
        ++st.tc_steps;
        break;
      }
      case Rule::None:
        DCR_CHECK(false) << "stepping a disabled shard";
    }
  };

  // Drive to quiescence with a random enabled transition each step.
  for (;;) {
    std::vector<std::pair<std::size_t, Rule>> choices;
    bool all_done = true;
    for (std::size_t i = 0; i < num_shards; ++i) {
      const Rule r = enabled(i);
      if (r != Rule::None) choices.emplace_back(i, r);
      if (shards[i].next_group < program.size() || shards[i].has_outstanding) {
        all_done = false;
      }
    }
    if (choices.empty()) {
      DCR_CHECK(all_done) << "DEPrep deadlocked with work remaining";
      break;
    }
    const auto& [i, rule] = choices[rng.next_below(choices.size())];
    step(i, rule);
  }

  // Every task must have been registered by its owner.
  for (const auto& [t, k] : owner) {
    DCR_CHECK(graph.has_task(t)) << "task " << t.value << " never registered";
  }
  return graph;
}

std::vector<rt::TaskGraph> analyze_replicated_exhaustive(const AProgram& program,
                                                         std::size_t num_shards,
                                                         const Oracle& oracle,
                                                         std::size_t max_states) {
  DCR_CHECK(num_shards >= 1);
  const std::size_t groups = program.size();

  // Owned subsets and their rule-Ta dependence sets are pure functions of
  // (shard, group); precompute both.
  auto owned = [&](std::size_t g, std::size_t i) {
    std::vector<TaskId> out;
    for (const ATask& t : program[g]) {
      if (t.owner.value == i) out.push_back(t.id);
    }
    return out;
  };
  std::map<TaskId, std::size_t> group_of;
  std::map<TaskId, std::size_t> owner_of;
  for (std::size_t g = 0; g < groups; ++g) {
    for (const ATask& t : program[g]) {
      group_of[t.id] = g;
      owner_of[t.id] = t.owner.value;
    }
  }
  // deps[g][i]: edges (pred, succ in tg(i)) discovered by rule Ta.
  std::vector<std::vector<std::vector<std::pair<TaskId, TaskId>>>> deps(
      groups, std::vector<std::vector<std::pair<TaskId, TaskId>>>(num_shards));
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < num_shards; ++i) {
      for (TaskId mine : owned(g, i)) {
        for (std::size_t p = 0; p < g; ++p) {
          for (const ATask& prev : program[p]) {
            if (oracle(prev.id, mine)) deps[g][i].emplace_back(prev.id, mine);
          }
        }
      }
    }
  }

  // A state is (g_i, outstanding_i) per shard; c_i is the prefix of full
  // groups below g_i.  BFS/DFS over all reachable states.
  using State = std::vector<std::uint32_t>;  // 2*g_i + outstanding_i
  const auto encode = [&](const std::vector<std::uint32_t>& g,
                          const std::vector<bool>& out) {
    State s(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      s[i] = 2 * g[i] + (out[i] ? 1 : 0);
    }
    return s;
  };

  std::set<State> visited;
  std::vector<State> stack{encode(std::vector<std::uint32_t>(num_shards, 0),
                                  std::vector<bool>(num_shards, false))};
  visited.insert(stack.back());
  bool reached_terminal = false;

  while (!stack.empty()) {
    DCR_CHECK(visited.size() <= max_states)
        << "exhaustive interleaving search exceeded the state budget";
    const State s = stack.back();
    stack.pop_back();

    bool all_done = true;
    bool any_enabled = false;
    for (std::size_t i = 0; i < num_shards; ++i) {
      const std::uint32_t gi = s[i] / 2;
      const bool outi = (s[i] % 2) != 0;
      if (gi < groups || outi) all_done = false;

      State next = s;
      if (outi) {
        // Rule Tb: every dependent predecessor analyzed by its owner shard.
        bool gated = true;
        for (const auto& [pred, succ] : deps[gi][i]) {
          const std::size_t k = owner_of.at(pred);
          if (group_of.at(pred) >= s[k] / 2) {
            gated = false;
            break;
          }
        }
        if (!gated) continue;
        next[i] = 2 * (gi + 1);  // register, complete the group
      } else if (gi < groups) {
        if (deps[gi][i].empty()) {
          next[i] = 2 * (gi + 1);  // rule Tc
        } else {
          next[i] = 2 * gi + 1;  // rule Ta
        }
      } else {
        continue;  // shard finished
      }
      any_enabled = true;
      if (visited.insert(next).second) stack.push_back(next);
    }
    if (all_done) {
      reached_terminal = true;
    } else {
      DCR_CHECK(any_enabled) << "DEPrep deadlocked in exhaustive exploration";
    }
  }
  DCR_CHECK(reached_terminal) << "no terminal state reached";

  // Registrations are deterministic per (shard, group), so every terminal
  // interleaving yields the same graph; build it once.
  rt::TaskGraph graph;
  for (std::size_t g = 0; g < groups; ++g) {
    for (const ATask& t : program[g]) graph.add_task(t.id);
  }
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < num_shards; ++i) {
      for (const auto& [pred, succ] : deps[g][i]) graph.add_edge(pred, succ);
    }
  }
  return {graph};
}

bool is_valid_program(const AProgram& program, const Oracle& oracle) {
  std::set<TaskId> seen;
  for (const ATaskGroup& tg : program) {
    for (const ATask& t : tg) {
      if (!seen.insert(t.id).second) return false;
    }
    for (std::size_t i = 0; i < tg.size(); ++i) {
      for (std::size_t j = i + 1; j < tg.size(); ++j) {
        // Pairwise independence within a group, in both orders.
        if (oracle(tg[i].id, tg[j].id) || oracle(tg[j].id, tg[i].id)) return false;
      }
    }
  }
  return true;
}

AProgram apply_cyclic_sharding(const AProgram& program, std::size_t num_shards) {
  AProgram out = program;
  for (ATaskGroup& tg : out) {
    for (std::size_t i = 0; i < tg.size(); ++i) {
      tg[i].owner = ShardId(static_cast<std::uint32_t>(i % num_shards));
    }
  }
  return out;
}

}  // namespace dcr::an
