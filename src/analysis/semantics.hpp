// Executable form of the paper's §2 formal semantics.
//
// A program is a sequence of task groups; tasks in a group are pairwise
// independent; a sharding function has already assigned every task an owner
// shard (the paper's t^k notation).  Two analyzers are provided:
//
//   * analyze_sequential — DEPseq (Figure 3): one transition per task group,
//     adding all dependences T =x=> tg.
//   * analyze_replicated — DEPrep (Figure 2): per-shard states
//     s_i = (p_i, c_i, d_i) stepped under rules Ta/Tb/Tc in an arbitrary
//     interleaving chosen by the caller-supplied RNG.
//
// Theorem 1 states both produce the same task graph; the property tests in
// tests/test_semantics.cpp exercise that equivalence over random programs,
// oracles, shard counts, and interleavings.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/philox.hpp"
#include "common/types.hpp"
#include "runtime/task_graph.hpp"

namespace dcr::an {

struct ATask {
  TaskId id;
  ShardId owner;  // the sharding function's choice, fixed before analysis

  friend bool operator==(const ATask&, const ATask&) = default;
};

using ATaskGroup = std::vector<ATask>;
using AProgram = std::vector<ATaskGroup>;

// Oracle: does t2 depend on t1, given t1 precedes t2 in program order?
// (The paper's t1 => t2, restricted to queries where t1 precedes t2.)
using Oracle = std::function<bool(TaskId t1, TaskId t2)>;

// DEPseq, Figure 3.
rt::TaskGraph analyze_sequential(const AProgram& program, const Oracle& oracle);

// DEPrep, Figure 2, with `num_shards` shard states.  The interleaving of
// shard transitions is chosen uniformly at random among enabled transitions
// using `rng`; any interleaving must yield the DEPseq graph (Theorem 1).
// Returns the resulting global task graph.
struct ReplicatedStats {
  std::uint64_t ta_steps = 0;  // rule Ta applications (dependence discovery)
  std::uint64_t tb_steps = 0;  // rule Tb applications (gated registration)
  std::uint64_t tc_steps = 0;  // rule Tc applications (independent fast path)
  std::uint64_t stalls = 0;    // Tb attempts blocked on a cross-shard predecessor
};

rt::TaskGraph analyze_replicated(const AProgram& program, std::size_t num_shards,
                                 const Oracle& oracle, Philox4x32& rng,
                                 ReplicatedStats* stats = nullptr);

// Exhaustive model checking: explore EVERY reachable interleaving of DEPrep
// transitions for `program` (feasible for small programs) and return the set
// of distinct final task graphs.  Theorem 1 says this set is a singleton
// containing the DEPseq graph.  `max_states` bounds the search.
std::vector<rt::TaskGraph> analyze_replicated_exhaustive(const AProgram& program,
                                                         std::size_t num_shards,
                                                         const Oracle& oracle,
                                                         std::size_t max_states = 200000);

// Validity checks on inputs (paper §2 definitions).
// Every task appears exactly once, and tasks within each group are pairwise
// independent under the oracle.
bool is_valid_program(const AProgram& program, const Oracle& oracle);

// Round-robin sharding of a program's tasks over `num_shards` shards.
AProgram apply_cyclic_sharding(const AProgram& program, std::size_t num_shards);

}  // namespace dcr::an
