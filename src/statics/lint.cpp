#include "statics/lint.hpp"

#include <set>

namespace dcr::statics {

const char* to_string(LintKind k) {
  switch (k) {
    case LintKind::NonInjectiveWrite: return "non_injective_write";
    case LintKind::AliasedWrite: return "aliased_write";
    case LintKind::DeadPartition: return "dead_partition";
    case LintKind::PrivilegeOverClaim: return "privilege_over_claim";
    case LintKind::OpaqueHotProjection: return "opaque_hot_projection";
  }
  return "?";
}

namespace {

std::string site_prefix(const LaunchSite& s) {
  return "partition " + std::to_string(s.partition.value) + ", projection " +
         std::to_string(s.projection.value) + ", " +
         std::string(rt::to_string(s.privilege)) + " launch over " +
         std::to_string(s.domain.is_empty() ? 0 : s.domain.volume()) + " points (x" +
         std::to_string(s.launches) + "): ";
}

}  // namespace

std::vector<LintFinding> lint(const rt::RegionForest& forest,
                              const rt::ProjectionRegistry& projs,
                              const LaunchLedger& ledger, std::uint64_t hot_threshold) {
  std::vector<LintFinding> findings;
  std::set<std::uint32_t> used_partitions;

  for (const LaunchSite& s : ledger.sites()) {
    if (!s.partition.valid()) continue;
    used_partitions.insert(s.partition.value);
    if (s.domain.is_empty()) continue;
    const std::uint64_t points = s.domain.volume();
    const std::uint64_t colors = forest.num_subregions(s.partition);
    const AffineProjection* sym = projs.symbolic(s.projection);
    const bool writes = rt::is_writer(s.privilege);

    if (sym == nullptr) {
      if (s.launches >= hot_threshold) {
        findings.push_back(
            {LintKind::OpaqueHotProjection, s.partition, s.projection,
             site_prefix(s) +
                 "projection has no symbolic form; every launch pays per-point "
                 "fine analysis"});
      }
      continue;  // nothing further is provable about an opaque site
    }
    if (!range_ok(*sym, s.domain, colors)) continue;  // prover says Unknown: no claim

    if (writes && s.privilege != rt::Privilege::Reduce && points > 1) {
      if (!injective(*sym, s.domain)) {
        findings.push_back(
            {LintKind::NonInjectiveWrite, s.partition, s.projection,
             site_prefix(s) + "write projection " + to_string(*sym, s.domain.dim) +
                 " maps two launch points onto one subregion — aliasing-write race"});
      } else if (!forest.is_disjoint(s.partition)) {
        findings.push_back(
            {LintKind::AliasedWrite, s.partition, s.projection,
             site_prefix(s) +
                 "injective write onto an ALIASED partition; sibling subregions "
                 "overlap, so distinct points still race"});
      }
    }
    if (writes && forest.is_disjoint(s.partition)) {
      const std::uint64_t covered = colors_covered(*sym, s.domain);
      if (covered > 0 && covered * 2 <= colors) {
        findings.push_back(
            {LintKind::PrivilegeOverClaim, s.partition, s.projection,
             site_prefix(s) + "claims write privilege on a partition of " +
                 std::to_string(colors) + " subregions but touches only " +
                 std::to_string(covered) +
                 " — the coarse stage serializes against the whole partition"});
      }
    }
  }

  for (std::uint32_t p = 0; p < forest.num_partitions(); ++p) {
    if (used_partitions.count(p) == 0) {
      findings.push_back({LintKind::DeadPartition, PartitionId(p),
                          rt::ProjectionRegistry::identity(),
                          "partition " + std::to_string(p) +
                              " is never named by any index launch"});
    }
  }
  return findings;
}

}  // namespace dcr::statics
