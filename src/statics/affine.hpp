// Affine projection IR: closed-form point -> color maps (paper §4 exploits
// that projection functions are pure; here we additionally give the common
// ones a *symbolic* form so interference can be proven per launch instead of
// per point).
//
// A symbolic projection maps a launch point p inside a launch domain D to a
// color of the target partition.  The color grid has the shape of D (the
// convention the identity projection already uses: color = linearize(D, p)).
// Per output axis k:
//
//     q[k] = wrap_k( scale[k] * (p[source[k]] - D.lo[source[k]]) + shift[k] )
//
// where wrap_k reduces modulo extent_k(D) when `wrap` is set (torus neighbor
// exchange), and otherwise the map is undefined (nullopt) when q[k] falls
// outside [0, extent_k).  color = linearize over the normalized grid.  This
// grammar covers the identity, constant shifts (stencil ghost exchanges),
// transposes (permuted sources), and strided/interleaved maps.
//
// Every analysis below is *conservative*: "true" answers are proofs, "false"
// answers mean "no proof" and the caller must fall back to the dynamic path.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"

namespace dcr::statics {

// One output axis of the affine map.
struct AffineAxis {
  int source = 0;          // input axis of the launch point
  std::int64_t scale = 1;  // multiplier on the normalized input coordinate
  std::int64_t shift = 0;  // additive offset in color-grid coordinates
  bool wrap = false;       // reduce modulo the color-grid extent (torus)

  friend bool operator==(const AffineAxis&, const AffineAxis&) = default;
};

struct AffineProjection {
  std::array<AffineAxis, rt::kMaxDim> axes{};

  friend bool operator==(const AffineProjection&, const AffineProjection&) = default;

  static AffineProjection identity() {
    AffineProjection a;
    for (int k = 0; k < rt::kMaxDim; ++k) a.axes[static_cast<std::size_t>(k)].source = k;
    return a;
  }

  // p -> p + delta on axis 0 (modular when wrap: ring/torus neighbor).
  static AffineProjection shift1d(std::int64_t delta, bool wrap = true) {
    AffineProjection a = identity();
    a.axes[0].shift = delta;
    a.axes[0].wrap = wrap;
    return a;
  }

  // Per-axis shifts; all axes share the wrap flag.
  static AffineProjection shifted(const std::array<std::int64_t, rt::kMaxDim>& deltas,
                                  bool wrap = true) {
    AffineProjection a = identity();
    for (std::size_t k = 0; k < rt::kMaxDim; ++k) {
      a.axes[k].shift = deltas[k];
      a.axes[k].wrap = wrap;
    }
    return a;
  }

  // (i, j) -> (j, i): only meaningful on 2-D square domains.
  static AffineProjection transpose2d() {
    AffineProjection a = identity();
    a.axes[0].source = 1;
    a.axes[1].source = 0;
    return a;
  }

  // p -> scale*p + shift on axis 0 (interleavings; wrap for modular stride).
  static AffineProjection strided1d(std::int64_t scale, std::int64_t shift = 0,
                                    bool wrap = true) {
    AffineProjection a = identity();
    a.axes[0].scale = scale;
    a.axes[0].shift = shift;
    a.axes[0].wrap = wrap;
    return a;
  }
};

// Evaluate the map at one point.  nullopt when undefined (source axis out of
// range, or a non-wrapped coordinate escaping the color grid).
inline std::optional<std::uint64_t> eval_color(const AffineProjection& a,
                                               const rt::Rect& domain,
                                               const rt::Point& p) {
  rt::Point q;
  q.dim = domain.dim;
  rt::Rect grid;
  grid.dim = domain.dim;
  for (int k = 0; k < domain.dim; ++k) {
    const auto ik = static_cast<std::size_t>(k);
    const AffineAxis& ax = a.axes[ik];
    if (ax.source < 0 || ax.source >= domain.dim) return std::nullopt;
    const auto is = static_cast<std::size_t>(ax.source);
    const std::int64_t ext = domain.extent(k);
    const std::int64_t rel = p.c[is] - domain.lo[is];
    std::int64_t v = ax.scale * rel + ax.shift;
    if (ax.wrap) {
      v %= ext;
      if (v < 0) v += ext;
    } else if (v < 0 || v >= ext) {
      return std::nullopt;
    }
    q.c[ik] = v;
    grid.lo[ik] = 0;
    grid.hi[ik] = ext - 1;
  }
  return rt::linearize(grid, q);
}

namespace detail {

// Cycle length of x -> scale*x (mod m): m / gcd(scale, m).  gcd(0, m) = m, so
// a degenerate scale (everything collapses onto `shift`) yields 1.
inline std::int64_t wrap_cycle(std::int64_t scale, std::int64_t m) {
  const std::int64_t g = std::gcd(std::abs(scale) % m, m);
  return m / g;
}

inline std::int64_t positive_mod(std::int64_t v, std::int64_t m) {
  v %= m;
  return v < 0 ? v + m : v;
}

}  // namespace detail

// Proof that distinct points in `domain` get distinct colors.  Requires the
// sources to be a permutation of the used axes, then per-axis injectivity:
// non-wrapped axes need scale != 0; wrapped axes need the input extent to fit
// inside one cycle of x -> scale*x (mod extent).
inline bool injective(const AffineProjection& a, const rt::Rect& domain) {
  if (domain.is_empty() || domain.volume() <= 1) return true;
  std::array<bool, rt::kMaxDim> used{};
  for (int k = 0; k < domain.dim; ++k) {
    const int s = a.axes[static_cast<std::size_t>(k)].source;
    if (s < 0 || s >= domain.dim || used[static_cast<std::size_t>(s)]) return false;
    used[static_cast<std::size_t>(s)] = true;
  }
  for (int k = 0; k < domain.dim; ++k) {
    const AffineAxis& ax = a.axes[static_cast<std::size_t>(k)];
    const std::int64_t ext_src = domain.extent(ax.source);
    if (ext_src <= 1) continue;  // a single input value is trivially injective
    if (ax.wrap) {
      if (ext_src > detail::wrap_cycle(ax.scale, domain.extent(k))) return false;
    } else {
      if (ax.scale == 0) return false;
    }
  }
  return true;
}

// Proof that the map is total on `domain` and lands inside [0, colors): every
// axis defined everywhere (wrap always is; non-wrapped endpoints in range) and
// the linearized grid fits the partition's color space.
inline bool range_ok(const AffineProjection& a, const rt::Rect& domain,
                     std::uint64_t colors) {
  if (domain.is_empty()) return true;
  for (int k = 0; k < domain.dim; ++k) {
    const AffineAxis& ax = a.axes[static_cast<std::size_t>(k)];
    if (ax.source < 0 || ax.source >= domain.dim) return false;
    if (ax.wrap) continue;
    const std::int64_t ext_k = domain.extent(k);
    const std::int64_t e0 = ax.shift;
    const std::int64_t e1 = ax.scale * (domain.extent(ax.source) - 1) + ax.shift;
    if (std::min(e0, e1) < 0 || std::max(e0, e1) >= ext_k) return false;
  }
  return domain.volume() <= colors;
}

// Number of distinct colors the launch touches (exact per axis when sources
// form a permutation; used by the dead-partition / over-claim lint).
inline std::uint64_t colors_covered(const AffineProjection& a, const rt::Rect& domain) {
  if (domain.is_empty()) return 0;
  std::uint64_t covered = 1;
  for (int k = 0; k < domain.dim; ++k) {
    const AffineAxis& ax = a.axes[static_cast<std::size_t>(k)];
    if (ax.source < 0 || ax.source >= domain.dim) return 0;
    const std::int64_t ext_src = domain.extent(ax.source);
    std::int64_t distinct = 1;
    if (ax.wrap) {
      distinct = std::min(ext_src, detail::wrap_cycle(ax.scale, domain.extent(k)));
    } else {
      distinct = ax.scale == 0 ? 1 : ext_src;
    }
    covered *= static_cast<std::uint64_t>(distinct);
  }
  return covered;
}

// Proof that two launches over the SAME partition touch disjoint color sets.
// Sound on a shared color grid only, so the domains must agree per-axis in
// extent (shape), though not in offset.  An axis proves the pair disjoint if
// its two value sets cannot intersect — by interval separation (non-wrapped)
// or by residue separation: each side's values lie in shift + r*Z where r is
// |scale| (non-wrapped) or gcd(|scale|, extent) (wrapped, which also absorbs
// the modulus), so incompatible residues mod gcd(r_a, r_b) are disjoint.
// This is what proves red/black-style modular interleavings apart.
inline bool ranges_disjoint(const AffineProjection& a, const rt::Rect& dom_a,
                            const AffineProjection& b, const rt::Rect& dom_b) {
  if (dom_a.is_empty() || dom_b.is_empty()) return true;
  if (dom_a.dim != dom_b.dim) return false;
  for (int k = 0; k < dom_a.dim; ++k) {
    if (dom_a.extent(k) != dom_b.extent(k)) return false;  // grids not comparable
  }
  for (int k = 0; k < dom_a.dim; ++k) {
    const AffineAxis& xa = a.axes[static_cast<std::size_t>(k)];
    const AffineAxis& xb = b.axes[static_cast<std::size_t>(k)];
    if (xa.source < 0 || xa.source >= dom_a.dim) return false;
    if (xb.source < 0 || xb.source >= dom_b.dim) return false;
    const std::int64_t m = dom_a.extent(k);
    // Interval separation (only meaningful when neither side wraps).
    if (!xa.wrap && !xb.wrap) {
      const std::int64_t a0 = xa.shift;
      const std::int64_t a1 = xa.scale * (dom_a.extent(xa.source) - 1) + xa.shift;
      const std::int64_t b0 = xb.shift;
      const std::int64_t b1 = xb.scale * (dom_b.extent(xb.source) - 1) + xb.shift;
      if (std::max(a0, a1) < std::min(b0, b1) || std::max(b0, b1) < std::min(a0, a1)) {
        return true;
      }
    }
    // Residue separation.
    const std::int64_t ra = xa.wrap ? std::gcd(std::abs(xa.scale), m) : std::abs(xa.scale);
    const std::int64_t rb = xb.wrap ? std::gcd(std::abs(xb.scale), m) : std::abs(xb.scale);
    if (ra == 0 && rb == 0) {
      if (xa.shift != xb.shift) return true;
      continue;
    }
    const std::int64_t g = std::gcd(ra, rb);  // gcd(0, x) == x
    if (g > 0 && detail::positive_mod(xa.shift - xb.shift, g) != 0) return true;
  }
  return false;
}

// Proof that two maps agree pointwise on a shared domain (same color for the
// same launch point).  Wrapped axes compare modulo the extent.
inline bool equivalent(const AffineProjection& a, const AffineProjection& b,
                       const rt::Rect& domain) {
  if (domain.is_empty()) return true;
  for (int k = 0; k < domain.dim; ++k) {
    const AffineAxis& xa = a.axes[static_cast<std::size_t>(k)];
    const AffineAxis& xb = b.axes[static_cast<std::size_t>(k)];
    if (xa.source != xb.source) return false;
    if (xa.wrap != xb.wrap) return false;
    if (xa.wrap) {
      const std::int64_t m = domain.extent(k);
      if (detail::positive_mod(xa.scale, m) != detail::positive_mod(xb.scale, m) ||
          detail::positive_mod(xa.shift, m) != detail::positive_mod(xb.shift, m)) {
        return false;
      }
    } else if (xa.scale != xb.scale || xa.shift != xb.shift) {
      return false;
    }
  }
  return true;
}

inline std::string to_string(const AffineProjection& a, int dim = rt::kMaxDim) {
  std::string s = "[";
  for (int k = 0; k < dim; ++k) {
    const AffineAxis& ax = a.axes[static_cast<std::size_t>(k)];
    if (k > 0) s += ", ";
    s += "q" + std::to_string(k) + "=" + std::to_string(ax.scale) + "*p" +
         std::to_string(ax.source);
    if (ax.shift != 0) {
      s += (ax.shift > 0 ? "+" : "") + std::to_string(ax.shift);
    }
    if (ax.wrap) s += " mod ext";
  }
  s += "]";
  return s;
}

// Fixed validation suite: every registered symbolic form is compared against
// its concrete color fn over these domains (~600 points across 1-/2-/3-D,
// varied offsets and extents, prime and composite sizes).
inline const std::vector<rt::Rect>& sample_domains() {
  static const std::vector<rt::Rect> kDomains = {
      rt::Rect::r1(0, 0),          rt::Rect::r1(0, 1),
      rt::Rect::r1(0, 6),          rt::Rect::r1(0, 15),
      rt::Rect::r1(-3, 4),         rt::Rect::r1(5, 16),
      rt::Rect::r2(0, 3, 0, 3),    rt::Rect::r2(0, 5, 0, 2),
      rt::Rect::r2(-2, 1, 3, 6),   rt::Rect::r3(0, 2, 0, 2, 0, 2),
      rt::Rect::r3(0, 3, 0, 1, 0, 1)};
  return kDomains;
}

}  // namespace dcr::statics
