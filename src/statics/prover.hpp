// Static interference prover: launch-level verdicts from the affine
// projection IR, so the runtime can charge O(1) fine-stage analysis instead
// of enumerating every owned point (the ROADMAP's per-point fine-analysis
// bottleneck at 1k-4k shards).
//
// Verdict lattice (DESIGN.md §14): Unknown is the bottom element and always
// safe — every other verdict is a *proof* obligation discharged by the
// injectivity/range/residue tests in affine.hpp plus forest disjointness.
// The prover never changes a dependence decision; a verdict only licenses
// skipping the per-point enumeration whose outcome the proof predetermines.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"
#include "statics/affine.hpp"

namespace dcr::statics {

enum class Verdict : std::uint8_t {
  Unknown,              // no proof; fall back to per-point fine analysis
  ReadOnlyBroadcast,    // read-only (or no-access) launch: points never race
  CommutingReduction,   // all points reduce with one operator: order-free
  PointDisjointWrites,  // injective map onto a disjoint partition
  CrossLaunchDisjoint,  // two launches touch provably disjoint color sets
  PointwiseAligned,     // same domain, equivalent injective maps: p_i -> p_i only
  CoarseOrdered,        // both sides closed-form; the coarse fence/elision verdict
                        // already orders the pair, no per-point discrimination left
};

const char* to_string(Verdict v);

// The prover's view of one side of a launch: a mirror of the runtime's
// ReqSummary kept here so runtime/ and dcr/ need not depend on each other
// through this layer.
struct LaunchReq {
  bool is_index = false;
  PartitionId partition = PartitionId::invalid();  // invalid => single region
  ProjectionId projection = rt::ProjectionRegistry::identity();
  rt::Rect domain = rt::Rect::empty();
  ShardingId sharding = ShardingId::invalid();
  rt::Privilege privilege = rt::Privilege::ReadOnly;
  rt::ReductionOpId redop = rt::kNoRedop;
};

class InterferenceProver {
 public:
  struct Stats {
    std::uint64_t queries = 0;      // resolve() calls
    std::uint64_t cache_hits = 0;   // resolve() answered from the verdict cache
    std::uint64_t resolved = 0;     // fresh resolves proving a non-Unknown verdict
    std::uint64_t unknown = 0;      // fresh resolves falling back to Unknown
    std::uint64_t pair_queries = 0; // classify() calls
    std::uint64_t pair_proven = 0;  // classify() results above Unknown
    std::uint64_t cache_flushes = 0;  // forest mutations invalidating the cache
    std::uint64_t oracle_checks = 0;  // paranoid enumerated cross-checks run
  };

  // `paranoid` cross-checks every verdict against the enumerated oracle
  // (DCR_CHECK-guarded); wired to DcrConfig::statics_check.
  InterferenceProver(const rt::RegionForest& forest, const rt::ProjectionRegistry& projs,
                     bool paranoid = false)
      : forest_(forest), projs_(projs), paranoid_(paranoid) {}

  // Launch-level verdict for one requirement.  Cached; the cache is keyed on
  // the forest's mutation epoch only, so verdicts survive template/recovery
  // epoch invalidation by construction (region geometry is what they depend
  // on) and are dropped the moment the forest changes shape.
  Verdict resolve(const LaunchReq& r);

  // Pair verdict for a coarse dependence (prev -> next).  Non-Unknown means
  // the pair needs no per-point discrimination: either the color sets are
  // provably disjoint / pointwise-aligned, or both sides are closed-form and
  // the coarse stage's own fence/elision verdict fully orders them.
  Verdict classify(const LaunchReq& prev, const LaunchReq& next);

  // Enumerated oracle for a whole launch (debug mode): recomputes every
  // point's color concretely, checks it against the symbolic form, and for
  // multi-point writes re-proves pairwise distinctness.  Aborts via DCR_CHECK
  // on any disagreement.
  void oracle_check_launch(const LaunchReq& r);

  const Stats& stats() const { return stats_; }
  bool paranoid() const { return paranoid_; }

 private:
  // partition, projection, privilege, redop, domain (dim + bounds).
  using CacheKey = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t, std::uint16_t,
                              int, std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                              std::int64_t, std::int64_t>;
  static CacheKey key_of(const LaunchReq& r);

  void refresh_epoch();
  Verdict resolve_uncached(const LaunchReq& r) const;
  void oracle_check_pair(const LaunchReq& prev, const LaunchReq& next, Verdict v);

  const rt::RegionForest& forest_;
  const rt::ProjectionRegistry& projs_;
  bool paranoid_;
  std::uint64_t cache_epoch_ = 0;
  std::map<CacheKey, Verdict> cache_;
  Stats stats_;
};

}  // namespace dcr::statics
