#include "statics/prover.hpp"

#include <set>
#include <vector>

namespace dcr::statics {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Unknown: return "unknown";
    case Verdict::ReadOnlyBroadcast: return "read_only_broadcast";
    case Verdict::CommutingReduction: return "commuting_reduction";
    case Verdict::PointDisjointWrites: return "point_disjoint_writes";
    case Verdict::CrossLaunchDisjoint: return "cross_launch_disjoint";
    case Verdict::PointwiseAligned: return "pointwise_aligned";
    case Verdict::CoarseOrdered: return "coarse_ordered";
  }
  return "?";
}

InterferenceProver::CacheKey InterferenceProver::key_of(const LaunchReq& r) {
  return {r.partition.valid() ? r.partition.value : ~0u,
          r.projection.value,
          static_cast<std::uint8_t>(r.privilege),
          r.redop,
          r.domain.dim,
          r.domain.lo[0],
          r.domain.hi[0],
          r.domain.lo[1],
          r.domain.hi[1],
          r.domain.lo[2],
          r.domain.hi[2]};
}

void InterferenceProver::refresh_epoch() {
  const std::uint64_t epoch = forest_.mutation_epoch();
  if (epoch != cache_epoch_) {
    cache_epoch_ = epoch;
    if (!cache_.empty()) {
      cache_.clear();
      ++stats_.cache_flushes;
    }
  }
}

Verdict InterferenceProver::resolve(const LaunchReq& r) {
  refresh_epoch();
  ++stats_.queries;
  const CacheKey key = key_of(r);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  const Verdict v = resolve_uncached(r);
  cache_.emplace(key, v);
  if (v == Verdict::Unknown) {
    ++stats_.unknown;
  } else {
    ++stats_.resolved;
  }
  return v;
}

Verdict InterferenceProver::resolve_uncached(const LaunchReq& r) const {
  if (!r.is_index) return Verdict::Unknown;  // singles carry no projection form
  const std::uint64_t points = r.domain.is_empty() ? 0 : r.domain.volume();
  const bool writes = rt::is_writer(r.privilege) && r.privilege != rt::Privilege::Reduce;

  if (!r.partition.valid()) {
    // Every point shares the one named region.
    if (r.privilege == rt::Privilege::ReadOnly || r.privilege == rt::Privilege::None) {
      return Verdict::ReadOnlyBroadcast;
    }
    if (r.privilege == rt::Privilege::Reduce) return Verdict::CommutingReduction;
    return points <= 1 ? Verdict::PointDisjointWrites : Verdict::Unknown;
  }

  const AffineProjection* sym = projs_.symbolic(r.projection);
  if (sym == nullptr) return Verdict::Unknown;  // opaque: no symbolic claim
  if (points == 0) {
    // Vacuous launch: no point exists to race.
    return writes ? Verdict::PointDisjointWrites : Verdict::ReadOnlyBroadcast;
  }
  if (!range_ok(*sym, r.domain, forest_.num_subregions(r.partition))) {
    return Verdict::Unknown;  // the map escapes the color space: no claim
  }
  if (r.privilege == rt::Privilege::ReadOnly || r.privilege == rt::Privilege::None) {
    return Verdict::ReadOnlyBroadcast;
  }
  if (r.privilege == rt::Privilege::Reduce) {
    // Same operator at every point: reductions commute regardless of aliasing.
    return Verdict::CommutingReduction;
  }
  if (points <= 1) return Verdict::PointDisjointWrites;
  if (injective(*sym, r.domain) && forest_.is_disjoint(r.partition)) {
    return Verdict::PointDisjointWrites;
  }
  return Verdict::Unknown;
}

Verdict InterferenceProver::classify(const LaunchReq& prev, const LaunchReq& next) {
  ++stats_.pair_queries;
  const Verdict vp = resolve(prev);
  const Verdict vn = resolve(next);
  if (vp == Verdict::Unknown || vn == Verdict::Unknown) return Verdict::Unknown;

  Verdict out = Verdict::CoarseOrdered;
  if (prev.partition.valid() && prev.partition == next.partition) {
    const AffineProjection* sp = projs_.symbolic(prev.projection);
    const AffineProjection* sn = projs_.symbolic(next.projection);
    if (sp != nullptr && sn != nullptr && forest_.is_disjoint(prev.partition)) {
      if (ranges_disjoint(*sp, prev.domain, *sn, next.domain)) {
        out = Verdict::CrossLaunchDisjoint;
      } else if (prev.domain == next.domain && prev.sharding == next.sharding &&
                 injective(*sp, prev.domain) && injective(*sn, next.domain) &&
                 equivalent(*sp, *sn, prev.domain)) {
        out = Verdict::PointwiseAligned;
      }
    }
  }
  if (out != Verdict::Unknown) ++stats_.pair_proven;
  if (paranoid_) oracle_check_pair(prev, next, out);
  return out;
}

namespace {

// Concrete color set of a partition-form launch, via the opaque projection.
std::set<std::uint64_t> enumerate_colors(const rt::RegionForest& forest,
                                         const rt::ProjectionRegistry& projs,
                                         const LaunchReq& r) {
  std::set<std::uint64_t> colors;
  if (!r.partition.valid() || r.domain.is_empty()) return colors;
  const std::size_t n = forest.num_subregions(r.partition);
  for (std::uint64_t idx = 0; idx < r.domain.volume(); ++idx) {
    const rt::Point p = rt::delinearize(r.domain, idx);
    const IndexSpaceId sub = projs.apply(r.projection, forest, r.partition, p, r.domain);
    for (std::uint64_t c = 0; c < n; ++c) {
      if (forest.subregion(r.partition, c) == sub) {
        colors.insert(c);
        break;
      }
    }
  }
  return colors;
}

}  // namespace

void InterferenceProver::oracle_check_launch(const LaunchReq& r) {
  ++stats_.oracle_checks;
  if (!r.is_index || !r.partition.valid() || r.domain.is_empty()) return;
  const AffineProjection* sym = projs_.symbolic(r.projection);
  if (sym == nullptr) return;
  std::set<std::uint64_t> seen;
  const bool writes = rt::is_writer(r.privilege) && r.privilege != rt::Privilege::Reduce;
  for (std::uint64_t idx = 0; idx < r.domain.volume(); ++idx) {
    const rt::Point p = rt::delinearize(r.domain, idx);
    const auto color = eval_color(*sym, r.domain, p);
    DCR_CHECK(color.has_value())
        << "statics oracle: symbolic form " << to_string(*sym, r.domain.dim)
        << " undefined at a point of a launch the prover resolved";
    DCR_CHECK(*color < forest_.num_subregions(r.partition))
        << "statics oracle: color " << *color << " out of range";
    const IndexSpaceId via_sym = forest_.subregion(r.partition, *color);
    const IndexSpaceId via_fn =
        projs_.apply(r.projection, forest_, r.partition, p, r.domain);
    DCR_CHECK(via_sym == via_fn)
        << "statics oracle: symbolic and opaque projections disagree at linear point "
        << idx;
    if (writes && resolve(r) == Verdict::PointDisjointWrites) {
      DCR_CHECK(seen.insert(*color).second)
          << "statics oracle: PointDisjointWrites verdict but color " << *color
          << " is written by two points";
    }
  }
}

void InterferenceProver::oracle_check_pair(const LaunchReq& prev, const LaunchReq& next,
                                           Verdict v) {
  ++stats_.oracle_checks;
  if (v == Verdict::CrossLaunchDisjoint) {
    const auto a = enumerate_colors(forest_, projs_, prev);
    const auto b = enumerate_colors(forest_, projs_, next);
    for (const std::uint64_t c : a) {
      DCR_CHECK(b.find(c) == b.end())
          << "statics oracle: CrossLaunchDisjoint verdict but color " << c
          << " appears in both launches";
    }
  } else if (v == Verdict::PointwiseAligned) {
    const AffineProjection* sp = projs_.symbolic(prev.projection);
    const AffineProjection* sn = projs_.symbolic(next.projection);
    DCR_CHECK(sp != nullptr && sn != nullptr);
    for (std::uint64_t idx = 0; idx < prev.domain.volume(); ++idx) {
      const rt::Point p = rt::delinearize(prev.domain, idx);
      const auto ca = eval_color(*sp, prev.domain, p);
      const auto cb = eval_color(*sn, next.domain, p);
      DCR_CHECK(ca.has_value() && cb.has_value() && *ca == *cb)
          << "statics oracle: PointwiseAligned verdict but colors differ at linear point "
          << idx;
    }
  }
}

}  // namespace dcr::statics
