// Offline lint over a control program's launch sites: the runtime feeds every
// index-launch requirement into a LaunchLedger, and lint() runs the static
// prover's tests over the aggregated sites to flag declaration-level bugs a
// dynamic run may never trip on — non-injective write projections (an
// aliasing-write race class), partitions no launch ever uses, write launches
// claiming far more of a partition than they touch, and hot launches whose
// projection has no symbolic form (paying per-point fine analysis forever).
// Surfaced via `dcr-spy statics <app>`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "runtime/geometry.hpp"
#include "runtime/privilege.hpp"
#include "runtime/region.hpp"
#include "runtime/requirement.hpp"
#include "statics/affine.hpp"

namespace dcr::statics {

// One aggregated launch site: everything the prover keys verdicts on, plus
// how often the program hit it.
struct LaunchSite {
  PartitionId partition = PartitionId::invalid();
  ProjectionId projection = rt::ProjectionRegistry::identity();
  rt::Rect domain = rt::Rect::empty();
  rt::Privilege privilege = rt::Privilege::ReadOnly;
  rt::ReductionOpId redop = rt::kNoRedop;
  std::uint64_t launches = 0;
};

class LaunchLedger {
 public:
  void note(PartitionId partition, ProjectionId projection, const rt::Rect& domain,
            rt::Privilege privilege, rt::ReductionOpId redop) {
    const Key key{partition.valid() ? partition.value : ~0u, projection.value,
                  static_cast<std::uint8_t>(privilege), redop,
                  domain.dim, domain.lo[0], domain.hi[0], domain.lo[1],
                  domain.hi[1], domain.lo[2], domain.hi[2]};
    auto [it, fresh] = sites_.try_emplace(key);
    if (fresh) {
      it->second = {partition, projection, domain, privilege, redop, 0};
    }
    ++it->second.launches;
  }

  std::vector<LaunchSite> sites() const {
    std::vector<LaunchSite> out;
    out.reserve(sites_.size());
    for (const auto& [key, site] : sites_) out.push_back(site);
    return out;
  }

  std::uint64_t total_launch_reqs() const {
    std::uint64_t n = 0;
    for (const auto& [key, site] : sites_) n += site.launches;
    return n;
  }

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t, std::uint16_t, int,
                         std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, std::int64_t>;
  std::map<Key, LaunchSite> sites_;
};

enum class LintKind : std::uint8_t {
  NonInjectiveWrite,    // write projection maps two points onto one color: race
  AliasedWrite,         // injective map but the partition itself is aliased
  DeadPartition,        // partition created but never named by any launch
  PrivilegeOverClaim,   // write launch touches a small fraction of the partition
  OpaqueHotProjection,  // hot launch site with no symbolic form
};

const char* to_string(LintKind k);

// NonInjectiveWrite and AliasedWrite describe a real race class; the rest are
// performance/hygiene findings.
inline bool is_race_class(LintKind k) {
  return k == LintKind::NonInjectiveWrite || k == LintKind::AliasedWrite;
}

struct LintFinding {
  LintKind kind;
  PartitionId partition = PartitionId::invalid();
  ProjectionId projection = rt::ProjectionRegistry::identity();
  std::string message;
};

std::vector<LintFinding> lint(const rt::RegionForest& forest,
                              const rt::ProjectionRegistry& projs,
                              const LaunchLedger& ledger,
                              std::uint64_t hot_threshold = 8);

}  // namespace dcr::statics
