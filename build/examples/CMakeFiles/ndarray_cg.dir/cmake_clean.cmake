file(REMOVE_RECURSE
  "CMakeFiles/ndarray_cg.dir/ndarray_cg.cpp.o"
  "CMakeFiles/ndarray_cg.dir/ndarray_cg.cpp.o.d"
  "ndarray_cg"
  "ndarray_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndarray_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
