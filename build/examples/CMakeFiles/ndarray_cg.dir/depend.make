# Empty dependencies file for ndarray_cg.
# This may be replaced when dependencies are built.
