# Empty dependencies file for dcr_runtime.
# This may be replaced when dependencies are built.
