file(REMOVE_RECURSE
  "CMakeFiles/dcr_runtime.dir/region.cpp.o"
  "CMakeFiles/dcr_runtime.dir/region.cpp.o.d"
  "libdcr_runtime.a"
  "libdcr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
