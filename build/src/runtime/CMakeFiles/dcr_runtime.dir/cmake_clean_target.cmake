file(REMOVE_RECURSE
  "libdcr_runtime.a"
)
