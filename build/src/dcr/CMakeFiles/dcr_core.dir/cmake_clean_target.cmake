file(REMOVE_RECURSE
  "libdcr_core.a"
)
