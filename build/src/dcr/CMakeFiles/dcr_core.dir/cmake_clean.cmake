file(REMOVE_RECURSE
  "CMakeFiles/dcr_core.dir/runtime.cpp.o"
  "CMakeFiles/dcr_core.dir/runtime.cpp.o.d"
  "libdcr_core.a"
  "libdcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
