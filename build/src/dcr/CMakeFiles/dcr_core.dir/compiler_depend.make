# Empty compiler generated dependencies file for dcr_core.
# This may be replaced when dependencies are built.
