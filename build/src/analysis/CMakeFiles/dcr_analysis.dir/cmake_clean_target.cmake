file(REMOVE_RECURSE
  "libdcr_analysis.a"
)
