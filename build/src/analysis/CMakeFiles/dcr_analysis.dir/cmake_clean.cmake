file(REMOVE_RECURSE
  "CMakeFiles/dcr_analysis.dir/semantics.cpp.o"
  "CMakeFiles/dcr_analysis.dir/semantics.cpp.o.d"
  "libdcr_analysis.a"
  "libdcr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
