# Empty compiler generated dependencies file for dcr_analysis.
# This may be replaced when dependencies are built.
