file(REMOVE_RECURSE
  "CMakeFiles/dcr_baselines.dir/central.cpp.o"
  "CMakeFiles/dcr_baselines.dir/central.cpp.o.d"
  "libdcr_baselines.a"
  "libdcr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
