file(REMOVE_RECURSE
  "libdcr_baselines.a"
)
