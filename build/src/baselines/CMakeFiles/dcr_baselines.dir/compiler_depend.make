# Empty compiler generated dependencies file for dcr_baselines.
# This may be replaced when dependencies are built.
