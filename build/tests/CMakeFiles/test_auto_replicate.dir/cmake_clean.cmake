file(REMOVE_RECURSE
  "CMakeFiles/test_auto_replicate.dir/test_auto_replicate.cpp.o"
  "CMakeFiles/test_auto_replicate.dir/test_auto_replicate.cpp.o.d"
  "test_auto_replicate"
  "test_auto_replicate.pdb"
  "test_auto_replicate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_replicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
