# Empty compiler generated dependencies file for test_auto_replicate.
# This may be replaced when dependencies are built.
