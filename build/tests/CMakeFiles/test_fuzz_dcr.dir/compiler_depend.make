# Empty compiler generated dependencies file for test_fuzz_dcr.
# This may be replaced when dependencies are built.
