file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_dcr.dir/test_fuzz_dcr.cpp.o"
  "CMakeFiles/test_fuzz_dcr.dir/test_fuzz_dcr.cpp.o.d"
  "test_fuzz_dcr"
  "test_fuzz_dcr.pdb"
  "test_fuzz_dcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_dcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
