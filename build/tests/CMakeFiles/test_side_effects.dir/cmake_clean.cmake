file(REMOVE_RECURSE
  "CMakeFiles/test_side_effects.dir/test_side_effects.cpp.o"
  "CMakeFiles/test_side_effects.dir/test_side_effects.cpp.o.d"
  "test_side_effects"
  "test_side_effects.pdb"
  "test_side_effects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_side_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
