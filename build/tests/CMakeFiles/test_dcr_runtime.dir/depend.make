# Empty dependencies file for test_dcr_runtime.
# This may be replaced when dependencies are built.
