file(REMOVE_RECURSE
  "CMakeFiles/test_dcr_runtime.dir/test_dcr_runtime.cpp.o"
  "CMakeFiles/test_dcr_runtime.dir/test_dcr_runtime.cpp.o.d"
  "test_dcr_runtime"
  "test_dcr_runtime.pdb"
  "test_dcr_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
