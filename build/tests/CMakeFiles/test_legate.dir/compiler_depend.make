# Empty compiler generated dependencies file for test_legate.
# This may be replaced when dependencies are built.
