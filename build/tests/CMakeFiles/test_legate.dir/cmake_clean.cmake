file(REMOVE_RECURSE
  "CMakeFiles/test_legate.dir/test_legate.cpp.o"
  "CMakeFiles/test_legate.dir/test_legate.cpp.o.d"
  "test_legate"
  "test_legate.pdb"
  "test_legate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
