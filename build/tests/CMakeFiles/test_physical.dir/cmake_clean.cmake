file(REMOVE_RECURSE
  "CMakeFiles/test_physical.dir/test_physical.cpp.o"
  "CMakeFiles/test_physical.dir/test_physical.cpp.o.d"
  "test_physical"
  "test_physical.pdb"
  "test_physical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
