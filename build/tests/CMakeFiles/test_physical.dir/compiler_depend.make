# Empty compiler generated dependencies file for test_physical.
# This may be replaced when dependencies are built.
