file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_shapes.dir/test_scaling_shapes.cpp.o"
  "CMakeFiles/test_scaling_shapes.dir/test_scaling_shapes.cpp.o.d"
  "test_scaling_shapes"
  "test_scaling_shapes.pdb"
  "test_scaling_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
