# Empty compiler generated dependencies file for test_scaling_shapes.
# This may be replaced when dependencies are built.
