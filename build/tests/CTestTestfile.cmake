# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_region[1]_include.cmake")
include("/root/repo/build/tests/test_task_graph[1]_include.cmake")
include("/root/repo/build/tests/test_physical[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_dcr_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_interval_index[1]_include.cmake")
include("/root/repo/build/tests/test_quiescence[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_paper_figures[1]_include.cmake")
include("/root/repo/build/tests/test_side_effects[1]_include.cmake")
include("/root/repo/build/tests/test_legate[1]_include.cmake")
include("/root/repo/build/tests/test_auto_replicate[1]_include.cmake")
include("/root/repo/build/tests/test_scaling_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_dcr[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
