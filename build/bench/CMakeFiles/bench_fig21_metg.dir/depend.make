# Empty dependencies file for bench_fig21_metg.
# This may be replaced when dependencies are built.
