file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_metg.dir/bench_fig21_metg.cpp.o"
  "CMakeFiles/bench_fig21_metg.dir/bench_fig21_metg.cpp.o.d"
  "bench_fig21_metg"
  "bench_fig21_metg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_metg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
