file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stencil.dir/bench_fig12_stencil.cpp.o"
  "CMakeFiles/bench_fig12_stencil.dir/bench_fig12_stencil.cpp.o.d"
  "bench_fig12_stencil"
  "bench_fig12_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
