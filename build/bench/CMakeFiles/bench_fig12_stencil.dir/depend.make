# Empty dependencies file for bench_fig12_stencil.
# This may be replaced when dependencies are built.
