file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_soleil.dir/bench_fig16_soleil.cpp.o"
  "CMakeFiles/bench_fig16_soleil.dir/bench_fig16_soleil.cpp.o.d"
  "bench_fig16_soleil"
  "bench_fig16_soleil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_soleil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
