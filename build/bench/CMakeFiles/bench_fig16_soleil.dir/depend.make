# Empty dependencies file for bench_fig16_soleil.
# This may be replaced when dependencies are built.
