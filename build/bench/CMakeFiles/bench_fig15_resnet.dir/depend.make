# Empty dependencies file for bench_fig15_resnet.
# This may be replaced when dependencies are built.
