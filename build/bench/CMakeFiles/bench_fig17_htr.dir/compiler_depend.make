# Empty compiler generated dependencies file for bench_fig17_htr.
# This may be replaced when dependencies are built.
