file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_htr.dir/bench_fig17_htr.cpp.o"
  "CMakeFiles/bench_fig17_htr.dir/bench_fig17_htr.cpp.o.d"
  "bench_fig17_htr"
  "bench_fig17_htr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_htr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
