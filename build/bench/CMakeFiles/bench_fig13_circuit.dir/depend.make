# Empty dependencies file for bench_fig13_circuit.
# This may be replaced when dependencies are built.
