file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_circuit.dir/bench_fig13_circuit.cpp.o"
  "CMakeFiles/bench_fig13_circuit.dir/bench_fig13_circuit.cpp.o.d"
  "bench_fig13_circuit"
  "bench_fig13_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
