file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_logreg.dir/bench_fig19_logreg.cpp.o"
  "CMakeFiles/bench_fig19_logreg.dir/bench_fig19_logreg.cpp.o.d"
  "bench_fig19_logreg"
  "bench_fig19_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
