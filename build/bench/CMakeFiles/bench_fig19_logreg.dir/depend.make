# Empty dependencies file for bench_fig19_logreg.
# This may be replaced when dependencies are built.
