file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_cg.dir/bench_fig20_cg.cpp.o"
  "CMakeFiles/bench_fig20_cg.dir/bench_fig20_cg.cpp.o.d"
  "bench_fig20_cg"
  "bench_fig20_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
