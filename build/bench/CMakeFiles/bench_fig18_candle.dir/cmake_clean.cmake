file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_candle.dir/bench_fig18_candle.cpp.o"
  "CMakeFiles/bench_fig18_candle.dir/bench_fig18_candle.cpp.o.d"
  "bench_fig18_candle"
  "bench_fig18_candle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_candle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
