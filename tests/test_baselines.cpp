// Tests for the baseline executors: the centralized lazy-evaluation
// controller (No-CR / Dask-like) and the static-control-replication preset.
// The same application callable runs on every executor — the core of the
// paper's comparison methodology.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "baselines/central.hpp"
#include "baselines/scr.hpp"
#include "dcr/runtime.hpp"

namespace dcr::baselines {
namespace {

using apps::make_stencil_app;
using apps::register_stencil_functions;

sim::MachineConfig machine_config(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

TEST(Central, StencilRunsToCompletion) {
  sim::Machine machine(machine_config(4));
  core::FunctionRegistry functions;
  CentralRuntime rt(machine, functions);
  const auto fns = register_stencil_functions(functions, 1.0);
  const CentralStats stats =
      rt.execute(make_stencil_app({.cells_per_tile = 100, .tiles = 8, .steps = 3}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.point_tasks_launched, 8u * 3u * 3u);
  EXPECT_GT(stats.controller_busy, 0u);
}

TEST(Central, SameAppRunsOnBothExecutors) {
  // Identical task counts on DCR and the central baseline for the same app.
  core::FunctionRegistry f1, f2;
  const auto fns1 = register_stencil_functions(f1, 1.0);
  const auto fns2 = register_stencil_functions(f2, 1.0);
  apps::StencilConfig cfg{.cells_per_tile = 64, .tiles = 8, .steps = 4};

  sim::Machine m1(machine_config(4));
  core::DcrRuntime dcr(m1, f1);
  const auto dstats = dcr.execute(make_stencil_app(cfg, fns1));

  sim::Machine m2(machine_config(4));
  CentralRuntime central(m2, f2);
  const auto cstats = central.execute(make_stencil_app(cfg, fns2));

  EXPECT_TRUE(dstats.completed);
  EXPECT_TRUE(cstats.completed);
  EXPECT_EQ(dstats.point_tasks_launched, cstats.point_tasks_launched);
  // DCR issues two extra internal fence ops (app fence + finalize fence).
  EXPECT_EQ(dstats.ops_issued, cstats.ops_issued + 2);
}

TEST(Central, ControllerBusyGrowsWithMachineSizeDcrDoesNot) {
  // Weak scaling: tiles proportional to nodes.  Per-node analysis work under
  // DCR stays ~constant; the central controller's grows linearly.
  auto central_busy = [](std::size_t nodes) {
    sim::Machine machine(machine_config(nodes));
    core::FunctionRegistry functions;
    CentralRuntime rt(machine, functions);
    const auto fns = register_stencil_functions(functions, 1.0);
    rt.execute(make_stencil_app({.cells_per_tile = 64, .tiles = nodes, .steps = 4}, fns));
    return machine.analysis_proc(NodeId(0)).busy_time();
  };
  auto dcr_busy = [](std::size_t nodes) {
    sim::Machine machine(machine_config(nodes));
    core::FunctionRegistry functions;
    core::DcrRuntime rt(machine, functions);
    const auto fns = register_stencil_functions(functions, 1.0);
    rt.execute(make_stencil_app({.cells_per_tile = 64, .tiles = nodes, .steps = 4}, fns));
    return machine.analysis_proc(NodeId(0)).busy_time();
  };
  const double central_growth =
      static_cast<double>(central_busy(16)) / static_cast<double>(central_busy(2));
  const double dcr_growth =
      static_cast<double>(dcr_busy(16)) / static_cast<double>(dcr_busy(2));
  EXPECT_GT(central_growth, 4.0);  // ~8x in the limit
  EXPECT_LT(dcr_growth, 2.0);      // per-node analysis ~flat
}

TEST(Central, FuturesFlowBackToController) {
  sim::Machine machine(machine_config(2));
  core::FunctionRegistry functions;
  CentralRuntime rt(machine, functions);
  const FunctionId fn = functions.register_simple(
      "v", us(1), 0.0, [](const core::PointTaskInfo& i) {
        return static_cast<double>(i.point[0]) + 1.0;
      });
  double sum = -1, single = -1;
  rt.execute([&](core::Context& ctx) {
    core::IndexLaunch launch;
    launch.fn = fn;
    launch.domain = rt::Rect::r1(0, 3);
    launch.wants_futures = true;
    auto fm = ctx.index_launch(launch);
    sum = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Sum));
    core::TaskLaunch one;
    one.fn = fn;
    one.wants_future = true;
    single = ctx.get_future(ctx.launch(one));
  });
  EXPECT_EQ(sum, 1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_EQ(single, 1.0);
}

TEST(Central, ScheduleCachingReducesControllerTime) {
  auto busy = [](bool caching) {
    sim::Machine machine(machine_config(4));
    core::FunctionRegistry functions;
    CentralConfig cfg;
    cfg.schedule_caching = caching;
    CentralRuntime runtime(machine, functions, cfg);
    const auto fns = register_stencil_functions(functions, 1.0);
    apps::StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 10};
    scfg.use_trace = true;
    runtime.execute(make_stencil_app(scfg, fns));
    return machine.analysis_proc(NodeId(0)).busy_time();
  };
  EXPECT_LT(busy(true), busy(false));
}

TEST(Scr, FasterThanDcrButSameStructure) {
  auto run = [](bool scr) {
    sim::Machine machine(machine_config(4));
    core::FunctionRegistry functions;
    core::DcrConfig cfg = scr ? scr_config() : core::DcrConfig{};
    core::DcrRuntime rt(machine, functions, cfg);
    const auto fns = register_stencil_functions(functions, 1.0);
    return rt.execute(make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 5}, fns));
  };
  const auto scr = run(true);
  const auto dcr = run(false);
  EXPECT_TRUE(scr.completed);
  EXPECT_EQ(scr.point_tasks_launched, dcr.point_tasks_launched);
  EXPECT_LT(scr.makespan, dcr.makespan);
  EXPECT_EQ(scr.determinism_checks, 0u);
}

TEST(Central, FutureIsReadyReflectsCompletion) {
  sim::Machine machine(machine_config(2));
  core::FunctionRegistry functions;
  CentralRuntime rt(machine, functions);
  const FunctionId fn = functions.register_simple(
      "slow", ms(1), 0.0, [](const core::PointTaskInfo&) { return 3.0; });
  bool ready_before = true, ready_after = false;
  rt.execute([&](core::Context& ctx) {
    core::TaskLaunch launch;
    launch.fn = fn;
    launch.wants_future = true;
    const core::Future f = ctx.launch(launch);
    ready_before = ctx.future_is_ready(f);
    EXPECT_EQ(ctx.get_future(f), 3.0);
    ready_after = ctx.future_is_ready(f);
  });
  EXPECT_FALSE(ready_before);  // 1 ms task cannot be done at issue time
  EXPECT_TRUE(ready_after);
}

TEST(Central, DispatchMessagesFlowThroughTheNetwork) {
  sim::Machine machine(machine_config(4));
  core::FunctionRegistry functions;
  CentralRuntime rt(machine, functions);
  const auto fns = register_stencil_functions(functions, 1.0);
  const auto stats =
      rt.execute(make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 2}, fns));
  EXPECT_TRUE(stats.completed);
  // Every point task dispatched to a non-controller node costs one message.
  EXPECT_GT(stats.messages, stats.point_tasks_launched / 2);
}

}  // namespace
}  // namespace dcr::baselines
