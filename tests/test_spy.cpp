// dcr-spy end-to-end verification (ISSUE 2): every execution below records a
// full spy trace and is checked offline — runtime graph ≡ DEPseq
// (transitive-reduction-aware), zero unordered conflicting region accesses,
// every elided fence proven shard-local, and replicated call streams.
// Negative tests seed a dropped dependence edge, a wrongly elided fence, and
// a control-divergent program, and assert the verifier/linter catches each.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"

namespace dcr::core {
namespace {

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

struct TracedRun {
  DcrStats stats;
  spy::Trace trace;
  rt::TaskGraph graph;  // realized, transitively closed
};

TracedRun run_traced(const ApplicationMain& app, FunctionRegistry& functions,
                     std::size_t nodes, DcrConfig cfg = {}) {
  sim::Machine machine(cluster(nodes));
  cfg.record_trace = true;
  DcrRuntime rt(machine, functions, cfg);
  TracedRun out;
  out.stats = rt.execute(app);
  out.trace = *rt.trace();  // copy out: the runtime dies with this scope
  out.graph = rt.realized_graph().transitive_closure();
  return out;
}

void expect_clean(const TracedRun& run, const char* what) {
  EXPECT_TRUE(run.stats.completed) << what;
  EXPECT_FALSE(run.stats.determinism_violation) << what;
  const spy::VerifyReport report = spy::verify(run.trace);
  EXPECT_TRUE(report.ok()) << what << ": " << report.summary()
                           << (report.findings.empty() ? "" : "\n  " + report.findings[0].message);
  EXPECT_GT(report.stats.tasks, 0u) << what;
  EXPECT_GT(report.stats.calls_checked, 0u) << what;
}

// ------------------------------------------------------------- applications

TEST(SpyApps, StencilVerifies) {
  for (std::size_t nodes : {1u, 2u, 4u}) {
    FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    const auto run = run_traced(
        apps::make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 3}, fns),
        functions, nodes);
    expect_clean(run, "stencil");
    // The stencil's mul_two -> stencil dependence is elided (Figure 10); the
    // audit must have exhibited shard-local witnesses for it.
    if (nodes > 1) {
      const spy::VerifyReport report = spy::verify(run.trace);
      EXPECT_GT(report.stats.elisions_checked, 0u);
      EXPECT_GT(report.stats.elision_witnesses, 0u);
    }
  }
}

TEST(SpyApps, CircuitVerifies) {
  FunctionRegistry functions;
  const auto fns = apps::register_circuit_functions(functions, 1.0);
  const auto run = run_traced(
      apps::make_circuit_app({.nodes_per_piece = 50, .wires_per_piece = 100, .pieces = 4,
                              .steps = 3},
                             fns),
      functions, /*nodes=*/4);
  expect_clean(run, "circuit");
}

TEST(SpyApps, PennantVerifies) {
  FunctionRegistry functions;
  const auto fns = apps::register_pennant_functions(functions, 1.0);
  const auto run = run_traced(
      apps::make_pennant_app({.zones_per_piece = 100, .pieces = 4, .cycles = 3}, fns),
      functions, /*nodes=*/4);
  expect_clean(run, "pennant");
}

// -------------------------------------------------------------- fuzz sweep

fuzz::RandomDcrProgram fuzz_program(std::uint64_t seed) {
  // Seeds derive from this suite's ctest label so -L spy and -L faults (and
  // any future suite) explore disjoint program spaces; see tests/README.md.
  Philox4x32 rng(fuzz::seed_for_label("spy", seed), /*stream=*/9);
  return fuzz::generate(rng, /*tiles=*/6);
}

TracedRun run_fuzz(const fuzz::RandomDcrProgram& p, std::size_t nodes, DcrConfig cfg = {}) {
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  return run_traced(fuzz::materialize(p, fn), functions, nodes, cfg);
}

class SpyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// 100 seeds x 2 shard counts = 200 fuzzed programs verified end-to-end.
TEST_P(SpyFuzz, FuzzedProgramVerifies) {
  const fuzz::RandomDcrProgram program = fuzz_program(GetParam());
  for (std::size_t nodes : {2u, 4u}) {
    const auto run = run_fuzz(program, nodes);
    expect_clean(run, "fuzz");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpyFuzz, ::testing::Range<std::uint64_t>(0, 100));

// Fence-elision equivalence: with elision disabled the runtime inserts a
// fence for every coarse dependence; the realized partial order must be
// unchanged, and both executions must verify against DEPseq.
class SpyElisionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpyElisionEquivalence, ElisionOnOffYieldIdenticalGraphs) {
  const fuzz::RandomDcrProgram program = fuzz_program(GetParam());
  DcrConfig no_elide;
  no_elide.disable_fence_elision = true;
  const auto with_elision = run_fuzz(program, /*nodes=*/4);
  const auto without = run_fuzz(program, /*nodes=*/4, no_elide);
  expect_clean(with_elision, "elision on");
  expect_clean(without, "elision off");
  EXPECT_TRUE(with_elision.graph.same_partial_order(without.graph))
      << "seed " << GetParam();
  // The disabled run must not record any elided coarse dependence.
  for (const auto& dep : without.trace.coarse_deps) EXPECT_FALSE(dep.elided);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpyElisionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 25));

// ----------------------------------------------------------- negative tests

// Seeded mutation 1: drop a realized dependence edge from the trace.  Any
// edge of the transitive reduction strictly shrinks the recorded partial
// order, so the verifier must flag a missing DEPseq dependence (and usually
// the resulting region race).
TEST(SpyNegative, DroppedEdgeIsCaught) {
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  auto run = run_traced(
      apps::make_stencil_app({.cells_per_tile = 64, .tiles = 4, .steps = 2}, fns),
      functions, /*nodes=*/2);
  ASSERT_TRUE(spy::verify(run.trace).ok());

  rt::TaskGraph recorded;
  for (const auto& t : run.trace.tasks) recorded.add_task(t.id);
  for (const auto& e : run.trace.edges) {
    if (!recorded.has_edge(e.from, e.to)) recorded.add_edge(e.from, e.to);
  }
  const rt::TaskGraph reduced = recorded.transitive_reduction();
  TaskId from = TaskId::invalid();
  TaskId to = TaskId::invalid();
  for (TaskId t : reduced.tasks()) {
    if (!reduced.successors(t).empty()) {
      from = t;
      to = *reduced.successors(t).begin();
      break;
    }
  }
  ASSERT_TRUE(from.valid());
  std::erase_if(run.trace.edges, [&](const spy::EdgeRecord& e) {
    return e.from == from && e.to == to;
  });

  const spy::VerifyReport report = spy::verify(run.trace);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(spy::FindingKind::MissingDependence)) << report.summary();
}

// Seeded mutation 2: claim every fenced coarse dependence was elided.  The
// stencil's add_one -> stencil halo dependence crosses shards, so the audit
// must fail to find a shard-local witness for at least one pair.
TEST(SpyNegative, WronglyElidedFenceIsCaught) {
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  auto run = run_traced(
      apps::make_stencil_app({.cells_per_tile = 64, .tiles = 4, .steps = 2}, fns),
      functions, /*nodes=*/2);
  ASSERT_TRUE(spy::verify(run.trace).ok());

  std::size_t flipped = 0;
  for (auto& dep : run.trace.coarse_deps) {
    if (!dep.elided) {
      dep.elided = true;
      flipped++;
    }
  }
  ASSERT_GT(flipped, 0u) << "stencil should have fenced coarse dependences";

  spy::VerifyOptions opts;
  opts.check_graph = false;  // graph itself is still sound; isolate the audit
  opts.check_races = false;
  const spy::VerifyReport report = spy::verify(run.trace, opts);
  EXPECT_TRUE(report.has(spy::FindingKind::UnsoundElision)) << report.summary();
}

// ------------------------------------------------- control-determinism lint

// Regression for the ISSUE 2 bugfix: with a trace available, a determinism
// violation is reported with the linter's argument-level explanation, not
// just a hash mismatch.
TEST(SpyLint, DivergentProgramGetsArgumentLevelReport) {
  FunctionRegistry functions;
  ApplicationMain divergent = [](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    FieldId fa = ctx.allocate_field(fs, 8, "a");
    FieldId fb = ctx.allocate_field(fs, 8, "b");
    RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 63), fs);
    IndexSpaceId root = ctx.root(tree);
    // Forbidden: branching on the shard id diverges the call streams.
    ctx.fill(root, {ctx.shard_id().value % 2 == 0 ? fa : fb});
    ctx.fill(root, {fa});
  };
  sim::Machine machine(cluster(2));
  DcrConfig cfg;
  cfg.record_trace = true;
  DcrRuntime rt(machine, functions, cfg);
  const DcrStats stats = rt.execute(divergent);

  EXPECT_TRUE(stats.determinism_violation);
  // The linter names the call, the shards, and the differing argument.
  EXPECT_NE(stats.violation_message.find("fill"), std::string::npos)
      << stats.violation_message;
  EXPECT_NE(stats.violation_message.find("argument 'fields'"), std::string::npos)
      << stats.violation_message;
  EXPECT_NE(stats.violation_message.find("shard"), std::string::npos)
      << stats.violation_message;

  const spy::LintResult lint = spy::lint_control_determinism(*rt.trace());
  EXPECT_TRUE(lint.divergent);
  const spy::VerifyReport report = spy::verify(*rt.trace());
  EXPECT_TRUE(report.has(spy::FindingKind::ControlDivergence));
}

TEST(SpyLint, CleanProgramHasNoDivergence) {
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  const auto run = run_traced(
      apps::make_stencil_app({.cells_per_tile = 32, .tiles = 4, .steps = 1}, fns),
      functions, /*nodes=*/4);
  const spy::LintResult lint = spy::lint_control_determinism(run.trace);
  EXPECT_FALSE(lint.divergent) << lint.message;
}

// --------------------------------------------------------- JSONL round-trip

TEST(SpyTrace, JsonlRoundTrip) {
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  const auto run = run_traced(
      apps::make_stencil_app({.cells_per_tile = 32, .tiles = 4, .steps = 2}, fns),
      functions, /*nodes=*/2);

  const std::string jsonl = run.trace.to_jsonl();
  std::istringstream in(jsonl);
  spy::Trace parsed;
  std::string error;
  ASSERT_TRUE(spy::Trace::read_jsonl(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed.num_shards, run.trace.num_shards);
  EXPECT_EQ(parsed.num_events(), run.trace.num_events());
  EXPECT_EQ(parsed.to_jsonl(), jsonl);  // serialization is deterministic

  const spy::VerifyReport report = spy::verify(parsed);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SpyTrace, MalformedJsonlRejected) {
  std::istringstream in("{\"type\":\"meta\",\"num_shards\":2}\nnot json\n");
  spy::Trace parsed;
  std::string error;
  EXPECT_FALSE(spy::Trace::read_jsonl(in, &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

}  // namespace
}  // namespace dcr::core
