// End-to-end fuzzing of the production pipeline: random region-based
// programs (random trees, partitions, privileges, launch sequences) are
// executed under DCR at several shard counts with task-graph recording; the
// realized partial orders must be identical — the whole-system analogue of
// Theorem 1, exercised through the real coarse/fine stages, fences, and
// elision rather than the abstract semantics.  Every execution is also run
// through the dcr-spy offline verifier (graph equivalence, race check,
// elision audit) against its recorded trace.
#include <gtest/gtest.h>

#include <vector>

#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "spy/verify.hpp"

namespace dcr::core {
namespace {

rt::TaskGraph realize(const fuzz::RandomDcrProgram& p, std::size_t nodes) {
  sim::Machine machine({.num_nodes = nodes,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  DcrConfig cfg;
  cfg.record_trace = true;  // implies record_task_graph
  DcrRuntime rt(machine, functions, cfg);
  const auto stats = rt.execute(fuzz::materialize(p, fn));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  const spy::VerifyReport report = spy::verify(*rt.trace());
  EXPECT_TRUE(report.ok()) << report.summary() << (report.findings.empty()
                                                       ? ""
                                                       : "\n  " + report.findings[0].message);
  return rt.realized_graph().transitive_closure();
}

class DcrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DcrFuzz, RealizedPartialOrderIdenticalAcrossShardCounts) {
  Philox4x32 rng(GetParam(), /*stream=*/9);
  const fuzz::RandomDcrProgram program = fuzz::generate(rng, /*tiles=*/6);
  const rt::TaskGraph reference = realize(program, 1);
  EXPECT_TRUE(reference.is_acyclic());
  for (std::size_t nodes : {2u, 3u, 6u}) {
    const rt::TaskGraph got = realize(program, nodes);
    ASSERT_TRUE(reference.same_partial_order(got))
        << "seed " << GetParam() << " nodes " << nodes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcrFuzz, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace dcr::core
