// End-to-end fuzzing of the production pipeline: random region-based
// programs (random trees, partitions, privileges, launch sequences) are
// executed under DCR at several shard counts with task-graph recording; the
// realized partial orders must be identical — the whole-system analogue of
// Theorem 1, exercised through the real coarse/fine stages, fences, and
// elision rather than the abstract semantics.
#include <gtest/gtest.h>

#include <vector>

#include "common/philox.hpp"
#include "dcr/runtime.hpp"

namespace dcr::core {
namespace {

struct RandomDcrProgram {
  // One op in the generated program.
  struct Op {
    enum class Kind { Fill, Launch } kind;
    std::size_t tree;       // which of the generated trees
    std::size_t rw_part;    // disjoint partition index for the RW requirement
    std::size_t rw_field;   // field index for the RW requirement
    bool has_ro = false;
    std::size_t ro_part;    // aliased (halo) partition index
    std::size_t ro_field;
    bool reduce = false;    // RED instead of RW on the aliased partition
    ShardingId sharding;
  };
  std::size_t num_trees;
  std::size_t tiles;
  std::vector<Op> ops;
};

// Programs are non-interfering within each launch by construction: writes go
// to a disjoint partition; aliased reads use a different field; reductions
// share a reduction operator (commutative).
RandomDcrProgram generate(Philox4x32& rng, std::size_t tiles) {
  RandomDcrProgram p;
  p.num_trees = 1 + rng.next_below(2);
  p.tiles = tiles;
  const std::size_t num_ops = 8 + rng.next_below(10);
  for (std::size_t i = 0; i < num_ops; ++i) {
    RandomDcrProgram::Op op;
    op.kind = rng.next_below(6) == 0 ? RandomDcrProgram::Op::Kind::Fill
                                     : RandomDcrProgram::Op::Kind::Launch;
    op.tree = rng.next_below(p.num_trees);
    op.rw_part = rng.next_below(2);   // two disjoint partitions per tree
    op.rw_field = rng.next_below(2);  // two fields per tree
    if (rng.next_below(2)) {
      op.has_ro = true;
      op.ro_part = 0;  // the single halo partition per tree
      op.ro_field = 1 - op.rw_field;
      op.reduce = rng.next_below(3) == 0;
    }
    op.sharding = rng.next_below(2) ? ShardingRegistry::blocked()
                                    : ShardingRegistry::cyclic();
    p.ops.push_back(op);
  }
  return p;
}

ApplicationMain materialize(const RandomDcrProgram& p, FunctionId fn) {
  return [p, fn](Context& ctx) {
    using namespace rt;
    struct TreeState {
      IndexSpaceId root;
      std::vector<FieldId> fields;
      std::vector<PartitionId> disjoint;  // [0]: blocked-equal, [1]: two-level grid
      PartitionId halo;
    };
    std::vector<TreeState> trees;
    for (std::size_t t = 0; t < p.num_trees; ++t) {
      FieldSpaceId fs = ctx.create_field_space();
      TreeState st;
      st.fields.push_back(ctx.allocate_field(fs, 8, "a"));
      st.fields.push_back(ctx.allocate_field(fs, 8, "b"));
      const RegionTreeId tree =
          ctx.create_region(Rect::r1(0, static_cast<std::int64_t>(p.tiles) * 64 - 1), fs);
      st.root = ctx.root(tree);
      st.disjoint.push_back(ctx.partition_equal(st.root, p.tiles));
      // A second, offset disjoint partition (different tile boundaries).
      std::vector<Rect> offset;
      const std::int64_t n = static_cast<std::int64_t>(p.tiles) * 64;
      for (std::size_t c = 0; c < p.tiles; ++c) {
        const std::int64_t lo = static_cast<std::int64_t>(c) * n /
                                static_cast<std::int64_t>(p.tiles);
        const std::int64_t hi =
            (static_cast<std::int64_t>(c) + 1) * n / static_cast<std::int64_t>(p.tiles) - 1;
        offset.push_back(Rect::r1(std::min(lo + 7, hi), hi));
      }
      st.disjoint.push_back(ctx.create_partition(st.root, offset, true));
      st.halo = ctx.partition_with_halo(st.root, p.tiles, 2);
      trees.push_back(st);
    }

    const Rect domain = Rect::r1(0, static_cast<std::int64_t>(p.tiles) - 1);
    for (const auto& op : p.ops) {
      const TreeState& st = trees[op.tree];
      if (op.kind == RandomDcrProgram::Op::Kind::Fill) {
        ctx.fill(st.root, {st.fields[op.rw_field]});
        continue;
      }
      IndexLaunch l;
      l.fn = fn;
      l.domain = domain;
      l.sharding = op.sharding;
      l.requirements.push_back(rt::GroupRequirement::on_partition(
          st.disjoint[op.rw_part], {st.fields[op.rw_field]}, rt::Privilege::ReadWrite));
      if (op.has_ro) {
        l.requirements.push_back(rt::GroupRequirement::on_partition(
            st.halo, {st.fields[op.ro_field]},
            op.reduce ? rt::Privilege::Reduce : rt::Privilege::ReadOnly,
            op.reduce ? 1 : 0));
      }
      ctx.index_launch(l);
    }
    ctx.execution_fence();
  };
}

rt::TaskGraph realize(const RandomDcrProgram& p, std::size_t nodes) {
  sim::Machine machine({.num_nodes = nodes,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  DcrConfig cfg;
  cfg.record_task_graph = true;
  DcrRuntime rt(machine, functions, cfg);
  const auto stats = rt.execute(materialize(p, fn));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  return rt.realized_graph().transitive_closure();
}

class DcrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DcrFuzz, RealizedPartialOrderIdenticalAcrossShardCounts) {
  Philox4x32 rng(GetParam(), /*stream=*/9);
  const RandomDcrProgram program = generate(rng, /*tiles=*/6);
  const rt::TaskGraph reference = realize(program, 1);
  EXPECT_TRUE(reference.is_acyclic());
  for (std::size_t nodes : {2u, 3u, 6u}) {
    const rt::TaskGraph got = realize(program, nodes);
    ASSERT_TRUE(reference.same_partial_order(got))
        << "seed " << GetParam() << " nodes " << nodes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcrFuzz, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace dcr::core
